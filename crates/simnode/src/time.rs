//! Simulated time.
//!
//! All simulation time is carried as integer nanoseconds ([`Nanos`]) to keep
//! event arithmetic exact; conversions to seconds happen only at measurement
//! boundaries.

/// Simulated time or duration in nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const US: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MS: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SEC: Nanos = 1_000_000_000;
/// Nanoseconds per second as a float divisor.
pub const NS_PER_SEC: f64 = 1e9;

/// Convert a nanosecond instant/duration into seconds.
#[inline]
pub fn secs(t: Nanos) -> f64 {
    t as f64 / NS_PER_SEC
}

/// Convert (fractional) seconds into nanoseconds, rounding to nearest.
///
/// Negative inputs saturate to zero; this is a modelling convenience so that
/// jitter distributions that stray below zero cannot produce time travel.
#[inline]
pub fn from_secs(s: f64) -> Nanos {
    if s <= 0.0 {
        0
    } else {
        (s * NS_PER_SEC).round() as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants_are_consistent() {
        assert_eq!(US * 1_000, MS);
        assert_eq!(MS * 1_000, SEC);
        assert_eq!(SEC as f64, NS_PER_SEC);
    }

    #[test]
    fn secs_roundtrip() {
        for &t in &[0u64, 1, 999, US, MS, SEC, 3 * SEC + 217] {
            let s = secs(t);
            assert_eq!(from_secs(s), t, "roundtrip failed for {t}");
        }
    }

    #[test]
    fn from_secs_saturates_negative() {
        assert_eq!(from_secs(-1.0), 0);
        assert_eq!(from_secs(0.0), 0);
    }
}
