//! Dynamic duty-cycle modulation (DDCM).
//!
//! Intel exposes clock modulation through `IA32_CLOCK_MODULATION`: the core
//! clock is gated for a fraction of each modulation period, in 1/16 steps.
//! RAPL engages clock modulation when the lowest DVFS operating point still
//! exceeds the core power budget — this is one of the "additional means"
//! the paper notes its model does not capture (Section VI.2, STREAM
//! discussion), and the reason the model underestimates the impact of
//! stringent power caps.

use serde::{Deserialize, Serialize};

/// A duty cycle in sixteenths: `DutyCycle(n)` runs the clock `n/16` of the
/// time, `1 <= n <= 16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DutyCycle(u8);

impl DutyCycle {
    /// Number of duty levels (16ths).
    pub const LEVELS: u8 = 16;

    /// Full-speed duty cycle (16/16, modulation off).
    pub const FULL: DutyCycle = DutyCycle(16);

    /// Minimum duty cycle (1/16).
    pub const MIN: DutyCycle = DutyCycle(1);

    /// Create a duty cycle of `sixteenths/16`.
    ///
    /// # Panics
    /// Panics unless `1 <= sixteenths <= 16`.
    pub fn new(sixteenths: u8) -> Self {
        assert!(
            (1..=16).contains(&sixteenths),
            "duty cycle must be 1..=16 sixteenths, got {sixteenths}"
        );
        Self(sixteenths)
    }

    /// The raw numerator (1..=16).
    pub fn sixteenths(self) -> u8 {
        self.0
    }

    /// The fraction of time the clock runs, in (0, 1].
    pub fn fraction(self) -> f64 {
        f64::from(self.0) / 16.0
    }

    /// Whether modulation is disabled (full duty).
    pub fn is_full(self) -> bool {
        self.0 == 16
    }

    /// One step lower (slower), saturating at 1/16.
    pub fn lower(self) -> Self {
        Self(self.0.saturating_sub(1).max(1))
    }

    /// One step higher (faster), saturating at 16/16.
    pub fn raise(self) -> Self {
        Self((self.0 + 1).min(16))
    }

    /// All duty cycles from slowest to fastest.
    pub fn all() -> impl DoubleEndedIterator<Item = DutyCycle> {
        (1..=16).map(DutyCycle)
    }

    /// Encode as the `IA32_CLOCK_MODULATION` register value: bit 4 enables
    /// modulation, bits 0..=3 hold the duty level (0 means 16/16 in our
    /// encoding when disabled).
    pub fn encode_msr(self) -> u64 {
        if self.is_full() {
            0
        } else {
            0x10 | u64::from(self.0)
        }
    }

    /// Decode from an `IA32_CLOCK_MODULATION` register value.
    pub fn decode_msr(raw: u64) -> Self {
        if raw & 0x10 == 0 {
            Self::FULL
        } else {
            let n = (raw & 0xF) as u8;
            Self::new(n.clamp(1, 16))
        }
    }
}

impl Default for DutyCycle {
    fn default() -> Self {
        Self::FULL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_spans_unit_interval() {
        assert_eq!(DutyCycle::MIN.fraction(), 1.0 / 16.0);
        assert_eq!(DutyCycle::FULL.fraction(), 1.0);
        assert!(DutyCycle::new(8).fraction() == 0.5);
    }

    #[test]
    fn lower_and_raise_saturate() {
        assert_eq!(DutyCycle::MIN.lower(), DutyCycle::MIN);
        assert_eq!(DutyCycle::FULL.raise(), DutyCycle::FULL);
        assert_eq!(DutyCycle::new(8).lower(), DutyCycle::new(7));
        assert_eq!(DutyCycle::new(8).raise(), DutyCycle::new(9));
    }

    #[test]
    fn msr_encoding_roundtrips() {
        for d in DutyCycle::all() {
            assert_eq!(DutyCycle::decode_msr(d.encode_msr()), d);
        }
        // Disabled modulation decodes to full duty regardless of stale bits.
        assert_eq!(DutyCycle::decode_msr(0x0F), DutyCycle::FULL);
    }

    #[test]
    #[should_panic(expected = "duty cycle must be")]
    fn zero_duty_rejected() {
        DutyCycle::new(0);
    }

    #[test]
    fn all_is_ascending() {
        let v: Vec<_> = DutyCycle::all().collect();
        assert_eq!(v.len(), 16);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }
}
