//! # simnode — a discrete-time simulated compute node
//!
//! This crate is the hardware substrate for the reproduction of
//! *"Understanding the Impact of Dynamic Power Capping on Application
//! Progress"* (Ramesh et al., IPDPS-W 2019). The paper's experiments ran on
//! a real Skylake node with Intel RAPL; this crate provides a mechanistic
//! stand-in with the same interfaces and — crucially — the same *behavioural
//! quirks* that drive the paper's results:
//!
//! - a DVFS P-state ladder with a voltage/frequency curve that has a voltage
//!   floor, so the effective exponent of `P_core ∝ f^α` drifts across the
//!   ladder (the paper observes α ranging from 1 to 4);
//! - a RAPL controller that splits the package budget between core and
//!   uncore by *observed demand* ("application-aware power management",
//!   Fig. 2 of the paper), picks the highest admissible P-state, and falls
//!   back to DDCM duty-cycling and uncore-frequency throttling when DVFS
//!   alone cannot meet the budget (the mechanisms the paper's model does not
//!   capture, explaining its errors at stringent caps);
//! - a shared-memory-bandwidth model with contention, so memory-bound codes
//!   (STREAM) crater when the uncore is throttled;
//! - hardware counters (instructions, cycles, L3 misses) from which MIPS,
//!   IPC and MPO are derived exactly as the paper derives them, including
//!   busy-wait instruction inflation at barriers (Table I);
//! - an MSR register file behind an `msr-safe`-style allow-list, so control
//!   software (the NRM) manipulates the node exactly the way `libmsr` does.
//!
//! The node executes *work* supplied by a driver (see the `proxyapps`
//! crate): each core is assigned [`CoreWork`] and the node is advanced in
//! fixed quanta via [`Node::step`], or — the fast path — to a deadline or
//! the next completion/wake via [`Node::step_until`], which macro-steps
//! over event-free stretches in closed form (see
//! [`StepMode`]).

pub mod agent;
pub mod backend;
pub mod bandwidth;
pub mod config;
pub mod counters;
pub mod ddcm;
pub mod energy;
pub mod faults;
pub mod freq;
pub mod hw;
pub mod msr;
pub mod node;
pub mod power;
pub mod presets;
pub mod rapl;
pub mod thermal;
pub mod time;

pub use agent::SimAgent;
pub use backend::{BackendKind, Capabilities, MsrBackend, MsrDeviceBuilder};
pub use config::{NodeConfig, StepMode};
pub use counters::{CounterSnapshot, Counters};
pub use ddcm::DutyCycle;
pub use faults::{FaultKind, FaultPlan, FaultSpec, FaultWindow};
pub use freq::{FrequencyLadder, PState};
pub use msr::{MsrDevice, MsrError};
pub use node::{CoreWork, Node, StepOutcome, WorkPacket};
pub use power::PStateTables;
pub use rapl::RaplController;
pub use thermal::{ThermalConfig, ThermalState};
pub use time::{Nanos, MS, NS_PER_SEC, SEC, US};

#[cfg(test)]
mod difftests;
#[cfg(test)]
mod proptests;
