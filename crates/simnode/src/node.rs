//! The node execution engine.
//!
//! A [`Node`] owns the cores, the MSR file, the RAPL controller and all
//! accounting state. A driver assigns [`CoreWork`] to cores and advances
//! simulated time with [`Node::step`] (one quantum) or [`Node::step_until`]
//! (to a deadline or the next completion/wake, whichever comes first); each
//! quantum retires work according to the current frequency/duty/uncore
//! settings, integrates power into the energy counter, and accumulates
//! hardware counters. RAPL re-evaluates its actuators on its own control
//! period.
//!
//! Between events the per-quantum update is *identical* from quantum to
//! quantum: while no core completes or wakes, no RAPL period boundary
//! passes, no fault latches and the thermal throttle holds steady, packet
//! state decays by the same fraction of remaining work each quantum and
//! every counter/energy increment is a constant. [`Node::step_until`]
//! exploits this (under the default [`StepMode::EventHorizon`]) by
//! computing the number of whole quanta to the nearest such *event
//! horizon* and applying the k-quantum closed form in one shot, falling
//! back to the exact single-quantum path within a quantum of any horizon.

use serde::{Deserialize, Serialize};

use crate::config::{NodeConfig, StepMode};
use crate::counters::Counters;
use crate::ddcm::DutyCycle;
use crate::energy::EnergyMeter;
use crate::msr::{
    decode_perf_ctl, MsrDevice, MsrError, PowerLimit, IA32_APERF, IA32_CLOCK_MODULATION,
    IA32_MPERF, IA32_PERF_CTL, MSR_PKG_POWER_LIMIT,
};
use crate::power::PStateTables;
use crate::rapl::{ActivitySnapshot, Actuation, RaplController};
use crate::thermal::ThermalState;
use crate::time::{secs, Nanos};

/// A unit of application work: some compute cycles interleaved with some
/// memory traffic, retiring some number of instructions.
///
/// Execution time is `cycles / f_eff + misses · line / bw(uncore)` — the
/// overlap-free compute+memory split that underlies the paper's Eq. (1):
/// the compute term scales with frequency, the memory term does not.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkPacket {
    /// Core cycles of computation.
    pub cycles: f64,
    /// L3 misses generated.
    pub misses: f64,
    /// Instructions retired by the packet.
    pub instructions: f64,
    /// Memory-level parallelism in (0, 1]: the fraction of the per-core
    /// bandwidth ceiling this packet's (possibly dependent) misses can
    /// exploit. Latency-bound codes (OpenMC) have low MLP — each miss
    /// stalls longer while moving the same bytes, so they burn stall time
    /// without burning bandwidth (or uncore power).
    #[serde(default = "default_mlp")]
    pub mlp: f64,
    /// This packet's contribution to node memory pressure while in flight:
    /// nominally its memory-time fraction × MLP. A workload-intrinsic
    /// constant (set by the calibration layer), so shared-bandwidth
    /// contention does not artificially relax when cores slow down.
    #[serde(default = "default_mlp")]
    pub mem_weight: f64,
}

fn default_mlp() -> f64 {
    1.0
}

impl WorkPacket {
    /// A bandwidth-streaming packet (MLP = 1, full memory weight).
    pub fn new(cycles: f64, misses: f64, instructions: f64) -> Self {
        Self {
            cycles,
            misses,
            instructions,
            mlp: default_mlp(),
            mem_weight: default_mlp(),
        }
    }

    /// Validate non-negativity (zero packets are legal no-ops).
    pub fn validate(&self) {
        assert!(
            self.cycles >= 0.0 && self.misses >= 0.0 && self.instructions >= 0.0,
            "work packet fields must be non-negative"
        );
        assert!(self.mlp > 0.0 && self.mlp <= 1.0, "mlp must be in (0,1]");
        assert!(
            self.mem_weight >= 0.0 && self.mem_weight <= 1.0,
            "mem_weight must be in [0,1]"
        );
    }
}

/// In-flight packet state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketState {
    /// Remaining compute cycles.
    pub cycles_left: f64,
    /// Remaining L3 misses.
    pub misses_left: f64,
    /// Remaining instructions.
    pub inst_left: f64,
    /// Memory-level parallelism of the packet (see [`WorkPacket::mlp`]).
    pub mlp: f64,
    /// Pressure contribution (see [`WorkPacket::mem_weight`]).
    pub mem_weight: f64,
}

impl From<WorkPacket> for PacketState {
    fn from(p: WorkPacket) -> Self {
        p.validate();
        Self {
            cycles_left: p.cycles,
            misses_left: p.misses,
            inst_left: p.instructions,
            mlp: p.mlp,
            mem_weight: p.mem_weight,
        }
    }
}

/// What a core is doing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoreWork {
    /// Nothing assigned; powered but idle.
    Idle,
    /// In a sleep C-state until the given absolute time (cf. `usleep` in the
    /// paper's Listing 1).
    Sleep {
        /// Absolute wake time.
        until: Nanos,
    },
    /// Busy-wait spinning (MPI barrier polling): full dynamic power,
    /// instructions retire at the configured spin IPC, no useful work.
    Spin,
    /// Executing a work packet.
    Compute(PacketState),
}

/// Result of one simulation step ([`Node::step`] or [`Node::step_until`]).
///
/// The node owns one of these and reuses its buffers across steps, so the
/// hot loop allocates nothing; callers that need to keep a result across
/// further steps clone it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepOutcome {
    /// Cores whose packet completed during this step (now idle).
    pub completed: Vec<usize>,
    /// Cores whose sleep elapsed during this step (now idle).
    pub woke: Vec<usize>,
}

impl StepOutcome {
    /// No completion or wake happened.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty() && self.woke.is_empty()
    }

    fn clear(&mut self) {
        self.completed.clear();
        self.woke.clear();
    }
}

/// Telemetry for the quantum that just executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct QuantumTelemetry {
    /// Package power over the quantum, W.
    pub package_w: f64,
    /// Core-domain share of package power, W.
    pub core_w: f64,
    /// Uncore-domain share of package power, W.
    pub uncore_w: f64,
    /// Effective core frequency (including duty cycling), MHz.
    pub effective_mhz: f64,
    /// Achieved memory traffic, bytes/s.
    pub achieved_bw: f64,
}

/// The simulated node.
///
/// ```
/// use simnode::config::NodeConfig;
/// use simnode::node::{CoreWork, Node, WorkPacket};
///
/// let mut node = Node::new(NodeConfig::default());
/// node.set_package_cap(Some(90.0)).unwrap(); // programs MSR_PKG_POWER_LIMIT
/// node.assign(0, CoreWork::Compute(WorkPacket::new(3.3e7, 0.0, 5e7).into()));
/// while !node.step().completed.contains(&0) {}
/// // ~10 ms of compute at fmax, stretched by the cap's settling P-state.
/// assert!(node.now() >= 10_000_000);
/// assert!(node.total_energy() > 0.0);
/// ```
#[derive(Debug)]
pub struct Node {
    cfg: NodeConfig,
    now: Nanos,
    msr: MsrDevice,
    rapl: RaplController,
    actuation: Actuation,
    cores: Vec<CoreWork>,
    counters: Counters,
    energy: EnergyMeter,
    telemetry: QuantumTelemetry,
    /// Activity accumulated since the last RAPL control decision.
    acc_compute_weight: f64,
    acc_busy_weight: f64,
    acc_powered: f64,
    acc_bytes: f64,
    acc_quanta: u64,
    thermal: Option<ThermalState>,
    next_rapl: Nanos,
    /// Per-P-state power/frequency lookups (see [`PStateTables`]).
    tables: PStateTables,
    /// Reusable step result; cleared at the start of every step.
    outcome: StepOutcome,
    /// Reusable per-core packet-decay fractions for the macro step.
    scratch_rho: Vec<f64>,
}

impl Node {
    /// Build a node from a validated configuration.
    pub fn new(cfg: NodeConfig) -> Self {
        cfg.validate();
        let actuation = Actuation {
            pstate: cfg.ladder.max_pstate(),
            duty: DutyCycle::FULL,
            uncore: cfg.uncore.max_level(),
        };
        let cores = vec![CoreWork::Idle; cfg.cores];
        let thermal = cfg.thermal.clone().map(ThermalState::new);
        let retain = cfg.rapl_window.max(crate::time::SEC);
        // Arc clone: the plan itself is shared, not deep-copied.
        let msr = MsrDevice::builder()
            .backend(cfg.backend)
            .maybe_faults(cfg.faults.clone())
            .build()
            .unwrap_or_else(|e| panic!("cannot initialise MSR backend {:?}: {e}", cfg.backend));
        let tables = PStateTables::new(&cfg.ladder, &cfg.core_power);
        Self {
            energy: EnergyMeter::new(retain * 2),
            next_rapl: cfg.rapl_period,
            scratch_rho: vec![0.0; cfg.cores],
            cfg,
            now: 0,
            msr,
            rapl: RaplController::new(),
            actuation,
            cores,
            counters: Counters::default(),
            telemetry: QuantumTelemetry::default(),
            acc_compute_weight: 0.0,
            acc_busy_weight: 0.0,
            acc_powered: 0.0,
            acc_bytes: 0.0,
            acc_quanta: 0,
            thermal,
            tables,
            outcome: StepOutcome::default(),
        }
    }

    /// The node configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Immutable access to the MSR device (for monitoring software).
    pub fn msr(&self) -> &MsrDevice {
        &self.msr
    }

    /// Mutable access to the MSR device (for control software, like
    /// `libmsr` writes from the NRM).
    pub fn msr_mut(&mut self) -> &mut MsrDevice {
        &mut self.msr
    }

    /// Cumulative hardware counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Telemetry for the most recent quantum.
    pub fn telemetry(&self) -> QuantumTelemetry {
        self.telemetry
    }

    /// Total package energy consumed, joules.
    pub fn total_energy(&self) -> f64 {
        self.energy.total_joules()
    }

    /// Rolling-average package power over `window`, W.
    pub fn average_power(&self, window: Nanos) -> f64 {
        self.energy.average_power(window)
    }

    /// The actuator settings currently in force.
    pub fn actuation(&self) -> Actuation {
        self.actuation
    }

    /// Junction temperature in °C, when the thermal model is enabled.
    pub fn temperature_c(&self) -> Option<f64> {
        self.thermal.as_ref().map(|t| t.temperature_c())
    }

    /// Whether the PROCHOT thermal throttle is currently asserted.
    pub fn thermal_throttling(&self) -> bool {
        self.thermal
            .as_ref()
            .map(|t| t.throttling())
            .unwrap_or(false)
    }

    /// Convenience: program (or clear) the package power cap through the
    /// MSR interface, exactly as `libmsr` would. Like any user-space MSR
    /// access this can fail (e.g. under injected faults); control software
    /// is expected to handle the error rather than assume the cap latched.
    pub fn set_package_cap(&mut self, watts: Option<f64>) -> Result<(), MsrError> {
        let units = self.msr.units();
        let raw = PowerLimit {
            watts,
            window: self.cfg.rapl_window,
        }
        .encode(units);
        self.msr.write(MSR_PKG_POWER_LIMIT, raw)
    }

    /// The currently programmed package cap, if any.
    pub fn package_cap(&self) -> Option<f64> {
        PowerLimit::decode(self.msr.hw_read(MSR_PKG_POWER_LIMIT), self.msr.units()).watts
    }

    /// Assign work to a core.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn assign(&mut self, core: usize, work: CoreWork) {
        if let CoreWork::Sleep { until } = work {
            assert!(until >= self.now, "sleep target in the past");
        }
        self.cores[core] = work;
    }

    /// What a core is currently doing.
    pub fn work(&self, core: usize) -> &CoreWork {
        &self.cores[core]
    }

    /// True when the core has no assigned work.
    pub fn is_available(&self, core: usize) -> bool {
        matches!(self.cores[core], CoreWork::Idle)
    }

    /// Advance the simulation by exactly one quantum. Returns which cores
    /// finished packets or woke from sleep; the returned reference points at
    /// the node's reusable outcome buffer (clone it to keep it across
    /// steps).
    pub fn step(&mut self) -> &StepOutcome {
        // RAPL control decision on period boundaries (before executing).
        if self.now >= self.next_rapl {
            self.rapl_tick();
            self.next_rapl += self.cfg.rapl_period;
        }
        self.outcome.clear();
        self.step_quantum();
        &self.outcome
    }

    /// Advance the simulation until `deadline`, or until any core completes
    /// a packet or wakes from sleep, whichever comes first. Time always
    /// lands on a quantum boundary (the first one at or past `deadline`
    /// when no event cuts the run short), exactly as a [`Node::step`] loop
    /// would.
    ///
    /// Under [`StepMode::EventHorizon`] (the default) stretches with no
    /// upcoming event are covered by a closed-form macro-step instead of
    /// quantum-by-quantum iteration; under [`StepMode::Exact`] this is
    /// bit-identical to calling [`Node::step`] in a loop and stopping on
    /// the first non-empty outcome.
    pub fn step_until(&mut self, deadline: Nanos) -> &StepOutcome {
        self.outcome.clear();
        while self.now < deadline && self.outcome.is_empty() {
            if self.now >= self.next_rapl {
                self.rapl_tick();
                self.next_rapl += self.cfg.rapl_period;
            }
            let k = match self.cfg.step_mode {
                StepMode::Exact => 1,
                StepMode::EventHorizon => self.macro_quanta(deadline),
            };
            if k >= 2 {
                self.macro_step(k);
            } else {
                self.step_quantum();
            }
        }
        &self.outcome
    }

    /// Absolute sim-time of the node's next *scheduled* event at or before
    /// `deadline`: the next RAPL period boundary, the next fault window
    /// edge (opening, closing, or deferred cap latch), or a sleeping
    /// core's wake — whichever comes first. Compute completions are
    /// deliberately excluded: they depend on the power cap in force and
    /// are discovered by stepping, not predicted here. Schedulers use
    /// this to decide whether a node needs waking before their horizon;
    /// a node with no event before `deadline` can be left parked without
    /// changing what any [`Node::step_until`] call will observe.
    pub fn next_event_hint(&self, deadline: Nanos) -> Nanos {
        let mut t = deadline.min(self.next_rapl);
        if let Some(b) = self.msr.next_event_hint(self.now) {
            t = t.min(b);
        }
        for work in &self.cores {
            if let CoreWork::Sleep { until } = work {
                t = t.min(*until);
            }
        }
        t.max(self.now)
    }

    /// Number of whole quanta until the next *event horizon*: the earliest
    /// of the caller's deadline, the next RAPL period boundary, a fault
    /// window opening/closing or deferred cap latching, a sleeping core's
    /// wake time, and (with a one-quantum safety margin) a computing core's
    /// predicted completion. A macro-step of this many quanta crosses no
    /// horizon except possibly on its final quantum boundary — the same
    /// quantum on which the exact path observes the event.
    fn macro_quanta(&self, deadline: Nanos) -> u64 {
        let dt = self.cfg.quantum;
        let dt_s = secs(dt);
        let now = self.now;
        // Quanta from `now` to the first quantum boundary at or past `b`.
        let quanta_to = |b: Nanos| b.saturating_sub(now).div_ceil(dt);

        let mut k = quanta_to(deadline).min(quanta_to(self.next_rapl));
        if let Some(b) = self.msr.next_event_hint(now) {
            k = k.min(quanta_to(b));
        }
        if k < 2 {
            return k;
        }

        // Frequency the quanta will run at (PROCHOT pin included; a throttle
        // *flip* mid-step is handled by truncation inside macro_step).
        let mut effective = self.actuation;
        if let Some(t) = &self.thermal {
            if t.throttling() {
                effective.pstate = self.cfg.ladder.min_pstate();
            }
        }
        let f_eff_hz = self.tables.mhz(effective.pstate) * 1e6 * effective.duty.fraction();
        let pressure: f64 = self
            .cores
            .iter()
            .map(|w| match w {
                CoreWork::Compute(p) if p.misses_left > 0.0 => p.mem_weight,
                _ => 0.0,
            })
            .sum();

        for work in &self.cores {
            match work {
                CoreWork::Idle | CoreWork::Spin => {}
                CoreWork::Sleep { until } => {
                    // Land the macro end exactly on the wake quantum.
                    k = k.min(quanta_to(*until));
                }
                CoreWork::Compute(ps) => {
                    let t_comp = if f_eff_hz > 0.0 {
                        ps.cycles_left / f_eff_hz
                    } else {
                        f64::INFINITY
                    };
                    let service = self
                        .cfg
                        .uncore
                        .service_rate(effective.uncore, pressure, ps.mlp);
                    let t_mem = ps.misses_left * self.cfg.uncore.bytes_per_miss / service;
                    let t_total = t_comp + t_mem;
                    // Stop one quantum short of the predicted completion so
                    // the completion decision itself is always taken by the
                    // exact single-quantum path (immune to closed-form
                    // rounding). The `as u64` cast saturates for infinite
                    // t_total (no completion horizon) and maps NaN to 0
                    // (forces the exact path).
                    k = k.min(((t_total / dt_s) as u64).saturating_sub(1));
                }
            }
            if k < 2 {
                return k;
            }
        }
        k
    }

    /// Apply `k` quanta in closed form. Caller guarantees (via
    /// [`Node::macro_quanta`]) that no RAPL boundary, fault boundary, wake
    /// or completion lies strictly inside the covered span — wakes may land
    /// exactly on its final quantum. A thermal-throttle flip truncates the
    /// step at the quantum after the flip, exactly where the exact path
    /// would first run at the new frequency.
    fn macro_step(&mut self, k: u64) {
        let dt = self.cfg.quantum;
        let dt_s = secs(dt);
        let start = self.now;

        let mut effective = self.actuation;
        let throttled0 = self
            .thermal
            .as_ref()
            .map(|t| t.throttling())
            .unwrap_or(false);
        if throttled0 {
            effective.pstate = self.cfg.ladder.min_pstate();
        }
        let leak0 = self
            .thermal
            .as_ref()
            .map(|t| t.leak_factor())
            .unwrap_or(1.0);

        let duty = effective.duty;
        let duty_frac = duty.fraction();
        let f_mhz = self.tables.mhz(effective.pstate);
        let f_eff_hz = f_mhz * 1e6 * duty_frac;
        let fmax_hz = self.cfg.fmax_mhz() as f64 * 1e6;
        let uncore_level = effective.uncore;
        let dyn_full_w = self.tables.dynamic_full(effective.pstate);
        let static_at_f = self.tables.static_power(effective.pstate);

        let pressure: f64 = self
            .cores
            .iter()
            .map(|w| match w {
                CoreWork::Compute(p) if p.misses_left > 0.0 => p.mem_weight,
                _ => 0.0,
            })
            .sum();

        // Pass 1: per-quantum constants. While no horizon is crossed every
        // quantum of the macro step contributes identical increments —
        // packet state decays multiplicatively, so remaining-work ratios
        // (and hence utilisations, power and counter deltas) are invariant.
        let mut core_w0 = 0.0; // interleaved per-core sum, bit-equal to the exact path at leak0
        let mut core_dyn_w = 0.0; // dynamic-only sum (thermal path)
        let mut core_static_w = 0.0; // leak-scaled static sum, sans leak factor (thermal path)
        let mut bytes_q = 0.0;
        let mut inst_q = 0.0;
        let mut cycles_q = 0.0;
        let mut misses_q = 0.0;
        let mut compute_weight = 0.0;
        let mut busy_weight = 0.0;
        let mut powered = 0.0;
        let mut aperf_q = 0.0;
        let mut mperf_q = 0.0;

        for (i, work) in self.cores.iter().enumerate() {
            self.scratch_rho[i] = 0.0;
            let (activity, static_scale, busy_frac) = match work {
                CoreWork::Idle => (0.0, 1.0, 0.0),
                CoreWork::Sleep { .. } => {
                    inst_q += self.cfg.sleep_inst_per_sec * dt_s;
                    (0.0, self.cfg.cstate_static_frac, 0.0)
                }
                CoreWork::Spin => {
                    let cyc = f_eff_hz * dt_s;
                    cycles_q += cyc;
                    inst_q += self.cfg.spin_ipc * cyc;
                    (1.0, 1.0, 1.0)
                }
                CoreWork::Compute(ps) => {
                    let t_comp = if f_eff_hz > 0.0 {
                        ps.cycles_left / f_eff_hz
                    } else {
                        f64::INFINITY
                    };
                    let service = self.cfg.uncore.service_rate(uncore_level, pressure, ps.mlp);
                    let t_mem = ps.misses_left * self.cfg.uncore.bytes_per_miss / service;
                    let t_total = t_comp + t_mem;
                    debug_assert!(
                        t_total > dt_s * k as f64,
                        "macro step may not contain a completion"
                    );
                    let rho = dt_s / t_total;
                    self.scratch_rho[i] = rho;
                    let u_comp = t_comp / t_total;
                    let u_mem = t_mem / t_total;
                    let misses_serviced = ps.misses_left * rho;
                    bytes_q += misses_serviced * self.cfg.uncore.bytes_per_miss;
                    inst_q += ps.inst_left * rho;
                    let busy = (u_comp + u_mem).min(1.0);
                    cycles_q += f_eff_hz * busy * dt_s;
                    misses_q += misses_serviced;
                    let activity = u_comp + u_mem * self.cfg.stall_dyn_frac;
                    (activity.min(1.0), 1.0, busy)
                }
            };
            let dyn_w = dyn_full_w * duty_frac * activity;
            core_dyn_w += dyn_w;
            core_static_w += static_at_f * static_scale;
            core_w0 += dyn_w + static_at_f * (static_scale * leak0);
            compute_weight += activity;
            busy_weight += busy_frac;
            powered += static_scale.min(1.0_f64).ceil();
            aperf_q += f_eff_hz * busy_frac * dt_s;
            mperf_q += fmax_hz * busy_frac * dt_s;
        }

        let achieved_bw = bytes_q / dt_s;
        let uncore_w = self.cfg.uncore.power(uncore_level, achieved_bw);

        // Pass 2: energy and thermal. Without a thermal model package power
        // is constant over the whole span (one meter sample, one tick
        // batch); with one, leakage drifts with temperature every quantum
        // and a PROCHOT flip truncates the step.
        let energy_unit = self.msr.units().energy_j;
        let executed;
        let mut energy_ticks: u64;
        let core_w_last;
        if let Some(t) = &mut self.thermal {
            energy_ticks = 0;
            let mut core_w_i = core_dyn_w + core_static_w * leak0;
            let mut done = 0;
            for i in 0..k {
                core_w_i = core_dyn_w + core_static_w * t.leak_factor();
                let pkg_w = core_w_i + uncore_w;
                let e = pkg_w * dt_s;
                self.energy.record(start + (i + 1) * dt, e);
                energy_ticks += (e / energy_unit).round() as u64;
                t.step(pkg_w, dt_s);
                done = i + 1;
                if t.throttling() != throttled0 {
                    break;
                }
            }
            executed = done;
            core_w_last = core_w_i;
        } else {
            executed = k;
            core_w_last = core_w0;
            let e_q = (core_w0 + uncore_w) * dt_s;
            self.energy.record(start + k * dt, e_q * k as f64);
            energy_ticks = (e_q / energy_unit).round() as u64 * k;
        }

        // Pass 3: apply the k-quantum closed form with the span actually
        // executed. Over j quanta the remaining-work factor telescopes to
        // (t_total - j·dt) / t_total, i.e. state shrinks by rho·j.
        let kf = executed as f64;
        let end = start + executed * dt;
        for (i, work) in self.cores.iter_mut().enumerate() {
            match work {
                CoreWork::Idle | CoreWork::Spin => {}
                CoreWork::Sleep { until } => {
                    if *until <= end {
                        self.outcome.woke.push(i);
                        *work = CoreWork::Idle;
                    }
                }
                CoreWork::Compute(ps) => {
                    let frac_k = self.scratch_rho[i] * kf;
                    ps.cycles_left -= ps.cycles_left * frac_k;
                    ps.misses_left -= ps.misses_left * frac_k;
                    ps.inst_left -= ps.inst_left * frac_k;
                }
            }
        }
        self.counters.instructions += inst_q * kf;
        self.counters.cycles += cycles_q * kf;
        self.counters.l3_misses += misses_q * kf;

        self.now = end;
        self.msr.hw_add_energy_ticks(energy_ticks);
        self.msr.advance_to(end);
        let ap = self.msr.hw_read(IA32_APERF);
        self.msr
            .hw_write(IA32_APERF, ap + aperf_q.round() as u64 * executed);
        let mp = self.msr.hw_read(IA32_MPERF);
        self.msr
            .hw_write(IA32_MPERF, mp + mperf_q.round() as u64 * executed);

        self.telemetry = QuantumTelemetry {
            package_w: core_w_last + uncore_w,
            core_w: core_w_last,
            uncore_w,
            effective_mhz: f_mhz * duty_frac,
            achieved_bw,
        };

        self.acc_compute_weight += compute_weight * kf;
        self.acc_busy_weight += busy_weight * kf;
        self.acc_powered += powered * kf;
        self.acc_bytes += bytes_q * kf;
        self.acc_quanta += executed;
    }

    /// Execute exactly one quantum, appending to `self.outcome`. This is
    /// the reference path: [`StepMode::Exact`] runs nothing else.
    fn step_quantum(&mut self) {
        let dt = self.cfg.quantum;
        let dt_s = secs(dt);
        let end = self.now + dt;

        // PROCHOT: an asserted thermal throttle overrides everything and
        // pins the lowest P-state until the hysteresis band clears.
        let mut effective = self.actuation;
        if let Some(t) = &self.thermal {
            if t.throttling() {
                effective.pstate = self.cfg.ladder.min_pstate();
            }
        }
        let leak_factor = self
            .thermal
            .as_ref()
            .map(|t| t.leak_factor())
            .unwrap_or(1.0);

        let duty = effective.duty;
        let duty_frac = duty.fraction();
        let f_mhz = self.tables.mhz(effective.pstate);
        let f_eff_hz = f_mhz * 1e6 * duty_frac;
        let fmax_hz = self.cfg.fmax_mhz() as f64 * 1e6;
        let uncore_level = effective.uncore;
        let dyn_full_w = self.tables.dynamic_full(effective.pstate);
        let static_at_f = self.tables.static_power(effective.pstate);

        // Memory pressure: workload-intrinsic weights of in-flight packets
        // still holding misses.
        let pressure: f64 = self
            .cores
            .iter()
            .map(|w| match w {
                CoreWork::Compute(p) if p.misses_left > 0.0 => p.mem_weight,
                _ => 0.0,
            })
            .sum();

        let mut core_w = 0.0;
        let mut bytes_moved = 0.0;
        let mut compute_weight = 0.0;
        let mut busy_weight = 0.0;
        let mut powered = 0.0;
        let mut aperf = 0.0;
        let mut mperf = 0.0;

        for (i, work) in self.cores.iter_mut().enumerate() {
            let (activity, static_scale, busy_frac) = match work {
                CoreWork::Idle => (0.0, 1.0, 0.0),
                CoreWork::Sleep { until } => {
                    self.counters.instructions += self.cfg.sleep_inst_per_sec * dt_s;
                    if *until <= end {
                        self.outcome.woke.push(i);
                        *work = CoreWork::Idle;
                    }
                    (0.0, self.cfg.cstate_static_frac, 0.0)
                }
                CoreWork::Spin => {
                    let cyc = f_eff_hz * dt_s;
                    self.counters.cycles += cyc;
                    self.counters.instructions += self.cfg.spin_ipc * cyc;
                    (1.0, 1.0, 1.0)
                }
                CoreWork::Compute(ps) => {
                    let t_comp = if f_eff_hz > 0.0 {
                        ps.cycles_left / f_eff_hz
                    } else {
                        f64::INFINITY
                    };
                    let service = self.cfg.uncore.service_rate(uncore_level, pressure, ps.mlp);
                    let t_mem = ps.misses_left * self.cfg.uncore.bytes_per_miss / service;
                    let t_total = t_comp + t_mem;

                    let (frac_of_packet, u_comp, u_mem) = if t_total <= dt_s {
                        // Packet completes within the quantum.
                        (1.0, t_comp / dt_s, t_mem / dt_s)
                    } else {
                        let rho = dt_s / t_total;
                        (rho, t_comp / t_total, t_mem / t_total)
                    };

                    let misses_serviced = ps.misses_left * frac_of_packet;
                    bytes_moved += misses_serviced * self.cfg.uncore.bytes_per_miss;
                    self.counters.instructions += ps.inst_left * frac_of_packet;
                    let busy = (u_comp + u_mem).min(1.0);
                    self.counters.cycles += f_eff_hz * busy * dt_s;
                    self.counters.l3_misses += misses_serviced;

                    if t_total <= dt_s {
                        self.outcome.completed.push(i);
                        *work = CoreWork::Idle;
                    } else {
                        ps.cycles_left -= ps.cycles_left * frac_of_packet;
                        ps.misses_left -= misses_serviced;
                        ps.inst_left -= ps.inst_left * frac_of_packet;
                    }

                    let activity = u_comp + u_mem * self.cfg.stall_dyn_frac;
                    (activity.min(1.0), 1.0, busy)
                }
            };

            core_w +=
                dyn_full_w * duty_frac * activity + static_at_f * (static_scale * leak_factor);
            compute_weight += activity;
            busy_weight += busy_frac;
            powered += static_scale.min(1.0_f64).ceil(); // 1 if powered, else C-state counts fractionally
            aperf += f_eff_hz * busy_frac * dt_s;
            mperf += fmax_hz * busy_frac * dt_s;
        }

        let achieved_bw = bytes_moved / dt_s;
        let uncore_w = self.cfg.uncore.power(uncore_level, achieved_bw);
        let pkg_w = core_w + uncore_w;

        if let Some(t) = &mut self.thermal {
            t.step(pkg_w, dt_s);
        }

        self.now = end;
        self.energy.record(self.now, pkg_w * dt_s);
        self.msr.hw_add_energy(pkg_w * dt_s);
        self.msr.advance_to(end);
        let ap = self.msr.hw_read(IA32_APERF);
        self.msr.hw_write(IA32_APERF, ap + aperf.round() as u64);
        let mp = self.msr.hw_read(IA32_MPERF);
        self.msr.hw_write(IA32_MPERF, mp + mperf.round() as u64);

        self.telemetry = QuantumTelemetry {
            package_w: pkg_w,
            core_w,
            uncore_w,
            effective_mhz: f_mhz * duty_frac,
            achieved_bw,
        };

        self.acc_compute_weight += compute_weight;
        self.acc_busy_weight += busy_weight;
        self.acc_powered += powered;
        self.acc_bytes += bytes_moved;
        self.acc_quanta += 1;
    }

    /// One RAPL control decision based on activity accumulated since the
    /// last one, combined with any user DVFS/DDCM requests from the MSRs.
    fn rapl_tick(&mut self) {
        let quanta = self.acc_quanta.max(1) as f64;
        let period_s = secs(self.cfg.quantum) * quanta;
        let snapshot = ActivitySnapshot {
            compute_weight: self.acc_compute_weight / quanta,
            busy_weight: self.acc_busy_weight / quanta,
            powered_cores: (self.acc_powered / quanta).max(1.0),
            mem_active: self.cores.len(),
            achieved_bw: self.acc_bytes / period_s,
        };
        self.acc_compute_weight = 0.0;
        self.acc_busy_weight = 0.0;
        self.acc_powered = 0.0;
        self.acc_bytes = 0.0;
        self.acc_quanta = 0;

        let window = PowerLimit::decode(self.msr.hw_read(MSR_PKG_POWER_LIMIT), self.msr.units())
            .window
            .max(self.cfg.rapl_period);
        let avg = self
            .energy
            .average_power(window.min(self.cfg.rapl_window * 4));
        let mut act = self
            .rapl
            .control(&self.cfg, &self.msr, &self.tables, &snapshot, avg);

        // Honour user P-state / duty requests: hardware takes the minimum of
        // the OS request and RAPL's constraint, like real `IA32_PERF_CTL`
        // under an active power limit.
        if let Some(req_mhz) = decode_perf_ctl(self.msr.hw_read(IA32_PERF_CTL)) {
            let req_p = self.cfg.ladder.pstate_at_or_below(req_mhz);
            act.pstate = act.pstate.min(req_p);
        }
        let user_duty = DutyCycle::decode_msr(self.msr.hw_read(IA32_CLOCK_MODULATION));
        act.duty = act.duty.min(user_duty);

        self.actuation = act;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msr::encode_perf_ctl;
    use crate::time::{MS, SEC};

    fn run_quanta(node: &mut Node, n: usize) -> Vec<StepOutcome> {
        (0..n).map(|_| node.step().clone()).collect()
    }

    fn compute_packet(ms_at_fmax: f64) -> WorkPacket {
        let cycles = 3.3e9 * ms_at_fmax / 1e3;
        WorkPacket {
            cycles,
            misses: 0.0,
            instructions: cycles * 2.0,
            mlp: 1.0,
            mem_weight: 1.0,
        }
    }

    #[test]
    fn packet_completes_in_expected_time_at_fmax() {
        let mut node = Node::new(NodeConfig::default());
        node.assign(0, CoreWork::Compute(compute_packet(10.0).into()));
        let mut done_at = None;
        for _ in 0..200 {
            let out = node.step();
            if out.completed.contains(&0) {
                done_at = Some(node.now());
                break;
            }
        }
        let t = done_at.expect("packet should complete") as f64 / MS as f64;
        assert!(
            (t - 10.0).abs() <= 0.2,
            "completed at {t} ms, wanted ~10 ms"
        );
    }

    #[test]
    fn sleep_wakes_on_time() {
        let mut node = Node::new(NodeConfig::default());
        let until = 5 * MS;
        node.assign(3, CoreWork::Sleep { until });
        let mut woke_at = None;
        for _ in 0..100 {
            let out = node.step();
            if out.woke.contains(&3) {
                woke_at = Some(node.now());
                break;
            }
        }
        let w = woke_at.expect("must wake");
        assert!(w >= until && w <= until + node.config().quantum);
    }

    #[test]
    fn uncapped_compute_power_in_calibration_band() {
        let mut node = Node::new(NodeConfig::default());
        for c in 0..24 {
            node.assign(c, CoreWork::Compute(compute_packet(5000.0).into()));
        }
        run_quanta(&mut node, 5000); // 0.5 s
        let p = node.average_power(100 * MS);
        assert!(
            (130.0..175.0).contains(&p),
            "uncapped compute-bound package power {p:.1} W outside band"
        );
        let t = node.telemetry();
        assert!(t.core_w > 5.0 * t.uncore_w, "core power should dominate");
    }

    #[test]
    fn rapl_cap_is_enforced_on_average() {
        let mut node = Node::new(NodeConfig::default());
        node.set_package_cap(Some(80.0)).unwrap();
        for c in 0..24 {
            node.assign(c, CoreWork::Compute(compute_packet(20_000.0).into()));
        }
        run_quanta(&mut node, 20_000); // 2 s
        let p = node.average_power(SEC);
        assert!(
            (p - 80.0).abs() / 80.0 < 0.10,
            "average power {p:.1} W should sit near the 80 W cap"
        );
    }

    #[test]
    fn stringent_cap_reduces_effective_frequency_below_fmin() {
        // DDCM region: effective frequency under a very low cap must fall
        // below the DVFS floor of 1200 MHz.
        let mut node = Node::new(NodeConfig::default());
        node.set_package_cap(Some(25.0)).unwrap();
        for c in 0..24 {
            node.assign(c, CoreWork::Compute(compute_packet(20_000.0).into()));
        }
        run_quanta(&mut node, 10_000);
        let t = node.telemetry();
        assert!(
            t.effective_mhz < 1200.0,
            "effective {:.0} MHz should be below fmin (duty cycling)",
            t.effective_mhz
        );
    }

    #[test]
    fn perf_ctl_request_limits_frequency_without_rapl() {
        let mut node = Node::new(NodeConfig::default());
        node.msr_mut()
            .write(IA32_PERF_CTL, encode_perf_ctl(1600))
            .unwrap();
        for c in 0..24 {
            node.assign(c, CoreWork::Compute(compute_packet(5000.0).into()));
        }
        run_quanta(&mut node, 100); // past the first RAPL tick
        let t = node.telemetry();
        assert!(
            (t.effective_mhz - 1600.0).abs() < 1.0,
            "requested 1600 MHz, effective {:.0}",
            t.effective_mhz
        );
    }

    #[test]
    fn memory_bound_work_is_insensitive_to_frequency() {
        // Two identical memory-heavy packets, one at fmax and one at fmin:
        // completion times should be close (beta small).
        let mem_packet = WorkPacket {
            cycles: 3.3e6, // 1 ms at fmax
            misses: 1.0e6, // dominates
            instructions: 1e7,
            mlp: 1.0,
            mem_weight: 1.0,
        };
        let complete_time = |mhz: Option<u32>| -> f64 {
            let mut node = Node::new(NodeConfig::default());
            if let Some(m) = mhz {
                node.msr_mut()
                    .write(IA32_PERF_CTL, encode_perf_ctl(m))
                    .unwrap();
                // Let the control tick latch the request.
                run_quanta(&mut node, 11);
            }
            node.assign(0, CoreWork::Compute(mem_packet.into()));
            let start = node.now();
            loop {
                let out = node.step();
                if out.completed.contains(&0) {
                    return (node.now() - start) as f64;
                }
            }
        };
        let t_fast = complete_time(None);
        let t_slow = complete_time(Some(1200));
        let ratio = t_slow / t_fast;
        assert!(
            ratio < 1.35,
            "memory-bound slowdown at fmin was {ratio:.2}x, expected < 1.35x"
        );
    }

    #[test]
    fn spin_inflates_instruction_counter() {
        let mut node = Node::new(NodeConfig::default());
        node.assign(0, CoreWork::Spin);
        run_quanta(&mut node, 10_000); // 1 s
        let inst = node.counters().instructions;
        // spin_ipc (2.1) * 3.3 GHz ~= 6.9e9 inst/s.
        assert!(
            (6.0e9..8.0e9).contains(&inst),
            "spin instructions {inst:.2e} off"
        );
    }

    #[test]
    fn thermal_model_heats_under_load_and_caps_cool_it() {
        let mk = |cap: Option<f64>| {
            let cfg = NodeConfig {
                thermal: Some(crate::thermal::ThermalConfig::default()),
                ..NodeConfig::default()
            };
            let mut node = Node::new(cfg);
            node.set_package_cap(cap).unwrap();
            for c in 0..24 {
                node.assign(c, CoreWork::Compute(compute_packet(60_000.0).into()));
            }
            run_quanta(&mut node, 150_000); // 15 s > tau
            node.temperature_c().expect("thermal enabled")
        };
        let hot = mk(None);
        let cool = mk(Some(80.0));
        assert!(hot > 75.0, "uncapped junction {hot:.1} C too cool");
        assert!(cool < hot - 10.0, "cap must create thermal headroom");
    }

    #[test]
    fn prochot_pins_the_lowest_pstate() {
        let cfg = NodeConfig {
            thermal: Some(crate::thermal::ThermalConfig {
                r_th_c_per_w: 0.45, // undersized heatsink: 150 W -> ~108 C
                ..crate::thermal::ThermalConfig::default()
            }),
            ..NodeConfig::default()
        };
        let mut node = Node::new(cfg);
        for c in 0..24 {
            node.assign(c, CoreWork::Compute(compute_packet(60_000.0).into()));
        }
        // PROCHOT oscillates (trip -> cool -> release -> reheat), so
        // observe the whole run rather than the final instant.
        let mut max_temp: f64 = 0.0;
        let mut throttled_quanta = 0u32;
        let mut min_mhz_while_hot = f64::INFINITY;
        for _ in 0..300_000 {
            node.step();
            max_temp = max_temp.max(node.temperature_c().unwrap());
            if node.thermal_throttling() {
                throttled_quanta += 1;
                min_mhz_while_hot = min_mhz_while_hot.min(node.telemetry().effective_mhz);
            }
        }
        assert!(
            max_temp > 95.0,
            "undersized sink must reach PROCHOT: {max_temp:.1} C"
        );
        assert!(throttled_quanta > 0, "throttle must assert at least once");
        assert!(
            (min_mhz_while_hot - 1200.0).abs() < 1.0,
            "PROCHOT pins fmin, saw {min_mhz_while_hot:.0} MHz"
        );
    }

    #[test]
    fn thermal_disabled_reports_no_temperature() {
        let node = Node::new(NodeConfig::default());
        assert_eq!(node.temperature_c(), None);
        assert!(!node.thermal_throttling());
    }

    #[test]
    fn aperf_mperf_ratio_tracks_effective_frequency() {
        let mut node = Node::new(NodeConfig::default());
        node.set_package_cap(Some(70.0)).unwrap();
        for c in 0..24 {
            node.assign(c, CoreWork::Compute(compute_packet(20_000.0).into()));
        }
        run_quanta(&mut node, 10_000);
        let ap = node.msr().read(IA32_APERF).unwrap() as f64;
        let mp = node.msr().read(IA32_MPERF).unwrap() as f64;
        let measured_mhz = ap / mp * 3300.0;
        assert!(
            measured_mhz < 3300.0 && measured_mhz > 500.0,
            "APERF/MPERF-derived frequency {measured_mhz:.0} MHz implausible"
        );
    }
}
