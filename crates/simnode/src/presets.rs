//! Named node configurations.
//!
//! The default [`crate::config::NodeConfig`] is calibrated to
//! the paper's testbed; these presets express the *node variability* the
//! paper's motivation leans on (Rountree et al.: "performance variability
//! between compute nodes becomes a highlighted issue in a power-limited
//! HPC environment") as reusable configurations for job-level experiments.

use crate::config::NodeConfig;
use crate::thermal::ThermalConfig;

/// The calibrated reference node (paper testbed: 24 cores, 1.2–3.3 GHz).
pub fn reference() -> NodeConfig {
    NodeConfig::default()
}

/// A leaky part from the same SKU: +`pct`% switched capacitance, so it
/// draws more power at every operating point and falls behind under a
/// shared cap — the variability the job manager compensates for.
///
/// # Panics
/// Panics on a negative percentage.
pub fn leaky(pct: f64) -> NodeConfig {
    assert!(pct >= 0.0, "leak percentage must be non-negative");
    let mut cfg = NodeConfig::default();
    cfg.core_power.c_dyn *= 1.0 + pct / 100.0;
    cfg
}

/// A lower-binned part: the same silicon with its top frequencies fused
/// off (`fmax_mhz` < 3300).
///
/// # Panics
/// Panics unless `1300 <= fmax_mhz <= 3300`.
pub fn low_bin(fmax_mhz: u32) -> NodeConfig {
    assert!(
        (1300..=3300).contains(&fmax_mhz),
        "fmax must be within the SKU's ladder"
    );
    NodeConfig {
        ladder: crate::freq::FrequencyLadder::range_mhz(1200, fmax_mhz, 100),
        ..NodeConfig::default()
    }
}

/// The reference node with the thermal model enabled (default RC
/// parameters).
pub fn with_thermal() -> NodeConfig {
    NodeConfig {
        thermal: Some(ThermalConfig::default()),
        ..NodeConfig::default()
    }
}

/// A thermally constrained node: the thermal model with an undersized
/// heatsink, so sustained full power trips PROCHOT.
pub fn poor_cooling() -> NodeConfig {
    NodeConfig {
        thermal: Some(ThermalConfig {
            r_th_c_per_w: 0.45,
            ..ThermalConfig::default()
        }),
        ..NodeConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddcm::DutyCycle;

    #[test]
    fn all_presets_validate() {
        for cfg in [
            reference(),
            leaky(18.0),
            low_bin(2600),
            with_thermal(),
            poor_cooling(),
        ] {
            cfg.validate();
        }
    }

    #[test]
    fn leaky_draws_more_at_every_operating_point() {
        let a = reference();
        let b = leaky(18.0);
        for f in [1200.0, 2200.0, 3300.0] {
            let pa = a.core_power.core_power(f, DutyCycle::FULL, 1.0, 1.0);
            let pb = b.core_power.core_power(f, DutyCycle::FULL, 1.0, 1.0);
            assert!(pb > pa * 1.05, "{f} MHz: {pb:.2} vs {pa:.2}");
        }
    }

    #[test]
    fn low_bin_caps_the_ladder() {
        let cfg = low_bin(2600);
        assert_eq!(cfg.fmax_mhz(), 2600);
        assert_eq!(cfg.ladder.fmin_mhz(), 1200);
    }

    #[test]
    #[should_panic(expected = "within the SKU")]
    fn over_binning_rejected() {
        low_bin(3600);
    }
}
