//! Periodic control agents.
//!
//! Control software that runs *beside* the application — the paper's
//! `power-policy` daemon, progress monitors, tracers — is modelled as a
//! [`SimAgent`]: a callback invoked at a fixed period of simulated time with
//! mutable access to the node. The SPMD driver (in the `proxyapps` crate)
//! owns the agents and invokes them on period boundaries.

use crate::node::Node;
use crate::time::Nanos;

/// A periodic agent co-scheduled with the simulation.
pub trait SimAgent: Send {
    /// Invocation period in simulated nanoseconds. Must be a positive
    /// multiple of the simulation quantum for exact scheduling.
    fn period(&self) -> Nanos;

    /// Called once per period with the current simulated time.
    fn on_tick(&mut self, node: &mut Node, now: Nanos);

    /// Optional offset of the first tick (defaults to one full period).
    fn phase(&self) -> Nanos {
        self.period()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;
    use crate::time::SEC;

    struct CountingAgent {
        period: Nanos,
        ticks: Vec<Nanos>,
    }

    impl SimAgent for CountingAgent {
        fn period(&self) -> Nanos {
            self.period
        }
        fn on_tick(&mut self, _node: &mut Node, now: Nanos) {
            self.ticks.push(now);
        }
    }

    #[test]
    fn agent_trait_is_object_safe_and_invocable() {
        let mut node = Node::new(NodeConfig::default());
        let mut agent: Box<dyn SimAgent> = Box::new(CountingAgent {
            period: SEC,
            ticks: vec![],
        });
        agent.on_tick(&mut node, SEC);
        assert_eq!(agent.period(), SEC);
        assert_eq!(agent.phase(), SEC);
    }
}
