//! Deterministic, seeded fault injection at the MSR boundary.
//!
//! Everything the control plane (the NRM daemon, `libmsr`-style tooling)
//! knows about the hardware flows through [`MsrDevice::read`] and
//! [`MsrDevice::write`](crate::msr::MsrDevice::write). Injecting faults at
//! exactly that boundary lets us reproduce the field failures a
//! power-capping daemon actually sees — `msr-safe` EIO returns, energy
//! counters that freeze or wrap mid-run, cap writes that latch late, and
//! whole telemetry blackouts — without touching the silicon model. The
//! simulated hardware keeps evolving truthfully underneath; only the
//! *user-space view* degrades.
//!
//! Faults are declared up front in a [`FaultPlan`]: a seed plus a list of
//! [`FaultSpec`]s, each a [`FaultKind`] active during a half-open
//! [`FaultWindow`]. Probabilistic kinds draw from a SplitMix64 stream
//! seeded from the plan, so a given plan and access sequence replays
//! bit-identically. A node with no plan installed (the default) takes none
//! of these code paths.
//!
//! [`MsrDevice::read`]: crate::msr::MsrDevice::read

use std::cell::Cell;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::time::Nanos;

/// Half-open activity window `[start, end)` in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// First instant the fault is active.
    pub start: Nanos,
    /// First instant the fault is no longer active.
    pub end: Nanos,
}

impl FaultWindow {
    /// Window covering the whole run.
    pub const ALWAYS: FaultWindow = FaultWindow {
        start: 0,
        end: Nanos::MAX,
    };

    /// A window `[start, end)`.
    ///
    /// # Panics
    /// Panics if `end <= start`.
    pub fn new(start: Nanos, end: Nanos) -> Self {
        assert!(end > start, "fault window must have positive length");
        Self { start, end }
    }

    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: Nanos) -> bool {
        self.start <= now && now < self.end
    }
}

/// What kind of fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// User-space reads of `addr` fail with probability `prob` per access
    /// (`1.0` = persistent failure), as an EIO-style [`MsrError::Io`].
    ///
    /// [`MsrError::Io`]: crate::msr::MsrError::Io
    ReadError {
        /// Target register.
        addr: u32,
        /// Per-access failure probability in `[0, 1]`.
        prob: f64,
    },
    /// User-space writes to `addr` fail with probability `prob` per access.
    WriteError {
        /// Target register.
        addr: u32,
        /// Per-access failure probability in `[0, 1]`.
        prob: f64,
    },
    /// `MSR_PKG_ENERGY_STATUS` reads return the value captured at fault
    /// onset for the duration of the window; the hardware counter keeps
    /// accumulating underneath.
    StuckEnergyCounter,
    /// At fault onset the energy counter jumps to `to` (hardware-side),
    /// typically a value just below `0xFFFF_FFFF` to force an early 32-bit
    /// wrap through any monitoring software.
    EnergyCounterJump {
        /// Raw counter value to jump to.
        to: u64,
    },
    /// Writes to `MSR_PKG_POWER_LIMIT` during the window report success but
    /// latch only after `delay` has elapsed. A later write replaces a
    /// pending one (latest wins), as on real hardware.
    DelayedCapLatch {
        /// Latch delay in nanoseconds.
        delay: Nanos,
    },
    /// All user-space reads fail for the duration of the window: a
    /// telemetry blackout (hwmon driver wedged, msr-safe module reloading).
    TelemetryDropout,
}

/// One fault: a kind active during a window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// When the fault is active.
    pub window: FaultWindow,
    /// What the fault does.
    pub kind: FaultKind,
}

/// A complete, deterministic fault schedule for one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Seed for the probabilistic draws.
    pub seed: u64,
    /// The faults to inject.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan drawing from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            specs: Vec::new(),
        }
    }

    /// Add an arbitrary spec.
    pub fn with(mut self, window: FaultWindow, kind: FaultKind) -> Self {
        self.specs.push(FaultSpec { window, kind });
        self
    }

    /// Reads of `addr` fail with probability `prob` during `window`.
    pub fn read_error(self, addr: u32, prob: f64, window: FaultWindow) -> Self {
        self.with(window, FaultKind::ReadError { addr, prob })
    }

    /// Writes to `addr` fail with probability `prob` during `window`.
    pub fn write_error(self, addr: u32, prob: f64, window: FaultWindow) -> Self {
        self.with(window, FaultKind::WriteError { addr, prob })
    }

    /// The energy counter appears frozen during `window`.
    pub fn stuck_energy(self, window: FaultWindow) -> Self {
        self.with(window, FaultKind::StuckEnergyCounter)
    }

    /// The energy counter jumps to `to` at the start of `window`, forcing
    /// an early wrap.
    pub fn energy_jump(self, to: u64, window: FaultWindow) -> Self {
        self.with(window, FaultKind::EnergyCounterJump { to })
    }

    /// Cap writes latch `delay` late during `window`.
    pub fn delayed_cap_latch(self, delay: Nanos, window: FaultWindow) -> Self {
        self.with(window, FaultKind::DelayedCapLatch { delay })
    }

    /// All telemetry reads fail during `window`.
    pub fn telemetry_dropout(self, window: FaultWindow) -> Self {
        self.with(window, FaultKind::TelemetryDropout)
    }

    /// Validate probabilities and windows.
    ///
    /// # Panics
    /// Panics on probabilities outside `[0, 1]` or empty windows.
    pub fn validate(&self) {
        for s in &self.specs {
            assert!(
                s.window.end > s.window.start,
                "fault window must have positive length"
            );
            match s.kind {
                FaultKind::ReadError { prob, .. } | FaultKind::WriteError { prob, .. } => {
                    assert!(
                        (0.0..=1.0).contains(&prob),
                        "fault probability must be in [0, 1]"
                    );
                }
                FaultKind::EnergyCounterJump { to } => {
                    assert!(to <= 0xFFFF_FFFF, "energy counter is 32-bit");
                }
                _ => {}
            }
        }
    }
}

/// Injection counters, so experiments can report what actually fired.
/// Read-path counters are interior-mutable because [`MsrDevice::read`]
/// takes `&self`.
///
/// [`MsrDevice::read`]: crate::msr::MsrDevice::read
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    reads_failed: Cell<u64>,
    reads_stuck: Cell<u64>,
    writes_failed: Cell<u64>,
    writes_delayed: Cell<u64>,
}

impl FaultStats {
    /// User-space reads that returned an injected error.
    pub fn reads_failed(&self) -> u64 {
        self.reads_failed.get()
    }

    /// Energy-counter reads that returned the frozen onset value.
    pub fn reads_stuck(&self) -> u64 {
        self.reads_stuck.get()
    }

    /// User-space writes that returned an injected error.
    pub fn writes_failed(&self) -> u64 {
        self.writes_failed.get()
    }

    /// Cap writes whose latch was deferred.
    pub fn writes_delayed(&self) -> u64 {
        self.writes_delayed.get()
    }
}

/// Live injection state attached to an [`MsrDevice`].
///
/// [`MsrDevice`]: crate::msr::MsrDevice
#[derive(Debug, Clone)]
pub struct FaultLayer {
    /// Shared with the [`NodeConfig`](crate::config::NodeConfig) (and, in a
    /// cluster, with every sibling member using the same plan) — the layer
    /// only ever reads it.
    plan: Arc<FaultPlan>,
    /// SplitMix64 state; `Cell` because reads are `&self`.
    rng: Cell<u64>,
    /// Frozen energy reading while a stuck window is active.
    stuck_at: Option<u64>,
    /// Per-spec flag: has this (onset-triggered) spec already fired?
    onset_done: Vec<bool>,
    /// Deferred `MSR_PKG_POWER_LIMIT` write: (raw value, latch time).
    pending_cap: Option<(u64, Nanos)>,
    stats: FaultStats,
}

impl FaultLayer {
    /// Build the layer for a validated plan. Accepts a bare plan or an
    /// already-shared `Arc<FaultPlan>` (no deep copy in the latter case).
    pub fn new(plan: impl Into<Arc<FaultPlan>>) -> Self {
        let plan = plan.into();
        plan.validate();
        let n = plan.specs.len();
        Self {
            // SplitMix64 handles seed 0 fine, but offset by a golden-ratio
            // increment so plan seeds 0 and 1 diverge immediately.
            rng: Cell::new(plan.seed.wrapping_add(0x9E37_79B9_7F4A_7C15)),
            plan,
            stuck_at: None,
            onset_done: vec![false; n],
            pending_cap: None,
            stats: FaultStats::default(),
        }
    }

    /// Injection counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The plan this layer executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// One SplitMix64 draw mapped to `[0, 1)`.
    fn draw(&self) -> f64 {
        let mut z = self.rng.get().wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.rng.set(z);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn hit(&self, prob: f64) -> bool {
        prob >= 1.0 || (prob > 0.0 && self.draw() < prob)
    }

    /// Should this user-space read fail? (`&self`: called from
    /// `MsrDevice::read`.)
    pub(crate) fn read_fails(&self, now: Nanos, addr: u32) -> bool {
        for s in &self.plan.specs {
            if !s.window.contains(now) {
                continue;
            }
            let failed = match s.kind {
                FaultKind::TelemetryDropout => true,
                FaultKind::ReadError { addr: a, prob } if a == addr => self.hit(prob),
                _ => false,
            };
            if failed {
                self.stats
                    .reads_failed
                    .set(self.stats.reads_failed.get() + 1);
                return true;
            }
        }
        false
    }

    /// The frozen energy value to serve instead of the live counter, if a
    /// stuck window is active.
    pub(crate) fn stuck_energy(&self, now: Nanos) -> Option<u64> {
        let active = self
            .plan
            .specs
            .iter()
            .any(|s| matches!(s.kind, FaultKind::StuckEnergyCounter) && s.window.contains(now));
        if !active {
            return None;
        }
        self.stuck_at.inspect(|_| {
            self.stats.reads_stuck.set(self.stats.reads_stuck.get() + 1);
        })
    }

    /// Should this user-space write fail?
    pub(crate) fn write_fails(&mut self, now: Nanos, addr: u32) -> bool {
        for s in &self.plan.specs {
            if !s.window.contains(now) {
                continue;
            }
            if let FaultKind::WriteError { addr: a, prob } = s.kind {
                if a == addr && self.hit(prob) {
                    self.stats
                        .writes_failed
                        .set(self.stats.writes_failed.get() + 1);
                    return true;
                }
            }
        }
        false
    }

    /// If a delayed-latch fault is active, defer this cap write and return
    /// `true` (the caller reports success without touching the register).
    pub(crate) fn defer_cap_write(&mut self, now: Nanos, raw: u64) -> bool {
        for s in &self.plan.specs {
            if !s.window.contains(now) {
                continue;
            }
            if let FaultKind::DelayedCapLatch { delay } = s.kind {
                self.pending_cap = Some((raw, now + delay));
                self.stats
                    .writes_delayed
                    .set(self.stats.writes_delayed.get() + 1);
                return true;
            }
        }
        false
    }

    /// Advance to `now`: fire onset effects and return any deferred cap
    /// write whose latch time has arrived. `energy_now` is the live counter
    /// value (for stuck-onset capture); the return values are
    /// `(jump_to, latched_cap_raw)`.
    pub(crate) fn advance_to(&mut self, now: Nanos, energy_now: u64) -> (Option<u64>, Option<u64>) {
        let mut jump_to = None;
        for (i, s) in self.plan.specs.iter().enumerate() {
            if !s.window.contains(now) {
                // Reset stuck capture once its window closes so a later
                // window re-captures.
                if matches!(s.kind, FaultKind::StuckEnergyCounter) && now >= s.window.end {
                    self.stuck_at = None;
                    self.onset_done[i] = false;
                }
                continue;
            }
            match s.kind {
                FaultKind::StuckEnergyCounter if !self.onset_done[i] => {
                    self.stuck_at = Some(energy_now);
                    self.onset_done[i] = true;
                }
                FaultKind::EnergyCounterJump { to } if !self.onset_done[i] => {
                    jump_to = Some(to);
                    self.onset_done[i] = true;
                }
                _ => {}
            }
        }
        let latched = match self.pending_cap {
            Some((raw, at)) if at <= now => {
                self.pending_cap = None;
                Some(raw)
            }
            _ => None,
        };
        (jump_to, latched)
    }

    /// Earliest instant strictly after `now` at which [`advance_to`] could
    /// change state: a fault window opening or closing, or a deferred cap
    /// write latching. The macro-step fast path must not skip past such a
    /// boundary — it ends exactly on the first quantum boundary at or after
    /// it, which is the same quantum on which the exact path fires the
    /// event.
    ///
    /// [`advance_to`]: FaultLayer::advance_to
    pub(crate) fn next_boundary_after(&self, now: Nanos) -> Option<Nanos> {
        let mut next: Option<Nanos> = None;
        let mut consider = |t: Nanos| {
            if t > now && next.is_none_or(|n| t < n) {
                next = Some(t);
            }
        };
        for s in &self.plan.specs {
            consider(s.window.start);
            consider(s.window.end);
        }
        if let Some((_, at)) = self.pending_cap {
            consider(at);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_containment_is_half_open() {
        let w = FaultWindow::new(10, 20);
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_window_rejected() {
        FaultWindow::new(5, 5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_rejected() {
        FaultPlan::new(1)
            .read_error(0x611, 1.5, FaultWindow::ALWAYS)
            .validate();
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let layer = |seed| FaultLayer::new(FaultPlan::new(seed));
        let a = layer(7);
        let b = layer(7);
        let c = layer(8);
        let sa: Vec<f64> = (0..8).map(|_| a.draw()).collect();
        let sb: Vec<f64> = (0..8).map(|_| b.draw()).collect();
        let sc: Vec<f64> = (0..8).map(|_| c.draw()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
        assert!(sa.iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn persistent_read_error_always_fires_and_counts() {
        let fl = FaultLayer::new(FaultPlan::new(0).read_error(0x611, 1.0, FaultWindow::new(5, 10)));
        assert!(!fl.read_fails(4, 0x611), "before the window");
        assert!(fl.read_fails(5, 0x611));
        assert!(!fl.read_fails(5, 0x610), "other register untouched");
        assert!(!fl.read_fails(10, 0x611), "after the window");
        assert_eq!(fl.stats().reads_failed(), 1);
    }

    #[test]
    fn transient_error_rate_tracks_probability() {
        let mut fl =
            FaultLayer::new(FaultPlan::new(42).write_error(0x610, 0.3, FaultWindow::ALWAYS));
        let n = 2000;
        let failures = (0..n).filter(|_| fl.write_fails(1, 0x610)).count();
        let rate = failures as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed rate {rate}");
        assert_eq!(fl.stats().writes_failed(), failures as u64);
    }

    #[test]
    fn dropout_fails_every_register() {
        let fl = FaultLayer::new(FaultPlan::new(0).telemetry_dropout(FaultWindow::new(0, 100)));
        assert!(fl.read_fails(50, 0x611));
        assert!(fl.read_fails(50, 0x610));
        assert!(!fl.read_fails(100, 0x611));
    }

    #[test]
    fn stuck_energy_captures_at_onset_and_clears() {
        let mut fl = FaultLayer::new(FaultPlan::new(0).stuck_energy(FaultWindow::new(10, 20)));
        assert_eq!(fl.advance_to(5, 111), (None, None));
        assert_eq!(fl.stuck_energy(5), None);
        fl.advance_to(10, 222);
        assert_eq!(fl.stuck_energy(10), Some(222));
        fl.advance_to(15, 333);
        assert_eq!(fl.stuck_energy(15), Some(222), "stays frozen at onset");
        fl.advance_to(20, 444);
        assert_eq!(fl.stuck_energy(20), None, "window over");
    }

    #[test]
    fn deferred_cap_latches_when_due() {
        let mut fl =
            FaultLayer::new(FaultPlan::new(0).delayed_cap_latch(30, FaultWindow::new(0, 100)));
        assert!(fl.defer_cap_write(10, 0xAB));
        assert_eq!(fl.advance_to(20, 0), (None, None), "not due yet");
        assert_eq!(fl.advance_to(40, 0), (None, Some(0xAB)));
        assert_eq!(fl.advance_to(50, 0), (None, None), "latched once");
        assert_eq!(fl.stats().writes_delayed(), 1);
    }

    #[test]
    fn latest_deferred_write_wins() {
        let mut fl =
            FaultLayer::new(FaultPlan::new(0).delayed_cap_latch(30, FaultWindow::new(0, 100)));
        assert!(fl.defer_cap_write(10, 0xAA));
        assert!(fl.defer_cap_write(15, 0xBB));
        assert_eq!(fl.advance_to(60, 0), (None, Some(0xBB)));
    }

    #[test]
    fn energy_jump_fires_once_at_onset() {
        let mut fl =
            FaultLayer::new(FaultPlan::new(0).energy_jump(0xFFFF_FF00, FaultWindow::new(10, 20)));
        assert_eq!(fl.advance_to(9, 0), (None, None));
        assert_eq!(fl.advance_to(12, 0), (Some(0xFFFF_FF00), None));
        assert_eq!(fl.advance_to(15, 0), (None, None), "onset already fired");
    }
}
