//! Differential tests: the event-horizon macro-step fast path versus the
//! exact fixed-quantum reference.
//!
//! Every test here drives two nodes built from the *same* configuration —
//! one in [`StepMode::Exact`], one in [`StepMode::EventHorizon`] — through
//! identical `step_until` segments, assigning identical fresh work whenever
//! a core completes or wakes. The contract under test is the one stated on
//! [`StepMode`]:
//!
//! - event times (`now` at every non-empty outcome) and the outcomes
//!   themselves are **equal**;
//! - counters, energy and remaining per-core progress agree to ≤ 1e-9
//!   relative (the only permitted difference is floating-point summation
//!   order, and only when a macro-step actually fires);
//! - the integer MSR state (`IA32_APERF`, `IA32_MPERF`,
//!   `MSR_PKG_ENERGY_STATUS`) is **bit-identical** whenever the thermal
//!   model is off, and *everything* is bit-identical when no macro-step can
//!   fire (RAPL period == quantum caps every horizon at one quantum).

use std::sync::Arc;

use proptest::prelude::*;

use crate::config::{NodeConfig, StepMode};
use crate::faults::{FaultPlan, FaultWindow};
use crate::msr::{IA32_APERF, IA32_MPERF, MSR_PKG_ENERGY_STATUS};
use crate::node::{CoreWork, Node, WorkPacket};
use crate::thermal::ThermalConfig;
use crate::time::{Nanos, MS, US};

/// SplitMix64 — a tiny deterministic stream for workload generation, kept
/// separate from proptest's own RNG so a case's work sequence depends only
/// on its `seed` input.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
}

/// Draw a random work item: mostly compute packets across the whole
/// compute-bound/memory-bound spectrum, with occasional sleeps, spins and
/// idle stretches so every `CoreWork` arm of the step paths is exercised.
fn random_work(rng: &mut Mix, now: Nanos) -> CoreWork {
    match rng.next() % 8 {
        0 => CoreWork::Idle,
        1 => CoreWork::Spin,
        2 => CoreWork::Sleep {
            until: now + rng.range(50_000.0, 5_000_000.0) as Nanos,
        },
        _ => {
            let cycles = rng.range(2e5, 4e7);
            // Miss rate spans compute-bound (~0) to STREAM-like (heavy).
            let misses = cycles * rng.range(0.0, 2e-3);
            let instructions = cycles * rng.range(0.4, 2.4);
            CoreWork::Compute(
                WorkPacket {
                    cycles,
                    misses,
                    instructions,
                    mlp: rng.range(0.15, 1.0),
                    mem_weight: rng.range(0.0, 1.0),
                }
                .into(),
            )
        }
    }
}

fn assert_rel_close(a: f64, b: f64, what: &str) {
    let scale = a.abs().max(b.abs()).max(1.0);
    assert!(
        (a - b).abs() <= 1e-9 * scale,
        "{what} diverged: exact={a} horizon={b}"
    );
}

/// Drive `exact` and `fast` in lockstep for `total` sim-time, re-assigning
/// identical fresh work on every completion/wake, changing the package cap
/// at every segment boundary from `caps`, and asserting the equivalence
/// contract at every event and every boundary.
fn run_lockstep(
    mut exact: Node,
    mut fast: Node,
    seed: u64,
    total: Nanos,
    segment: Nanos,
    caps: &[Option<f64>],
    bit_exact_msrs: bool,
) {
    let cores = exact.cores();
    let mut rng = Mix(seed);
    for c in 0..cores {
        let w = random_work(&mut rng, 0);
        exact.assign(c, w);
        fast.assign(c, w);
    }
    let mut cap_idx = 0usize;
    while fast.now() < total {
        if !caps.is_empty() {
            let cap = caps[cap_idx % caps.len()];
            cap_idx += 1;
            // Under write-fault plans the set may fail; it must fail (or
            // succeed) identically in both modes.
            let re = exact.set_package_cap(cap);
            let rf = fast.set_package_cap(cap);
            assert_eq!(re.is_ok(), rf.is_ok(), "cap write outcome diverged");
        }
        let deadline = (fast.now() + segment).min(total);
        loop {
            let oe = exact.step_until(deadline).clone();
            let of = fast.step_until(deadline).clone();
            assert_eq!(oe, of, "step outcomes diverged at t={}", exact.now());
            assert_eq!(exact.now(), fast.now(), "event times diverged");
            for &c in oe.completed.iter().chain(oe.woke.iter()) {
                let w = random_work(&mut rng, fast.now());
                exact.assign(c, w);
                fast.assign(c, w);
            }
            if oe.is_empty() {
                break;
            }
        }
        // Deadlines need not be quantum-aligned; both modes must land on
        // the same first quantum boundary at or past the deadline.
        assert!(exact.now() >= deadline);
        assert_eq!(exact.now(), fast.now());
        compare_nodes(&exact, &fast, bit_exact_msrs);
    }
}

/// Assert the two nodes agree: counters/energy/progress ≤ 1e-9 relative,
/// and (optionally) integer MSR state bit-for-bit.
fn compare_nodes(exact: &Node, fast: &Node, bit_exact_msrs: bool) {
    let ce = exact.counters();
    let cf = fast.counters();
    assert_rel_close(ce.instructions, cf.instructions, "instructions");
    assert_rel_close(ce.cycles, cf.cycles, "cycles");
    assert_rel_close(ce.l3_misses, cf.l3_misses, "l3_misses");
    assert_rel_close(exact.total_energy(), fast.total_energy(), "energy");
    for c in 0..exact.cores() {
        match (exact.work(c), fast.work(c)) {
            (CoreWork::Compute(a), CoreWork::Compute(b)) => {
                assert_rel_close(a.cycles_left, b.cycles_left, "cycles_left");
                assert_rel_close(a.misses_left, b.misses_left, "misses_left");
                assert_rel_close(a.inst_left, b.inst_left, "inst_left");
            }
            (a, b) => assert_eq!(a, b, "core {c} work state diverged"),
        }
    }
    if bit_exact_msrs {
        for addr in [IA32_APERF, IA32_MPERF, MSR_PKG_ENERGY_STATUS] {
            assert_eq!(
                exact.msr().hw_read(addr),
                fast.msr().hw_read(addr),
                "MSR {addr:#x} diverged bit-wise"
            );
        }
    }
}

/// Build the Exact/EventHorizon node pair from one base configuration.
fn node_pair(mut cfg: NodeConfig) -> (Node, Node) {
    cfg.step_mode = StepMode::Exact;
    let exact = Node::new(cfg.clone());
    cfg.step_mode = StepMode::EventHorizon;
    let fast = Node::new(cfg);
    (exact, fast)
}

fn base_cfg(cores: usize, quantum: Nanos, rapl_period: Nanos) -> NodeConfig {
    NodeConfig {
        cores,
        quantum,
        rapl_period,
        rapl_window: rapl_period * 8,
        ..NodeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Tentpole acceptance: random workloads, random quanta, random
    /// (possibly quantum-misaligned) RAPL periods, random caps. Integer
    /// MSR state must stay bit-identical (no thermal model here).
    #[test]
    fn step_until_matches_exact_on_random_workloads(
        seed in any::<u64>(),
        cores in 1usize..8,
        quantum_us in 20u64..200,
        rapl_mult in 1u64..24,
        rapl_skew_us in 0u64..100,
        cap in prop_oneof![Just(None), (45.0f64..140.0).prop_map(Some)],
    ) {
        let quantum = quantum_us * US;
        let rapl_period = quantum * rapl_mult + rapl_skew_us.min(quantum_us - 1) * US;
        let (exact, fast) = node_pair(base_cfg(cores, quantum, rapl_period));
        run_lockstep(exact, fast, seed, 40 * MS, 7 * MS, &[cap], true);
    }

    /// Same contract under active fault plans: stuck/jumping energy
    /// counters, delayed cap latching, probabilistic read/write errors and
    /// telemetry dropouts, with cap writes landing inside the windows.
    #[test]
    fn step_until_matches_exact_under_fault_plans(
        seed in any::<u64>(),
        plan_seed in any::<u64>(),
        rapl_mult in 1u64..16,
        jump_to in any::<u32>(),
        latch_delay_us in 1u64..2_000,
    ) {
        let quantum = 100 * US;
        let plan = FaultPlan::new(plan_seed)
            .stuck_energy(FaultWindow::new(4 * MS, 9 * MS))
            .energy_jump(u64::from(jump_to), FaultWindow::new(12 * MS, 14 * MS))
            .delayed_cap_latch(latch_delay_us * US, FaultWindow::new(0, 20 * MS))
            .read_error(MSR_PKG_ENERGY_STATUS, 0.3, FaultWindow::new(6 * MS, 16 * MS))
            .write_error(crate::msr::MSR_PKG_POWER_LIMIT, 0.3, FaultWindow::new(0, 10 * MS))
            .telemetry_dropout(FaultWindow::new(17 * MS, 19 * MS));
        let mut cfg = base_cfg(4, quantum, quantum * rapl_mult);
        cfg.faults = Some(Arc::new(plan));
        let (exact, fast) = node_pair(cfg);
        run_lockstep(exact, fast, seed, 24 * MS, 3 * MS, &[Some(90.0), Some(60.0), None], true);
    }

    /// With the thermal model on, summation order inside a macro-step is
    /// not bit-preserved (dynamic and leakage sums are kept separate), so
    /// the contract relaxes to ≤ 1e-9 relative — but event times, PROCHOT
    /// flips and throttle truncation must still line up exactly.
    #[test]
    fn step_until_matches_exact_with_thermal_throttling(
        seed in any::<u64>(),
        throttle_c in 55.0f64..80.0,
        tau_s in 0.005f64..0.05,
    ) {
        let mut cfg = base_cfg(24, 100 * US, MS);
        cfg.thermal = Some(ThermalConfig {
            throttle_c,
            tau_s,
            ..ThermalConfig::default()
        });
        let (mut exact, mut fast) = node_pair(cfg);
        run_lockstep_thermal_check(&mut exact, &mut fast, seed);
    }
}

/// Thermal lockstep: besides the relaxed numeric contract, throttle state
/// must agree at every event and boundary (a PROCHOT flip one quantum off
/// would show up here before it shows up in the counters).
fn run_lockstep_thermal_check(exact: &mut Node, fast: &mut Node, seed: u64) {
    let cores = exact.cores();
    let mut rng = Mix(seed);
    for c in 0..cores {
        // Bias to compute so the package actually heats up.
        let w = match random_work(&mut rng, 0) {
            CoreWork::Idle => CoreWork::Spin,
            other => other,
        };
        exact.assign(c, w);
        fast.assign(c, w);
    }
    let total = 60 * MS;
    while fast.now() < total {
        let deadline = (fast.now() + 5 * MS).min(total);
        loop {
            let oe = exact.step_until(deadline).clone();
            let of = fast.step_until(deadline).clone();
            assert_eq!(oe, of, "thermal outcomes diverged at t={}", exact.now());
            assert_eq!(exact.now(), fast.now());
            assert_eq!(
                exact.thermal_throttling(),
                fast.thermal_throttling(),
                "PROCHOT state diverged at t={}",
                exact.now()
            );
            let (te, tf) = (
                exact.temperature_c().unwrap(),
                fast.temperature_c().unwrap(),
            );
            assert_rel_close(te, tf, "temperature");
            for &c in oe.completed.iter().chain(oe.woke.iter()) {
                let w = random_work(&mut rng, fast.now());
                exact.assign(c, w);
                fast.assign(c, w);
            }
            if oe.is_empty() {
                break;
            }
        }
        compare_nodes(exact, fast, false);
    }
}

/// When `rapl_period == quantum`, the RAPL horizon caps every macro-step at
/// a single quantum, so the fast path never fires and `EventHorizon` must
/// be **bit-identical** to `Exact` — registers, counters, energy, work
/// state, everything.
#[test]
fn bit_identical_when_no_macro_step_fires() {
    let quantum = 100 * US;
    let cfg = base_cfg(6, quantum, quantum);
    let (mut exact, mut fast) = node_pair(cfg);
    let mut rng = Mix(0xD1FF_7E57);
    for c in 0..6 {
        let w = random_work(&mut rng, 0);
        exact.assign(c, w);
        fast.assign(c, w);
    }
    exact.set_package_cap(Some(70.0)).unwrap();
    fast.set_package_cap(Some(70.0)).unwrap();
    let total = 20 * MS;
    while fast.now() < total {
        let oe = exact.step_until(total).clone();
        let of = fast.step_until(total).clone();
        assert_eq!(oe, of);
        assert_eq!(exact.now(), fast.now());
        for &c in oe.completed.iter().chain(oe.woke.iter()) {
            let w = random_work(&mut rng, fast.now());
            exact.assign(c, w);
            fast.assign(c, w);
        }
    }
    let ce = exact.counters();
    let cf = fast.counters();
    assert_eq!(ce.instructions.to_bits(), cf.instructions.to_bits());
    assert_eq!(ce.cycles.to_bits(), cf.cycles.to_bits());
    assert_eq!(ce.l3_misses.to_bits(), cf.l3_misses.to_bits());
    assert_eq!(
        exact.total_energy().to_bits(),
        fast.total_energy().to_bits()
    );
    for addr in [IA32_APERF, IA32_MPERF, MSR_PKG_ENERGY_STATUS] {
        assert_eq!(exact.msr().hw_read(addr), fast.msr().hw_read(addr));
    }
    for c in 0..6 {
        assert_eq!(exact.work(c), fast.work(c));
    }
}

/// `StepMode::Exact` via `step_until` is the same machine as a manual
/// `step()` loop — bit-for-bit, event-for-event.
#[test]
fn exact_mode_step_until_equals_manual_step_loop() {
    let mut cfg = base_cfg(4, 100 * US, MS);
    cfg.step_mode = StepMode::Exact;
    let mut a = Node::new(cfg.clone());
    let mut b = Node::new(cfg);
    let mut rng = Mix(42);
    for c in 0..4 {
        let w = random_work(&mut rng, 0);
        a.assign(c, w);
        b.assign(c, w);
    }
    let total = 10 * MS;
    // Drive `a` by step_until and `b` by single steps; `b`'s first
    // non-empty outcome must land exactly where `a` stopped, with the same
    // events (or nowhere, if `a` ran uneventfully to the deadline).
    while a.now() < total {
        let oa = a.step_until(total).clone();
        let mut ob = crate::node::StepOutcome::default();
        while b.now() < a.now() {
            let o = b.step().clone();
            if !o.is_empty() {
                assert_eq!(b.now(), a.now(), "b saw an event a skipped");
                ob = o;
            }
        }
        assert_eq!(oa, ob, "event mismatch at t={}", a.now());
        assert_eq!(a.now(), b.now());
        for &c in oa.completed.iter().chain(oa.woke.iter()) {
            let w = random_work(&mut rng, a.now());
            a.assign(c, w);
            b.assign(c, w);
        }
    }
    assert_eq!(
        a.counters().instructions.to_bits(),
        b.counters().instructions.to_bits()
    );
    assert_eq!(a.total_energy().to_bits(), b.total_energy().to_bits());
    for addr in [IA32_APERF, IA32_MPERF, MSR_PKG_ENERGY_STATUS] {
        assert_eq!(a.msr().hw_read(addr), b.msr().hw_read(addr));
    }
}

/// `step_until` honours its deadline exactly when nothing happens, and
/// returns early (at the completion quantum) when something does.
#[test]
fn step_until_deadline_and_early_return_semantics() {
    let cfg = base_cfg(2, 100 * US, MS);
    let mut node = Node::new(cfg);
    // Uneventful: idle cores, far deadline.
    let o = node.step_until(3 * MS).clone();
    assert!(o.is_empty());
    assert_eq!(node.now(), 3 * MS);
    // Eventful: a small packet completes long before the deadline.
    node.assign(
        0,
        CoreWork::Compute(WorkPacket::new(3.0e6, 0.0, 3.0e6).into()),
    );
    let o = node.step_until(100 * MS).clone();
    assert_eq!(o.completed, vec![0]);
    assert!(o.woke.is_empty());
    assert!(
        node.now() < 100 * MS,
        "returned at {} — did not stop early",
        node.now()
    );
    // Sleep horizon: the wake lands on the quantum whose end covers `until`.
    let wake_at = node.now() + 1_550 * US;
    node.assign(1, CoreWork::Sleep { until: wake_at });
    let o = node.step_until(100 * MS).clone();
    assert_eq!(o.woke, vec![1]);
    assert!(node.now() >= wake_at);
    assert!(node.now() - wake_at < 100 * US);
}
