//! Node configuration.
//!
//! All physical parameters of the simulated node live here. Defaults are
//! calibrated so that the package-level numbers line up with the paper's
//! testbed (a dual-socket Xeon Gold 6126 treated as one 24-core package
//! power domain; see DESIGN.md §1): a fully compute-bound 24-core workload
//! draws ~145 W uncapped, a streaming workload ~120 W with a large uncore
//! share, and caps in the paper's 40–140 W range are all enforceable.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::backend::BackendKind;
use crate::bandwidth::UncoreConfig;
use crate::faults::FaultPlan;
use crate::freq::FrequencyLadder;
use crate::power::CorePowerConfig;
use crate::thermal::ThermalConfig;
use crate::time::{Nanos, MS, US};

/// How [`Node::step_until`](crate::node::Node::step_until) advances time.
///
/// Between events the node's state evolves piecewise-analytically: while no
/// core completes a packet, wakes from sleep, crosses a thermal band, latches
/// a fault, and no RAPL period boundary passes, every per-quantum update is
/// identical, so k quanta can be applied in closed form in one shot. The
/// *event horizon* is the earliest of those boundaries; the fast path
/// macro-steps up to one quantum short of it and falls back to the exact
/// single-quantum path near any horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StepMode {
    /// Fixed single-quantum stepping — the bit-exact reference mode.
    Exact,
    /// Macro-quantum fast path (the default). Agrees with [`StepMode::Exact`]
    /// to within 1e-9 relative on counters, energy and progress (the only
    /// differences are floating-point summation order), and is bit-identical
    /// whenever no macro-step fires.
    #[default]
    EventHorizon,
}

/// Complete physical + control configuration of a simulated node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Number of physical cores in the package power domain.
    ///
    /// The paper disables hyperthreading and uses all 24 physical cores of
    /// the dual-socket node as one pool.
    pub cores: usize,
    /// DVFS ladder available to the package.
    pub ladder: FrequencyLadder,
    /// Core power model parameters.
    pub core_power: CorePowerConfig,
    /// Uncore (memory subsystem) model parameters.
    pub uncore: UncoreConfig,
    /// Simulation quantum. Work execution, power integration and counter
    /// accumulation all advance in steps of this size.
    pub quantum: Nanos,
    /// RAPL control period (how often the controller re-evaluates its
    /// actuator settings). Real RAPL acts on the order of milliseconds.
    pub rapl_period: Nanos,
    /// RAPL rolling-average time window (the "time window" programmed into
    /// `PKG_POWER_LIMIT`); the controller holds the *average* power over
    /// this window at or below the cap.
    pub rapl_window: Nanos,
    /// Instructions per cycle retired by a busy-wait spin loop (MPI barrier
    /// polling). This is what inflates MIPS for load-imbalanced codes in
    /// Table I of the paper.
    pub spin_ipc: f64,
    /// Instructions per second issued by a core that is nominally sleeping
    /// (timer ticks, kernel housekeeping). Small but nonzero, so the
    /// balanced Listing-1 workload still reports a plausible MIPS floor.
    pub sleep_inst_per_sec: f64,
    /// Fraction of a core's dynamic power drawn while stalled on memory
    /// (the out-of-order engine is mostly idle but not gated).
    pub stall_dyn_frac: f64,
    /// Fraction of a core's *static* power drawn while in a sleep C-state.
    pub cstate_static_frac: f64,
    /// Optional package thermal model (temperature-dependent leakage +
    /// PROCHOT throttling). `None` (the default) disables it, leaving the
    /// calibrated experiments untouched.
    pub thermal: Option<ThermalConfig>,
    /// Optional fault-injection plan applied at the MSR boundary (see
    /// [`crate::faults`]). `None` (the default) leaves every access path
    /// untouched, so fault-free runs are bit-identical to a build without
    /// the framework. `Arc`-shared so cluster specs and multi-node sweeps
    /// reuse one allocation instead of deep-cloning the plan per member.
    pub faults: Option<Arc<FaultPlan>>,
    /// Time-advance strategy for
    /// [`Node::step_until`](crate::node::Node::step_until); see
    /// [`StepMode`]. [`Node::step`](crate::node::Node::step) always
    /// advances exactly one quantum regardless of this setting.
    pub step_mode: StepMode,
    /// Which register-file backend sits behind the node's MSR boundary
    /// (see [`crate::backend`]). [`BackendKind::Sim`] (the default) is
    /// the seed's closed-form register file, bit-identical to the
    /// pre-trait device.
    pub backend: BackendKind,
}

impl NodeConfig {
    /// Convenient accessor: nominal maximum frequency in MHz.
    pub fn fmax_mhz(&self) -> u32 {
        self.ladder.fmax_mhz()
    }

    /// Validate internal consistency. Called by [`crate::node::Node::new`].
    ///
    /// # Panics
    /// Panics on configurations that cannot be simulated (zero cores,
    /// quantum larger than the control period, non-physical fractions).
    pub fn validate(&self) {
        assert!(self.cores > 0, "node must have at least one core");
        assert!(self.quantum >= US, "quantum below 1us is needlessly slow");
        assert!(
            self.rapl_period >= self.quantum,
            "RAPL cannot act faster than the simulation quantum"
        );
        assert!(
            self.rapl_window >= self.rapl_period,
            "RAPL averaging window shorter than its control period"
        );
        assert!(self.spin_ipc > 0.0 && self.spin_ipc < 8.0);
        assert!((0.0..=1.0).contains(&self.stall_dyn_frac));
        assert!((0.0..=1.0).contains(&self.cstate_static_frac));
        self.core_power.validate();
        self.uncore.validate();
        if let Some(t) = &self.thermal {
            t.validate();
        }
        if let Some(f) = &self.faults {
            f.validate();
        }
        assert!(
            self.backend.is_available(),
            "backend {:?} is not compiled into this build (rebuild with --features rapl)",
            self.backend
        );
    }
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            cores: 24,
            ladder: FrequencyLadder::default(),
            core_power: CorePowerConfig::default(),
            uncore: UncoreConfig::default(),
            quantum: 100 * US,
            rapl_period: MS,
            rapl_window: 10 * MS,
            spin_ipc: 2.1,
            sleep_inst_per_sec: 170.0e6,
            stall_dyn_frac: 0.45,
            cstate_static_frac: 0.30,
            thermal: None,
            faults: None,
            step_mode: StepMode::default(),
            backend: BackendKind::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        NodeConfig::default().validate();
    }

    #[test]
    fn default_matches_paper_testbed_shape() {
        let c = NodeConfig::default();
        assert_eq!(c.cores, 24);
        assert_eq!(c.fmax_mhz(), 3300);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let c = NodeConfig {
            cores: 0,
            ..NodeConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "RAPL cannot act faster")]
    fn rapl_faster_than_quantum_rejected() {
        let c = NodeConfig {
            quantum: 2 * MS,
            ..NodeConfig::default()
        };
        c.validate();
    }
}
