//! Uncore / memory-subsystem model.
//!
//! The uncore runs its own frequency ladder (Skylake "uncore frequency
//! scaling"). Total memory bandwidth scales with uncore frequency and is
//! shared among memory-active cores, each additionally limited by a
//! per-core concurrency ceiling. Uncore power has a base floor, a term
//! proportional to achieved traffic, and a `uf²` term — so a streaming
//! workload pushes a large share of package power into the uncore, which is
//! what makes RAPL's demand-proportional budget split "application-aware"
//! (paper Fig. 2) and what the paper's DVFS-only model cannot see when the
//! uncore gets throttled (paper Fig. 4d / Fig. 5).

use serde::{Deserialize, Serialize};

/// Index into the uncore frequency ladder. Higher = faster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UncoreLevel(pub usize);

/// Parameters of the uncore model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UncoreConfig {
    /// Uncore frequency at the lowest level, GHz.
    pub uf_min_ghz: f64,
    /// Uncore frequency at the highest level, GHz.
    pub uf_max_ghz: f64,
    /// Number of uncore frequency levels.
    pub levels: usize,
    /// Peak node memory bandwidth at `uf_max`, bytes/s.
    pub peak_bw: f64,
    /// Per-core concurrency-limited bandwidth ceiling at `uf_max`, bytes/s.
    pub percore_peak_bw: f64,
    /// Cache-line transfer size, bytes per L3 miss.
    pub bytes_per_miss: f64,
    /// Base uncore power (fabric, memory controllers idle), W.
    pub p_base: f64,
    /// Uncore power per achieved GB/s of traffic, W.
    pub p_per_gbs: f64,
    /// Uncore power coefficient on `uf²` (W per GHz²).
    pub p_uf2: f64,
    /// Latency flattening in [0, 1]: single-stream service speed scales as
    /// `lat_flat + (1 - lat_flat)·scale(level)` — DRAM timing dominates
    /// unloaded latency, so throttling the uncore cuts the *pipe* linearly
    /// but stretches per-miss latency only mildly.
    pub lat_flat: f64,
}

impl UncoreConfig {
    /// Fastest uncore level.
    pub fn max_level(&self) -> UncoreLevel {
        UncoreLevel(self.levels - 1)
    }

    /// Slowest uncore level.
    pub fn min_level(&self) -> UncoreLevel {
        UncoreLevel(0)
    }

    /// Iterate over levels from slowest to fastest.
    pub fn iter_levels(&self) -> impl DoubleEndedIterator<Item = UncoreLevel> {
        (0..self.levels).map(UncoreLevel)
    }

    /// Uncore frequency of `level` in GHz.
    pub fn ghz(&self, level: UncoreLevel) -> f64 {
        assert!(level.0 < self.levels, "uncore level out of range");
        if self.levels == 1 {
            return self.uf_max_ghz;
        }
        let t = level.0 as f64 / (self.levels - 1) as f64;
        self.uf_min_ghz + t * (self.uf_max_ghz - self.uf_min_ghz)
    }

    /// Frequency-scaling factor of `level` relative to the fastest level.
    pub fn scale(&self, level: UncoreLevel) -> f64 {
        self.ghz(level) / self.uf_max_ghz
    }

    /// Total node bandwidth available at `level`, bytes/s.
    pub fn total_bw(&self, level: UncoreLevel) -> f64 {
        self.peak_bw * self.scale(level)
    }

    /// Latency-driven per-core service scale at `level` (see `lat_flat`).
    pub fn latency_scale(&self, level: UncoreLevel) -> f64 {
        self.lat_flat + (1.0 - self.lat_flat) * self.scale(level)
    }

    /// Service rate seen by a core *while it is pulling* from memory,
    /// bytes/s, given the node's aggregate memory `pressure` — the
    /// expected number of concurrently demanding cores, i.e. the sum over
    /// cores of (memory-time fraction × MLP). A core that spends 16% of
    /// its time on memory loads the pipe far less than a streaming core,
    /// so dividing the pipe by the raw count of cores *holding* misses
    /// would overstate contention badly.
    ///
    /// The rate is the fair pipe share at that pressure, capped by the
    /// per-core concurrency ceiling (which shrinks only mildly with uncore
    /// frequency — unloaded latency is DRAM-dominated); `mlp` scales the
    /// final rate for dependent-miss workloads.
    pub fn service_rate(&self, level: UncoreLevel, pressure: f64, mlp: f64) -> f64 {
        let share = self.total_bw(level) / pressure.max(1.0);
        share.min(self.percore_peak_bw * self.latency_scale(level)) * mlp
    }

    /// Back-compat shim used by tests: fair share among `n` always-pulling
    /// cores (pressure = n, MLP = 1).
    pub fn percore_bw(&self, level: UncoreLevel, n_mem_active: usize) -> f64 {
        self.service_rate(level, n_mem_active as f64, 1.0)
    }

    /// Time for one core to service `misses` L3 misses, seconds, at unit
    /// MLP under pressure `n_mem_active`.
    pub fn service_time(&self, level: UncoreLevel, n_mem_active: usize, misses: f64) -> f64 {
        misses * self.bytes_per_miss / self.percore_bw(level, n_mem_active)
    }

    /// Uncore power given achieved traffic (bytes/s) and frequency level.
    pub fn power(&self, level: UncoreLevel, achieved_bw: f64) -> f64 {
        let uf = self.ghz(level);
        self.p_base + self.p_per_gbs * achieved_bw * 1e-9 + self.p_uf2 * uf * uf
    }

    /// Validate physical plausibility.
    ///
    /// # Panics
    /// Panics on non-physical parameters.
    pub fn validate(&self) {
        assert!(self.levels >= 1);
        assert!(self.uf_min_ghz > 0.0 && self.uf_max_ghz >= self.uf_min_ghz);
        assert!(self.peak_bw > 0.0 && self.percore_peak_bw > 0.0);
        assert!(self.bytes_per_miss > 0.0);
        assert!(self.p_base >= 0.0 && self.p_per_gbs >= 0.0 && self.p_uf2 >= 0.0);
        assert!((0.0..=1.0).contains(&self.lat_flat), "lat_flat in [0,1]");
    }
}

impl Default for UncoreConfig {
    /// Calibrated for a 6-channel DDR4-2666-class node: ~100 GB/s peak,
    /// ~12 GB/s single-core ceiling, ~20 W idle uncore floor.
    fn default() -> Self {
        Self {
            uf_min_ghz: 1.0,
            uf_max_ghz: 2.4,
            levels: 8,
            peak_bw: 100.0e9,
            percore_peak_bw: 12.0e9,
            bytes_per_miss: 64.0,
            p_base: 12.0,
            p_per_gbs: 0.35,
            p_uf2: 0.8,
            lat_flat: 0.85,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> UncoreConfig {
        UncoreConfig::default()
    }

    #[test]
    fn level_frequencies_span_range() {
        let c = cfg();
        assert!((c.ghz(c.min_level()) - 1.0).abs() < 1e-12);
        assert!((c.ghz(c.max_level()) - 2.4).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_is_shared_until_percore_ceiling() {
        let c = cfg();
        let top = c.max_level();
        // One core: limited by per-core ceiling, not the node pipe.
        assert!((c.percore_bw(top, 1) - 12.0e9).abs() < 1.0);
        // 24 cores: fair share of the pipe.
        assert!((c.percore_bw(top, 24) - 100.0e9 / 24.0).abs() < 1.0);
    }

    #[test]
    fn throttling_uncore_scales_bandwidth() {
        let c = cfg();
        let lo = c.min_level();
        let ratio = c.total_bw(lo) / c.total_bw(c.max_level());
        assert!((ratio - 1.0 / 2.4).abs() < 1e-9);
    }

    #[test]
    fn service_time_inversely_proportional_to_bw() {
        let c = cfg();
        let t_fast = c.service_time(c.max_level(), 24, 1e6);
        let t_slow = c.service_time(c.min_level(), 24, 1e6);
        assert!(t_slow > t_fast * 2.0);
    }

    #[test]
    fn streaming_uncore_power_is_substantial() {
        let c = cfg();
        let p = c.power(c.max_level(), 95.0e9);
        assert!(
            (45.0..80.0).contains(&p),
            "streaming uncore power {p:.1} W outside calibration band"
        );
        let idle = c.power(c.max_level(), 0.0);
        assert!(idle < 25.0, "idle uncore power {idle:.1} W too high");
    }
}
