//! Opt-in package thermal model.
//!
//! The paper's related work (Bhalachandra et al., which it cites for DDCM)
//! observes that "with power capping, non-optimal programs speed up with
//! frequency reduction due to an increase in overall thermal headroom to
//! the critical path". That effect needs a thermal state to exist at all:
//! this module adds a first-order RC junction model with
//! temperature-dependent leakage and a PROCHOT-style throttle.
//!
//! Disabled by default (`NodeConfig::thermal = None`), so the calibrated
//! experiments are unaffected; the thermal ablations opt in explicitly.

use serde::{Deserialize, Serialize};

/// Thermal model parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalConfig {
    /// Ambient / coolant temperature, °C.
    pub ambient_c: f64,
    /// Junction-to-ambient thermal resistance, °C per W (package level).
    pub r_th_c_per_w: f64,
    /// First-order thermal time constant, seconds.
    pub tau_s: f64,
    /// PROCHOT throttle trip point, °C.
    pub throttle_c: f64,
    /// Hysteresis below the trip point before throttling releases, °C.
    pub hysteresis_c: f64,
    /// Relative leakage increase per °C above `leak_ref_c` (e.g. 0.008 =
    /// +0.8 %/°C).
    pub leak_temp_coeff: f64,
    /// Reference temperature for the calibrated leakage value, °C.
    pub leak_ref_c: f64,
}

impl Default for ThermalConfig {
    /// A server-class package: 40 °C inlet, ~0.30 °C/W to ambient, ~8 s
    /// time constant, 95 °C PROCHOT.
    fn default() -> Self {
        Self {
            ambient_c: 40.0,
            r_th_c_per_w: 0.30,
            tau_s: 8.0,
            throttle_c: 95.0,
            hysteresis_c: 3.0,
            leak_temp_coeff: 0.008,
            leak_ref_c: 70.0,
        }
    }
}

impl ThermalConfig {
    /// Validate physical plausibility.
    ///
    /// # Panics
    /// Panics on non-physical parameters.
    pub fn validate(&self) {
        assert!(self.r_th_c_per_w > 0.0 && self.tau_s > 0.0);
        assert!(self.throttle_c > self.ambient_c, "trip below ambient");
        assert!(self.hysteresis_c >= 0.0);
        assert!(self.leak_temp_coeff >= 0.0);
    }

    /// Steady-state junction temperature at constant package power.
    pub fn steady_state_c(&self, power_w: f64) -> f64 {
        self.ambient_c + self.r_th_c_per_w * power_w
    }

    /// The highest package power this cooling solution can sustain
    /// without ever asserting PROCHOT: the power whose steady-state
    /// temperature sits at the bottom of the hysteresis band
    /// (`throttle_c - hysteresis_c`). Granting a node more than this is
    /// wasted — the thermal throttle claws the excess back — which is
    /// why the cluster arbiter clamps a node's grant ceiling here.
    pub fn sustainable_power_w(&self) -> f64 {
        (self.throttle_c - self.hysteresis_c - self.ambient_c) / self.r_th_c_per_w
    }
}

/// Thermal state integrated by the node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalState {
    cfg: ThermalConfig,
    /// Current junction temperature, °C.
    temp_c: f64,
    /// PROCHOT currently asserted.
    throttling: bool,
}

impl ThermalState {
    /// Start at ambient.
    pub fn new(cfg: ThermalConfig) -> Self {
        cfg.validate();
        Self {
            temp_c: cfg.ambient_c,
            throttling: false,
            cfg,
        }
    }

    /// Current junction temperature, °C.
    pub fn temperature_c(&self) -> f64 {
        self.temp_c
    }

    /// Whether PROCHOT is asserted (the node forces its lowest P-state).
    pub fn throttling(&self) -> bool {
        self.throttling
    }

    /// Leakage multiplier at the current temperature.
    pub fn leak_factor(&self) -> f64 {
        1.0 + self.cfg.leak_temp_coeff * (self.temp_c - self.cfg.leak_ref_c)
    }

    /// Integrate one step of `dt_s` seconds at package power `power_w`,
    /// updating temperature and the throttle latch.
    pub fn step(&mut self, power_w: f64, dt_s: f64) {
        let target = self.cfg.steady_state_c(power_w);
        let alpha = (dt_s / self.cfg.tau_s).min(1.0);
        self.temp_c += alpha * (target - self.temp_c);
        if self.temp_c >= self.cfg.throttle_c {
            self.throttling = true;
        } else if self.temp_c <= self.cfg.throttle_c - self.cfg.hysteresis_c {
            self.throttling = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_steady(state: &mut ThermalState, power: f64, seconds: f64) {
        let dt = 1e-3;
        let steps = (seconds / dt) as usize;
        for _ in 0..steps {
            state.step(power, dt);
        }
    }

    #[test]
    fn temperature_converges_to_the_rc_steady_state() {
        let cfg = ThermalConfig::default();
        let expected = cfg.steady_state_c(150.0);
        let mut s = ThermalState::new(cfg);
        run_to_steady(&mut s, 150.0, 60.0);
        assert!(
            (s.temperature_c() - expected).abs() < 0.1,
            "T {} vs steady {expected}",
            s.temperature_c()
        );
    }

    #[test]
    fn capping_creates_thermal_headroom() {
        // The Bhalachandra observation: a capped package settles cooler,
        // which reduces leakage.
        let cfg = ThermalConfig::default();
        let mut hot = ThermalState::new(cfg.clone());
        let mut cool = ThermalState::new(cfg);
        run_to_steady(&mut hot, 150.0, 60.0);
        run_to_steady(&mut cool, 90.0, 60.0);
        assert!(cool.temperature_c() < hot.temperature_c() - 10.0);
        assert!(cool.leak_factor() < hot.leak_factor());
    }

    #[test]
    fn prochot_latches_with_hysteresis() {
        let cfg = ThermalConfig {
            r_th_c_per_w: 0.40,
            ..ThermalConfig::default()
        };
        let mut s = ThermalState::new(cfg);
        // 180 W × 0.40 + 40 = 112 °C steady → must trip.
        run_to_steady(&mut s, 180.0, 40.0);
        assert!(s.throttling(), "should trip at {:.1} °C", s.temperature_c());
        // Cooling to just below the trip point keeps the latch...
        while s.temperature_c() > 93.5 {
            s.step(20.0, 1e-3);
        }
        assert!(s.throttling(), "hysteresis holds the latch");
        // ...until the hysteresis band clears.
        run_to_steady(&mut s, 20.0, 40.0);
        assert!(!s.throttling());
    }

    #[test]
    fn leak_factor_is_one_at_reference() {
        let cfg = ThermalConfig::default();
        let mut s = ThermalState::new(cfg.clone());
        // Drive to the reference temperature exactly.
        let p = (cfg.leak_ref_c - cfg.ambient_c) / cfg.r_th_c_per_w;
        run_to_steady(&mut s, p, 80.0);
        assert!((s.leak_factor() - 1.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "trip below ambient")]
    fn invalid_trip_point_rejected() {
        ThermalState::new(ThermalConfig {
            throttle_c: 20.0,
            ..ThermalConfig::default()
        });
    }
}
