//! DVFS frequency ladder (P-states).
//!
//! The simulated package exposes a discrete ladder of core frequencies, like
//! the ACPI P-states a real Skylake exposes through `IA32_PERF_CTL`. The
//! paper's testbed runs 1200–3300 MHz (nominal max 3300 MHz with Turbo
//! enabled), which is the default ladder here.

use serde::{Deserialize, Serialize};

/// Index into a [`FrequencyLadder`]. Higher index = higher frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PState(pub usize);

/// A discrete set of available core frequencies, sorted ascending.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyLadder {
    mhz: Vec<u32>,
}

impl FrequencyLadder {
    /// Build a ladder from an explicit list of frequencies in MHz.
    ///
    /// # Panics
    /// Panics if the list is empty, unsorted, or contains duplicates or
    /// zeros — a malformed ladder is a configuration bug, not a runtime
    /// condition.
    pub fn from_mhz(mhz: Vec<u32>) -> Self {
        assert!(!mhz.is_empty(), "frequency ladder must be non-empty");
        assert!(
            mhz.windows(2).all(|w| w[0] < w[1]),
            "frequency ladder must be strictly ascending"
        );
        assert!(mhz[0] > 0, "frequencies must be positive");
        Self { mhz }
    }

    /// Build an inclusive range ladder `min..=max` in `step` MHz increments.
    pub fn range_mhz(min: u32, max: u32, step: u32) -> Self {
        assert!(step > 0 && min <= max);
        let mhz = (min..=max).step_by(step as usize).collect();
        Self::from_mhz(mhz)
    }

    /// Number of P-states.
    pub fn len(&self) -> usize {
        self.mhz.len()
    }

    /// A ladder is never empty; provided for clippy-friendliness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Lowest P-state.
    pub fn min_pstate(&self) -> PState {
        PState(0)
    }

    /// Highest (fastest) P-state.
    pub fn max_pstate(&self) -> PState {
        PState(self.mhz.len() - 1)
    }

    /// Frequency of `p` in MHz.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn mhz(&self, p: PState) -> u32 {
        self.mhz[p.0]
    }

    /// Frequency of `p` in Hz.
    pub fn hz(&self, p: PState) -> f64 {
        self.mhz(p) as f64 * 1e6
    }

    /// Frequency of `p` in GHz.
    pub fn ghz(&self, p: PState) -> f64 {
        self.mhz(p) as f64 * 1e-3
    }

    /// Maximum frequency in MHz (the paper's `f_max`).
    pub fn fmax_mhz(&self) -> u32 {
        *self.mhz.last().expect("non-empty")
    }

    /// Minimum frequency in MHz.
    pub fn fmin_mhz(&self) -> u32 {
        self.mhz[0]
    }

    /// The highest P-state whose frequency is `<= mhz`, or the lowest
    /// P-state if every rung is above `mhz`.
    pub fn pstate_at_or_below(&self, mhz: u32) -> PState {
        match self.mhz.partition_point(|&m| m <= mhz) {
            0 => PState(0),
            n => PState(n - 1),
        }
    }

    /// The exact P-state for `mhz`, if it is a rung of the ladder.
    pub fn pstate_exact(&self, mhz: u32) -> Option<PState> {
        self.mhz.binary_search(&mhz).ok().map(PState)
    }

    /// Iterate over all P-states from slowest to fastest.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = PState> + '_ {
        (0..self.mhz.len()).map(PState)
    }
}

impl Default for FrequencyLadder {
    /// The paper's testbed ladder: 1200–3300 MHz in 100 MHz steps.
    fn default() -> Self {
        Self::range_mhz(1200, 3300, 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ladder_matches_paper_testbed() {
        let l = FrequencyLadder::default();
        assert_eq!(l.fmin_mhz(), 1200);
        assert_eq!(l.fmax_mhz(), 3300);
        assert_eq!(l.len(), 22);
        assert_eq!(l.mhz(l.max_pstate()), 3300);
    }

    #[test]
    fn pstate_at_or_below_picks_floor() {
        let l = FrequencyLadder::default();
        assert_eq!(l.mhz(l.pstate_at_or_below(2650)), 2600);
        assert_eq!(l.mhz(l.pstate_at_or_below(2600)), 2600);
        assert_eq!(l.mhz(l.pstate_at_or_below(100)), 1200, "clamps to fmin");
        assert_eq!(l.mhz(l.pstate_at_or_below(9999)), 3300);
    }

    #[test]
    fn pstate_exact_only_matches_rungs() {
        let l = FrequencyLadder::default();
        assert_eq!(l.pstate_exact(1600), Some(l.pstate_at_or_below(1600)));
        assert_eq!(l.pstate_exact(1650), None);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_ladder_panics() {
        FrequencyLadder::from_mhz(vec![2000, 1000]);
    }

    #[test]
    fn hz_and_ghz_agree() {
        let l = FrequencyLadder::default();
        let p = l.max_pstate();
        assert!((l.hz(p) - 3.3e9).abs() < 1.0);
        assert!((l.ghz(p) - 3.3).abs() < 1e-9);
    }
}
