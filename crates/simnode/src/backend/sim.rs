//! The closed-form simulated register file — the seed `MsrDevice`
//! behaviour, ported verbatim behind [`MsrBackend`].
//!
//! Every access path here is bit-identical to the pre-trait device: the
//! conformance suite pins it against a frozen copy of the old
//! implementation, and `scripts/ci.sh` diffs seeded `repro cluster
//! --quick` CSVs against golden pre-refactor output.

use std::collections::HashMap;
use std::sync::Arc;

use crate::backend::{default_permission, Capabilities, MsrBackend};
use crate::faults::{FaultLayer, FaultPlan, FaultStats};
use crate::msr::{
    MsrError, Permission, RaplUnits, IA32_APERF, IA32_CLOCK_MODULATION, IA32_MPERF, IA32_PERF_CTL,
    MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_LIMIT, MSR_RAPL_POWER_UNIT,
};
use crate::time::Nanos;

/// The simulated MSR register file (allow-list + registers + optional
/// fault layer).
#[derive(Debug, Clone)]
pub struct SimBackend {
    regs: HashMap<u32, u64>,
    allowlist: HashMap<u32, Permission>,
    /// Simulated time of the device, advanced by `advance_to`; only
    /// consulted by the fault layer.
    now: Nanos,
    /// Optional fault-injection layer ([`crate::faults`]). `None` (the
    /// default) leaves every access path untouched.
    faults: Option<FaultLayer>,
}

impl SimBackend {
    /// A register file with the default RAPL/DVFS allow-list and
    /// power-on values.
    pub fn new() -> Self {
        let mut allowlist = HashMap::new();
        let mut regs = HashMap::new();
        for addr in [
            MSR_RAPL_POWER_UNIT,
            MSR_PKG_POWER_LIMIT,
            MSR_PKG_ENERGY_STATUS,
            IA32_PERF_CTL,
            IA32_CLOCK_MODULATION,
            IA32_MPERF,
            IA32_APERF,
        ] {
            allowlist.insert(addr, default_permission(addr).expect("default set"));
            regs.insert(addr, 0);
        }
        regs.insert(MSR_RAPL_POWER_UNIT, RaplUnits::SKYLAKE_RAW);
        Self {
            regs,
            allowlist,
            now: 0,
            faults: None,
        }
    }

    /// Builder back end: the default file with allow-list overrides,
    /// register pokes, and an optional fault plan applied before the
    /// device is handed out.
    pub(crate) fn assemble(
        allow: &[(u32, Permission)],
        regs: &[(u32, u64)],
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        let mut s = Self::new();
        for &(addr, perm) in allow {
            s.allowlist.insert(addr, perm);
            s.regs.entry(addr).or_insert(0);
        }
        for &(addr, value) in regs {
            s.regs.insert(addr, value);
        }
        s.faults = faults.map(FaultLayer::new);
        s
    }

    /// Allow-list + fault-layer front half of a user write. `Ok(true)`
    /// means the caller should store the value; `Ok(false)` means the
    /// fault layer swallowed it (a deferred cap latch that will fire via
    /// [`MsrBackend::advance_to`]). Shared with [`super::EmulatedBackend`],
    /// whose bus engine stores through its own latch queue.
    pub(crate) fn user_write_gate(&mut self, addr: u32, value: u64) -> Result<bool, MsrError> {
        match self.allowlist.get(&addr) {
            None => Err(MsrError::Unknown(addr)),
            Some(p) if !p.write => Err(MsrError::NotAllowed(addr)),
            Some(_) => {
                if let Some(fl) = &mut self.faults {
                    if fl.write_fails(self.now, addr) {
                        return Err(MsrError::Io(addr));
                    }
                    if addr == MSR_PKG_POWER_LIMIT && fl.defer_cap_write(self.now, value) {
                        // Reported as success: the sneaky failure mode that
                        // only read-back verification catches.
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }
}

impl Default for SimBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl MsrBackend for SimBackend {
    fn read(&self, addr: u32) -> Result<u64, MsrError> {
        match self.allowlist.get(&addr) {
            None => Err(MsrError::Unknown(addr)),
            Some(p) if !p.read => Err(MsrError::NotAllowed(addr)),
            Some(_) => {
                if let Some(fl) = &self.faults {
                    if fl.read_fails(self.now, addr) {
                        return Err(MsrError::Io(addr));
                    }
                    if addr == MSR_PKG_ENERGY_STATUS {
                        if let Some(frozen) = fl.stuck_energy(self.now) {
                            return Ok(frozen);
                        }
                    }
                }
                Ok(*self.regs.get(&addr).unwrap_or(&0))
            }
        }
    }

    fn write(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        if self.user_write_gate(addr, value)? {
            self.regs.insert(addr, value);
        }
        Ok(())
    }

    fn advance_to(&mut self, now: Nanos) {
        self.now = now;
        if let Some(fl) = &mut self.faults {
            let energy = *self.regs.get(&MSR_PKG_ENERGY_STATUS).unwrap_or(&0);
            let (jump_to, latched) = fl.advance_to(now, energy);
            if let Some(v) = jump_to {
                self.regs.insert(MSR_PKG_ENERGY_STATUS, v & 0xFFFF_FFFF);
            }
            if let Some(raw) = latched {
                self.regs.insert(MSR_PKG_POWER_LIMIT, raw);
            }
        }
    }

    fn next_event_hint(&self, now: Nanos) -> Option<Nanos> {
        self.faults
            .as_ref()
            .and_then(|fl| fl.next_boundary_after(now))
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::full_sim()
    }

    fn hw_read(&self, addr: u32) -> u64 {
        *self.regs.get(&addr).unwrap_or(&0)
    }

    fn hw_write(&mut self, addr: u32, value: u64) {
        self.regs.insert(addr, value);
    }

    fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|f| f.stats())
    }
}
