//! Backend conformance suite + the Sim-vs-old-path differential test.
//!
//! Two layers of pinning:
//!
//! 1. **Conformance** — every in-tree simulated backend tier must agree
//!    on the `msr-safe` contract: allow-list enforcement, RAPL
//!    time-window encode/decode round-trips through the device, 32-bit
//!    energy-counter wrap, and fault-layer pass-through. The emulated
//!    tier runs these with its latch queue engaged, so the suite also
//!    proves latching preserves the contract (writes still land, just
//!    later).
//! 2. **Differential** — [`SimBackend`] must be *bit-identical* to the
//!    pre-refactor `MsrDevice`. `ReferenceDevice` below is a frozen
//!    copy of the old implementation; a proptest drives both through
//!    random op sequences (user + hw access, clock advances, faults)
//!    and demands identical results and identical register files at
//!    every step.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use crate::backend::BackendKind;
use crate::faults::{FaultLayer, FaultPlan, FaultWindow};
use crate::msr::{
    MsrDevice, MsrError, Permission, PowerLimit, RaplUnits, IA32_APERF, IA32_CLOCK_MODULATION,
    IA32_MPERF, IA32_PERF_CTL, MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_LIMIT, MSR_RAPL_POWER_UNIT,
};
use crate::time::{Nanos, MS, SEC, US};

/// Every simulated backend tier, with an optional shared fault plan.
fn tiers(faults: Option<FaultPlan>) -> Vec<(&'static str, MsrDevice)> {
    let kinds: [(&'static str, BackendKind); 3] = [
        ("sim", BackendKind::Sim),
        (
            "emulated-instant",
            BackendKind::Emulated {
                write_latency: 0,
                access_cost: 0,
            },
        ),
        ("emulated-latched", BackendKind::emulated()),
    ];
    kinds
        .into_iter()
        .map(|(name, kind)| {
            let d = MsrDevice::builder()
                .backend(kind)
                .maybe_faults(faults.clone().map(Arc::new))
                .build()
                .expect("simulated tiers always build");
            (name, d)
        })
        .collect()
}

/// Advance far enough that any pending latch or deferred write applied.
fn settle(d: &mut MsrDevice, from: Nanos) -> Nanos {
    let settled = from + SEC;
    d.advance_to(settled);
    settled
}

#[test]
fn conformance_allowlist_enforcement() {
    for (name, mut d) in tiers(None) {
        assert_eq!(
            d.write(MSR_PKG_ENERGY_STATUS, 1),
            Err(MsrError::NotAllowed(MSR_PKG_ENERGY_STATUS)),
            "{name}: energy counter must be read-only"
        );
        assert_eq!(
            d.write(MSR_RAPL_POWER_UNIT, 1),
            Err(MsrError::NotAllowed(MSR_RAPL_POWER_UNIT)),
            "{name}: units must be read-only"
        );
        assert_eq!(
            d.read(0xDEAD),
            Err(MsrError::Unknown(0xDEAD)),
            "{name}: unknown register reads"
        );
        assert_eq!(
            d.write(0xDEAD, 1),
            Err(MsrError::Unknown(0xDEAD)),
            "{name}: unknown register writes"
        );
        for addr in [IA32_PERF_CTL, IA32_CLOCK_MODULATION, MSR_PKG_POWER_LIMIT] {
            assert_eq!(d.write(addr, 0), Ok(()), "{name}: {addr:#x} writable");
        }
        for addr in [IA32_APERF, IA32_MPERF, MSR_PKG_ENERGY_STATUS] {
            assert!(d.read(addr).is_ok(), "{name}: {addr:#x} readable");
        }
    }
}

#[test]
fn conformance_energy_counter_wraps_at_32_bits() {
    for (name, mut d) in tiers(None) {
        let u = d.units();
        d.hw_write(MSR_PKG_ENERGY_STATUS, 0xFFFF_FFFE);
        d.hw_add_energy(u.energy_j * 5.0);
        assert_eq!(d.hw_read(MSR_PKG_ENERGY_STATUS), 3, "{name}: wrap");
    }
}

#[test]
fn conformance_fault_layer_passes_through() {
    let plan = || {
        FaultPlan::new(9)
            .read_error(MSR_PKG_ENERGY_STATUS, 1.0, FaultWindow::new(MS, 2 * MS))
            .write_error(MSR_PKG_POWER_LIMIT, 1.0, FaultWindow::new(MS, 2 * MS))
    };
    for (name, mut d) in tiers(Some(plan())) {
        assert!(d.read(MSR_PKG_ENERGY_STATUS).is_ok(), "{name}: pre-window");
        assert!(
            d.write(MSR_PKG_POWER_LIMIT, 1).is_ok(),
            "{name}: pre-window"
        );
        d.advance_to(MS);
        assert_eq!(
            d.read(MSR_PKG_ENERGY_STATUS),
            Err(MsrError::Io(MSR_PKG_ENERGY_STATUS)),
            "{name}: read fault surfaces as Io"
        );
        assert_eq!(
            d.write(MSR_PKG_POWER_LIMIT, 2),
            Err(MsrError::Io(MSR_PKG_POWER_LIMIT)),
            "{name}: write fault surfaces as Io"
        );
        d.advance_to(2 * MS);
        assert!(d.read(MSR_PKG_ENERGY_STATUS).is_ok(), "{name}: post-window");
        let stats = d.fault_stats().expect("plan installed");
        assert_eq!(
            (stats.reads_failed(), stats.writes_failed()),
            (1, 1),
            "{name}: stats count through the stack"
        );
    }
}

#[test]
fn conformance_capabilities() {
    for (name, d) in tiers(None) {
        let caps = d.capabilities();
        assert!(caps.power_limit && caps.energy_status, "{name}");
        assert!(caps.perf_ctl && caps.clock_modulation, "{name}");
        assert!(caps.aperf_mperf && caps.fault_injection, "{name}");
        assert_eq!(caps.latched_writes, name == "emulated-latched", "{name}");
    }
}

proptest! {
    /// A cap programmed through any tier's user-space write decodes back
    /// (after settling) to the same quantized watts/window the encoding
    /// promises.
    #[test]
    fn conformance_time_window_roundtrip(
        watts in 1.0f64..4000.0,
        window_ms in 1u64..1000,
    ) {
        for (name, mut d) in tiers(None) {
            let units = d.units();
            let pl = PowerLimit { watts: Some(watts), window: window_ms * MS };
            d.write(MSR_PKG_POWER_LIMIT, pl.encode(units)).unwrap();
            settle(&mut d, 0);
            let back = PowerLimit::decode(d.hw_read(MSR_PKG_POWER_LIMIT), units);
            let got = back.watts.expect("enable bit survives the backend");
            prop_assert!(
                (got - watts).abs() <= units.power_w / 2.0 + 1e-9,
                "{name}: watts {got} vs {watts}"
            );
            let ratio = back.window as f64 / (window_ms * MS) as f64;
            prop_assert!((0.75..=1.25).contains(&ratio), "{name}: window ratio {ratio}");
        }
    }
}

// ---------------------------------------------------------------------
// Differential: SimBackend vs the frozen pre-refactor implementation.
// ---------------------------------------------------------------------

/// The pre-refactor `MsrDevice`, copied verbatim (modulo the rename) from
/// the seed's `simnode::msr` so the port has a fixed reference to agree
/// with. Do not "improve" this code: its whole value is being frozen.
#[derive(Debug, Clone)]
struct ReferenceDevice {
    regs: HashMap<u32, u64>,
    allowlist: HashMap<u32, Permission>,
    now: Nanos,
    faults: Option<FaultLayer>,
}

impl ReferenceDevice {
    fn new() -> Self {
        let mut allowlist = HashMap::new();
        allowlist.insert(MSR_RAPL_POWER_UNIT, Permission::RO);
        allowlist.insert(MSR_PKG_POWER_LIMIT, Permission::RW);
        allowlist.insert(MSR_PKG_ENERGY_STATUS, Permission::RO);
        allowlist.insert(IA32_PERF_CTL, Permission::RW);
        allowlist.insert(IA32_CLOCK_MODULATION, Permission::RW);
        allowlist.insert(IA32_MPERF, Permission::RO);
        allowlist.insert(IA32_APERF, Permission::RO);

        let mut regs = HashMap::new();
        regs.insert(MSR_RAPL_POWER_UNIT, RaplUnits::SKYLAKE_RAW);
        regs.insert(MSR_PKG_POWER_LIMIT, 0);
        regs.insert(MSR_PKG_ENERGY_STATUS, 0);
        regs.insert(IA32_PERF_CTL, 0);
        regs.insert(IA32_CLOCK_MODULATION, 0);
        regs.insert(IA32_MPERF, 0);
        regs.insert(IA32_APERF, 0);
        Self {
            regs,
            allowlist,
            now: 0,
            faults: None,
        }
    }

    fn install_faults(&mut self, plan: impl Into<Arc<FaultPlan>>) {
        self.faults = Some(FaultLayer::new(plan));
    }

    fn advance_to(&mut self, now: Nanos) {
        self.now = now;
        if let Some(fl) = &mut self.faults {
            let energy = *self.regs.get(&MSR_PKG_ENERGY_STATUS).unwrap_or(&0);
            let (jump_to, latched) = fl.advance_to(now, energy);
            if let Some(v) = jump_to {
                self.regs.insert(MSR_PKG_ENERGY_STATUS, v & 0xFFFF_FFFF);
            }
            if let Some(raw) = latched {
                self.regs.insert(MSR_PKG_POWER_LIMIT, raw);
            }
        }
    }

    fn read(&self, addr: u32) -> Result<u64, MsrError> {
        match self.allowlist.get(&addr) {
            None => Err(MsrError::Unknown(addr)),
            Some(p) if !p.read => Err(MsrError::NotAllowed(addr)),
            Some(_) => {
                if let Some(fl) = &self.faults {
                    if fl.read_fails(self.now, addr) {
                        return Err(MsrError::Io(addr));
                    }
                    if addr == MSR_PKG_ENERGY_STATUS {
                        if let Some(frozen) = fl.stuck_energy(self.now) {
                            return Ok(frozen);
                        }
                    }
                }
                Ok(*self.regs.get(&addr).unwrap_or(&0))
            }
        }
    }

    fn write(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        match self.allowlist.get(&addr) {
            None => Err(MsrError::Unknown(addr)),
            Some(p) if !p.write => Err(MsrError::NotAllowed(addr)),
            Some(_) => {
                if let Some(fl) = &mut self.faults {
                    if fl.write_fails(self.now, addr) {
                        return Err(MsrError::Io(addr));
                    }
                    if addr == MSR_PKG_POWER_LIMIT && fl.defer_cap_write(self.now, value) {
                        return Ok(());
                    }
                }
                self.regs.insert(addr, value);
                Ok(())
            }
        }
    }

    fn hw_read(&self, addr: u32) -> u64 {
        *self.regs.get(&addr).unwrap_or(&0)
    }

    fn hw_write(&mut self, addr: u32, value: u64) {
        self.regs.insert(addr, value);
    }

    fn hw_add_energy_ticks(&mut self, ticks: u64) {
        let cur = self.hw_read(MSR_PKG_ENERGY_STATUS);
        self.hw_write(MSR_PKG_ENERGY_STATUS, (cur + ticks) & 0xFFFF_FFFF);
    }
}

/// One step of the differential op sequence.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u32),
    Write(u32, u64),
    HwWrite(u32, u64),
    AddEnergyTicks(u64),
    Advance(Nanos),
}

const ADDRS: [u32; 8] = [
    MSR_RAPL_POWER_UNIT,
    MSR_PKG_POWER_LIMIT,
    MSR_PKG_ENERGY_STATUS,
    IA32_PERF_CTL,
    IA32_CLOCK_MODULATION,
    IA32_MPERF,
    IA32_APERF,
    0xDEAD, // deliberately outside the allow-list
];

fn op_strategy() -> impl Strategy<Value = Op> {
    let addr = (0usize..ADDRS.len()).prop_map(|i| ADDRS[i]);
    prop_oneof![
        addr.clone().prop_map(Op::Read),
        (addr.clone(), any::<u64>()).prop_map(|(a, v)| Op::Write(a, v)),
        (addr, any::<u64>()).prop_map(|(a, v)| Op::HwWrite(a, v)),
        (0u64..0x2_0000_0000).prop_map(Op::AddEnergyTicks),
        (1u64..20).prop_map(|k| Op::Advance(k * 500 * US)),
    ]
}

/// A fault plan exercising every fault family over the op timeline.
fn diff_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .read_error(
            MSR_PKG_ENERGY_STATUS,
            0.5,
            FaultWindow::new(2 * MS, 12 * MS),
        )
        .write_error(MSR_PKG_POWER_LIMIT, 0.5, FaultWindow::new(5 * MS, 15 * MS))
        .stuck_energy(FaultWindow::new(20 * MS, 30 * MS))
        .delayed_cap_latch(3 * MS, FaultWindow::new(35 * MS, 60 * MS))
}

proptest! {
    /// Bit-identity of the ported register file: identical results for
    /// every op and identical register state after every op, with and
    /// without an active fault plan.
    #[test]
    fn sim_backend_is_bit_identical_to_the_old_path(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        seed in 1u64..64,
        faulted in any::<bool>(),
    ) {
        let mut reference = ReferenceDevice::new();
        let mut ported = MsrDevice::builder().build().unwrap();
        if faulted {
            // The same Arc'd plan: the two fault layers then run the
            // same SplitMix64 stream from the same seed.
            let plan = Arc::new(diff_plan(seed));
            reference.install_faults(plan.clone());
            ported = MsrDevice::builder().faults(plan).build().unwrap();
        }
        let mut clock: Nanos = 0;
        for op in ops {
            match op {
                Op::Read(a) => prop_assert_eq!(reference.read(a), ported.read(a)),
                Op::Write(a, v) => prop_assert_eq!(reference.write(a, v), ported.write(a, v)),
                Op::HwWrite(a, v) => {
                    reference.hw_write(a, v);
                    ported.hw_write(a, v);
                }
                Op::AddEnergyTicks(t) => {
                    reference.hw_add_energy_ticks(t);
                    ported.hw_add_energy_ticks(t);
                }
                Op::Advance(dt) => {
                    clock += dt;
                    reference.advance_to(clock);
                    ported.advance_to(clock);
                }
            }
            for a in ADDRS {
                prop_assert_eq!(
                    reference.hw_read(a),
                    ported.hw_read(a),
                    "register {:#x} diverged after {:?}",
                    a,
                    op
                );
            }
        }
    }
}
