//! Pluggable hardware backends behind the MSR boundary.
//!
//! The paper's NRM talks to hardware exclusively through `libmsr` on top
//! of the `msr-safe` kernel module, and this repo mirrors that: the MSR
//! device is the *only* door between the control plane (daemons, arbiter,
//! scheduler) and "hardware". This module makes the door pluggable: the
//! object-safe [`MsrBackend`] trait abstracts the register file, and a
//! node picks its implementation per [`BackendKind`]:
//!
//! | backend | fidelity | availability |
//! |---|---|---|
//! | [`SimBackend`] | closed-form simulated registers (the seed path, bit-identical) | always |
//! | [`EmulatedBackend`] | bus/register-file engine: latched writes, decode side effects, per-access cost | always |
//! | `LinuxRaplBackend` | real `/dev/cpu/*/msr` + sysfs powercap topology | `--features rapl`, Linux, privileged |
//!
//! All three speak [`MsrError`] — the RAPL backend degrades missing
//! registers or privileges to [`MsrError::Unsupported`] instead of lying
//! — so the NRM's retry/fallback machinery (`nrm::resilience`) treats a
//! hole in real hardware exactly like an injected fault. Devices are
//! built through [`MsrDeviceBuilder`]; the old `MsrDevice::new()` +
//! mutate-after construction dance is gone.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::faults::{FaultPlan, FaultStats};
use crate::msr::{
    MsrDevice, MsrError, Permission, IA32_APERF, IA32_CLOCK_MODULATION, IA32_MPERF, IA32_PERF_CTL,
    MSR_ANY, MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_LIMIT, MSR_RAPL_POWER_UNIT,
};
use crate::time::{Nanos, MS, US};

pub mod emu;
#[cfg(feature = "rapl")]
pub mod rapl_linux;
pub mod sim;

#[cfg(test)]
mod conformance;

pub use emu::{BusStats, EmulatedBackend};
#[cfg(feature = "rapl")]
pub use rapl_linux::{discover_packages, LinuxRaplBackend, PackageInfo};
pub use sim::SimBackend;

/// The hardware side of the MSR boundary.
///
/// Everything above this trait — [`MsrDevice`], the node, both daemons,
/// the cluster and scheduler layers — is backend-agnostic. The trait is
/// object-safe; devices own a `Box<dyn MsrBackend>`.
///
/// The first five methods are the user-space surface (`msr-safe`
/// semantics: allow-list, fault filtering, [`MsrError`] as the shared
/// error language). The `hw_*` pair is the privileged silicon-side
/// surface the simulated node itself drives; real-hardware backends map
/// them onto raw device access and drop writes the silicon owns
/// (counters accumulate on their own there).
pub trait MsrBackend: std::fmt::Debug + Send {
    /// User-space read through the allow-list (and fault layer, where
    /// supported).
    fn read(&self, addr: u32) -> Result<u64, MsrError>;

    /// User-space write through the allow-list (and fault layer, where
    /// supported).
    fn write(&mut self, addr: u32, value: u64) -> Result<(), MsrError>;

    /// Advance the backend clock to `now` (simulated backends latch
    /// deferred writes and fire fault onsets here; wall-clock backends
    /// ignore it).
    fn advance_to(&mut self, now: Nanos);

    /// Earliest instant strictly after `now` at which the backend could
    /// change state on its own (fault window edges, pending write
    /// latches). Feeds the node's event-horizon macro-stepping: a
    /// macro-step never leaps across a hint.
    fn next_event_hint(&self, now: Nanos) -> Option<Nanos>;

    /// What this backend can actually do; probed at build time for real
    /// hardware.
    fn capabilities(&self) -> Capabilities;

    /// Privileged (hardware-side) read, bypassing the allow-list.
    fn hw_read(&self, addr: u32) -> u64;

    /// Privileged (hardware-side) write, bypassing the allow-list.
    fn hw_write(&mut self, addr: u32, value: u64);

    /// Fault-injection counters, when the backend carries a fault layer.
    fn fault_stats(&self) -> Option<&FaultStats> {
        None
    }

    /// Bus-occupancy accounting, for backends that model access cost.
    fn bus_stats(&self) -> Option<BusStats> {
        None
    }
}

/// What an MSR backend supports, register family by register family.
///
/// The simulated tiers support everything; a probed `LinuxRaplBackend`
/// reports only what the running kernel/hardware exposes (e.g. a
/// read-only `/dev/cpu/N/msr` yields `energy_status` without
/// `power_limit`). Accesses outside the mask surface as
/// [`MsrError::Unsupported`], which the NRM's fallback chain handles
/// like any other actuation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities {
    /// `MSR_PKG_POWER_LIMIT` is writable (RAPL capping works).
    pub power_limit: bool,
    /// `MSR_PKG_ENERGY_STATUS` reads return live data.
    pub energy_status: bool,
    /// `IA32_PERF_CTL` is writable (software DVFS works).
    pub perf_ctl: bool,
    /// `IA32_CLOCK_MODULATION` is writable (DDCM works).
    pub clock_modulation: bool,
    /// `IA32_APERF`/`IA32_MPERF` read as a coherent pair.
    pub aperf_mperf: bool,
    /// The backend can host an injected [`FaultPlan`].
    pub fault_injection: bool,
    /// User writes latch after a delay instead of instantly.
    pub latched_writes: bool,
}

impl Capabilities {
    /// Everything the closed-form simulated register file offers.
    pub const fn full_sim() -> Self {
        Self {
            power_limit: true,
            energy_status: true,
            perf_ctl: true,
            clock_modulation: true,
            aperf_mperf: true,
            fault_injection: true,
            latched_writes: false,
        }
    }

    /// Nothing at all — the probe starting point.
    pub const fn none() -> Self {
        Self {
            power_limit: false,
            energy_status: false,
            perf_ctl: false,
            clock_modulation: false,
            aperf_mperf: false,
            fault_injection: false,
            latched_writes: false,
        }
    }

    /// Whether accesses to `addr` are within this capability mask.
    pub fn supports(&self, addr: u32) -> bool {
        match addr {
            MSR_RAPL_POWER_UNIT => self.power_limit || self.energy_status,
            MSR_PKG_POWER_LIMIT => self.power_limit,
            MSR_PKG_ENERGY_STATUS => self.energy_status,
            IA32_PERF_CTL => self.perf_ctl,
            IA32_CLOCK_MODULATION => self.clock_modulation,
            IA32_APERF | IA32_MPERF => self.aperf_mperf,
            _ => false,
        }
    }
}

/// The `msr-safe`-style whitelist entry for a register, shared by every
/// backend (the simulated tiers seed their allow-list from it; the RAPL
/// backend enforces it statically so user code cannot scribble on
/// arbitrary real MSRs).
pub fn default_permission(addr: u32) -> Option<Permission> {
    match addr {
        MSR_RAPL_POWER_UNIT | MSR_PKG_ENERGY_STATUS | IA32_MPERF | IA32_APERF => {
            Some(Permission::RO)
        }
        MSR_PKG_POWER_LIMIT | IA32_PERF_CTL | IA32_CLOCK_MODULATION => Some(Permission::RW),
        _ => None,
    }
}

/// Which backend a node's MSR device runs on. Carried by `NodeConfig`
/// and the cluster's `NodeSpec`, so one cluster can mix fidelity tiers
/// member by member.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum BackendKind {
    /// The closed-form simulated register file (the seed behaviour,
    /// bit-identical to the pre-trait `MsrDevice`).
    #[default]
    Sim,
    /// The bus/register-file execution engine: user writes latch
    /// `write_latency` after issue (0 = instant, bit-identical to
    /// [`BackendKind::Sim`]), reserved bits are masked on decode, and
    /// every access accrues `access_cost` of bus occupancy into
    /// [`BusStats`].
    Emulated {
        /// Delay between a user write returning and the register
        /// changing.
        write_latency: Nanos,
        /// Bus time accounted per user-space access.
        access_cost: Nanos,
    },
    /// Real Intel RAPL via `/dev/cpu/N/msr` for the first CPU of
    /// `package`, with sysfs powercap topology discovery and capability
    /// probing. Requires `--features rapl` (and, at run time, a Linux
    /// machine with the `msr` module loaded).
    LinuxRapl {
        /// Physical package (socket) to bind to.
        package: u32,
    },
}

impl BackendKind {
    /// The emulated tier at its default fidelity: a 2 ms cap-latch delay
    /// (the order real RAPL takes to act on a new limit) and 1 µs of bus
    /// time per access.
    pub const fn emulated() -> Self {
        BackendKind::Emulated {
            write_latency: 2 * MS,
            access_cost: US,
        }
    }

    /// Whether this build can construct the backend at all.
    /// `LinuxRapl` needs `--features rapl`; probing the actual machine
    /// happens later, in [`MsrDeviceBuilder::build`]. Config validators
    /// (`NodeConfig::validate`, the cluster's `ClusterConfig::validate`)
    /// reject unavailable kinds up front so `repro` surfaces a clean
    /// exit-2 message instead of a mid-run panic.
    pub fn is_available(self) -> bool {
        match self {
            BackendKind::Sim | BackendKind::Emulated { .. } => true,
            BackendKind::LinuxRapl { .. } => cfg!(feature = "rapl"),
        }
    }

    /// Short display label (table/CSV column friendly).
    pub fn label(self) -> String {
        match self {
            BackendKind::Sim => "sim".into(),
            BackendKind::Emulated { write_latency, .. } => {
                format!("emulated-{}us", write_latency / US)
            }
            BackendKind::LinuxRapl { package } => format!("linux-rapl-pkg{package}"),
        }
    }
}

/// Builder for [`MsrDevice`]: backend kind, allow-list overrides,
/// initial register values, and an optional fault plan, all settled
/// before the device exists.
///
/// ```
/// use simnode::hw::{BackendKind, MsrDevice, Permission};
///
/// let d = MsrDevice::builder()
///     .backend(BackendKind::emulated())
///     .allow(0x1A4, Permission::RW) // expose a prefetch-control MSR
///     .register(0x1A4, 0xF)
///     .build()
///     .expect("simulated backends always build");
/// assert_eq!(d.read(0x1A4), Ok(0xF));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MsrDeviceBuilder {
    kind: BackendKind,
    allow: Vec<(u32, Permission)>,
    regs: Vec<(u32, u64)>,
    faults: Option<Arc<FaultPlan>>,
}

impl MsrDeviceBuilder {
    /// A builder for the default device: [`BackendKind::Sim`], the
    /// default RAPL/DVFS allow-list, power-on register values, no
    /// faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the backend implementation.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.kind = kind;
        self
    }

    /// Add (or override) an allow-list entry. Registers added here start
    /// at 0 unless also given a [`register`](Self::register) value.
    pub fn allow(mut self, addr: u32, perm: Permission) -> Self {
        self.allow.push((addr, perm));
        self
    }

    /// Override a register's power-on value.
    pub fn register(mut self, addr: u32, value: u64) -> Self {
        self.regs.push((addr, value));
        self
    }

    /// Install a fault-injection plan (a bare [`FaultPlan`] or a shared
    /// `Arc<FaultPlan>`). User-space accesses are filtered through it;
    /// hardware-side (`hw_*`) accesses never are. Only the simulated
    /// tiers support this; building a `LinuxRapl` device with a plan
    /// fails with [`MsrError::Unsupported`].
    pub fn faults(mut self, plan: impl Into<Arc<FaultPlan>>) -> Self {
        self.faults = Some(plan.into());
        self
    }

    /// [`faults`](Self::faults), but threading an `Option` through (the
    /// shape every config struct carries).
    pub fn maybe_faults(mut self, plan: Option<Arc<FaultPlan>>) -> Self {
        self.faults = plan;
        self
    }

    /// Construct the device.
    ///
    /// The simulated tiers are infallible. `LinuxRapl` probes the
    /// machine and fails with [`MsrError::Unsupported`] when the feature
    /// is compiled out, the package/device does not exist, the units
    /// register is unreadable, or a fault plan was requested (fault
    /// injection needs a simulated register file).
    pub fn build(self) -> Result<MsrDevice, MsrError> {
        let backend: Box<dyn MsrBackend> = match self.kind {
            BackendKind::Sim => {
                Box::new(SimBackend::assemble(&self.allow, &self.regs, self.faults))
            }
            BackendKind::Emulated {
                write_latency,
                access_cost,
            } => Box::new(EmulatedBackend::new(
                SimBackend::assemble(&self.allow, &self.regs, self.faults),
                write_latency,
                access_cost,
            )),
            BackendKind::LinuxRapl { package } => {
                #[cfg(feature = "rapl")]
                {
                    if self.faults.is_some() {
                        return Err(MsrError::Unsupported(MSR_ANY));
                    }
                    Box::new(LinuxRaplBackend::probe(package)?)
                }
                #[cfg(not(feature = "rapl"))]
                {
                    let _ = package;
                    return Err(MsrError::Unsupported(MSR_ANY));
                }
            }
        };
        Ok(MsrDevice::from_backend(backend))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_availability_tracks_the_feature_gate() {
        assert!(BackendKind::Sim.is_available());
        assert!(BackendKind::emulated().is_available());
        assert_eq!(
            BackendKind::LinuxRapl { package: 0 }.is_available(),
            cfg!(feature = "rapl")
        );
    }

    #[test]
    fn capability_mask_maps_registers() {
        let full = Capabilities::full_sim();
        for addr in [
            MSR_RAPL_POWER_UNIT,
            MSR_PKG_POWER_LIMIT,
            MSR_PKG_ENERGY_STATUS,
            IA32_PERF_CTL,
            IA32_CLOCK_MODULATION,
            IA32_APERF,
            IA32_MPERF,
        ] {
            assert!(full.supports(addr), "{addr:#x}");
        }
        assert!(!full.supports(0xDEAD));
        let none = Capabilities::none();
        assert!(!none.supports(MSR_PKG_POWER_LIMIT));
        let ro = Capabilities {
            energy_status: true,
            ..Capabilities::none()
        };
        assert!(ro.supports(MSR_RAPL_POWER_UNIT), "units follow telemetry");
        assert!(!ro.supports(MSR_PKG_POWER_LIMIT));
    }

    #[test]
    fn builder_customizes_allowlist_and_registers() {
        let d = MsrDevice::builder()
            .allow(0x1A4, Permission::RW)
            .register(0x1A4, 0xF)
            .build()
            .unwrap();
        assert_eq!(d.read(0x1A4), Ok(0xF));
        // Tightening a default entry works too.
        let d = MsrDevice::builder()
            .allow(MSR_PKG_POWER_LIMIT, Permission::RO)
            .build()
            .unwrap();
        assert_eq!(
            {
                let mut d = d;
                d.write(MSR_PKG_POWER_LIMIT, 1)
            },
            Err(MsrError::NotAllowed(MSR_PKG_POWER_LIMIT))
        );
    }

    #[cfg(not(feature = "rapl"))]
    #[test]
    fn linux_rapl_without_the_feature_is_a_clean_unsupported() {
        let err = MsrDevice::builder()
            .backend(BackendKind::LinuxRapl { package: 0 })
            .build()
            .unwrap_err();
        assert_eq!(err, MsrError::Unsupported(MSR_ANY));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BackendKind::Sim.label(), "sim");
        assert_eq!(BackendKind::emulated().label(), "emulated-2000us");
        assert_eq!(
            BackendKind::LinuxRapl { package: 1 }.label(),
            "linux-rapl-pkg1"
        );
    }
}
