//! Real Intel RAPL over `/dev/cpu/N/msr` + sysfs powercap topology.
//!
//! Compiled only with `--features rapl`. The probe sequence follows the
//! standard Linux RAPL tooling idiom:
//!
//! 1. walk `/sys/bus/cpu/devices/cpu*/topology/physical_package_id` to
//!    map packages to their first CPU (the MSR device is per-CPU, the
//!    RAPL domain per-package);
//! 2. cross-reference `/sys/class/powercap/intel-rapl:*` for the
//!    package's powercap zone and its advertised `max_power_uw`;
//! 3. open `/dev/cpu/{cpu}/msr` read-write, degrading to read-only
//!    (telemetry without actuation) when the kernel denies writes;
//! 4. probe each register the NRM uses with a real read and record what
//!    answered in [`Capabilities`].
//!
//! Everything that fails probing degrades to [`MsrError::Unsupported`]
//! rather than erroring at access time with something opaque — the
//! resilient daemon's fallback chain treats an unsupported knob exactly
//! like a faulted one and walks to the next actuator. No hardware is
//! required to *build* this backend (CI compiles and lints it); actually
//! constructing one needs a Linux machine with the `msr` module loaded
//! and enough privilege to read the device node.

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::PathBuf;

use crate::backend::{default_permission, Capabilities, MsrBackend};
use crate::msr::{
    MsrError, IA32_APERF, IA32_CLOCK_MODULATION, IA32_MPERF, IA32_PERF_CTL, MSR_ANY,
    MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_LIMIT, MSR_RAPL_POWER_UNIT,
};
use crate::time::Nanos;

/// One physical package discovered from sysfs.
#[derive(Debug, Clone)]
pub struct PackageInfo {
    /// `physical_package_id`.
    pub package: u32,
    /// Lowest-numbered CPU in the package (whose MSR device we use).
    pub cpu: u32,
    /// The package's powercap zone, when the `intel-rapl` driver is
    /// bound (e.g. `/sys/class/powercap/intel-rapl:0`).
    pub powercap: Option<PathBuf>,
    /// The zone's `constraint_0_max_power_uw`, when advertised.
    pub max_power_uw: Option<u64>,
}

/// Enumerate physical packages via CPU topology, annotated with their
/// powercap zones. Returns an empty list (not an error) on machines
/// without the expected sysfs layout, so callers can report "package N
/// not found" uniformly.
pub fn discover_packages() -> Vec<PackageInfo> {
    let mut pkgs: Vec<PackageInfo> = Vec::new();
    let entries = match std::fs::read_dir("/sys/bus/cpu/devices") {
        Ok(e) => e,
        Err(_) => return pkgs,
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(cpu) = name.strip_prefix("cpu").and_then(|n| n.parse::<u32>().ok()) else {
            continue;
        };
        let topo = entry.path().join("topology/physical_package_id");
        let Some(package) = std::fs::read_to_string(topo)
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok())
        else {
            continue;
        };
        match pkgs.iter_mut().find(|p| p.package == package) {
            Some(p) => p.cpu = p.cpu.min(cpu),
            None => pkgs.push(PackageInfo {
                package,
                cpu,
                powercap: None,
                max_power_uw: None,
            }),
        }
    }
    for p in &mut pkgs {
        // The intel-rapl driver names top-level zones "package-<id>".
        for k in 0..pkgs_zone_scan_limit() {
            let zone = PathBuf::from(format!("/sys/class/powercap/intel-rapl:{k}"));
            let Ok(name) = std::fs::read_to_string(zone.join("name")) else {
                continue;
            };
            if name.trim() == format!("package-{}", p.package) {
                p.max_power_uw = std::fs::read_to_string(zone.join("constraint_0_max_power_uw"))
                    .ok()
                    .and_then(|s| s.trim().parse().ok());
                p.powercap = Some(zone);
                break;
            }
        }
    }
    pkgs.sort_by_key(|p| p.package);
    pkgs
}

/// How many `intel-rapl:N` zones to scan for. Zones are dense from 0;
/// 64 packages is comfortably beyond any machine this targets.
fn pkgs_zone_scan_limit() -> u32 {
    64
}

/// The real-hardware backend: raw MSR access for one package, gated by
/// the same static allow-list the simulated tiers seed from, with
/// probed capabilities.
#[derive(Debug)]
pub struct LinuxRaplBackend {
    dev: File,
    package: u32,
    writable: bool,
    caps: Capabilities,
}

impl LinuxRaplBackend {
    /// Probe `package` and build a backend for it. Fails with
    /// [`MsrError::Unsupported`] when the package, the MSR device node,
    /// or the RAPL units register is missing; a read-only device node
    /// degrades write capabilities instead of failing.
    pub fn probe(package: u32) -> Result<Self, MsrError> {
        let pkgs = discover_packages();
        let pkg = pkgs
            .iter()
            .find(|p| p.package == package)
            .ok_or(MsrError::Unsupported(MSR_ANY))?;
        let path = format!("/dev/cpu/{}/msr", pkg.cpu);
        let (dev, writable) = match OpenOptions::new().read(true).write(true).open(&path) {
            Ok(f) => (f, true),
            Err(_) => (
                File::open(&path).map_err(|_| MsrError::Unsupported(MSR_ANY))?,
                false,
            ),
        };
        let mut b = Self {
            dev,
            package,
            writable,
            caps: Capabilities::none(),
        };
        // The units register is the keystone: without it no RAPL value
        // can be decoded, so its absence fails the whole probe.
        b.raw_read(MSR_RAPL_POWER_UNIT)
            .map_err(|_| MsrError::Unsupported(MSR_RAPL_POWER_UNIT))?;
        let readable = |b: &Self, addr: u32| b.raw_read(addr).is_ok();
        b.caps = Capabilities {
            power_limit: writable && readable(&b, MSR_PKG_POWER_LIMIT),
            energy_status: readable(&b, MSR_PKG_ENERGY_STATUS),
            perf_ctl: writable && readable(&b, IA32_PERF_CTL),
            clock_modulation: writable && readable(&b, IA32_CLOCK_MODULATION),
            aperf_mperf: readable(&b, IA32_APERF) && readable(&b, IA32_MPERF),
            fault_injection: false,
            latched_writes: true,
        };
        Ok(b)
    }

    /// The package this backend is bound to.
    pub fn package(&self) -> u32 {
        self.package
    }

    fn raw_read(&self, addr: u32) -> Result<u64, MsrError> {
        let mut buf = [0u8; 8];
        self.dev
            .read_exact_at(&mut buf, u64::from(addr))
            .map_err(|_| MsrError::Io(addr))?;
        Ok(u64::from_le_bytes(buf))
    }

    fn raw_write(&self, addr: u32, value: u64) -> Result<(), MsrError> {
        if !self.writable {
            return Err(MsrError::NotAllowed(addr));
        }
        self.dev
            .write_all_at(&value.to_le_bytes(), u64::from(addr))
            .map_err(|_| MsrError::Io(addr))
    }
}

impl MsrBackend for LinuxRaplBackend {
    fn read(&self, addr: u32) -> Result<u64, MsrError> {
        let perm = default_permission(addr).ok_or(MsrError::Unknown(addr))?;
        if !perm.read {
            return Err(MsrError::NotAllowed(addr));
        }
        if !self.caps.supports(addr) {
            return Err(MsrError::Unsupported(addr));
        }
        self.raw_read(addr)
    }

    fn write(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        let perm = default_permission(addr).ok_or(MsrError::Unknown(addr))?;
        if !perm.write {
            return Err(MsrError::NotAllowed(addr));
        }
        if !self.caps.supports(addr) {
            return Err(MsrError::Unsupported(addr));
        }
        self.raw_write(addr, value)
    }

    /// Real hardware advances itself; the simulated clock is ignored.
    fn advance_to(&mut self, _now: Nanos) {}

    /// No simulated events: the device never needs to truncate a
    /// macro-step.
    fn next_event_hint(&self, _now: Nanos) -> Option<Nanos> {
        None
    }

    fn capabilities(&self) -> Capabilities {
        self.caps
    }

    fn hw_read(&self, addr: u32) -> u64 {
        self.raw_read(addr).unwrap_or(0)
    }

    /// Hardware-authoritative: the silicon owns its counters, so
    /// hw-side writes (the *simulated* silicon updating APERF/energy)
    /// are dropped silently when the device refuses them.
    fn hw_write(&mut self, addr: u32, value: u64) {
        let _ = self.raw_write(addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These run wherever `--features rapl` tests run — usually a machine
    // with no MSR device at all — so they assert the *degradation*
    // contract, not live hardware behaviour.

    #[test]
    fn discovery_never_panics_and_is_sorted() {
        let pkgs = discover_packages();
        assert!(pkgs.windows(2).all(|w| w[0].package < w[1].package));
    }

    #[test]
    fn probe_degrades_to_unsupported_without_hardware() {
        match LinuxRaplBackend::probe(0) {
            Ok(b) => {
                // Live hardware: the keystone register answered, and the
                // capability mask must be internally consistent.
                assert!(b.capabilities().energy_status || b.capabilities().power_limit);
                assert!(!b.capabilities().fault_injection);
            }
            Err(e) => assert!(
                matches!(e, MsrError::Unsupported(_)),
                "probe must degrade cleanly, got {e}"
            ),
        }
    }

    #[test]
    fn missing_package_is_unsupported() {
        // No machine has 10k sockets.
        assert!(matches!(
            LinuxRaplBackend::probe(10_000),
            Err(MsrError::Unsupported(_))
        ));
    }
}
