//! The emulated-bus tier: a small bus/register-file execution engine.
//!
//! Real MSR plumbing is not the instant, side-effect-free store the
//! closed-form simulation assumes. Three effects matter for control
//! fidelity (and are exactly what fidelity-ablation experiments want to
//! race against the closed form):
//!
//! - **latched writes** — a user write returns before the register
//!   changes; RAPL in particular takes on the order of milliseconds to
//!   act on a new `PKG_POWER_LIMIT`. Writes here sit in a latch queue
//!   for `write_latency` and apply on the next clock advance;
//! - **decode side effects** — registers implement only their
//!   architected bits; reserved bits are masked off on the way in, so a
//!   driver that round-trips a value reads back what the silicon kept;
//! - **per-access cost** — every user-space access occupies the bus for
//!   `access_cost`, accounted in [`BusStats`] (the `repro backends`
//!   experiment reports it; it does not warp simulated time).
//!
//! With `write_latency == 0` the engine degenerates to a pass-through
//! over [`SimBackend`] and is bit-identical to it — the conformance
//! suite asserts this, which pins the shared gate/fault plumbing.

use std::cell::Cell;

use crate::backend::{Capabilities, MsrBackend, SimBackend};
use crate::faults::FaultStats;
use crate::msr::{MsrError, IA32_CLOCK_MODULATION, IA32_PERF_CTL, MSR_PKG_POWER_LIMIT};
use crate::time::Nanos;

/// Architected-bit mask applied when a register decodes a write.
/// Everything our device model implements lives below these bits; real
/// silicon ignores reserved bits the same way.
fn decode_mask(addr: u32) -> u64 {
    match addr {
        // Limit #1: power(15) | enable | clamp | Y(5) | F(2).
        MSR_PKG_POWER_LIMIT => 0x00FF_FFFF,
        // Requested ratio lives in bits 8..16.
        IA32_PERF_CTL => 0xFF00,
        // Duty step in bits 0..4, enable in bit 4.
        IA32_CLOCK_MODULATION => 0x1F,
        _ => u64::MAX,
    }
}

/// A user write sitting in the latch queue.
#[derive(Debug, Clone, Copy)]
struct PendingWrite {
    apply_at: Nanos,
    addr: u32,
    value: u64,
}

/// The bus/register-file execution engine. Owns a [`SimBackend`] as its
/// register file (so allow-list and fault-layer semantics are shared,
/// not re-implemented) and adds the bus behaviours on top.
#[derive(Debug)]
pub struct EmulatedBackend {
    file: SimBackend,
    write_latency: Nanos,
    access_cost: Nanos,
    now: Nanos,
    /// Latch queue in issue order (bounded by the handful of control
    /// registers a daemon touches per tick).
    pending: Vec<PendingWrite>,
    reads: Cell<u64>,
    writes: u64,
    latched: u64,
    bus_ns: Cell<u64>,
}

impl EmulatedBackend {
    /// An engine over `file` with the given latch delay and per-access
    /// bus cost.
    pub fn new(file: SimBackend, write_latency: Nanos, access_cost: Nanos) -> Self {
        Self {
            file,
            write_latency,
            access_cost,
            now: 0,
            pending: Vec::new(),
            reads: Cell::new(0),
            writes: 0,
            latched: 0,
            bus_ns: Cell::new(0),
        }
    }
}

impl MsrBackend for EmulatedBackend {
    fn read(&self, addr: u32) -> Result<u64, MsrError> {
        self.reads.set(self.reads.get() + 1);
        self.bus_ns.set(self.bus_ns.get() + self.access_cost);
        // Reads see the register file, not the latch queue: a write that
        // has not latched yet is invisible to read-back — exactly the
        // failure mode the resilient daemon's verification exists for.
        self.file.read(addr)
    }

    fn write(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        self.writes += 1;
        self.bus_ns.set(self.bus_ns.get() + self.access_cost);
        if self.file.user_write_gate(addr, value)? {
            let value = value & decode_mask(addr);
            if self.write_latency == 0 {
                self.file.hw_write(addr, value);
            } else {
                self.latched += 1;
                self.pending.push(PendingWrite {
                    apply_at: self.now + self.write_latency,
                    addr,
                    value,
                });
            }
        }
        Ok(())
    }

    fn advance_to(&mut self, now: Nanos) {
        self.now = now;
        // Apply due latches in issue order (last write to a register
        // wins, as on hardware), then let the fault layer advance.
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].apply_at <= now {
                let p = self.pending.remove(i);
                self.file.hw_write(p.addr, p.value);
            } else {
                i += 1;
            }
        }
        self.file.advance_to(now);
    }

    fn next_event_hint(&self, now: Nanos) -> Option<Nanos> {
        // A pending latch is an event horizon exactly like a fault
        // boundary: the node must not macro-step across the instant a
        // cap takes hold.
        let latch = self.pending.iter().map(|p| p.apply_at.max(now + 1)).min();
        match (latch, self.file.next_event_hint(now)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            latched_writes: self.write_latency > 0,
            ..Capabilities::full_sim()
        }
    }

    fn hw_read(&self, addr: u32) -> u64 {
        self.file.hw_read(addr)
    }

    fn hw_write(&mut self, addr: u32, value: u64) {
        self.file.hw_write(addr, value);
    }

    fn fault_stats(&self) -> Option<&FaultStats> {
        self.file.fault_stats()
    }

    fn bus_stats(&self) -> Option<BusStats> {
        Some(BusStats {
            reads: self.reads.get(),
            writes: self.writes,
            latched: self.latched,
            bus_ns: self.bus_ns.get(),
        })
    }
}

/// Bus-occupancy accounting snapshot for an [`EmulatedBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// User-space reads issued.
    pub reads: u64,
    /// User-space writes issued.
    pub writes: u64,
    /// Writes that went through the latch queue.
    pub latched: u64,
    /// Total bus occupancy, ns.
    pub bus_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msr::MSR_PKG_ENERGY_STATUS;
    use crate::time::MS;

    #[test]
    fn latch_applies_after_the_delay_and_hints_the_horizon() {
        let mut b = EmulatedBackend::new(SimBackend::new(), 2 * MS, 0);
        b.advance_to(MS);
        b.write(MSR_PKG_POWER_LIMIT, 0xCAFE).unwrap();
        assert_eq!(b.hw_read(MSR_PKG_POWER_LIMIT), 0, "not latched yet");
        assert_eq!(b.read(MSR_PKG_POWER_LIMIT), Ok(0), "read-back sees old");
        assert_eq!(b.next_event_hint(MS), Some(3 * MS));
        b.advance_to(3 * MS);
        assert_eq!(b.hw_read(MSR_PKG_POWER_LIMIT), 0xCAFE);
        assert_eq!(b.next_event_hint(3 * MS), None, "queue drained");
        let s = b.bus_stats().unwrap();
        assert_eq!((s.writes, s.latched), (1, 1));
    }

    #[test]
    fn decode_masks_reserved_bits() {
        let mut b = EmulatedBackend::new(SimBackend::new(), 0, 0);
        b.write(IA32_PERF_CTL, 0xDEAD_BEEF).unwrap();
        assert_eq!(b.hw_read(IA32_PERF_CTL), 0xDEAD_BEEF & 0xFF00);
        b.write(IA32_CLOCK_MODULATION, 0xFF).unwrap();
        assert_eq!(b.hw_read(IA32_CLOCK_MODULATION), 0x1F);
    }

    #[test]
    fn last_write_wins_when_latches_collide() {
        let mut b = EmulatedBackend::new(SimBackend::new(), MS, 0);
        b.write(MSR_PKG_POWER_LIMIT, 0x1).unwrap();
        b.write(MSR_PKG_POWER_LIMIT, 0x2).unwrap();
        b.advance_to(MS);
        assert_eq!(b.hw_read(MSR_PKG_POWER_LIMIT), 0x2);
    }

    #[test]
    fn access_cost_accrues_into_bus_time() {
        let mut b = EmulatedBackend::new(SimBackend::new(), 0, 3);
        let _ = b.read(MSR_PKG_ENERGY_STATUS);
        let _ = b.write(MSR_PKG_POWER_LIMIT, 0);
        assert_eq!(b.bus_stats().unwrap().bus_ns, 6);
    }
}
