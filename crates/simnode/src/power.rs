//! Core power model.
//!
//! Per-core power is the sum of a *dynamic* term `C · V(f)² · f` and a
//! *static* (leakage) term proportional to voltage. The voltage/frequency
//! curve is linear above a floor frequency and clamped at `v_min` below it.
//! This floor is what makes the effective exponent of `P ∝ f^α` drift:
//!
//! - near the top of the ladder, voltage scales with frequency, so power
//!   grows ~cubically (α ≈ 3);
//! - below the voltage floor, only `f` scales, so power grows linearly
//!   (α ≈ 1).
//!
//! The paper fixes α = 2 in its model and reports that the "true" value
//! drifts between 1 and 4 depending on the cap range (Section VI.3); this
//! model reproduces that drift mechanistically.

use serde::{Deserialize, Serialize};

use crate::ddcm::DutyCycle;
use crate::freq::{FrequencyLadder, PState};

/// Parameters for the per-core power model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorePowerConfig {
    /// Supply voltage at (and below) the voltage-floor frequency, in volts.
    pub v_min: f64,
    /// Supply voltage at the maximum ladder frequency, in volts.
    pub v_max: f64,
    /// Frequency (MHz) below which voltage stays at `v_min`.
    pub f_vfloor_mhz: f64,
    /// Maximum ladder frequency (MHz) at which `v_max` applies.
    pub f_vmax_mhz: f64,
    /// Convexity of the voltage/frequency curve: voltage follows
    /// `t^v_curve_exp` between the floor and `f_vmax`. Values above 1 make
    /// the top of the ladder voltage-hungry (effective alpha ~ 2.2-2.7
    /// there) while the floor region stays alpha ~ 1 — the drift the paper
    /// observes (alpha between 1 and 4 depending on the cap range).
    pub v_curve_exp: f64,
    /// Effective switched capacitance: dynamic W per (GHz · V²) per core at
    /// full activity.
    pub c_dyn: f64,
    /// Leakage coefficient: static W per volt per core.
    pub leak_per_volt: f64,
}

impl CorePowerConfig {
    /// Supply voltage at core frequency `f_mhz`.
    pub fn voltage(&self, f_mhz: f64) -> f64 {
        if f_mhz <= self.f_vfloor_mhz {
            self.v_min
        } else {
            let t = ((f_mhz - self.f_vfloor_mhz) / (self.f_vmax_mhz - self.f_vfloor_mhz))
                .clamp(0.0, 1.0);
            self.v_min + t.powf(self.v_curve_exp) * (self.v_max - self.v_min)
        }
    }

    /// Dynamic power of one fully active core at `f_mhz`, full duty, in W.
    pub fn dynamic_full(&self, f_mhz: f64) -> f64 {
        let v = self.voltage(f_mhz);
        self.c_dyn * v * v * (f_mhz * 1e-3)
    }

    /// Dynamic power of one core at `f_mhz` with duty cycle `duty` and
    /// activity factor `activity` in [0, 1].
    ///
    /// DDCM gates the clock, so dynamic power scales with the duty
    /// fraction; leakage (static) does not, which is exactly why duty
    /// cycling is a power-inefficient last resort for RAPL.
    pub fn dynamic(&self, f_mhz: f64, duty: DutyCycle, activity: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&activity));
        self.dynamic_full(f_mhz) * duty.fraction() * activity
    }

    /// Static (leakage) power of one powered core at `f_mhz`, in W.
    pub fn static_power(&self, f_mhz: f64) -> f64 {
        self.leak_per_volt * self.voltage(f_mhz)
    }

    /// Total power of one core given its utilisation mix.
    ///
    /// `activity` is the effective dynamic-activity factor over the
    /// interval (1.0 for pure compute or spin, `stall_dyn_frac` while
    /// memory-stalled, 0 when idle); `cstate_frac` scales leakage when the
    /// core is sleeping.
    pub fn core_power(&self, f_mhz: f64, duty: DutyCycle, activity: f64, static_scale: f64) -> f64 {
        self.dynamic(f_mhz, duty, activity) + self.static_power(f_mhz) * static_scale
    }

    /// Local power-law exponent α of `P_dyn(f)` at `f_mhz`, estimated by a
    /// centred finite difference on the log-log curve. Exposed for the α
    /// drift ablation (the paper assumes α = 2 everywhere).
    pub fn local_alpha(&self, f_mhz: f64) -> f64 {
        let h = 25.0;
        let lo = (f_mhz - h).max(1.0);
        let hi = f_mhz + h;
        let p_lo = self.dynamic_full(lo);
        let p_hi = self.dynamic_full(hi);
        (p_hi / p_lo).ln() / (hi / lo).ln()
    }

    /// Validate physical plausibility.
    ///
    /// # Panics
    /// Panics on non-physical parameters.
    pub fn validate(&self) {
        assert!(self.v_min > 0.0 && self.v_max >= self.v_min, "bad voltages");
        assert!(
            self.f_vfloor_mhz > 0.0 && self.f_vmax_mhz > self.f_vfloor_mhz,
            "bad voltage-curve frequencies"
        );
        assert!(self.c_dyn > 0.0 && self.leak_per_volt >= 0.0);
        assert!(self.v_curve_exp > 0.0, "voltage curve exponent positive");
    }
}

/// Per-P-state lookup tables for the quantities the step hot path and the
/// RAPL controller's actuator search recompute constantly: frequency as a
/// float, full-duty/full-activity dynamic power, and static (leakage) power.
///
/// The voltage curve behind [`CorePowerConfig::dynamic_full`] and
/// [`CorePowerConfig::static_power`] costs a `powf` per evaluation; the
/// ladder is tiny and immutable, so evaluating each rung once at node
/// construction removes transcendental math from the per-quantum loop
/// entirely. Table entries are the exact `f64`s the direct computation
/// produces, so switching to the tables is bit-neutral.
#[derive(Debug, Clone)]
pub struct PStateTables {
    mhz: Vec<f64>,
    dynamic_full: Vec<f64>,
    static_w: Vec<f64>,
}

impl PStateTables {
    /// Evaluate the power model at every rung of `ladder`.
    pub fn new(ladder: &FrequencyLadder, power: &CorePowerConfig) -> Self {
        let mhz: Vec<f64> = ladder.iter().map(|p| ladder.mhz(p) as f64).collect();
        let dynamic_full = mhz.iter().map(|&f| power.dynamic_full(f)).collect();
        let static_w = mhz.iter().map(|&f| power.static_power(f)).collect();
        Self {
            mhz,
            dynamic_full,
            static_w,
        }
    }

    /// Frequency of `p` in MHz, as `f64` (same value as
    /// `ladder.mhz(p) as f64`).
    pub fn mhz(&self, p: PState) -> f64 {
        self.mhz[p.0]
    }

    /// [`CorePowerConfig::dynamic_full`] at `p`.
    pub fn dynamic_full(&self, p: PState) -> f64 {
        self.dynamic_full[p.0]
    }

    /// [`CorePowerConfig::static_power`] at `p`.
    pub fn static_power(&self, p: PState) -> f64 {
        self.static_w[p.0]
    }
}

impl Default for CorePowerConfig {
    /// Calibrated so 24 fully active cores at 3300 MHz draw ≈ 133 W
    /// (dynamic + leakage), giving a ~145 W uncapped package for a
    /// compute-bound workload once the uncore floor is added.
    fn default() -> Self {
        Self {
            v_min: 0.67,
            v_max: 1.08,
            f_vfloor_mhz: 1400.0,
            f_vmax_mhz: 3300.0,
            v_curve_exp: 1.3,
            c_dyn: 1.27,
            leak_per_volt: 0.55,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CorePowerConfig {
        CorePowerConfig::default()
    }

    #[test]
    fn voltage_curve_has_floor_and_is_monotone() {
        let c = cfg();
        assert_eq!(c.voltage(1200.0), c.v_min);
        assert_eq!(c.voltage(1400.0), c.v_min);
        assert!((c.voltage(3300.0) - c.v_max).abs() < 1e-12);
        let mut prev = 0.0;
        for f in (1200..=3300).step_by(100) {
            let v = c.voltage(f as f64);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn alpha_drifts_from_one_to_about_three() {
        let c = cfg();
        let a_low = c.local_alpha(1250.0);
        let a_high = c.local_alpha(3200.0);
        assert!(
            (a_low - 1.0).abs() < 0.05,
            "below the voltage floor alpha ~= 1, got {a_low}"
        );
        assert!(
            a_high > 2.0 && a_high < 3.5,
            "near fmax alpha should be ~2.5-3, got {a_high}"
        );
    }

    #[test]
    fn duty_cycle_scales_dynamic_only() {
        let c = cfg();
        let full = c.core_power(3300.0, DutyCycle::FULL, 1.0, 1.0);
        let half = c.core_power(3300.0, DutyCycle::new(8), 1.0, 1.0);
        let stat = c.static_power(3300.0);
        assert!((half - (stat + (full - stat) * 0.5)).abs() < 1e-9);
    }

    #[test]
    fn package_scale_sanity() {
        // 24 fully active cores at fmax should land near 133 W.
        let c = cfg();
        let per_core = c.core_power(3300.0, DutyCycle::FULL, 1.0, 1.0);
        let pkg_cores = 24.0 * per_core;
        assert!(
            (120.0..150.0).contains(&pkg_cores),
            "24-core power at fmax = {pkg_cores:.1} W outside calibration band"
        );
    }

    #[test]
    fn idle_core_draws_only_leakage() {
        let c = cfg();
        let p = c.core_power(1200.0, DutyCycle::FULL, 0.0, 1.0);
        assert!((p - c.static_power(1200.0)).abs() < 1e-12);
    }
}
