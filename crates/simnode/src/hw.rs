//! One-stop prelude for the hardware boundary.
//!
//! Downstream crates (the NRM daemons, the experiment runner, tests)
//! used to reach into `simnode::msr` for register constants and into
//! scattered modules for device types. This module re-exports the whole
//! surface flat, so a consumer writes
//!
//! ```
//! use simnode::hw::{BackendKind, MsrDevice, MSR_PKG_POWER_LIMIT};
//!
//! let d = MsrDevice::builder()
//!     .backend(BackendKind::Sim)
//!     .build()
//!     .unwrap();
//! assert!(d.read(MSR_PKG_POWER_LIMIT).is_ok());
//! ```
//!
//! and never needs to know which module a name lives in.

pub use crate::backend::{
    default_permission, BackendKind, BusStats, Capabilities, EmulatedBackend, MsrBackend,
    MsrDeviceBuilder, SimBackend,
};
#[cfg(feature = "rapl")]
pub use crate::backend::{discover_packages, LinuxRaplBackend, PackageInfo};
pub use crate::msr::{
    decode_perf_ctl, encode_perf_ctl, MsrDevice, MsrError, Permission, PowerLimit, RaplUnits,
    IA32_APERF, IA32_CLOCK_MODULATION, IA32_MPERF, IA32_PERF_CTL, MSR_ANY, MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_LIMIT, MSR_RAPL_POWER_UNIT,
};
