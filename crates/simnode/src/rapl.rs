//! The RAPL package power-cap controller.
//!
//! The paper treats RAPL as a black box and notes "no published work
//! accurately describes or models RAPL's internal behavior" (§V.A.1). This
//! module is our mechanistic stand-in, built to match the *observable*
//! behaviour the paper reports:
//!
//! 1. **Application-aware budget split** (paper Fig. 2): the package budget
//!    is divided between core and uncore in proportion to their *observed
//!    demand* — a compute-bound code gets nearly the whole budget as core
//!    power and hence a higher frequency than a memory-bound code under the
//!    same cap.
//! 2. **DVFS first**: the controller selects the highest P-state whose
//!    estimated core power fits the core budget.
//! 3. **DDCM fallback**: if even the lowest P-state exceeds the budget,
//!    clock modulation engages. This is disproportionately harmful to
//!    progress (leakage and uncore power remain), and is exactly the
//!    mechanism behind the paper's model *under*-estimating the impact of
//!    stringent caps (Fig. 4a, 4d).
//! 4. **Uncore frequency scaling**: the uncore budget selects an uncore
//!    level; throttling it cuts memory bandwidth, the second mechanism the
//!    paper's DVFS-only model cannot see (Fig. 5).
//! 5. **Averaging feedback**: a small integral term steers the rolling
//!    average over the programmed time window toward the cap, mirroring
//!    RAPL's "average power over the time window" contract.

use serde::{Deserialize, Serialize};

use crate::bandwidth::UncoreLevel;
use crate::config::NodeConfig;
use crate::ddcm::DutyCycle;
use crate::freq::PState;
use crate::msr::{MsrDevice, PowerLimit, MSR_PKG_POWER_LIMIT};
use crate::power::PStateTables;

/// Aggregate activity observed over the last control period, used by the
/// controller to estimate core/uncore power demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivitySnapshot {
    /// Sum over cores of the dynamic-activity factor (1.0 = fully active).
    pub compute_weight: f64,
    /// Sum over cores of the *busy* (unhalted) fraction — compute and
    /// memory-stall time both count. The controller budgets against this
    /// pessimistic weight: a stalled core is unhalted and can turn fully
    /// active within the averaging window, so the chosen P-state must be
    /// safe even then. This is what pushes memory-bound codes to lower
    /// frequencies than compute-bound ones under the same cap (Fig. 2).
    pub busy_weight: f64,
    /// Number of cores that are powered (not in a sleep C-state).
    pub powered_cores: f64,
    /// Number of cores with outstanding memory traffic.
    pub mem_active: usize,
    /// Achieved memory traffic over the period, bytes/s.
    pub achieved_bw: f64,
}

impl ActivitySnapshot {
    /// A snapshot representing a completely idle node.
    pub fn idle(cores: usize) -> Self {
        Self {
            compute_weight: 0.0,
            busy_weight: 0.0,
            powered_cores: cores as f64,
            mem_active: 0,
            achieved_bw: 0.0,
        }
    }
}

/// The actuator settings chosen by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Actuation {
    /// Core P-state.
    pub pstate: PState,
    /// DDCM duty cycle.
    pub duty: DutyCycle,
    /// Uncore frequency level.
    pub uncore: UncoreLevel,
}

/// RAPL controller state.
#[derive(Debug, Clone)]
pub struct RaplController {
    /// Integral feedback correction, watts.
    bias_w: f64,
    /// Last decoded power limit (for introspection/tests).
    last_limit: Option<f64>,
    /// Uncore level programmed by the previous decision; used to scale
    /// *achieved* traffic back into a *demand* estimate (throttled traffic
    /// under-reports demand, which would otherwise starve the uncore
    /// through positive feedback).
    last_uncore: Option<UncoreLevel>,
}

impl RaplController {
    /// A freshly reset controller.
    pub fn new() -> Self {
        Self {
            bias_w: 0.0,
            last_limit: None,
            last_uncore: None,
        }
    }

    /// The cap decoded from the MSR at the last control decision, if any.
    pub fn last_limit(&self) -> Option<f64> {
        self.last_limit
    }

    /// Make a control decision for the next period.
    ///
    /// `tables` must be built from `cfg`'s ladder and power model (the node
    /// owns one); `avg_power` is the measured rolling-average package power
    /// over the programmed RAPL window.
    pub fn control(
        &mut self,
        cfg: &NodeConfig,
        msr: &MsrDevice,
        tables: &PStateTables,
        activity: &ActivitySnapshot,
        avg_power: f64,
    ) -> Actuation {
        let limit = PowerLimit::decode(msr.hw_read(MSR_PKG_POWER_LIMIT), msr.units());
        self.last_limit = limit.watts;

        let Some(cap) = limit.watts else {
            // Uncapped: run everything flat out.
            self.bias_w = 0.0;
            self.last_uncore = Some(cfg.uncore.max_level());
            return Actuation {
                pstate: cfg.ladder.max_pstate(),
                duty: DutyCycle::FULL,
                uncore: cfg.uncore.max_level(),
            };
        };

        // Integral feedback on the rolling average. Gain and clamp are small:
        // the demand estimator does the heavy lifting, feedback only trims
        // estimation error.
        if avg_power > 0.0 {
            self.bias_w += 0.15 * (cap - avg_power);
            // Small clamp: RAPL is conservative — it reclaims headroom
            // cautiously, so estimator-driven undershoot (memory-bound
            // codes) largely persists rather than being fed back into
            // frequency.
            self.bias_w = self.bias_w.clamp(-0.10 * cap, 0.10 * cap);
        }
        let budget = (cap + self.bias_w).max(1.0);

        // Demand estimation at full throttle ("what would each domain draw
        // if unconstrained right now?").
        let core_demand =
            est_core_power(tables, cfg.ladder.max_pstate(), DutyCycle::FULL, activity);
        // Traffic achieved under a throttled uncore under-reports what the
        // cores would consume unthrottled; scale it back by the bandwidth
        // ratio of the level currently in force.
        let demand_bw = match self.last_uncore {
            Some(l) => (activity.achieved_bw / cfg.uncore.scale(l)).min(cfg.uncore.peak_bw),
            None => activity.achieved_bw,
        };
        let uncore_demand = cfg.uncore.power(cfg.uncore.max_level(), demand_bw);

        // Application-aware split (paper Fig. 2): the budget divides in
        // proportion to observed demand, so a compute-bound code pushes
        // nearly the whole cap into the core domain while a streaming code
        // cedes a large share to the uncore. Whatever the cores cannot use
        // (P-state quantization) flows back to the uncore.
        let total_demand = (core_demand + uncore_demand).max(1e-9);
        let core_budget = budget * core_demand / total_demand;
        let uncore_budget0 = budget - core_budget;

        // DVFS: highest P-state fitting the core budget.
        let mut pstate = cfg.ladder.min_pstate();
        let mut fits = false;
        for p in cfg.ladder.iter().rev() {
            if est_core_power(tables, p, DutyCycle::FULL, activity) <= core_budget {
                pstate = p;
                fits = true;
                break;
            }
        }

        // DDCM fallback at the lowest P-state.
        let duty = if fits {
            DutyCycle::FULL
        } else {
            DutyCycle::all()
                .rev()
                .find(|&d| {
                    est_core_power(tables, cfg.ladder.min_pstate(), d, activity) <= core_budget
                })
                .unwrap_or(DutyCycle::MIN)
        };

        // Core surplus (quantization slack) flows to the uncore.
        let core_est = est_core_power(tables, pstate, duty, activity);
        let uncore_budget = uncore_budget0 + (core_budget - core_est).max(0.0);

        // Uncore: highest level fitting the uncore budget, assuming traffic
        // saturates whatever bandwidth the level offers (worst case).
        let uncore = cfg
            .uncore
            .iter_levels()
            .rev()
            .find(|&l| {
                let bw = demand_bw.min(cfg.uncore.total_bw(l));
                cfg.uncore.power(l, bw) <= uncore_budget + 1e-9
            })
            .unwrap_or(cfg.uncore.min_level());
        self.last_uncore = Some(uncore);

        Actuation {
            pstate,
            duty,
            uncore,
        }
    }
}

/// Estimated aggregate core power at P-state `p` / duty `duty`.
/// Deliberately pessimistic: unhalted (busy) cores are budgeted at
/// full dynamic activity, because RAPL must hold the cap even if their
/// stall time turns into compute within the averaging window.
fn est_core_power(
    tables: &PStateTables,
    p: PState,
    duty: DutyCycle,
    activity: &ActivitySnapshot,
) -> f64 {
    let dyn_p = tables.dynamic_full(p) * duty.fraction() * activity.busy_weight;
    let static_p = tables.static_power(p) * activity.powered_cores;
    dyn_p + static_p
}

impl Default for RaplController {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msr::MSR_PKG_POWER_LIMIT;
    use crate::time::MS;

    fn capped_msr(watts: f64) -> MsrDevice {
        let mut msr = MsrDevice::default();
        let units = msr.units();
        let raw = PowerLimit {
            watts: Some(watts),
            window: 10 * MS,
        }
        .encode(units);
        msr.write(MSR_PKG_POWER_LIMIT, raw).unwrap();
        msr
    }

    fn compute_bound(cores: usize) -> ActivitySnapshot {
        ActivitySnapshot {
            compute_weight: cores as f64,
            busy_weight: cores as f64,
            powered_cores: cores as f64,
            mem_active: 0,
            achieved_bw: 3.0e9,
        }
    }

    fn memory_bound(cores: usize) -> ActivitySnapshot {
        // Cores 100% busy (37% compute, 63% stall), pushing 95 GB/s.
        ActivitySnapshot {
            compute_weight: cores as f64 * 0.72,
            busy_weight: cores as f64,
            powered_cores: cores as f64,
            mem_active: cores,
            achieved_bw: 95.0e9,
        }
    }

    #[test]
    fn uncapped_runs_flat_out() {
        let cfg = NodeConfig::default();
        let tables = PStateTables::new(&cfg.ladder, &cfg.core_power);
        let msr = MsrDevice::default();
        let mut r = RaplController::new();
        let a = r.control(&cfg, &msr, &tables, &compute_bound(24), 150.0);
        assert_eq!(a.pstate, cfg.ladder.max_pstate());
        assert_eq!(a.duty, DutyCycle::FULL);
        assert_eq!(a.uncore, cfg.uncore.max_level());
    }

    #[test]
    fn application_aware_split_gives_compute_bound_higher_frequency() {
        // Paper Fig. 2: under the same cap, RAPL runs compute-bound codes at
        // a higher frequency than memory-bound ones.
        let cfg = NodeConfig::default();
        let tables = PStateTables::new(&cfg.ladder, &cfg.core_power);
        let msr = capped_msr(90.0);
        let mut r1 = RaplController::new();
        let mut r2 = RaplController::new();
        let a_compute = r1.control(&cfg, &msr, &tables, &compute_bound(24), 90.0);
        let a_memory = r2.control(&cfg, &msr, &tables, &memory_bound(24), 90.0);
        let f_c = cfg.ladder.mhz(a_compute.pstate);
        let f_m = cfg.ladder.mhz(a_memory.pstate);
        assert!(
            f_c > f_m,
            "compute-bound f={f_c} MHz should exceed memory-bound f={f_m} MHz"
        );
    }

    #[test]
    fn stringent_cap_engages_ddcm() {
        // Below ~25 W of core budget even f_min exceeds the allocation
        // (24 cores x ~1.05 W), so clock modulation must engage.
        let cfg = NodeConfig::default();
        let tables = PStateTables::new(&cfg.ladder, &cfg.core_power);
        let msr = capped_msr(25.0);
        let mut r = RaplController::new();
        let a = r.control(&cfg, &msr, &tables, &compute_bound(24), 25.0);
        assert_eq!(a.pstate, cfg.ladder.min_pstate());
        assert!(!a.duty.is_full(), "expected duty cycling under a 25 W cap");
    }

    #[test]
    fn stringent_cap_throttles_uncore_for_streaming() {
        let cfg = NodeConfig::default();
        let tables = PStateTables::new(&cfg.ladder, &cfg.core_power);
        let msr = capped_msr(50.0);
        let mut r = RaplController::new();
        let a = r.control(&cfg, &msr, &tables, &memory_bound(24), 50.0);
        assert!(
            a.uncore < cfg.uncore.max_level(),
            "expected uncore throttling for a streaming workload at 50 W"
        );
    }

    #[test]
    fn mild_cap_keeps_uncore_bandwidth_unconstraining_for_compute_bound() {
        // The proportional split may drop the uncore a rung or two for a
        // compute-bound code, but never so far that bandwidth becomes the
        // constraint for its tiny traffic.
        let cfg = NodeConfig::default();
        let tables = PStateTables::new(&cfg.ladder, &cfg.core_power);
        let msr = capped_msr(120.0);
        let mut r = RaplController::new();
        let act = compute_bound(24);
        let a = r.control(&cfg, &msr, &tables, &act, 120.0);
        assert!(
            cfg.uncore.total_bw(a.uncore) > 4.0 * act.achieved_bw,
            "uncore bandwidth at level {:?} would constrain a 3 GB/s code",
            a.uncore
        );
        assert!(a.duty.is_full());
    }

    #[test]
    fn feedback_bias_pulls_budget_down_when_over_cap() {
        let cfg = NodeConfig::default();
        let tables = PStateTables::new(&cfg.ladder, &cfg.core_power);
        let msr = capped_msr(80.0);
        let mut r = RaplController::new();
        let a1 = r.control(&cfg, &msr, &tables, &compute_bound(24), 80.0);
        // Report sustained overshoot; chosen frequency must not increase.
        let mut last = a1.pstate;
        for _ in 0..20 {
            let a = r.control(&cfg, &msr, &tables, &compute_bound(24), 95.0);
            assert!(a.pstate <= last);
            last = a.pstate;
        }
        assert!(last < a1.pstate, "bias should have reduced the P-state");
    }
}
