//! Model-specific registers (MSRs) with an `msr-safe`-style allow-list.
//!
//! The paper's power-policy daemon talks to hardware exclusively through
//! `libmsr` on top of the `msr-safe` kernel module, which exposes a
//! whitelisted subset of MSRs to non-root users. This module reproduces
//! that interface: [`MsrDevice`] is the user-facing door — an allow-list
//! with independent read/write permission and faithful RAPL register
//! encodings (`MSR_RAPL_POWER_UNIT`, `MSR_PKG_POWER_LIMIT` with the real
//! `(1 + F/4)·2^Y` time-window format, and the 32-bit wrapping
//! `MSR_PKG_ENERGY_STATUS` counter).
//!
//! The register file behind the door is pluggable: the device owns a
//! `Box<dyn `[`MsrBackend`]`>` (see [`crate::backend`]) — the closed-form
//! simulated file, the emulated bus engine, or (with `--features rapl`)
//! real Linux RAPL. Devices are constructed through [`MsrDevice::builder`].

use crate::backend::{BusStats, Capabilities, MsrBackend, MsrDeviceBuilder};
use crate::faults::FaultStats;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// `MSR_RAPL_POWER_UNIT`: unit definitions for the RAPL registers.
pub const MSR_RAPL_POWER_UNIT: u32 = 0x606;
/// `MSR_PKG_POWER_LIMIT`: package power cap control.
pub const MSR_PKG_POWER_LIMIT: u32 = 0x610;
/// `MSR_PKG_ENERGY_STATUS`: wrapping package energy counter.
pub const MSR_PKG_ENERGY_STATUS: u32 = 0x611;
/// `IA32_PERF_CTL`: requested P-state (frequency / 100 MHz in bits 8..16).
pub const IA32_PERF_CTL: u32 = 0x199;
/// `IA32_CLOCK_MODULATION`: DDCM duty-cycle control.
pub const IA32_CLOCK_MODULATION: u32 = 0x19A;
/// `IA32_MPERF`: cycles at nominal frequency while unhalted.
pub const IA32_MPERF: u32 = 0xE7;
/// `IA32_APERF`: actual unhalted cycles; `APERF/MPERF` gives the effective
/// frequency ratio, which is how tools measure frequency under RAPL.
pub const IA32_APERF: u32 = 0xE8;

/// Pseudo-address used by [`MsrError::Unsupported`] when the *whole
/// backend* — not one register — is unavailable (feature compiled out,
/// package or `/dev/cpu/N/msr` missing, fault plan on real hardware).
pub const MSR_ANY: u32 = u32::MAX;

/// Errors surfaced by the MSR device, mirroring what `msr-safe` returns to
/// user space.
///
/// Marked `#[non_exhaustive]`: backends may grow new failure modes
/// (as [`MsrError::Unsupported`] did when real-hardware probing arrived),
/// and downstream matches must keep a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MsrError {
    /// The register exists but the allow-list denies this access.
    NotAllowed(u32),
    /// The register is not implemented by this model.
    Unknown(u32),
    /// The access failed at the driver level (EIO), as injected by the
    /// fault layer ([`crate::faults`]) or returned by a real MSR device.
    /// Transient or persistent depending on the fault plan.
    Io(u32),
    /// The backend cannot serve this register at all: the capability was
    /// probed absent on real hardware, or ([`MSR_ANY`]) the backend
    /// itself is unavailable in this build or on this machine. The
    /// resilient daemon treats it like any other actuation failure and
    /// falls back.
    Unsupported(u32),
}

impl std::fmt::Display for MsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsrError::NotAllowed(a) => write!(f, "MSR {a:#x}: access denied by allow-list"),
            MsrError::Unknown(a) => write!(f, "MSR {a:#x}: not implemented"),
            MsrError::Io(a) => write!(f, "MSR {a:#x}: I/O error"),
            MsrError::Unsupported(a) if *a == MSR_ANY => {
                write!(
                    f,
                    "MSR backend: unavailable in this build or on this machine"
                )
            }
            MsrError::Unsupported(a) => write!(f, "MSR {a:#x}: unsupported by this backend"),
        }
    }
}

impl std::error::Error for MsrError {}

/// Per-register permissions, like an `msr-safe` whitelist entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Permission {
    /// Reads allowed.
    pub read: bool,
    /// Writes allowed.
    pub write: bool,
}

impl Permission {
    /// Read-only access.
    pub const RO: Permission = Permission {
        read: true,
        write: false,
    };
    /// Read-write access.
    pub const RW: Permission = Permission {
        read: true,
        write: true,
    };
}

/// The MSR device: the only door between control software and the
/// hardware (simulated or real) behind it.
///
/// This is a thin facade over an [`MsrBackend`]; every call delegates.
/// Construct one with [`MsrDevice::builder`] (or [`MsrDevice::default`]
/// for the plain simulated device the seed used).
#[derive(Debug)]
pub struct MsrDevice {
    backend: Box<dyn MsrBackend>,
}

impl MsrDevice {
    /// Start building a device: backend kind, allow-list entries,
    /// initial register values, fault plan.
    pub fn builder() -> MsrDeviceBuilder {
        MsrDeviceBuilder::new()
    }

    /// Wrap an already-constructed backend (the escape hatch for custom
    /// [`MsrBackend`] implementations outside this crate).
    pub fn from_backend(backend: Box<dyn MsrBackend>) -> Self {
        Self { backend }
    }

    /// What the backend can do; see [`Capabilities`].
    pub fn capabilities(&self) -> Capabilities {
        self.backend.capabilities()
    }

    /// Earliest instant strictly after `now` at which the backend could
    /// change state on its own (fault window opening/closing, deferred or
    /// latched cap writes applying) — an event horizon for the node's
    /// macro-step fast path. `None` when nothing is pending.
    pub fn next_event_hint(&self, now: Nanos) -> Option<Nanos> {
        self.backend.next_event_hint(now)
    }

    /// Injection counters, when a fault plan is installed.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.backend.fault_stats()
    }

    /// Bus-occupancy accounting, when the backend models access cost
    /// (the emulated tier does).
    pub fn bus_stats(&self) -> Option<BusStats> {
        self.backend.bus_stats()
    }

    /// Advance the device clock to `now`. The simulated node calls this
    /// once per quantum; simulated backends use it to fire fault onsets
    /// and apply deferred/latched writes whose delay has elapsed.
    pub fn advance_to(&mut self, now: Nanos) {
        self.backend.advance_to(now);
    }

    /// User-space read through the allow-list (and the fault layer, when
    /// one is installed).
    pub fn read(&self, addr: u32) -> Result<u64, MsrError> {
        self.backend.read(addr)
    }

    /// User-space write through the allow-list (and the fault layer, when
    /// one is installed).
    pub fn write(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        self.backend.write(addr, value)
    }

    /// Privileged (hardware-side) read, bypassing the allow-list. Used by
    /// the simulated silicon itself.
    pub fn hw_read(&self, addr: u32) -> u64 {
        self.backend.hw_read(addr)
    }

    /// Privileged (hardware-side) write, bypassing the allow-list.
    pub fn hw_write(&mut self, addr: u32, value: u64) {
        self.backend.hw_write(addr, value);
    }

    /// Accumulate `joules` into the wrapping 32-bit energy-status counter.
    pub fn hw_add_energy(&mut self, joules: f64) {
        let ticks = self.energy_ticks(joules);
        self.hw_add_energy_ticks(ticks);
    }

    /// `joules` converted to whole energy-status ticks, rounded exactly as
    /// [`hw_add_energy`](MsrDevice::hw_add_energy) rounds. The macro-step
    /// fast path uses this to add `k` quanta's worth of identical
    /// per-quantum ticks in one write, bit-identical to `k` separate
    /// `hw_add_energy` calls.
    pub fn energy_ticks(&self, joules: f64) -> u64 {
        (joules / self.units().energy_j).round() as u64
    }

    /// Add pre-converted ticks to the wrapping 32-bit energy counter.
    pub fn hw_add_energy_ticks(&mut self, ticks: u64) {
        let cur = self.hw_read(MSR_PKG_ENERGY_STATUS);
        self.hw_write(MSR_PKG_ENERGY_STATUS, (cur + ticks) & 0xFFFF_FFFF);
    }

    /// Decode the RAPL unit register.
    pub fn units(&self) -> RaplUnits {
        RaplUnits::decode(self.hw_read(MSR_RAPL_POWER_UNIT))
    }
}

impl Default for MsrDevice {
    /// The plain simulated device: default allow-list, power-on values,
    /// no faults — the seed's `MsrDevice::new()`.
    fn default() -> Self {
        MsrDeviceBuilder::new()
            .build()
            .expect("the simulated backend is infallible")
    }
}

/// Decoded `MSR_RAPL_POWER_UNIT` fields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RaplUnits {
    /// Power unit in watts (Skylake: 1/8 W).
    pub power_w: f64,
    /// Energy unit in joules (Skylake server: 2⁻¹⁴ J ≈ 61 µJ).
    pub energy_j: f64,
    /// Time unit in seconds (2⁻¹⁰ s ≈ 977 µs).
    pub time_s: f64,
}

impl RaplUnits {
    /// Raw Skylake-style value: PU=3, ESU=14, TU=10.
    pub const SKYLAKE_RAW: u64 = 3 | (14 << 8) | (10 << 16);

    /// Decode from the raw register value.
    pub fn decode(raw: u64) -> Self {
        let pu = raw & 0xF;
        let esu = (raw >> 8) & 0x1F;
        let tu = (raw >> 16) & 0xF;
        Self {
            power_w: (0.5f64).powi(pu as i32),
            energy_j: (0.5f64).powi(esu as i32),
            time_s: (0.5f64).powi(tu as i32),
        }
    }
}

/// Decoded `MSR_PKG_POWER_LIMIT` fields (power limit #1 only; the paper's
/// daemon programs a single limit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLimit {
    /// Cap in watts; `None` when the enable bit is clear (uncapped).
    pub watts: Option<f64>,
    /// Averaging time window in nanoseconds.
    pub window: Nanos,
}

impl PowerLimit {
    /// Encode into the raw register format: bits 0..15 power (in power
    /// units), bit 15 enable, bit 16 clamp, bits 17..22 window exponent
    /// `Y`, bits 22..24 window fraction `F`, window = `(1 + F/4)·2^Y`
    /// time-units.
    pub fn encode(&self, units: RaplUnits) -> u64 {
        let mut raw = 0u64;
        if let Some(w) = self.watts {
            assert!(w > 0.0, "cap must be positive");
            let p = ((w / units.power_w).round() as u64).min(0x7FFF);
            raw |= p; // bits 0..15
            raw |= 1 << 15; // enable
            raw |= 1 << 16; // clamp
            let (y, f) = encode_time_window(self.window, units);
            raw |= (y as u64) << 17;
            raw |= (f as u64) << 22;
        }
        raw
    }

    /// Decode from the raw register format.
    pub fn decode(raw: u64, units: RaplUnits) -> Self {
        let enabled = raw & (1 << 15) != 0;
        let watts = if enabled {
            Some((raw & 0x7FFF) as f64 * units.power_w)
        } else {
            None
        };
        let y = (raw >> 17) & 0x1F;
        let f = (raw >> 22) & 0x3;
        let window_s = (1.0 + f as f64 / 4.0) * (2.0f64).powi(y as i32) * units.time_s;
        Self {
            watts,
            window: (window_s * 1e9).round() as Nanos,
        }
    }
}

/// Find the `(Y, F)` pair whose `(1 + F/4)·2^Y` time-units best
/// approximates `window`.
fn encode_time_window(window: Nanos, units: RaplUnits) -> (u8, u8) {
    let target = window as f64 / 1e9 / units.time_s;
    let mut best = (0u8, 0u8);
    let mut best_err = f64::INFINITY;
    for y in 0u8..32 {
        for f in 0u8..4 {
            let v = (1.0 + f as f64 / 4.0) * (2.0f64).powi(y as i32);
            let err = (v - target).abs();
            if err < best_err {
                best_err = err;
                best = (y, f);
            }
        }
    }
    best
}

/// Encode a requested frequency (MHz) into `IA32_PERF_CTL` format
/// (multiples of 100 MHz in bits 8..16).
pub fn encode_perf_ctl(mhz: u32) -> u64 {
    (u64::from(mhz) / 100) << 8
}

/// Decode an `IA32_PERF_CTL` value into a requested frequency in MHz.
/// Returns `None` for the power-on value 0 (no request).
pub fn decode_perf_ctl(raw: u64) -> Option<u32> {
    let ratio = (raw >> 8) & 0xFF;
    if ratio == 0 {
        None
    } else {
        Some(ratio as u32 * 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MS;

    #[test]
    fn allowlist_blocks_energy_writes() {
        let mut d = MsrDevice::default();
        assert_eq!(
            d.write(MSR_PKG_ENERGY_STATUS, 1),
            Err(MsrError::NotAllowed(MSR_PKG_ENERGY_STATUS))
        );
        assert_eq!(d.read(0xDEAD), Err(MsrError::Unknown(0xDEAD)));
    }

    #[test]
    fn units_decode_skylake() {
        let u = RaplUnits::decode(RaplUnits::SKYLAKE_RAW);
        assert!((u.power_w - 0.125).abs() < 1e-12);
        assert!((u.energy_j - 6.103515625e-5).abs() < 1e-15);
        assert!((u.time_s - 9.765625e-4).abs() < 1e-12);
    }

    #[test]
    fn power_limit_roundtrip() {
        let u = RaplUnits::decode(RaplUnits::SKYLAKE_RAW);
        let pl = PowerLimit {
            watts: Some(95.0),
            window: 10 * MS,
        };
        let decoded = PowerLimit::decode(pl.encode(u), u);
        assert_eq!(decoded.watts, Some(95.0));
        // Window quantization: must land within 25% of the request.
        let w = decoded.window as f64;
        assert!((w - (10 * MS) as f64).abs() / (10 * MS) as f64 <= 0.25);
    }

    #[test]
    fn disabled_limit_decodes_to_uncapped() {
        let u = RaplUnits::decode(RaplUnits::SKYLAKE_RAW);
        let pl = PowerLimit {
            watts: None,
            window: 0,
        };
        assert_eq!(PowerLimit::decode(pl.encode(u), u).watts, None);
    }

    #[test]
    fn energy_counter_wraps_at_32_bits() {
        let mut d = MsrDevice::default();
        let u = d.units();
        // Push the counter near the wrap point, then over it.
        d.hw_write(MSR_PKG_ENERGY_STATUS, 0xFFFF_FFFE);
        d.hw_add_energy(u.energy_j * 5.0);
        assert_eq!(d.hw_read(MSR_PKG_ENERGY_STATUS), 3);
    }

    #[test]
    fn perf_ctl_roundtrip() {
        assert_eq!(decode_perf_ctl(encode_perf_ctl(2600)), Some(2600));
        assert_eq!(decode_perf_ctl(0), None);
    }

    #[test]
    fn fault_free_device_never_takes_fault_paths() {
        let mut d = MsrDevice::default();
        d.advance_to(5 * MS);
        assert_eq!(d.fault_stats().map(|s| s.reads_failed()), None);
        assert!(d.read(MSR_PKG_ENERGY_STATUS).is_ok());
        assert!(d.write(MSR_PKG_POWER_LIMIT, 0).is_ok());
    }

    #[test]
    fn injected_read_error_surfaces_as_io() {
        use crate::faults::{FaultPlan, FaultWindow};
        let mut d = MsrDevice::builder()
            .faults(FaultPlan::new(1).read_error(
                MSR_PKG_ENERGY_STATUS,
                1.0,
                FaultWindow::new(MS, 2 * MS),
            ))
            .build()
            .unwrap();
        assert!(d.read(MSR_PKG_ENERGY_STATUS).is_ok(), "before window");
        d.advance_to(MS);
        assert_eq!(
            d.read(MSR_PKG_ENERGY_STATUS),
            Err(MsrError::Io(MSR_PKG_ENERGY_STATUS))
        );
        assert!(d.read(MSR_PKG_POWER_LIMIT).is_ok(), "other regs fine");
        d.advance_to(2 * MS);
        assert!(d.read(MSR_PKG_ENERGY_STATUS).is_ok(), "after window");
        assert_eq!(d.fault_stats().unwrap().reads_failed(), 1);
    }

    #[test]
    fn stuck_counter_freezes_reads_but_not_hardware() {
        use crate::faults::{FaultPlan, FaultWindow};
        let mut d = MsrDevice::builder()
            .faults(FaultPlan::new(1).stuck_energy(FaultWindow::new(MS, 10 * MS)))
            .build()
            .unwrap();
        let u = d.units();
        d.hw_write(MSR_PKG_ENERGY_STATUS, 1000);
        d.advance_to(MS);
        d.hw_add_energy(u.energy_j * 500.0);
        assert_eq!(d.read(MSR_PKG_ENERGY_STATUS), Ok(1000), "frozen at onset");
        assert_eq!(d.hw_read(MSR_PKG_ENERGY_STATUS), 1500, "silicon truthful");
        d.advance_to(10 * MS);
        assert_eq!(d.read(MSR_PKG_ENERGY_STATUS), Ok(1500), "thawed");
    }

    #[test]
    fn delayed_cap_write_reports_success_but_latches_late() {
        use crate::faults::{FaultPlan, FaultWindow};
        let mut d = MsrDevice::builder()
            .faults(FaultPlan::new(1).delayed_cap_latch(5 * MS, FaultWindow::ALWAYS))
            .build()
            .unwrap();
        d.advance_to(MS);
        assert!(d.write(MSR_PKG_POWER_LIMIT, 0xCAFE).is_ok());
        assert_eq!(d.hw_read(MSR_PKG_POWER_LIMIT), 0, "not latched yet");
        assert_eq!(d.read(MSR_PKG_POWER_LIMIT), Ok(0), "read-back sees it");
        d.advance_to(6 * MS);
        assert_eq!(d.hw_read(MSR_PKG_POWER_LIMIT), 0xCAFE);
    }

    #[test]
    fn cap_quantized_to_eighth_watt() {
        let u = RaplUnits::decode(RaplUnits::SKYLAKE_RAW);
        let pl = PowerLimit {
            watts: Some(80.3),
            window: MS,
        };
        let d = PowerLimit::decode(pl.encode(u), u);
        assert!((d.watts.unwrap() - 80.25).abs() < 1e-9);
    }

    #[test]
    fn error_display_names_the_register_and_mode() {
        assert_eq!(
            MsrError::NotAllowed(MSR_PKG_ENERGY_STATUS).to_string(),
            "MSR 0x611: access denied by allow-list"
        );
        assert_eq!(
            MsrError::Unknown(0xDEAD).to_string(),
            "MSR 0xdead: not implemented"
        );
        assert_eq!(MsrError::Io(0x610).to_string(), "MSR 0x610: I/O error");
        assert_eq!(
            MsrError::Unsupported(IA32_CLOCK_MODULATION).to_string(),
            "MSR 0x19a: unsupported by this backend"
        );
        assert_eq!(
            MsrError::Unsupported(MSR_ANY).to_string(),
            "MSR backend: unavailable in this build or on this machine"
        );
    }
}
