//! Package energy accounting and rolling-average power measurement.
//!
//! RAPL enforces an *average* power over a programmable time window, so the
//! controller needs the average package power over the last `W` nanoseconds.
//! [`EnergyMeter`] keeps cumulative energy samples in a ring and answers
//! that query in O(1) amortised.

use std::collections::VecDeque;

use crate::time::{secs, Nanos};

/// Cumulative package energy with a bounded history for windowed averages.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    /// Total energy since construction, joules.
    total_j: f64,
    /// (time, cumulative joules) history, oldest first.
    history: VecDeque<(Nanos, f64)>,
    /// How much history to retain.
    retain: Nanos,
}

impl EnergyMeter {
    /// Create a meter retaining at least `retain` nanoseconds of history.
    pub fn new(retain: Nanos) -> Self {
        let mut history = VecDeque::with_capacity(256);
        history.push_back((0, 0.0));
        Self {
            total_j: 0.0,
            history,
            retain,
        }
    }

    /// Record that `joules` were consumed by time `now`.
    ///
    /// # Panics
    /// Panics if `now` moves backwards.
    pub fn record(&mut self, now: Nanos, joules: f64) {
        let last_t = self.history.back().expect("never empty").0;
        assert!(now >= last_t, "energy recorded out of order");
        self.total_j += joules;
        self.history.push_back((now, self.total_j));
        // Trim history older than the retention window, but always keep one
        // sample at or before the window edge so interpolation has an anchor.
        while self.history.len() > 2 {
            let second = self.history[1].0;
            if now.saturating_sub(second) >= self.retain {
                self.history.pop_front();
            } else {
                break;
            }
        }
    }

    /// Total energy consumed so far, joules.
    pub fn total_joules(&self) -> f64 {
        self.total_j
    }

    /// Average power over the trailing `window` ending at the latest sample,
    /// in watts. Shorter-than-window histories average over what exists.
    pub fn average_power(&self, window: Nanos) -> f64 {
        let &(t_end, e_end) = self.history.back().expect("never empty");
        let t_start = t_end.saturating_sub(window);
        // Find the cumulative energy at t_start by linear interpolation.
        let e_start = self.energy_at(t_start);
        let dt = secs(t_end - t_start.min(t_end));
        if dt <= 0.0 {
            return 0.0;
        }
        (e_end - e_start) / dt
    }

    /// Cumulative energy at time `t` (linear interpolation, clamped).
    fn energy_at(&self, t: Nanos) -> f64 {
        let h = &self.history;
        if t <= h.front().expect("never empty").0 {
            return h.front().expect("never empty").1;
        }
        // Binary search for the segment containing t.
        let idx = h.partition_point(|&(ht, _)| ht <= t);
        if idx >= h.len() {
            return h.back().expect("never empty").1;
        }
        let (t0, e0) = h[idx - 1];
        let (t1, e1) = h[idx];
        if t1 == t0 {
            return e1;
        }
        let frac = (t - t0) as f64 / (t1 - t0) as f64;
        e0 + frac * (e1 - e0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MS, SEC};

    #[test]
    fn constant_power_measures_exactly() {
        let mut m = EnergyMeter::new(SEC);
        // 100 W for one second in 1 ms quanta.
        for i in 1..=1000u64 {
            m.record(i * MS, 0.1);
        }
        assert!((m.average_power(SEC) - 100.0).abs() < 1e-6);
        assert!((m.total_joules() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn window_sees_only_recent_power() {
        let mut m = EnergyMeter::new(2 * SEC);
        // 1 s at 50 W then 1 s at 150 W.
        for i in 1..=1000u64 {
            m.record(i * MS, 0.05);
        }
        for i in 1001..=2000u64 {
            m.record(i * MS, 0.15);
        }
        let recent = m.average_power(500 * MS);
        assert!((recent - 150.0).abs() < 1e-6, "recent avg = {recent}");
        let full = m.average_power(2 * SEC);
        assert!((full - 100.0).abs() < 1e-6, "full avg = {full}");
    }

    #[test]
    fn history_is_trimmed_but_average_stays_correct() {
        let mut m = EnergyMeter::new(100 * MS);
        for i in 1..=100_000u64 {
            m.record(i * MS, 0.2);
        }
        assert!(
            m.history.len() < 1000,
            "history grew unbounded: {}",
            m.history.len()
        );
        assert!((m.average_power(100 * MS) - 200.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn rejects_time_going_backwards() {
        let mut m = EnergyMeter::new(SEC);
        m.record(MS, 0.1);
        m.record(0, 0.1);
    }

    #[test]
    fn empty_meter_reports_zero() {
        let m = EnergyMeter::new(SEC);
        assert_eq!(m.average_power(SEC), 0.0);
        assert_eq!(m.total_joules(), 0.0);
    }
}
