//! Hardware performance counters.
//!
//! The node accumulates the three counters the paper uses through PAPI:
//! total instructions (`PAPI_TOT_INS`), unhalted cycles (`PAPI_TOT_CYC`) and
//! L3 total cache misses (`PAPI_L3_TCM`). The derived metrics — MIPS, IPC
//! and MPO (misses per operation) — are computed exactly as in the paper:
//! MPO = L3 misses / instructions (Section IV.A), MIPS over wall time.

use serde::{Deserialize, Serialize};

use crate::time::{secs, Nanos};

/// Monotonic counter accumulators for the whole package.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Counters {
    /// Retired instructions (all cores).
    pub instructions: f64,
    /// Unhalted core cycles (all cores).
    pub cycles: f64,
    /// L3 cache misses (all cores).
    pub l3_misses: f64,
}

impl Counters {
    /// Add another accumulator's deltas into this one.
    pub fn add(&mut self, other: &Counters) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.l3_misses += other.l3_misses;
    }

    /// Snapshot at time `now`, for later interval arithmetic.
    pub fn snapshot(&self, now: Nanos) -> CounterSnapshot {
        CounterSnapshot {
            at: now,
            counters: self.clone(),
        }
    }
}

/// A timestamped copy of [`Counters`], enabling interval metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Simulation time of the snapshot.
    pub at: Nanos,
    /// Counter values at `at`.
    pub counters: Counters,
}

impl CounterSnapshot {
    /// Interval metrics between `self` (earlier) and `later`.
    ///
    /// # Panics
    /// Panics if `later` precedes `self` in time.
    pub fn interval_to(&self, later: &CounterSnapshot) -> IntervalMetrics {
        assert!(later.at >= self.at, "snapshots out of order");
        let dt = secs(later.at - self.at);
        let di = later.counters.instructions - self.counters.instructions;
        let dc = later.counters.cycles - self.counters.cycles;
        let dm = later.counters.l3_misses - self.counters.l3_misses;
        IntervalMetrics {
            seconds: dt,
            instructions: di,
            cycles: dc,
            l3_misses: dm,
        }
    }
}

/// Derived metrics over a time interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalMetrics {
    /// Interval length in seconds.
    pub seconds: f64,
    /// Instructions retired in the interval.
    pub instructions: f64,
    /// Cycles elapsed in the interval.
    pub cycles: f64,
    /// L3 misses in the interval.
    pub l3_misses: f64,
}

impl IntervalMetrics {
    /// Million instructions per second over the interval (paper Table I).
    pub fn mips(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.instructions / self.seconds / 1e6
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles <= 0.0 {
            return 0.0;
        }
        self.instructions / self.cycles
    }

    /// Misses per operation: `PAPI_L3_TCM / PAPI_TOT_INS` (paper §IV.A).
    pub fn mpo(&self) -> f64 {
        if self.instructions <= 0.0 {
            return 0.0;
        }
        self.l3_misses / self.instructions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SEC;

    fn snap(at: Nanos, inst: f64, cyc: f64, miss: f64) -> CounterSnapshot {
        CounterSnapshot {
            at,
            counters: Counters {
                instructions: inst,
                cycles: cyc,
                l3_misses: miss,
            },
        }
    }

    #[test]
    fn mips_ipc_mpo_basic() {
        let a = snap(0, 0.0, 0.0, 0.0);
        let b = snap(2 * SEC, 4.0e9, 2.0e9, 4.0e6);
        let m = a.interval_to(&b);
        assert!((m.mips() - 2000.0).abs() < 1e-9);
        assert!((m.ipc() - 2.0).abs() < 1e-12);
        assert!((m.mpo() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn zero_intervals_do_not_divide_by_zero() {
        let a = snap(SEC, 1.0, 1.0, 1.0);
        let m = a.interval_to(&a.clone());
        assert_eq!(m.mips(), 0.0);
        let empty = snap(0, 0.0, 0.0, 0.0).interval_to(&snap(SEC, 0.0, 0.0, 0.0));
        assert_eq!(empty.ipc(), 0.0);
        assert_eq!(empty.mpo(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reversed_snapshots_panic() {
        let a = snap(SEC, 0.0, 0.0, 0.0);
        let b = snap(0, 0.0, 0.0, 0.0);
        let _ = a.interval_to(&b);
    }

    #[test]
    fn accumulate_adds_fields() {
        let mut a = Counters {
            instructions: 1.0,
            cycles: 2.0,
            l3_misses: 3.0,
        };
        a.add(&Counters {
            instructions: 10.0,
            cycles: 20.0,
            l3_misses: 30.0,
        });
        assert_eq!(a.instructions, 11.0);
        assert_eq!(a.cycles, 22.0);
        assert_eq!(a.l3_misses, 33.0);
    }
}
