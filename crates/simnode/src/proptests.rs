//! Property-based tests for the hardware substrate.
//!
//! These complement the per-module unit tests with randomized coverage of
//! encode/decode layers and physical invariants of the power models.

#![cfg(test)]

use proptest::prelude::*;

use crate::bandwidth::{UncoreConfig, UncoreLevel};
use crate::config::NodeConfig;
use crate::ddcm::DutyCycle;
use crate::energy::EnergyMeter;
use crate::freq::FrequencyLadder;
use crate::msr::{decode_perf_ctl, encode_perf_ctl, PowerLimit, RaplUnits};
use crate::power::CorePowerConfig;
use crate::time::{Nanos, MS};

proptest! {
    // -- MSR encodings ----------------------------------------------------

    #[test]
    fn power_limit_roundtrips_for_any_representable_cap(
        // The register's power field is 15 bits of 1/8 W units, so caps are
        // representable up to 4095.875 W; larger values saturate (as on
        // real hardware).
        watts in 1.0f64..4000.0,
        window_ms in 1u64..1000,
    ) {
        let units = RaplUnits::decode(RaplUnits::SKYLAKE_RAW);
        let pl = PowerLimit { watts: Some(watts), window: window_ms * MS };
        let back = PowerLimit::decode(pl.encode(units), units);
        let got = back.watts.expect("enabled bit survives");
        // Quantized to 1/8 W.
        prop_assert!((got - watts).abs() <= units.power_w / 2.0 + 1e-9);
        // Window within one (1 + F/4)·2^Y quantization step (≤ 25%).
        let w = back.window as f64 / (window_ms * MS) as f64;
        prop_assert!((0.75..=1.25).contains(&w), "window ratio {w}");
    }

    #[test]
    fn perf_ctl_roundtrips_in_100mhz_steps(mhz in 1u32..=255) {
        let mhz = mhz * 100;
        prop_assert_eq!(decode_perf_ctl(encode_perf_ctl(mhz)), Some(mhz));
    }

    #[test]
    fn duty_cycle_msr_roundtrips(raw in any::<u64>()) {
        // Decoding arbitrary register garbage yields a valid duty cycle,
        // and re-encoding a decoded value is stable.
        let d = DutyCycle::decode_msr(raw);
        prop_assert!((1..=16).contains(&d.sixteenths()));
        prop_assert_eq!(DutyCycle::decode_msr(d.encode_msr()), d);
    }

    // -- Power model physics ------------------------------------------------

    #[test]
    fn core_power_is_monotone_in_frequency(f1 in 1200.0f64..3300.0, df in 0.0f64..2000.0) {
        let c = CorePowerConfig::default();
        let f2 = (f1 + df).min(3300.0);
        let p1 = c.core_power(f1, DutyCycle::FULL, 1.0, 1.0);
        let p2 = c.core_power(f2, DutyCycle::FULL, 1.0, 1.0);
        prop_assert!(p2 >= p1 - 1e-12);
    }

    #[test]
    fn local_alpha_stays_in_the_papers_band(f in 1200.0f64..3250.0) {
        let c = CorePowerConfig::default();
        let a = c.local_alpha(f);
        prop_assert!((0.9..4.0).contains(&a), "alpha {a} at {f} MHz");
    }

    #[test]
    fn duty_cycling_only_ever_reduces_power(
        f in 1200.0f64..3300.0,
        duty in 1u8..=16,
        activity in 0.0f64..=1.0,
    ) {
        let c = CorePowerConfig::default();
        let full = c.core_power(f, DutyCycle::FULL, activity, 1.0);
        let gated = c.core_power(f, DutyCycle::new(duty), activity, 1.0);
        prop_assert!(gated <= full + 1e-12);
        // And never below pure leakage.
        prop_assert!(gated >= c.static_power(f) - 1e-12);
    }

    #[test]
    fn uncore_service_rate_monotone_in_level_and_antitone_in_pressure(
        level in 0usize..8,
        pressure in 1.0f64..64.0,
        mlp in 0.05f64..=1.0,
    ) {
        let u = UncoreConfig::default();
        let r = u.service_rate(UncoreLevel(level), pressure, mlp);
        prop_assert!(r > 0.0);
        if level + 1 < u.levels {
            prop_assert!(u.service_rate(UncoreLevel(level + 1), pressure, mlp) >= r - 1e-9);
        }
        prop_assert!(u.service_rate(UncoreLevel(level), pressure + 1.0, mlp) <= r + 1e-9);
    }

    #[test]
    fn uncore_power_monotone_in_traffic(level in 0usize..8, bw in 0.0f64..100e9, extra in 0.0f64..20e9) {
        let u = UncoreConfig::default();
        let p1 = u.power(UncoreLevel(level), bw);
        let p2 = u.power(UncoreLevel(level), bw + extra);
        prop_assert!(p2 >= p1);
    }

    // -- Frequency ladder -----------------------------------------------------

    #[test]
    fn pstate_at_or_below_never_exceeds_request(mhz in 0u32..6000) {
        let l = FrequencyLadder::default();
        let p = l.pstate_at_or_below(mhz);
        if mhz >= l.fmin_mhz() {
            prop_assert!(l.mhz(p) <= mhz);
        } else {
            prop_assert_eq!(l.mhz(p), l.fmin_mhz());
        }
    }

    // -- Energy meter ----------------------------------------------------------

    #[test]
    fn windowed_average_bounded_by_sample_extremes(
        powers in prop::collection::vec(5.0f64..300.0, 10..120),
    ) {
        let mut m = EnergyMeter::new(1000 * MS);
        let dt: Nanos = MS;
        let mut t = 0;
        for &p in &powers {
            t += dt;
            m.record(t, p * 1e-3);
        }
        let avg = m.average_power(50 * MS);
        let lo = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = powers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(avg >= lo - 1e-6 && avg <= hi + 1e-6, "avg {avg} not in [{lo},{hi}]");
    }

    // -- Config validation never accepts garbage -------------------------------

    #[test]
    fn default_config_survives_core_count_changes(cores in 1usize..=64) {
        let cfg = NodeConfig { cores, ..NodeConfig::default() };
        cfg.validate();
        let node = crate::node::Node::new(cfg);
        prop_assert_eq!(node.cores(), cores);
    }
}
