//! Property tests for the power-budget arbiter: the invariants that make
//! it safe to wire into a machine-room breaker. For arbitrary (bounded)
//! budgets, clamps, telemetry and dropout patterns:
//!
//! - **budget conservation** — granted caps never sum above the budget;
//! - **clamp respect** — every grant stays inside `[min, max]`;
//! - **determinism** — identical inputs produce bitwise-identical grants,
//!   independent of history cloning or repetition (and, by construction,
//!   of worker thread count: redistribution is pure arithmetic over
//!   ordered vectors).

use cluster::{ArbiterConfig, NodeTelemetry, Policy, PowerArbiter};
use proptest::prelude::*;

/// Bounded arbitrary telemetry: `None` (~1 in 5) models a dropout.
fn telemetry() -> impl Strategy<Value = Option<NodeTelemetry>> {
    prop_oneof![
        1 => Just(None),
        4 => (0.05f64..20.0, 5.0f64..300.0).prop_map(|(compute_s, power_w)| {
            Some(NodeTelemetry { compute_s, rate: 1.0 / compute_s, power_w })
        }),
    ]
}

fn policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::UniformStatic),
        Just(Policy::DemandProportional),
        (0.1f64..2.0).prop_map(|gain| Policy::ProgressFeedback { gain }),
    ]
}

/// A feasible (budget ≥ n·min) arbiter config plus several rounds of
/// per-node reports.
fn scenario() -> impl Strategy<Value = (ArbiterConfig, Vec<Vec<Option<NodeTelemetry>>>)> {
    (2usize..9, policy()).prop_flat_map(|(n, policy)| {
        (
            (20.0f64..60.0, 60.0f64..180.0).prop_flat_map(move |(min_cap_w, max_cap_w)| {
                (min_cap_w * n as f64..max_cap_w * n as f64 * 1.2).prop_map(move |budget_w| {
                    ArbiterConfig {
                        budget_w,
                        min_cap_w,
                        max_cap_w,
                        policy,
                    }
                })
            }),
            prop::collection::vec(prop::collection::vec(telemetry(), n), 1..6),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Σ grants ≤ budget after every redistribution, for every policy,
    /// through arbitrary dropout patterns.
    #[test]
    fn budget_is_conserved(scn in scenario()) {
        let (cfg, rounds) = scn;
        let n = rounds[0].len();
        let mut arb = PowerArbiter::new(cfg, n);
        for reports in &rounds {
            arb.redistribute(reports);
        }
        for tick in arb.trace() {
            prop_assert!(
                tick.total_w <= tick.budget_w + 1e-6,
                "round {}: granted {} W over the {} W budget",
                tick.round, tick.total_w, tick.budget_w
            );
            let s: f64 = tick.granted_w.iter().sum();
            prop_assert!((s - tick.total_w).abs() < 1e-9, "trace self-consistency");
        }
    }

    /// Every grant, on every tick, respects the per-node clamp range.
    #[test]
    fn clamps_are_respected(scn in scenario()) {
        let (cfg, rounds) = scn;
        let n = rounds[0].len();
        let mut arb = PowerArbiter::new(cfg, n);
        for reports in &rounds {
            for &g in arb.redistribute(reports) {
                prop_assert!(
                    g >= cfg.min_cap_w - 1e-6 && g <= cfg.max_cap_w + 1e-6,
                    "grant {g} W outside [{}, {}] W",
                    cfg.min_cap_w, cfg.max_cap_w
                );
            }
        }
    }

    /// Redistribution is a pure function of (config, history): replaying
    /// identical reports on a fresh arbiter, or continuing from a cloned
    /// arbiter, reproduces bitwise-identical grants.
    #[test]
    fn redistribution_is_deterministic(scn in scenario()) {
        let (cfg, rounds) = scn;
        let n = rounds[0].len();
        let mut a = PowerArbiter::new(cfg, n);
        let mut b = PowerArbiter::new(cfg, n);
        for reports in &rounds {
            // A cloned mid-stream arbiter must agree with both originals.
            let mut c = a.clone();
            let ga = a.redistribute(reports).to_vec();
            let gb = b.redistribute(reports).to_vec();
            let gc = c.redistribute(reports).to_vec();
            for i in 0..n {
                prop_assert_eq!(ga[i].to_bits(), gb[i].to_bits(), "replay divergence");
                prop_assert_eq!(ga[i].to_bits(), gc[i].to_bits(), "clone divergence");
            }
        }
        prop_assert_eq!(a.trace().len(), rounds.len());
    }

    /// A silent node's grant is frozen verbatim while the cluster still
    /// has headroom to fund everyone's floor.
    #[test]
    fn dropout_freezes_the_grant(
        n in 3usize..8,
        silent in 0usize..3,
        gain in 0.2f64..1.5,
    ) {
        let silent = silent.min(n - 1);
        let cfg = ArbiterConfig {
            // Generous budget: freezing never needs the feasibility clip.
            budget_w: 120.0 * n as f64,
            min_cap_w: 40.0,
            max_cap_w: 160.0,
            policy: Policy::ProgressFeedback { gain },
        };
        let mut arb = PowerArbiter::new(cfg, n);
        let all: Vec<_> = (0..n)
            .map(|i| Some(NodeTelemetry {
                compute_s: 1.0 + i as f64 * 0.3,
                rate: 1.0,
                power_w: 100.0,
            }))
            .collect();
        arb.redistribute(&all);
        let frozen = arb.grants()[silent];
        let mut partial = all;
        partial[silent] = None;
        arb.redistribute(&partial);
        prop_assert_eq!(arb.grants()[silent].to_bits(), frozen.to_bits());
    }
}
