//! Property tests for the power-budget arbiter: the invariants that make
//! it safe to wire into a machine-room breaker. For arbitrary (bounded)
//! budgets, clamps, telemetry and dropout patterns:
//!
//! - **budget conservation** — granted caps never sum above the budget;
//! - **clamp respect** — every grant stays inside `[min, max]`;
//! - **determinism** — identical inputs produce bitwise-identical grants,
//!   independent of history cloning or repetition (and, by construction,
//!   of worker thread count: redistribution is pure arithmetic over
//!   ordered vectors).
//!
//! And for the exchange-phase comm model, over arbitrary patterns,
//! topologies, rendezvous skews and NIC drain factors:
//!
//! - **non-negative, exhaustive phases** — `comm_s`/`slack_s` ≥ 0 and
//!   `ready + comm + slack` lands exactly on the barrier;
//! - **conservation of bytes** — NIC injection = NIC ejection = flow
//!   total on every link map;
//! - **purity/determinism** — re-pricing a scenario is bitwise identical
//!   (the property that keeps `run_cluster` deterministic under rayon);
//! - **monotonicity** — throttling a NIC never speeds anyone up.

use cluster::policy::IncrementalFill;
use cluster::{
    exchange, ArbiterConfig, CommConfig, CommPattern, HierarchyConfig, LinkId, NodeTelemetry,
    Policy, PowerArbiter, RackArbiter, Topology,
};
use proptest::prelude::*;

/// Bounded arbitrary telemetry: `None` (~1 in 5) models a dropout, and
/// the per-phase split includes comm-free and comm-heavy epochs.
fn telemetry() -> impl Strategy<Value = Option<NodeTelemetry>> {
    prop_oneof![
        1 => Just(None),
        4 => (0.05f64..20.0, 0.0f64..5.0, 5.0f64..300.0).prop_map(
            |(compute_s, comm_s, power_w)| {
                Some(NodeTelemetry {
                    compute_s,
                    comm_s,
                    slack_s: 0.0,
                    rate: 1.0 / compute_s,
                    power_w,
                })
            }
        ),
    ]
}

fn policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::UniformStatic),
        Just(Policy::DemandProportional),
        (0.1f64..2.0).prop_map(|gain| Policy::ProgressFeedback { gain }),
    ]
}

/// A feasible (budget ≥ n·min) arbiter config plus several rounds of
/// per-node reports.
fn scenario() -> impl Strategy<Value = (ArbiterConfig, Vec<Vec<Option<NodeTelemetry>>>)> {
    (2usize..9, policy()).prop_flat_map(|(n, policy)| {
        (
            (20.0f64..60.0, 60.0f64..180.0).prop_flat_map(move |(min_cap_w, max_cap_w)| {
                (min_cap_w * n as f64..max_cap_w * n as f64 * 1.2).prop_map(move |budget_w| {
                    ArbiterConfig {
                        budget_w,
                        min_cap_w,
                        max_cap_w,
                        policy,
                    }
                })
            }),
            prop::collection::vec(prop::collection::vec(telemetry(), n), 1..6),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Σ grants ≤ budget after every redistribution, for every policy,
    /// through arbitrary dropout patterns.
    #[test]
    fn budget_is_conserved(scn in scenario()) {
        let (cfg, rounds) = scn;
        let n = rounds[0].len();
        let mut arb = PowerArbiter::new(cfg, n);
        for reports in &rounds {
            arb.redistribute(reports).unwrap();
        }
        for tick in arb.trace().ticks() {
            prop_assert!(
                tick.total_w <= tick.budget_w + 1e-6,
                "round {}: granted {} W over the {} W budget",
                tick.round, tick.total_w, tick.budget_w
            );
            let s: f64 = tick.granted_w.iter().sum();
            prop_assert!((s - tick.total_w).abs() < 1e-9, "trace self-consistency");
        }
    }

    /// Every grant, on every tick, respects the per-node clamp range.
    #[test]
    fn clamps_are_respected(scn in scenario()) {
        let (cfg, rounds) = scn;
        let n = rounds[0].len();
        let mut arb = PowerArbiter::new(cfg, n);
        for reports in &rounds {
            for &g in arb.redistribute(reports).unwrap() {
                prop_assert!(
                    g >= cfg.min_cap_w - 1e-6 && g <= cfg.max_cap_w + 1e-6,
                    "grant {g} W outside [{}, {}] W",
                    cfg.min_cap_w, cfg.max_cap_w
                );
            }
        }
    }

    /// Redistribution is a pure function of (config, history): replaying
    /// identical reports on a fresh arbiter, or continuing from a cloned
    /// arbiter, reproduces bitwise-identical grants.
    #[test]
    fn redistribution_is_deterministic(scn in scenario()) {
        let (cfg, rounds) = scn;
        let n = rounds[0].len();
        let mut a = PowerArbiter::new(cfg, n);
        let mut b = PowerArbiter::new(cfg, n);
        for reports in &rounds {
            // A cloned mid-stream arbiter must agree with both originals.
            let mut c = a.clone();
            let ga = a.redistribute(reports).unwrap().to_vec();
            let gb = b.redistribute(reports).unwrap().to_vec();
            let gc = c.redistribute(reports).unwrap().to_vec();
            for i in 0..n {
                prop_assert_eq!(ga[i].to_bits(), gb[i].to_bits(), "replay divergence");
                prop_assert_eq!(ga[i].to_bits(), gc[i].to_bits(), "clone divergence");
            }
        }
        prop_assert_eq!(a.trace().len(), rounds.len());
    }

    /// A silent node's grant is frozen verbatim while the cluster still
    /// has headroom to fund everyone's floor.
    #[test]
    fn dropout_freezes_the_grant(
        n in 3usize..8,
        silent in 0usize..3,
        gain in 0.2f64..1.5,
    ) {
        let silent = silent.min(n - 1);
        let cfg = ArbiterConfig {
            // Generous budget: freezing never needs the feasibility clip.
            budget_w: 120.0 * n as f64,
            min_cap_w: 40.0,
            max_cap_w: 160.0,
            policy: Policy::ProgressFeedback { gain },
        };
        let mut arb = PowerArbiter::new(cfg, n);
        let all: Vec<_> = (0..n)
            .map(|i| Some(NodeTelemetry::compute_only(
                1.0 + i as f64 * 0.3,
                1.0,
                100.0,
            )))
            .collect();
        arb.redistribute(&all).unwrap();
        let frozen = arb.grants()[silent];
        let mut partial = all;
        partial[silent] = None;
        arb.redistribute(&partial).unwrap();
        prop_assert_eq!(arb.grants()[silent].to_bits(), frozen.to_bits());
    }

    /// A tree of one rack holding every node is grant-for-grant bitwise
    /// identical to the flat arbiter under the same telemetry stream
    /// (the hierarchy degenerates exactly, for every policy, through
    /// arbitrary dropout patterns and outer periods).
    #[test]
    fn single_rack_tree_equals_the_flat_arbiter(
        scn in scenario(),
        outer_period in 1usize..5,
    ) {
        let (cfg, rounds) = scn;
        let n = rounds[0].len();
        // Stay inside the clamp-feasible band: past n·max both arbiters
        // saturate everyone, but through differently-rounded arithmetic.
        let cfg = ArbiterConfig {
            budget_w: cfg.budget_w.min(cfg.max_cap_w * n as f64),
            ..cfg
        };
        let mut flat = PowerArbiter::new(cfg, n);
        let mut tree = RackArbiter::new(cfg, HierarchyConfig {
            racks: vec![n],
            outer_period,
            inner_period: 1,
            rack_policy: cfg.policy,
            rack_clamps: None,
        });
        for (round, reports) in rounds.iter().enumerate() {
            let a = flat.redistribute(reports).unwrap().to_vec();
            let b = tree.redistribute(reports).unwrap().to_vec();
            for i in 0..n {
                prop_assert_eq!(
                    a[i].to_bits(), b[i].to_bits(),
                    "round {}: node {} diverges ({} vs {})",
                    round, i, a[i], b[i]
                );
            }
        }
    }

    /// Dropout behavior lifts to the rack level: a rack whose members
    /// all go silent keeps its sub-budget frozen verbatim, however the
    /// reporting racks are rebalanced around it.
    #[test]
    fn silent_rack_keeps_its_sub_budget(
        n_racks in 2usize..5,
        per_rack in 1usize..4,
        silent_pick in 0usize..5,
        gain in 0.2f64..1.5,
        rounds in 2usize..8,
    ) {
        let silent_rack = silent_pick % n_racks;
        let n = n_racks * per_rack;
        let cfg = ArbiterConfig {
            // Generous budget: freezing never needs the feasibility clip.
            budget_w: 120.0 * n as f64,
            min_cap_w: 40.0,
            max_cap_w: 160.0,
            policy: Policy::ProgressFeedback { gain },
        };
        let mut tree = RackArbiter::new(cfg, HierarchyConfig {
            racks: vec![per_rack; n_racks],
            outer_period: 2,
            inner_period: 1,
            rack_policy: Policy::ProgressFeedback { gain },
            rack_clamps: None,
        });
        let frozen = tree.sub_budgets()[silent_rack];
        for r in 0..rounds {
            let reports: Vec<_> = (0..n)
                .map(|i| {
                    (i / per_rack != silent_rack).then(|| NodeTelemetry::compute_only(
                        1.0 + (i + r) as f64 * 0.17,
                        1.0,
                        100.0,
                    ))
                })
                .collect();
            tree.redistribute(&reports).unwrap();
            prop_assert_eq!(
                tree.sub_budgets()[silent_rack].to_bits(),
                frozen.to_bits(),
                "round {}: silent rack's pot moved",
                r
            );
        }
    }
}

/// A bounded exchange scenario: pattern, topology, and per-node state.
fn comm_scenario() -> impl Strategy<
    Value = (
        CommConfig,
        Vec<f64>, // ready_s
        Vec<f64>, // weights
        Vec<f64>, // drain
    ),
> {
    let pattern = prop_oneof![
        Just(CommPattern::None),
        (0.0f64..256.0e6).prop_map(|payload_bytes| CommPattern::AllReduce { payload_bytes }),
        (0.0f64..256.0e6).prop_map(|bytes_per_unit| CommPattern::HaloExchange { bytes_per_unit }),
    ];
    let topology = prop_oneof![
        Just(Topology::FlatSwitch),
        (1usize..5, 1.0e9f64..50.0e9).prop_map(|(nodes_per_rack, uplink_bw)| {
            Topology::RackTree {
                nodes_per_rack,
                uplink_bw,
            }
        }),
    ];
    (1usize..10, pattern, topology).prop_flat_map(|(n, pattern, topology)| {
        (
            (0.0f64..1.0e-5, 1.0e9f64..100.0e9, 0.0f64..1.0).prop_map(
                move |(alpha_s, nic_bw, power_coupling)| CommConfig {
                    alpha_s,
                    nic_bw,
                    power_coupling,
                    pattern,
                    topology,
                },
            ),
            prop::collection::vec(0.0f64..10.0, n),
            prop::collection::vec(0.1f64..4.0, n),
            prop::collection::vec(0.05f64..1.0, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Exchange times are non-negative, the phase split is exhaustive
    /// (ready + comm + slack = barrier for every node), and the barrier
    /// never lands before the slowest rank's compute clock.
    #[test]
    fn exchange_phases_are_nonnegative_and_exhaustive(scn in comm_scenario()) {
        let (cfg, ready, weights, drain) = scn;
        let out = exchange(&cfg, &ready, &weights, &drain);
        let max_ready = ready.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(out.barrier_s >= max_ready, "barrier before the last rank");
        for (i, p) in out.phases.iter().enumerate() {
            prop_assert!(p.comm_s >= 0.0, "node {i}: negative wire time");
            prop_assert!(p.slack_s >= 0.0, "node {i}: negative slack");
            prop_assert!(p.done_s >= p.ready_s, "node {i}: done before ready");
            let span = p.ready_s + p.comm_s + p.slack_s;
            prop_assert!(
                (span - out.barrier_s).abs() < 1e-6,
                "node {i}: phase split {span} != barrier {}",
                out.barrier_s
            );
        }
    }

    /// Conservation of bytes: what the NICs inject equals what the NICs
    /// eject equals the flow total, regardless of pattern and topology.
    #[test]
    fn exchange_bytes_are_conserved(scn in comm_scenario()) {
        let (cfg, ready, weights, drain) = scn;
        let out = exchange(&cfg, &ready, &weights, &drain);
        let sum_on = |f: fn(&LinkId) -> bool| -> f64 {
            out.link_bytes
                .iter()
                .filter(|(l, _)| f(l))
                .map(|(_, b)| b)
                .sum()
        };
        let tx = sum_on(|l| matches!(l, LinkId::NicTx(_)));
        let rx = sum_on(|l| matches!(l, LinkId::NicRx(_)));
        let tol = 1e-9 * out.total_bytes.max(1.0);
        prop_assert!((tx - out.total_bytes).abs() <= tol, "tx {tx} != {}", out.total_bytes);
        prop_assert!((rx - out.total_bytes).abs() <= tol, "rx {rx} != {}", out.total_bytes);
        // Rack links can only carry a subset of the total.
        let up = sum_on(|l| matches!(l, LinkId::RackUp(_)));
        prop_assert!(up <= out.total_bytes + tol);
    }

    /// The exchange pricing is a pure function: re-pricing the same
    /// scenario is bitwise identical (this, plus the members being
    /// independent between barriers, is what makes the whole cluster run
    /// deterministic under rayon).
    #[test]
    fn exchange_is_deterministic(scn in comm_scenario()) {
        let (cfg, ready, weights, drain) = scn;
        let a = exchange(&cfg, &ready, &weights, &drain);
        let b = exchange(&cfg, &ready, &weights, &drain);
        prop_assert_eq!(a.barrier_s.to_bits(), b.barrier_s.to_bits());
        for (pa, pb) in a.phases.iter().zip(&b.phases) {
            prop_assert_eq!(pa.comm_s.to_bits(), pb.comm_s.to_bits());
            prop_assert_eq!(pa.slack_s.to_bits(), pb.slack_s.to_bits());
            prop_assert_eq!(pa.done_s.to_bits(), pb.done_s.to_bits());
        }
        prop_assert_eq!(a.total_bytes.to_bits(), b.total_bytes.to_bits());
    }

    /// Throttling any single NIC never *speeds up* anyone's exchange:
    /// the fair-share model is monotone in link capacity.
    #[test]
    fn slower_nic_never_speeds_anyone_up(
        scn in comm_scenario(),
        victim_frac in 0.1f64..0.9,
    ) {
        let (cfg, ready, weights, drain) = scn;
        let full = exchange(&cfg, &ready, &weights, &drain);
        let victim = drain.len() / 2;
        let mut slower = drain.clone();
        slower[victim] *= victim_frac;
        let out = exchange(&cfg, &ready, &weights, &slower);
        for (i, (pf, ps)) in full.phases.iter().zip(&out.phases).enumerate() {
            prop_assert!(
                ps.comm_s >= pf.comm_s - 1e-12,
                "node {i} got faster when node {victim} was throttled"
            );
        }
    }
}

/// A bounded incremental-fill scenario: per-child clamps, a pool inside
/// the feasible band, rounds of per-child desires where `None` models a
/// telemetry dropout (the child stays clean that round), and a few
/// thermal-ceiling events to interleave with the update stream.
#[allow(clippy::type_complexity)]
fn fill_scenario() -> impl Strategy<
    Value = (
        (Vec<f64>, Vec<f64>, f64),                  // min, headroom, pool frac
        (Vec<Vec<Option<f64>>>, Vec<(usize, f64)>), // desire rounds, ceilings
    ),
> {
    (2usize..10).prop_flat_map(|n| {
        (
            (
                prop::collection::vec(20.0f64..60.0, n),
                prop::collection::vec(10.0f64..100.0, n),
                0.0f64..1.3,
            ),
            (
                prop::collection::vec(
                    prop::collection::vec(
                        prop_oneof![1 => Just(None), 4 => (0.0f64..500.0).prop_map(Some)],
                        n,
                    ),
                    1..8,
                ),
                prop::collection::vec((0..n, 0.0f64..200.0), 0..4),
            ),
        )
    })
}

/// Drive one scenario through a persistent [`IncrementalFill`], checking
/// after every round that the incremental solve agrees with the fresh
/// full solve over the same cached desires to 1e-9 relative, and that
/// the fill invariants (Σ ≤ pool, per-child clamps) hold.
fn check_incremental_fill(
    min: &[f64],
    max: &[f64],
    pool: f64,
    rounds: &[Vec<Option<f64>>],
    ceilings: &[(usize, f64)],
) {
    let n = min.len();
    let mut fill = IncrementalFill::new(min, max);
    // Interleave the ceiling events across the rounds, PR-5 style: a
    // thermal clamp lands whenever the NVML poller sees it, not at a
    // barrier.
    for (round, desires) in rounds.iter().enumerate() {
        for &(i, ceiling) in ceilings
            .iter()
            .filter(|(i, _)| i % rounds.len() == round % rounds.len() && *i < n)
        {
            fill.tighten_max(i, ceiling);
        }
        let before: Vec<u64> = fill.clamped().iter().map(|c| c.to_bits()).collect();
        for (i, d) in desires.iter().enumerate() {
            if let Some(d) = *d {
                fill.update(i, d);
            }
        }
        // Dropouts leave the cached desire untouched, bit for bit —
        // the property that lets the rack arbiter skip clean subtrees.
        for (i, d) in desires.iter().enumerate() {
            if d.is_none() {
                prop_assert_eq!(
                    fill.clamped()[i].to_bits(),
                    before[i],
                    "round {}: silent child {} moved",
                    round,
                    i
                );
            }
        }
        let full = fill.solve_full(pool);
        let grants = fill.solve(pool).to_vec();
        let mut total = 0.0;
        for i in 0..n {
            let tol = 1e-9 * full[i].abs().max(1.0);
            prop_assert!(
                (grants[i] - full[i]).abs() <= tol,
                "round {}: child {} incremental {} vs full {}",
                round,
                i,
                grants[i],
                full[i]
            );
            total += grants[i];
        }
        if pool >= min.iter().sum::<f64>() {
            prop_assert!(
                total <= pool + 1e-6 * pool.abs().max(1.0),
                "Σ {total} > pool {pool}"
            );
            for (i, &g) in grants.iter().enumerate() {
                prop_assert!(
                    g >= min[i] - 1e-9 && g <= max[i] + 1e-9,
                    "round {}: grant {} outside [{}, {}]",
                    round,
                    g,
                    min[i],
                    max[i]
                );
            }
        }
        // Purity: re-solving with no intervening update is bitwise
        // stable (what makes the arbiter's epoch caching safe).
        let again = fill.solve(pool).to_vec();
        for i in 0..n {
            prop_assert_eq!(grants[i].to_bits(), again[i].to_bits(), "re-solve drifted");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        ..ProptestConfig::default()
    })]

    /// The incremental waterfill equals the full solve for arbitrary
    /// dirty-sets and dropout patterns: whatever subset of children is
    /// updated each round, `solve` stays within 1e-9 relative of a fresh
    /// `waterfill` over the same desires, and the fill invariants hold.
    #[test]
    fn incremental_fill_tracks_the_full_solve(scn in fill_scenario()) {
        let ((min, headroom, pool_frac), (rounds, _)) = scn;
        let max: Vec<f64> = min.iter().zip(&headroom).map(|(&lo, &h)| lo + h).collect();
        let sum_min: f64 = min.iter().sum();
        let sum_max: f64 = max.iter().sum();
        let pool = sum_min + (sum_max - sum_min) * pool_frac;
        check_incremental_fill(&min, &max, pool, &rounds, &[]);
    }

    /// Thermal-ceiling clamps arriving mid-stream never break the
    /// incremental/full agreement, and a tightened ceiling is respected
    /// by every subsequent solve.
    #[test]
    fn thermal_ceilings_clamp_without_divergence(scn in fill_scenario()) {
        let ((min, headroom, pool_frac), (rounds, ceilings)) = scn;
        let max: Vec<f64> = min.iter().zip(&headroom).map(|(&lo, &h)| lo + h).collect();
        let sum_min: f64 = min.iter().sum();
        let sum_max: f64 = max.iter().sum();
        let pool = sum_min + (sum_max - sum_min) * pool_frac;
        check_incremental_fill(&min, &max, pool, &rounds, &ceilings);
        // And directly: after tightening, the solved grant never sits
        // above the effective ceiling (the floor wins a conflict, as in
        // the single-rack arbiter).
        let mut fill = IncrementalFill::new(&min, &max);
        for &(i, ceiling) in ceilings.iter().filter(|(i, _)| *i < min.len()) {
            fill.tighten_max(i, ceiling);
            fill.update(i, 500.0);
            let g = fill.solve(pool)[i];
            let eff = ceiling.clamp(min[i], max[i]);
            prop_assert!(
                g <= eff + 1e-9 * eff.max(1.0),
                "grant {} above tightened ceiling {}",
                g,
                eff
            );
        }
    }

    /// A long all-dirty update stream (every child re-desired every
    /// round) still agrees bitwise-or-1e-9 with the full solve: the
    /// Neumaier-compensated running sums do not drift with update count.
    #[test]
    fn compensated_sums_survive_long_streams(
        n in 2usize..6,
        rounds in 32usize..96,
        seed in 0u64..1_000,
    ) {
        let min = vec![40.0; n];
        let max = vec![160.0; n];
        let pool = 100.0 * n as f64;
        let mut fill = IncrementalFill::new(&min, &max);
        // A cheap LCG keeps the stream arbitrary-but-reproducible
        // without threading proptest strategies through every round.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for round in 0..rounds {
            for i in 0..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let d = (state >> 33) as f64 / (1u64 << 31) as f64 * 500.0;
                fill.update(i, d);
            }
            let full = fill.solve_full(pool);
            let grants = fill.solve(pool);
            for i in 0..n {
                let tol = 1e-9 * full[i].abs().max(1.0);
                prop_assert!(
                    (grants[i] - full[i]).abs() <= tol,
                    "round {}: drift {} after {} updates",
                    round,
                    (grants[i] - full[i]).abs(),
                    (round + 1) * n
                );
            }
        }
    }
}
