//! Hierarchical power arbitration: a rack-tree of arbiters.
//!
//! The paper's NRM sits at the bottom of the Argo resource-management
//! stack; the level above it (the GRM) does not talk to every node — it
//! divides the machine budget across *enclaves* and lets each enclave
//! subdivide. [`RackArbiter`] reproduces that structure over this repo's
//! [`BudgetArbiter`] API, mirroring the 2-level
//! [`crate::topology::Topology::RackTree`]:
//!
//! - an **outer** (rack-level) loop re-splits the machine budget across
//!   racks every `outer_period` barriers, driven by each rack's
//!   telemetry aggregated upward (sums of `compute_s`/`comm_s`/`slack_s`
//!   /`power_w` over its members and the epoch window);
//! - an **inner** (node-level) loop — one flat [`PowerArbiter`] per rack
//!   — re-splits each rack's sub-budget across its nodes every
//!   `inner_period` barriers, exactly as the flat arbiter would.
//!
//! Budgets flow downward through [`BudgetArbiter::set_budget`]; the two
//! loops run at independent periods, which is the latency/stability
//! trade the flat arbiter cannot express: a fast outer loop chases noise
//! across racks, a slow one starves a rack whose imbalance moved. Both
//! levels share one redistribution engine ([`crate::policy`]), so the
//! sum-≤-budget and per-child clamp invariants hold at every level by
//! construction: Σ sub-budgets ≤ machine budget, and within each rack
//! Σ node grants ≤ its sub-budget.
//!
//! Degenerate shapes are exact: a tree of one rack containing every node
//! is grant-for-grant bit-identical to the flat [`PowerArbiter`]
//! (property-tested in `proptests`), and a rack whose members all went
//! silent keeps its sub-budget frozen, exactly as a silent node keeps
//! its grant.

use std::ops::Range;

use crate::arbiter::{
    validate_reports, ArbiterConfig, BudgetArbiter, GrantTrace, NodeTelemetry, Policy,
    PowerArbiter, EPS_W,
};
use crate::error::{ensure, ConfigError, TelemetryError};
use crate::policy::{self, Allocator, IncrementalFill, RebalanceScratch};

/// Tuning for the rack level of the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyConfig {
    /// Nodes per rack, in rank order (rack `r` owns the next `racks[r]`
    /// ranks; the sum must equal the cluster size).
    pub racks: Vec<usize>,
    /// Outer control period: barriers between rack-level re-splits of
    /// the machine budget.
    pub outer_period: usize,
    /// Inner control period: barriers between node-level re-splits of
    /// each rack's sub-budget (1 = every barrier, the flat cadence).
    pub inner_period: usize,
    /// Rack-level division policy (the node level uses
    /// [`ArbiterConfig::policy`]).
    pub rack_policy: Policy,
    /// Optional per-rack `[min, max]` sub-budget clamps, W. `None`
    /// derives them from the node clamps: rack `r` gets
    /// `[racks[r]·min_cap_w, racks[r]·max_cap_w]`.
    pub rack_clamps: Option<Vec<(f64, f64)>>,
}

impl HierarchyConfig {
    /// `n_racks` equal racks of `nodes_per_rack`, inner loop every
    /// barrier, outer loop every 4 barriers, derived rack clamps.
    pub fn uniform(n_racks: usize, nodes_per_rack: usize, rack_policy: Policy) -> Self {
        Self {
            racks: vec![nodes_per_rack; n_racks],
            outer_period: 4,
            inner_period: 1,
            rack_policy,
            rack_clamps: None,
        }
    }

    /// Total leaf nodes across the racks.
    pub fn node_count(&self) -> usize {
        self.racks.iter().sum()
    }

    /// Validate against the node-level arbiter configuration and the
    /// cluster size `n`.
    pub fn validate(&self, arbiter: &ArbiterConfig, n: usize) -> Result<(), ConfigError> {
        ensure(!self.racks.is_empty(), "HierarchyConfig.racks", || {
            "need at least one rack".into()
        })?;
        ensure(
            self.racks.iter().all(|&k| k > 0),
            "HierarchyConfig.racks",
            || "every rack needs at least one node".into(),
        )?;
        ensure(self.node_count() == n, "HierarchyConfig.racks", || {
            format!(
                "racks hold {} nodes but the cluster has {n}",
                self.node_count()
            )
        })?;
        ensure(
            self.inner_period > 0,
            "HierarchyConfig.inner_period",
            || "inner period must be positive".into(),
        )?;
        ensure(
            self.outer_period > 0 && self.outer_period.is_multiple_of(self.inner_period),
            "HierarchyConfig.outer_period",
            || {
                format!(
                    "outer period {} must be a positive multiple of the inner period {}",
                    self.outer_period, self.inner_period
                )
            },
        )?;
        if let Some(clamps) = &self.rack_clamps {
            ensure(
                clamps.len() == self.racks.len(),
                "HierarchyConfig.rack_clamps",
                || {
                    format!(
                        "{} clamp pairs for {} racks",
                        clamps.len(),
                        self.racks.len()
                    )
                },
            )?;
            for (r, (&(lo, hi), &k)) in clamps.iter().zip(&self.racks).enumerate() {
                ensure(lo > 0.0 && lo <= hi, "HierarchyConfig.rack_clamps", || {
                    format!("rack {r}: need 0 < min ({lo} W) <= max ({hi} W)")
                })?;
                // A sub-budget below the rack's node floors would make the
                // child arbiter infeasible.
                ensure(
                    lo >= k as f64 * arbiter.min_cap_w - EPS_W,
                    "HierarchyConfig.rack_clamps",
                    || {
                        format!(
                            "rack {r}: min {lo} W cannot fund {k} nodes at the {} W floor",
                            arbiter.min_cap_w
                        )
                    },
                )?;
            }
        }
        let (rack_min, _) = self.resolved_clamps(arbiter);
        let floor: f64 = rack_min.iter().sum();
        ensure(
            arbiter.budget_w >= floor - EPS_W,
            "HierarchyConfig.rack_clamps",
            || {
                format!(
                    "budget {} W cannot fund the {} W sum of rack floors",
                    arbiter.budget_w, floor
                )
            },
        )?;
        Ok(())
    }

    /// The effective per-rack `[min, max]` clamp vectors.
    pub fn resolved_clamps(&self, arbiter: &ArbiterConfig) -> (Vec<f64>, Vec<f64>) {
        match &self.rack_clamps {
            Some(clamps) => clamps.iter().map(|&(lo, hi)| (lo, hi)).unzip(),
            None => self
                .racks
                .iter()
                .map(|&k| (k as f64 * arbiter.min_cap_w, k as f64 * arbiter.max_cap_w))
                .unzip(),
        }
    }
}

/// One rack's telemetry accumulator over an outer epoch window: sums of
/// every [`NodeTelemetry`] field across the rack's members and the
/// barriers since the last rack-level re-split.
///
/// Public because the window is also the unit of upward aggregation in
/// a *sharded* deployment: each `arbiterd` shard accumulates its
/// members' reports into one `RackWindow`, drains it on the outer
/// period, and ships the sums to the coordinator — bit-identically to
/// how [`RackArbiter`] aggregates in process.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RackWindow {
    compute_s: f64,
    comm_s: f64,
    slack_s: f64,
    rate: f64,
    power_w: f64,
    count: u64,
}

impl RackWindow {
    /// Fold one member report into the window. Addition order matters
    /// bitwise; callers that need cross-process reproducibility must
    /// fold in a deterministic (member-rank) order.
    pub fn add(&mut self, t: &NodeTelemetry) {
        self.compute_s += t.compute_s;
        self.comm_s += t.comm_s;
        self.slack_s += t.slack_s;
        self.rate += t.rate;
        self.power_w += t.power_w;
        self.count += 1;
    }

    /// Drain the window into a rack-level report: `None` when not a
    /// single member reported (the whole rack is silent and keeps its
    /// sub-budget, mirroring the node-level dropout rule).
    pub fn take(&mut self) -> Option<NodeTelemetry> {
        let drained = std::mem::take(self);
        (drained.count > 0).then_some(NodeTelemetry {
            compute_s: drained.compute_s,
            comm_s: drained.comm_s,
            slack_s: drained.slack_s,
            rate: drained.rate,
            power_w: drained.power_w,
        })
    }

    /// The raw field sums `[compute_s, comm_s, slack_s, rate, power_w]`,
    /// for bit-exact persistence (snapshots store the window so a
    /// restarted shard resumes mid-epoch without losing aggregation).
    pub fn sums(&self) -> [f64; 5] {
        [
            self.compute_s,
            self.comm_s,
            self.slack_s,
            self.rate,
            self.power_w,
        ]
    }

    /// Reports folded into the window so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Rebuild a window from persisted sums (the inverse of
    /// [`RackWindow::sums`] / [`RackWindow::count`]).
    pub fn from_parts(sums: [f64; 5], count: u64) -> Self {
        Self {
            compute_s: sums[0],
            comm_s: sums[1],
            slack_s: sums[2],
            rate: sums[3],
            power_w: sums[4],
            count,
        }
    }
}

/// The rack-level half of the tree, factored out of [`RackArbiter`] so a
/// *distributed* deployment can reuse it verbatim: a coordinator splitting
/// a machine budget across N `arbiterd` shards runs the exact code path —
/// same incremental waterfill, same silent-child freeze, same bit
/// patterns — as the in-process rack tree. One child here is one rack (or
/// one shard); leaves are somebody else's problem.
///
/// Holds the solver state that must survive across epochs for the
/// incremental path to stay bit-stable: current sub-budgets, each child's
/// last desired allocation, and the cached fill sums.
#[derive(Debug, Clone)]
pub struct OuterSolver {
    alloc: Allocator,
    min: Vec<f64>,
    max: Vec<f64>,
    /// Current per-child sub-budgets, W (Σ ≤ pool at every solve).
    sub_budgets: Vec<f64>,
    /// Incremental waterfill: caches each child's clamped desired
    /// sub-budget and the fill sums, re-solving from deltas.
    fill: IncrementalFill,
    /// Each child's last desired sub-budget (bitwise), so a child whose
    /// desire did not move is never re-clamped or re-summed. NaN until
    /// the first epoch marks every child dirty.
    last_desired: Vec<f64>,
    /// Fallback engine scratch for windows with silent children (the
    /// frozen semantics need the general reporting-subset path).
    scratch: RebalanceScratch,
    /// Reused per-epoch buffers (no per-epoch allocation).
    tel: Vec<NodeTelemetry>,
    fill_tmp: Vec<f64>,
    fill_desired: Vec<f64>,
}

impl OuterSolver {
    /// Build the solver from initial per-child shares: the shares are
    /// waterfilled into `pool_w` under the `[min, max]` clamps, exactly
    /// as [`RackArbiter::new`] seeds its rack sub-budgets.
    ///
    /// # Panics
    /// Panics when the vectors disagree in length or are empty.
    pub fn new(policy: Policy, min: Vec<f64>, max: Vec<f64>, shares: &[f64], pool_w: f64) -> Self {
        assert!(
            !min.is_empty() && min.len() == max.len() && min.len() == shares.len(),
            "OuterSolver needs matching, non-empty clamp/share vectors"
        );
        let sub_budgets = policy::waterfill(shares, pool_w, &min, &max);
        let n = min.len();
        Self {
            alloc: policy.allocator(),
            fill: IncrementalFill::new(&min, &max),
            last_desired: vec![f64::NAN; n],
            scratch: RebalanceScratch::default(),
            tel: Vec::with_capacity(n),
            fill_tmp: Vec::new(),
            fill_desired: Vec::new(),
            sub_budgets,
            min,
            max,
        }
    }

    /// Children under division.
    pub fn len(&self) -> usize {
        self.sub_budgets.len()
    }

    /// True when the solver has no children (unreachable via `new`).
    pub fn is_empty(&self) -> bool {
        self.sub_budgets.is_empty()
    }

    /// Current per-child sub-budgets, W.
    pub fn sub_budgets(&self) -> &[f64] {
        &self.sub_budgets
    }

    /// Per-child lower clamps, W.
    pub fn min(&self) -> &[f64] {
        &self.min
    }

    /// Per-child upper clamps, W.
    pub fn max(&self) -> &[f64] {
        &self.max
    }

    /// One outer-epoch solve: re-split `pool_w` across the children from
    /// their drained window reports (`None` = silent child, sub-budget
    /// frozen). When every child reported, the incremental fill re-solves
    /// from desire deltas — a child whose desired sub-budget did not move
    /// bitwise reuses its cached clamped desire and costs nothing beyond
    /// the comparison; any silent child falls back to the general engine,
    /// which owns the frozen-pool semantics.
    pub fn resolve(&mut self, pool_w: f64, reports: &[Option<NodeTelemetry>]) -> &[f64] {
        assert_eq!(
            reports.len(),
            self.sub_budgets.len(),
            "one window report per child"
        );
        if reports.iter().all(Option::is_some) {
            self.tel.clear();
            self.tel
                .extend(reports.iter().map(|r| r.expect("all report")));
            if self.alloc.desired_into(
                &self.sub_budgets,
                &self.tel,
                pool_w,
                None,
                &mut self.fill_tmp,
                &mut self.fill_desired,
            ) {
                for (r, &d) in self.fill_desired.iter().enumerate() {
                    if d.to_bits() != self.last_desired[r].to_bits() {
                        self.fill.update(r, d);
                        self.last_desired[r] = d;
                    }
                }
                self.sub_budgets.copy_from_slice(self.fill.solve(pool_w));
            }
        } else {
            policy::rebalance(
                self.alloc,
                pool_w,
                &mut self.sub_budgets,
                &self.min,
                &self.max,
                reports,
                None,
                &mut self.scratch,
            );
        }
        &self.sub_budgets
    }

    /// Re-fit the current sub-budgets into a new pool (the
    /// [`BudgetArbiter::set_budget`] cascade at this level): waterfill
    /// the existing split into `pool_w` under the clamps.
    pub fn refit(&mut self, pool_w: f64) -> &[f64] {
        let refit = policy::waterfill(&self.sub_budgets, pool_w, &self.min, &self.max);
        self.sub_budgets.copy_from_slice(&refit);
        &self.sub_budgets
    }
}

/// The two-level arbiter tree: rack-level division of the machine budget
/// over nested per-rack [`PowerArbiter`]s.
#[derive(Debug, Clone)]
pub struct RackArbiter {
    cfg: ArbiterConfig,
    h: HierarchyConfig,
    /// The rack-level division engine (shared with the sharded-daemon
    /// coordinator, which is why it is a separate type).
    outer: OuterSolver,
    /// One flat arbiter per rack, budgeted at its sub-budget.
    children: Vec<PowerArbiter>,
    /// Leaf index span of each rack (ranks are packed in rack order).
    spans: Vec<Range<usize>>,
    /// Telemetry aggregating upward over the current outer window.
    acc: Vec<RackWindow>,
    round: usize,
    /// Concatenated leaf grants across the racks, W.
    leaf_grants: Vec<f64>,
    leaf_trace: GrantTrace,
    rack_trace: GrantTrace,
    /// Reused outer-epoch report buffer (no per-epoch allocation).
    rack_reports: Vec<Option<NodeTelemetry>>,
    /// Which racks were re-split at the current barrier (reused).
    stepped: Vec<bool>,
    /// Inner-epoch child re-splits skipped because the rack subtree was
    /// clean (no member telemetry this barrier): the subtree reused its
    /// cached sub-budget split instead of re-solving.
    skipped_rack_steps: usize,
}

impl RackArbiter {
    /// Build the tree: the machine budget is first split across racks in
    /// proportion to their size (clamped per rack), then uniformly
    /// within each rack — so the initial leaf grants match the flat
    /// arbiter's uniform split whenever the rack clamps permit it.
    ///
    /// # Panics
    /// Panics when either configuration is invalid (see
    /// [`ArbiterConfig::validate`] / [`HierarchyConfig::validate`]).
    pub fn new(cfg: ArbiterConfig, hierarchy: HierarchyConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        let n = hierarchy.node_count();
        hierarchy
            .validate(&cfg, n)
            .unwrap_or_else(|e| panic!("{e}"));
        let (rack_min, rack_max) = hierarchy.resolved_clamps(&cfg);
        let shares: Vec<f64> = hierarchy
            .racks
            .iter()
            .map(|&k| cfg.budget_w * (k as f64 / n as f64))
            .collect();
        let outer = OuterSolver::new(
            hierarchy.rack_policy,
            rack_min,
            rack_max,
            &shares,
            cfg.budget_w,
        );

        let mut spans = Vec::with_capacity(hierarchy.racks.len());
        let mut start = 0;
        for &k in &hierarchy.racks {
            spans.push(start..start + k);
            start += k;
        }
        // Children run untraced: the tree records the leaf trace itself,
        // and the duplicate per-rack traces were measurable overhead at
        // scale (four Vec clones per rack per barrier).
        let children: Vec<PowerArbiter> = hierarchy
            .racks
            .iter()
            .zip(outer.sub_budgets())
            .map(|(&k, &b)| {
                PowerArbiter::new(ArbiterConfig { budget_w: b, ..cfg }, k).with_tracing(false)
            })
            .collect();
        let mut leaf_grants = vec![0.0; n];
        for (child, span) in children.iter().zip(&spans) {
            leaf_grants[span.clone()].copy_from_slice(child.grants());
        }
        let n_racks = hierarchy.racks.len();
        let arb = Self {
            rack_reports: Vec::with_capacity(n_racks),
            stepped: vec![false; n_racks],
            skipped_rack_steps: 0,
            outer,
            children,
            spans,
            acc: vec![RackWindow::default(); n_racks],
            round: 0,
            leaf_grants,
            leaf_trace: GrantTrace::new(cfg.policy.name()),
            rack_trace: GrantTrace::new(hierarchy.rack_policy.name()),
            cfg,
            h: hierarchy,
        };
        arb.assert_rack_invariants();
        arb
    }

    /// The node-level arbiter configuration.
    pub fn config(&self) -> &ArbiterConfig {
        &self.cfg
    }

    /// The rack-level configuration.
    pub fn hierarchy(&self) -> &HierarchyConfig {
        &self.h
    }

    /// Current rack sub-budgets, W.
    pub fn sub_budgets(&self) -> &[f64] {
        self.outer.sub_budgets()
    }

    /// The rack-level conservation trace (one tick per outer epoch).
    pub fn rack_trace(&self) -> &GrantTrace {
        &self.rack_trace
    }

    /// One barrier's worth of arbitration: aggregate telemetry upward;
    /// on an outer-epoch boundary re-split the machine budget across
    /// racks and push sub-budgets down; on an inner-epoch boundary let
    /// each rack's arbiter re-split among its nodes. Returns the leaf
    /// grants (one tick is always recorded, so the leaf trace stays one
    /// row per barrier, like the flat arbiter's). Malformed input (wrong
    /// arity, non-finite or negative fields) is rejected with the tree
    /// untouched — nothing has aggregated upward yet when the check runs.
    ///
    /// # Panics
    /// Panics on an invariant violation at either level (a bug, not an
    /// operating condition).
    pub fn redistribute(
        &mut self,
        reports: &[Option<NodeTelemetry>],
    ) -> Result<&[f64], TelemetryError> {
        validate_reports(self.leaf_grants.len(), reports)?;
        // Telemetry aggregates upward into the outer window.
        for (acc, span) in self.acc.iter_mut().zip(&self.spans) {
            for r in reports[span.clone()].iter().flatten() {
                acc.add(r);
            }
        }
        self.round += 1;
        let barrier = self.round - 1;

        // Outer epoch: budgets flow downward.
        let outer = self.round.is_multiple_of(self.h.outer_period);
        if outer {
            self.rack_reports.clear();
            self.rack_reports
                .extend(self.acc.iter_mut().map(RackWindow::take));
            // The solver owns both epoch paths: every-rack-reported goes
            // incremental (desire-delta waterfill), any silent rack falls
            // back to the general engine's frozen semantics.
            self.outer.resolve(self.cfg.budget_w, &self.rack_reports);
            self.rack_trace.record(
                barrier,
                self.outer.sub_budgets(),
                &self.rack_reports,
                self.cfg.budget_w,
            );
            for (child, &b) in self.children.iter_mut().zip(self.outer.sub_budgets()) {
                child.set_budget(b);
            }
            self.assert_rack_invariants();
        }

        // Inner epoch: each *dirty* rack re-splits its sub-budget — a
        // rack none of whose members reported this barrier is clean and
        // reuses its cached split, bit-identically: with no reports the
        // engine would have held every grant anyway, and the child's
        // trace is off, so skipping the call is unobservable. The
        // per-rack slices were validated above, so child rejection is
        // impossible; `?` still propagates it rather than unwrapping,
        // keeping this path panic-free by construction.
        let inner = self.round.is_multiple_of(self.h.inner_period);
        self.stepped.iter_mut().for_each(|s| *s = false);
        if inner {
            for (r, (child, span)) in self.children.iter_mut().zip(&self.spans).enumerate() {
                let slice = &reports[span.clone()];
                if slice.iter().any(Option::is_some) {
                    child.redistribute(slice)?;
                    self.stepped[r] = true;
                } else {
                    self.skipped_rack_steps += 1;
                }
            }
        }

        // Leaf grants only move where a rack re-split (or an outer epoch
        // re-fitted child budgets); clean subtrees keep their cached span.
        for (r, (child, span)) in self.children.iter().zip(&self.spans).enumerate() {
            if outer || self.stepped[r] {
                self.leaf_grants[span.clone()].copy_from_slice(child.grants());
            }
        }
        self.leaf_trace
            .record(barrier, &self.leaf_grants, reports, self.cfg.budget_w);
        Ok(&self.leaf_grants)
    }

    /// Inner-epoch rack re-splits skipped so far because the subtree was
    /// clean (no member telemetry at that barrier).
    pub fn skipped_rack_steps(&self) -> usize {
        self.skipped_rack_steps
    }

    /// Rack-level invariants: Σ sub-budgets ≤ machine budget, every
    /// sub-budget inside its clamp, and every child budgeted at exactly
    /// its sub-budget (the node level asserts its own invariants).
    fn assert_rack_invariants(&self) {
        let subs = self.outer.sub_budgets();
        let total: f64 = subs.iter().sum();
        assert!(
            total <= self.cfg.budget_w + EPS_W,
            "rack sub-budgets {} W exceed the {} W machine budget",
            total,
            self.cfg.budget_w
        );
        for (r, &b) in subs.iter().enumerate() {
            assert!(
                (self.outer.min()[r] - EPS_W..=self.outer.max()[r] + EPS_W).contains(&b),
                "rack {r} sub-budget {b} W outside [{}, {}] W",
                self.outer.min()[r],
                self.outer.max()[r]
            );
            assert!(
                (self.children[r].config().budget_w - b).abs() <= EPS_W,
                "rack {r} child budget {} W drifted from its {} W sub-budget",
                self.children[r].config().budget_w,
                b
            );
        }
    }
}

impl BudgetArbiter for RackArbiter {
    fn node_count(&self) -> usize {
        self.leaf_grants.len()
    }

    fn redistribute(
        &mut self,
        reports: &[Option<NodeTelemetry>],
    ) -> Result<&[f64], TelemetryError> {
        RackArbiter::redistribute(self, reports)
    }

    fn grants(&self) -> &[f64] {
        &self.leaf_grants
    }

    fn trace(&self) -> &GrantTrace {
        &self.leaf_trace
    }

    fn budget(&self) -> f64 {
        self.cfg.budget_w
    }

    fn set_budget(&mut self, budget_w: f64) {
        if budget_w.to_bits() == self.cfg.budget_w.to_bits() {
            return;
        }
        let floor: f64 = self.outer.min().iter().sum();
        assert!(
            budget_w >= floor - EPS_W,
            "budget {} W cannot fund the {} W sum of rack floors",
            budget_w,
            floor
        );
        self.cfg.budget_w = budget_w;
        self.outer.refit(budget_w);
        for (child, &b) in self.children.iter_mut().zip(self.outer.sub_budgets()) {
            child.set_budget(b);
        }
        for (child, span) in self.children.iter().zip(&self.spans) {
            self.leaf_grants[span.clone()].copy_from_slice(child.grants());
        }
        self.assert_rack_invariants();
    }

    fn rack_trace(&self) -> Option<&GrantTrace> {
        Some(&self.rack_trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: Policy) -> ArbiterConfig {
        ArbiterConfig {
            budget_w: 400.0,
            min_cap_w: 40.0,
            max_cap_w: 120.0,
            policy,
        }
    }

    fn report(compute_s: f64, power_w: f64) -> Option<NodeTelemetry> {
        Some(NodeTelemetry::compute_only(
            compute_s,
            1.0 / compute_s,
            power_w,
        ))
    }

    #[test]
    fn single_rack_tree_matches_the_flat_arbiter_bit_for_bit() {
        let c = cfg(Policy::ProgressFeedback { gain: 1.0 });
        let mut flat = PowerArbiter::new(c, 4);
        let mut tree = RackArbiter::new(
            c,
            HierarchyConfig {
                racks: vec![4],
                outer_period: 2,
                inner_period: 1,
                rack_policy: Policy::DemandProportional,
                rack_clamps: None,
            },
        );
        let streams = [
            [
                report(0.5, 100.0),
                report(1.0, 95.0),
                report(1.5, 90.0),
                report(2.5, 99.0),
            ],
            [
                report(0.7, 100.0),
                None,
                report(1.4, 90.0),
                report(2.0, 99.0),
            ],
            [
                report(0.6, 100.0),
                report(1.1, 95.0),
                report(1.3, 90.0),
                report(1.9, 99.0),
            ],
            [None, None, None, None],
            [
                report(0.9, 100.0),
                report(1.0, 95.0),
                report(1.2, 90.0),
                report(1.8, 99.0),
            ],
        ];
        for (ga, gb) in flat.grants().iter().zip(BudgetArbiter::grants(&tree)) {
            assert_eq!(ga.to_bits(), gb.to_bits(), "initial grants must match");
        }
        for reports in &streams {
            let a = flat.redistribute(reports).unwrap().to_vec();
            let b = tree.redistribute(reports).unwrap().to_vec();
            for (ga, gb) in a.iter().zip(&b) {
                assert_eq!(ga.to_bits(), gb.to_bits(), "{a:?} vs {b:?}");
            }
        }
        assert_eq!(tree.rack_trace().len(), 2, "outer epochs fired");
        for tick in tree.rack_trace().ticks() {
            assert_eq!(
                tick.granted_w[0].to_bits(),
                400.0f64.to_bits(),
                "one rack owns the whole budget"
            );
        }
    }

    #[test]
    fn outer_epoch_moves_watts_toward_the_slow_rack() {
        // Rack 1 is uniformly twice as slow as rack 0: the rack-level
        // feedback must shift sub-budget toward it.
        let mut tree = RackArbiter::new(
            cfg(Policy::ProgressFeedback { gain: 1.0 }),
            HierarchyConfig {
                racks: vec![2, 2],
                outer_period: 2,
                inner_period: 1,
                rack_policy: Policy::ProgressFeedback { gain: 1.0 },
                rack_clamps: None,
            },
        );
        let initial = tree.sub_budgets().to_vec();
        assert!((initial[0] - 200.0).abs() < 1e-9);
        for _ in 0..4 {
            tree.redistribute(&[
                report(1.0, 90.0),
                report(1.0, 90.0),
                report(2.0, 95.0),
                report(2.0, 95.0),
            ])
            .unwrap();
        }
        let sub = tree.sub_budgets();
        assert!(
            sub[1] > sub[0] + 5.0,
            "slow rack must win sub-budget: {sub:?}"
        );
        let total: f64 = sub.iter().sum();
        assert!(total <= 400.0 + 1e-6);
        // The node level spends what its rack was granted, no more.
        let leaves = BudgetArbiter::grants(&tree);
        assert!(leaves[2..].iter().sum::<f64>() <= sub[1] + 1e-6);
        assert!(leaves[..2].iter().sum::<f64>() <= sub[0] + 1e-6);
    }

    #[test]
    fn a_silent_rack_keeps_its_sub_budget() {
        let mut tree = RackArbiter::new(
            cfg(Policy::ProgressFeedback { gain: 1.0 }),
            HierarchyConfig {
                racks: vec![2, 2],
                outer_period: 2,
                inner_period: 1,
                rack_policy: Policy::ProgressFeedback { gain: 1.0 },
                rack_clamps: None,
            },
        );
        let held = tree.sub_budgets()[1];
        // Rack 1 never reports (both members silent): however imbalanced
        // rack 0 looks, rack 1's pot must not move.
        for _ in 0..6 {
            tree.redistribute(&[report(0.5, 90.0), report(2.5, 95.0), None, None])
                .unwrap();
        }
        assert_eq!(
            tree.sub_budgets()[1].to_bits(),
            held.to_bits(),
            "silent rack's sub-budget must freeze"
        );
        assert_eq!(tree.rack_trace().len(), 3);
        for tick in tree.rack_trace().ticks() {
            assert!(!tick.reporting[1], "rack 1 must be recorded as silent");
            assert!(tick.slack_w() >= -1e-6);
        }
        // Rack 0 keeps rebalancing internally meanwhile.
        let leaves = BudgetArbiter::grants(&tree);
        assert!(leaves[1] > leaves[0] + 1.0, "rack 0 still rebalances");
    }

    #[test]
    fn clean_rack_subtrees_skip_the_inner_resolve_bit_identically() {
        let mut tree = RackArbiter::new(
            cfg(Policy::ProgressFeedback { gain: 1.0 }),
            HierarchyConfig {
                racks: vec![2, 2],
                outer_period: 2,
                inner_period: 1,
                rack_policy: Policy::ProgressFeedback { gain: 1.0 },
                rack_clamps: None,
            },
        );
        let frozen: Vec<u64> = BudgetArbiter::grants(&tree)[2..]
            .iter()
            .map(|g| g.to_bits())
            .collect();
        for _ in 0..6 {
            tree.redistribute(&[report(0.5, 90.0), report(2.5, 95.0), None, None])
                .unwrap();
        }
        // Every inner epoch the clean rack reuses its cached split
        // instead of re-solving, and a held grant holds bitwise: the
        // silent subtree's leaves never move off their initial split.
        assert_eq!(
            tree.skipped_rack_steps(),
            6,
            "rack 1 was clean at every barrier"
        );
        let after: Vec<u64> = BudgetArbiter::grants(&tree)[2..]
            .iter()
            .map(|g| g.to_bits())
            .collect();
        assert_eq!(after, frozen, "clean subtree's leaf grants must not move");
        // The barrier trace still records every round.
        assert_eq!(tree.trace().len(), 6);
    }

    #[test]
    fn incremental_outer_solve_matches_the_general_engine() {
        // All racks report every barrier, so the outer epochs take the
        // incremental-fill path. A shadow re-runs the same aggregates
        // through the full engine; sub-budgets must agree to ≤1e-9.
        let c = cfg(Policy::ProgressFeedback { gain: 1.0 });
        let h = HierarchyConfig {
            racks: vec![2, 2, 2],
            outer_period: 2,
            inner_period: 1,
            rack_policy: Policy::ProgressFeedback { gain: 0.8 },
            rack_clamps: None,
        };
        let mut tree = RackArbiter::new(c, h.clone());
        let (rack_min, rack_max) = h.resolved_clamps(&c);
        let mut shadow = tree.sub_budgets().to_vec();
        let mut scratch = RebalanceScratch::default();
        let mut accs = [
            RackWindow::default(),
            RackWindow::default(),
            RackWindow::default(),
        ];
        for round in 1..=8usize {
            let reports: Vec<Option<NodeTelemetry>> = (0..6)
                .map(|i| report(0.4 + 0.3 * ((i + round) % 5) as f64, 88.0 + i as f64))
                .collect();
            for (acc, pair) in accs.iter_mut().zip(reports.chunks(2)) {
                for r in pair.iter().flatten() {
                    acc.add(r);
                }
            }
            tree.redistribute(&reports).unwrap();
            if round.is_multiple_of(h.outer_period) {
                let rack_reports: Vec<Option<NodeTelemetry>> =
                    accs.iter_mut().map(RackWindow::take).collect();
                policy::rebalance(
                    h.rack_policy.allocator(),
                    c.budget_w,
                    &mut shadow,
                    &rack_min,
                    &rack_max,
                    &rack_reports,
                    None,
                    &mut scratch,
                );
                for (got, want) in tree.sub_budgets().iter().zip(&shadow) {
                    let rel = (got - want).abs() / want.abs().max(1.0);
                    assert!(rel <= 1e-9, "incremental {got} vs full {want}");
                }
            }
        }
        assert!(
            tree.sub_budgets()
                .iter()
                .any(|&b| (b - 400.0 / 3.0).abs() > 1.0),
            "the feedback policy must actually have moved watts"
        );
    }

    #[test]
    fn inner_period_holds_node_grants_between_epochs() {
        let mut tree = RackArbiter::new(
            cfg(Policy::ProgressFeedback { gain: 1.0 }),
            HierarchyConfig {
                racks: vec![4],
                outer_period: 4,
                inner_period: 2,
                rack_policy: Policy::UniformStatic,
                rack_clamps: None,
            },
        );
        let reports = [
            report(0.5, 100.0),
            report(1.0, 95.0),
            report(1.5, 90.0),
            report(2.5, 99.0),
        ];
        let g0 = tree.redistribute(&reports).unwrap().to_vec(); // round 1: holds
        let initial: Vec<f64> = vec![100.0; 4];
        assert_eq!(g0, initial, "round 1 is not an inner epoch");
        let g1 = tree.redistribute(&reports).unwrap().to_vec(); // round 2: fires
        assert_ne!(g1, initial, "round 2 must rebalance");
    }

    #[test]
    fn per_rack_clamps_cap_the_sub_budget() {
        let mut tree = RackArbiter::new(
            cfg(Policy::ProgressFeedback { gain: 1.0 }),
            HierarchyConfig {
                racks: vec![2, 2],
                outer_period: 1,
                inner_period: 1,
                rack_policy: Policy::ProgressFeedback { gain: 2.0 },
                rack_clamps: Some(vec![(80.0, 190.0), (80.0, 240.0)]),
            },
        );
        // Rack 0 is desperately slow, but its clamp holds it at 190 W.
        for _ in 0..6 {
            tree.redistribute(&[
                report(3.0, 95.0),
                report(3.0, 95.0),
                report(0.5, 90.0),
                report(0.5, 90.0),
            ])
            .unwrap();
        }
        assert!(
            tree.sub_budgets()[0] <= 190.0 + 1e-6,
            "clamp must hold: {:?}",
            tree.sub_budgets()
        );
    }

    #[test]
    fn set_budget_cascades_to_the_children() {
        let mut tree = RackArbiter::new(
            cfg(Policy::ProgressFeedback { gain: 1.0 }),
            HierarchyConfig::uniform(2, 2, Policy::ProgressFeedback { gain: 1.0 }),
        );
        BudgetArbiter::set_budget(&mut tree, 340.0);
        assert_eq!(BudgetArbiter::budget(&tree), 340.0);
        let total_sub: f64 = tree.sub_budgets().iter().sum();
        assert!(total_sub <= 340.0 + 1e-6);
        let total_leaf: f64 = BudgetArbiter::grants(&tree).iter().sum();
        assert!(total_leaf <= 340.0 + 1e-6);
    }

    #[test]
    fn validate_rejects_inconsistent_shapes() {
        let c = cfg(Policy::UniformStatic);
        let mut h = HierarchyConfig::uniform(2, 2, Policy::UniformStatic);
        assert!(h.validate(&c, 4).is_ok());
        assert!(h.validate(&c, 5).is_err(), "rack sum must match n");
        h.outer_period = 3;
        h.inner_period = 2;
        assert!(
            h.validate(&c, 4).is_err(),
            "outer must be multiple of inner"
        );
        h = HierarchyConfig::uniform(2, 2, Policy::UniformStatic);
        h.rack_clamps = Some(vec![(10.0, 50.0), (80.0, 240.0)]);
        assert!(
            h.validate(&c, 4).is_err(),
            "rack floor below node floors is infeasible"
        );
    }
}
