//! The power-budget arbiter API and its flat implementation.
//!
//! A cluster holds one fixed power budget (machine-room breaker, PUE
//! contract, job allocation) and must divide it across nodes. Medhat et
//! al. ("Power Redistribution for Optimizing Performance in MPI
//! Clusters") show that shifting a fixed budget toward critical-path
//! ranks recovers performance lost to imbalance; Cerf et al. argue the
//! actuation should be a feedback controller on an online progress
//! signal. The [`BudgetArbiter`] trait captures the contract every
//! budget divider satisfies — redistribute from telemetry, expose the
//! grants and the conservation trace, and accept a re-targeted budget
//! from a *parent* arbiter — so arbiters compose into trees: the flat
//! [`PowerArbiter`] here grants nodes directly, and
//! [`crate::hierarchy::RackArbiter`] nests flat arbiters under a
//! rack-level division of the same machine budget.
//!
//! Division policies (shared by every level through
//! [`crate::policy::Allocator`]):
//!
//! - [`Policy::UniformStatic`] — the application-agnostic baseline:
//!   `budget / n` once, never revisited;
//! - [`Policy::DemandProportional`] — each epoch, watts in proportion to
//!   each child's measured power draw (demand), so idle-ish children
//!   yield headroom;
//! - [`Policy::ProgressFeedback`] — a proportional controller on the
//!   per-child iteration times: children ahead of the barrier donate
//!   watts, the critical path receives them, equalizing arrival times.
//!
//! Two invariants hold after every redistribution, checked on every tick
//! and recorded in the [`GrantTrace`]: granted caps sum to at most the
//! budget, and every grant respects its `[min, max]` clamp. Children
//! whose telemetry dropped out (the PR-1 fault layer) keep their last
//! grant and are excluded from redistribution until they report again.

use serde::{Deserialize, Serialize};

use crate::error::{ensure, ConfigError, TelemetryError};
use crate::policy::{self, Allocator, RebalanceScratch};

/// Tolerance for floating-point invariant checks, W.
pub(crate) const EPS_W: f64 = 1e-6;

/// Budget-division policy (the serde-facing configuration enum; its
/// executable form is [`Policy::allocator`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// `budget / n` for everyone, never redistributed.
    UniformStatic,
    /// Watts in proportion to each child's measured power draw.
    DemandProportional,
    /// Proportional feedback on per-child iteration times: steal watts
    /// from ahead-of-barrier children for the critical path. The error
    /// term is scaled by each child's compute fraction
    /// ([`NodeTelemetry::compute_fraction`]), so a rank that is slow
    /// because it is waiting on the wire — not because it is capped —
    /// stops being funded.
    ProgressFeedback {
        /// Controller gain: fraction of the relative time error converted
        /// into a relative cap adjustment per epoch (0.5–1.5 is sensible).
        gain: f64,
    },
}

impl Policy {
    /// Display name (table/CSV key).
    pub fn name(self) -> &'static str {
        match self {
            Policy::UniformStatic => "uniform-static",
            Policy::DemandProportional => "demand-proportional",
            Policy::ProgressFeedback { .. } => "progress-feedback",
        }
    }
}

/// Arbiter tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArbiterConfig {
    /// Budget to divide, W.
    pub budget_w: f64,
    /// Lowest cap the arbiter will ever grant a node, W (RAPL floors and
    /// safe-mode margins live below this).
    pub min_cap_w: f64,
    /// Highest cap the arbiter will ever grant a node, W.
    pub max_cap_w: f64,
    /// Division policy.
    pub policy: Policy,
}

impl ArbiterConfig {
    /// Validate internal consistency: positive budget, a non-empty
    /// `0 < min ≤ max` clamp range, and a non-negative feedback gain.
    pub fn validate(&self) -> Result<(), ConfigError> {
        ensure(self.budget_w > 0.0, "ArbiterConfig.budget_w", || {
            format!("budget {} W must be positive", self.budget_w)
        })?;
        ensure(
            self.min_cap_w > 0.0 && self.min_cap_w <= self.max_cap_w,
            "ArbiterConfig.min_cap_w",
            || {
                format!(
                    "need 0 < min_cap_w ({} W) <= max_cap_w ({} W)",
                    self.min_cap_w, self.max_cap_w
                )
            },
        )?;
        if let Policy::ProgressFeedback { gain } = self.policy {
            ensure(gain >= 0.0, "Policy::ProgressFeedback.gain", || {
                format!("gain {gain} must be non-negative")
            })?;
        }
        Ok(())
    }
}

/// What one node's monitoring stack delivered for the last epoch.
/// A node that could not measure (telemetry dropout) reports `None`
/// instead and is excluded from redistribution. The same shape carries a
/// *rack's* aggregated epoch in the hierarchy (sums over its members).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeTelemetry {
    /// Compute-phase time this epoch (excluding exchange and wait), s.
    pub compute_s: f64,
    /// Exchange-phase wire time this epoch (see [`crate::comm`]), s.
    pub comm_s: f64,
    /// Time neither computing nor on the wire (barrier/rendezvous
    /// slack), s.
    pub slack_s: f64,
    /// Progress rate while computing, work units/s.
    pub rate: f64,
    /// Measured package power over the epoch (user-space MSR path), W.
    pub power_w: f64,
}

impl NodeTelemetry {
    /// Telemetry for an epoch with no exchange phase (the PR-2
    /// ideal-barrier shape: comm and slack are zero).
    pub fn compute_only(compute_s: f64, rate: f64, power_w: f64) -> Self {
        Self {
            compute_s,
            comm_s: 0.0,
            slack_s: 0.0,
            rate,
            power_w,
        }
    }

    /// Check every field is finite and non-negative — the domain the
    /// division policies assume. A report failing this is an *input*
    /// problem (a buggy or malicious client of the arbiter daemon, a
    /// corrupted frame), reported as a recoverable [`TelemetryError`]
    /// naming `node` rather than an abort.
    pub fn validate(&self, node: usize) -> Result<(), TelemetryError> {
        let fields = [
            ("compute_s", self.compute_s),
            ("comm_s", self.comm_s),
            ("slack_s", self.slack_s),
            ("rate", self.rate),
            ("power_w", self.power_w),
        ];
        for (field, value) in fields {
            if !value.is_finite() || value < 0.0 {
                return Err(TelemetryError::Malformed { node, field, value });
            }
        }
        Ok(())
    }

    /// Fraction of this node's busy time spent computing (1.0 when the
    /// epoch had no wire time). The feedback policy scales its error
    /// term by this: watts speed up compute, not the network, so a
    /// communication-bound rank earns proportionally less boost.
    pub fn compute_fraction(&self) -> f64 {
        let busy = self.compute_s + self.comm_s;
        if self.comm_s > 0.0 && busy > 0.0 {
            self.compute_s / busy
        } else {
            1.0
        }
    }
}

/// One row of the budget-conservation trace: the grants in force after a
/// redistribution round. The policy that produced the row lives on the
/// enclosing [`GrantTrace`], recorded once per trace rather than
/// duplicated per tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrantTick {
    /// Redistribution round (0 = first barrier).
    pub round: usize,
    /// Cap granted to each child, W.
    pub granted_w: Vec<f64>,
    /// Whether each child's telemetry arrived this round.
    pub reporting: Vec<bool>,
    /// Sum of granted caps, W.
    pub total_w: f64,
    /// The budget being divided, W.
    pub budget_w: f64,
    /// Per-child compute-phase time reported this round, s (NaN for a
    /// silent child).
    pub compute_s: Vec<f64>,
    /// Per-child exchange-phase wire time reported this round, s (NaN
    /// for a silent child).
    pub comm_s: Vec<f64>,
}

impl GrantTick {
    /// Unallocated headroom, W (non-negative when the invariant holds).
    pub fn slack_w(&self) -> f64 {
        self.budget_w - self.total_w
    }
}

/// A budget-conservation trace: the policy name (once — every tick of a
/// trace is produced by the same policy) plus one [`GrantTick`] per
/// redistribution round.
#[derive(Debug, Clone, PartialEq)]
pub struct GrantTrace {
    policy: &'static str,
    ticks: Vec<GrantTick>,
}

impl GrantTrace {
    /// An empty trace for `policy`.
    pub fn new(policy: &'static str) -> Self {
        Self {
            policy,
            ticks: Vec::new(),
        }
    }

    /// The policy that produced every tick of this trace.
    pub fn policy(&self) -> &'static str {
        self.policy
    }

    /// The recorded ticks, in round order.
    pub fn ticks(&self) -> &[GrantTick] {
        &self.ticks
    }

    /// Number of recorded ticks.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// Smallest budget slack across the trace, W (non-negative iff
    /// conservation held on every tick; `+∞` for an empty trace).
    pub fn min_slack_w(&self) -> f64 {
        self.ticks
            .iter()
            .map(GrantTick::slack_w)
            .fold(f64::INFINITY, f64::min)
    }

    /// Append the tick for one redistribution round.
    pub(crate) fn record(
        &mut self,
        round: usize,
        grants: &[f64],
        reports: &[Option<NodeTelemetry>],
        budget_w: f64,
    ) {
        let phase = |f: fn(&NodeTelemetry) -> f64| -> Vec<f64> {
            reports
                .iter()
                .map(|r| r.as_ref().map(f).unwrap_or(f64::NAN))
                .collect()
        };
        self.ticks.push(GrantTick {
            round,
            granted_w: grants.to_vec(),
            reporting: reports.iter().map(|r| r.is_some()).collect(),
            total_w: grants.iter().sum(),
            budget_w,
            compute_s: phase(|t| t.compute_s),
            comm_s: phase(|t| t.comm_s),
        });
    }
}

/// Reject a report vector the arbiter cannot act on: wrong arity (a
/// grant for an unknown node id cannot exist) or a malformed field in
/// any present report. Shared by both arbiter levels so the rejection
/// rules cannot drift apart.
pub(crate) fn validate_reports(
    expected: usize,
    reports: &[Option<NodeTelemetry>],
) -> Result<(), TelemetryError> {
    if reports.len() != expected {
        return Err(TelemetryError::Arity {
            expected,
            got: reports.len(),
        });
    }
    for (node, report) in reports.iter().enumerate() {
        if let Some(t) = report {
            t.validate(node)?;
        }
    }
    Ok(())
}

/// The composable arbiter contract: anything that divides a (re-)settable
/// power budget across leaf nodes from their telemetry. Implemented by
/// the flat [`PowerArbiter`] and the hierarchical
/// [`crate::hierarchy::RackArbiter`]; because a parent can re-target a
/// child's budget each outer epoch via [`BudgetArbiter::set_budget`],
/// arbiters nest into trees of arbitrary fan-out. The contract is also
/// what the `arbiterd` daemon serves over a socket, which is why
/// malformed input is a recoverable [`TelemetryError`] (NACK one client,
/// keep serving) and why crash recovery ([`BudgetArbiter::restore_grants`])
/// and lease reclamation ([`BudgetArbiter::reclaim`]) are part of the
/// trait rather than daemon-private hacks.
pub trait BudgetArbiter: Send {
    /// Number of leaf nodes this arbiter grants to.
    fn node_count(&self) -> usize;

    /// Redistribute the budget from the latest telemetry; returns the new
    /// leaf grants. `reports[i] = None` means leaf `i`'s telemetry dropped
    /// out: it keeps its last grant and is excluded from this round.
    /// Malformed input (wrong arity, non-finite or negative fields) is
    /// rejected with the arbiter state untouched.
    fn redistribute(&mut self, reports: &[Option<NodeTelemetry>])
        -> Result<&[f64], TelemetryError>;

    /// [`BudgetArbiter::redistribute`] for callers that have *already*
    /// validated every report — the arbiter daemon NACKs malformed
    /// telemetry at ingress, so re-validating 100k reports per round
    /// inside the redistribution is pure overhead. Validation has no
    /// effect on the arithmetic, so the grants are bit-identical to the
    /// checked path. The default forwards to the checked path;
    /// implementations override it to skip the per-field scan (arity
    /// must still be rejected — it indexes the grant vectors).
    fn redistribute_trusted(
        &mut self,
        reports: &[Option<NodeTelemetry>],
    ) -> Result<&[f64], TelemetryError> {
        self.redistribute(reports)
    }

    /// Leaf caps currently in force, W.
    fn grants(&self) -> &[f64];

    /// The leaf-level budget-conservation trace, one tick per
    /// redistribution round.
    fn trace(&self) -> &GrantTrace;

    /// The budget this arbiter divides, W.
    fn budget(&self) -> f64;

    /// Re-target the arbiter at a new budget — the parent re-splitting
    /// this child's pot at an outer epoch. Grants in force are re-fitted
    /// into the new budget immediately (shrunk toward the floors or grown
    /// into clamp headroom); setting the current budget is a no-op, so a
    /// static parent never perturbs its children.
    fn set_budget(&mut self, budget_w: f64);

    /// The upper-level (rack) conservation trace, for arbiters that have
    /// one.
    fn rack_trace(&self) -> Option<&GrantTrace> {
        None
    }

    /// Reclaim a dead leaf's watts: drop its grant to the floor so the
    /// freed headroom re-funds the survivors at the next redistribution.
    /// The arbiter daemon calls this when a client's heartbeat lease
    /// expires — a *silent* client merely freezes (its report turns
    /// `None`), an *expired* one is defunded. Returns `false` when this
    /// arbiter cannot reclaim (the default), leaving state untouched.
    fn reclaim(&mut self, node: usize) -> bool {
        let _ = node;
        false
    }

    /// Overwrite the grants in force from a crash-recovery snapshot.
    /// Returns `false` (state untouched) when the arbiter cannot restore
    /// — wrong arity, a grant outside its clamps, Σ over budget, or an
    /// implementation whose internal state is richer than its grant
    /// vector (the default).
    fn restore_grants(&mut self, grants: &[f64]) -> bool {
        let _ = grants;
        false
    }
}

/// The flat budget arbiter: divides its budget across nodes directly.
#[derive(Debug, Clone)]
pub struct PowerArbiter {
    cfg: ArbiterConfig,
    grants: Vec<f64>,
    /// Per-node clamp floors/ceilings: uniform `[min_cap, max_cap]` from
    /// the config unless a node's ceiling was tightened below the shared
    /// one by [`PowerArbiter::with_node_ceilings`] (thermal headroom).
    min_v: Vec<f64>,
    max_v: Vec<f64>,
    /// Per-node useful-progress weights for the feedback policy (`None`
    /// keeps the bit-exact iteration-time mode).
    weights: Option<Vec<f64>>,
    alloc: Allocator,
    round: usize,
    trace: GrantTrace,
    /// Whether redistribution rounds are recorded into the trace. The
    /// rack tree's per-rack children run with this off: their traces
    /// duplicate the tree's own leaf trace, and at thousands of nodes the
    /// per-tick `Vec` clones are pure overhead.
    tracing: bool,
    /// Reusable redistribution working memory (see [`RebalanceScratch`]).
    scratch: RebalanceScratch,
}

impl PowerArbiter {
    /// An arbiter over `n` nodes, initially granting a uniform split
    /// (clamped to `[min, max]`) regardless of policy.
    ///
    /// # Panics
    /// Panics when the configuration is invalid, `n` is zero, or the
    /// budget cannot fund `n` nodes at `min_cap_w` (no feasible
    /// allocation exists).
    pub fn new(cfg: ArbiterConfig, n: usize) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        assert!(n > 0, "need at least one node");
        assert!(
            cfg.budget_w >= cfg.min_cap_w * n as f64 - EPS_W,
            "budget {} W cannot fund {} nodes at the {} W floor",
            cfg.budget_w,
            n,
            cfg.min_cap_w
        );
        let uniform = (cfg.budget_w / n as f64).clamp(cfg.min_cap_w, cfg.max_cap_w);
        let arb = Self {
            grants: vec![uniform; n],
            min_v: vec![cfg.min_cap_w; n],
            max_v: vec![cfg.max_cap_w; n],
            weights: None,
            alloc: cfg.policy.allocator(),
            cfg,
            round: 0,
            trace: GrantTrace::new(cfg.policy.name()),
            tracing: true,
            scratch: RebalanceScratch::default(),
        };
        arb.assert_invariants();
        arb
    }

    /// Tighten individual nodes' grant ceilings below the shared
    /// `max_cap_w` — the thermal-headroom clamp: a node whose cooling can
    /// only dissipate `ceilings[i]` W in steady state (see
    /// [`simnode::thermal::ThermalConfig::sustainable_power_w`]) must not
    /// be granted more, because PROCHOT would claw the excess back while
    /// the watts stayed charged to this arbiter's budget. A ceiling at or
    /// above `max_cap_w` (or `+∞` for "no thermal limit") leaves that
    /// node's clamp — and therefore every grant downstream — bitwise
    /// untouched; a ceiling below the floor pins the node at the floor
    /// (the arbiter never grants below `min_cap_w`). Grants in force are
    /// re-fitted immediately, freeing clamped-off watts for the others.
    ///
    /// # Panics
    /// Panics on arity mismatch or a NaN ceiling.
    pub fn with_node_ceilings(mut self, ceilings: &[f64]) -> Self {
        assert_eq!(
            ceilings.len(),
            self.grants.len(),
            "one ceiling per node required"
        );
        let mut changed = false;
        for (i, &c) in ceilings.iter().enumerate() {
            assert!(!c.is_nan(), "node {i} ceiling must not be NaN");
            let tightened = c.clamp(self.cfg.min_cap_w, self.cfg.max_cap_w);
            if tightened < self.max_v[i] {
                self.max_v[i] = tightened;
                changed = true;
            }
        }
        if changed {
            let refit =
                policy::waterfill(&self.grants, self.cfg.budget_w, &self.min_v, &self.max_v);
            self.grants.copy_from_slice(&refit);
        }
        self.assert_invariants();
        self
    }

    /// Attach per-node useful-progress weights (see
    /// [`crate::policy::registry_progress_weights`]): the feedback policy
    /// then equalizes weighted science rates instead of raw iteration
    /// times. Without weights the time mode is preserved bit for bit.
    ///
    /// # Panics
    /// Panics on arity mismatch or a non-positive/non-finite weight.
    pub fn with_progress_weights(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(
            weights.len(),
            self.grants.len(),
            "one weight per node required"
        );
        for (i, &w) in weights.iter().enumerate() {
            assert!(
                w.is_finite() && w > 0.0,
                "node {i} weight {w} must be positive and finite"
            );
        }
        self.weights = Some(weights);
        self
    }

    /// Disable (or re-enable) trace recording. Grants, invariants and the
    /// redistribution arithmetic are bitwise unaffected; only the
    /// per-round [`GrantTrace`] bookkeeping — four `Vec` clones per tick —
    /// is skipped. [`crate::hierarchy::RackArbiter`] builds its per-rack
    /// children with tracing off (the tree records its own leaf trace),
    /// and the scale benches run untraced.
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// The arbiter configuration.
    pub fn config(&self) -> &ArbiterConfig {
        &self.cfg
    }

    /// Caps currently in force, W.
    pub fn grants(&self) -> &[f64] {
        &self.grants
    }

    /// The budget-conservation trace, one entry per redistribution round.
    pub fn trace(&self) -> &GrantTrace {
        &self.trace
    }

    /// Redistribute the budget from the latest telemetry; returns the new
    /// grants. `reports[i] = None` means node `i`'s telemetry dropped out:
    /// it keeps its last grant and is excluded from this round. Malformed
    /// input — wrong arity, a negative or non-finite field — is rejected
    /// with the grants untouched, so one bad report cannot kill a
    /// long-running arbiter service.
    ///
    /// # Panics
    /// Panics if an internal invariant (Σ grants ≤ budget, per-node
    /// clamps) breaks — a bug, not an operating condition.
    pub fn redistribute(
        &mut self,
        reports: &[Option<NodeTelemetry>],
    ) -> Result<&[f64], TelemetryError> {
        validate_reports(self.grants.len(), reports)?;
        Ok(self.rebalance_validated(reports))
    }

    /// The round itself, after input validation: rebalance, trace, and
    /// re-check the conservation invariants. Shared by the checked and
    /// trusted redistribution paths — validation never touches the
    /// arithmetic, so both produce bit-identical grants.
    fn rebalance_validated(&mut self, reports: &[Option<NodeTelemetry>]) -> &[f64] {
        policy::rebalance(
            self.alloc,
            self.cfg.budget_w,
            &mut self.grants,
            &self.min_v,
            &self.max_v,
            reports,
            self.weights.as_deref(),
            &mut self.scratch,
        );
        if self.tracing {
            self.trace
                .record(self.round, &self.grants, reports, self.cfg.budget_w);
        }
        self.round += 1;
        self.assert_invariants();
        &self.grants
    }

    /// Re-target the arbiter at `budget_w`, re-fitting the grants in
    /// force (see [`BudgetArbiter::set_budget`]).
    ///
    /// # Panics
    /// Panics when the new budget cannot fund the node count at the
    /// grant floor.
    pub fn set_budget(&mut self, budget_w: f64) {
        if budget_w.to_bits() == self.cfg.budget_w.to_bits() {
            return; // bit-exact no-op: a static parent never perturbs us
        }
        let n = self.grants.len();
        assert!(
            budget_w >= self.cfg.min_cap_w * n as f64 - EPS_W,
            "budget {} W cannot fund {} nodes at the {} W floor",
            budget_w,
            n,
            self.cfg.min_cap_w
        );
        self.cfg.budget_w = budget_w;
        let refit = policy::waterfill(&self.grants, budget_w, &self.min_v, &self.max_v);
        self.grants.copy_from_slice(&refit);
        self.assert_invariants();
    }

    /// The hard invariants: Σ grants ≤ budget and every grant inside its
    /// per-node clamp (which a thermal ceiling may have tightened below
    /// the shared `[min_cap, max_cap]`).
    fn assert_invariants(&self) {
        let total: f64 = self.grants.iter().sum();
        assert!(
            total <= self.cfg.budget_w + EPS_W,
            "granted {} W exceeds the {} W budget",
            total,
            self.cfg.budget_w
        );
        for (i, &g) in self.grants.iter().enumerate() {
            assert!(
                (self.min_v[i] - EPS_W..=self.max_v[i] + EPS_W).contains(&g),
                "node {i} grant {g} W outside [{}, {}] W",
                self.min_v[i],
                self.max_v[i]
            );
        }
    }
}

impl BudgetArbiter for PowerArbiter {
    fn node_count(&self) -> usize {
        self.grants.len()
    }

    fn redistribute(
        &mut self,
        reports: &[Option<NodeTelemetry>],
    ) -> Result<&[f64], TelemetryError> {
        PowerArbiter::redistribute(self, reports)
    }

    fn redistribute_trusted(
        &mut self,
        reports: &[Option<NodeTelemetry>],
    ) -> Result<&[f64], TelemetryError> {
        // Caller vouches for field validity (the daemon validated at
        // ingress); arity still gates, it indexes the grant vectors.
        if reports.len() != self.grants.len() {
            return Err(TelemetryError::Arity {
                expected: self.grants.len(),
                got: reports.len(),
            });
        }
        Ok(self.rebalance_validated(reports))
    }

    fn grants(&self) -> &[f64] {
        PowerArbiter::grants(self)
    }

    fn trace(&self) -> &GrantTrace {
        PowerArbiter::trace(self)
    }

    fn budget(&self) -> f64 {
        self.cfg.budget_w
    }

    fn set_budget(&mut self, budget_w: f64) {
        PowerArbiter::set_budget(self, budget_w)
    }

    fn reclaim(&mut self, node: usize) -> bool {
        if node >= self.grants.len() {
            return false;
        }
        // Dropping to the floor can only shrink the total, so Σ ≤ budget
        // is preserved by construction; the freed watts re-enter the pool
        // at the next redistribution.
        self.grants[node] = self.cfg.min_cap_w;
        self.assert_invariants();
        true
    }

    fn restore_grants(&mut self, grants: &[f64]) -> bool {
        if grants.len() != self.grants.len() {
            return false;
        }
        let total: f64 = grants.iter().sum();
        let clamped = grants
            .iter()
            .zip(self.min_v.iter().zip(&self.max_v))
            .all(|(g, (&lo, &hi))| (lo - EPS_W..=hi + EPS_W).contains(g));
        if total > self.cfg.budget_w + EPS_W || !clamped {
            return false;
        }
        self.grants.copy_from_slice(grants);
        self.assert_invariants();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: Policy) -> ArbiterConfig {
        ArbiterConfig {
            budget_w: 400.0,
            min_cap_w: 40.0,
            max_cap_w: 120.0,
            policy,
        }
    }

    fn report(compute_s: f64, power_w: f64) -> Option<NodeTelemetry> {
        Some(NodeTelemetry::compute_only(
            compute_s,
            1.0 / compute_s,
            power_w,
        ))
    }

    fn report_with_comm(compute_s: f64, comm_s: f64, power_w: f64) -> Option<NodeTelemetry> {
        Some(NodeTelemetry {
            compute_s,
            comm_s,
            slack_s: 0.0,
            rate: 1.0 / compute_s,
            power_w,
        })
    }

    #[test]
    fn uniform_static_never_moves() {
        let mut a = PowerArbiter::new(cfg(Policy::UniformStatic), 4);
        let before = a.grants().to_vec();
        a.redistribute(&[
            report(1.0, 90.0),
            report(4.0, 100.0),
            report(0.5, 80.0),
            report(2.0, 95.0),
        ])
        .unwrap();
        assert_eq!(a.grants(), before.as_slice());
        assert_eq!(a.trace().len(), 1);
    }

    #[test]
    fn feedback_steals_from_ahead_for_the_critical_node() {
        let gain = Policy::ProgressFeedback { gain: 1.0 };
        let mut a = PowerArbiter::new(cfg(gain), 4);
        // Node 3 is far behind the barrier; node 0 far ahead.
        a.redistribute(&[
            report(0.5, 100.0),
            report(1.0, 100.0),
            report(1.0, 100.0),
            report(2.5, 100.0),
        ])
        .unwrap();
        let g = a.grants();
        assert!(g[3] > 100.0 + 1.0, "critical node must gain: {:?}", g);
        assert!(g[0] < 100.0 - 1.0, "ahead node must donate: {:?}", g);
        let total: f64 = g.iter().sum();
        assert!(total <= 400.0 + 1e-6);
    }

    #[test]
    fn feedback_damps_the_boost_for_communication_bound_ranks() {
        let gain = Policy::ProgressFeedback { gain: 1.0 };
        // A wide clamp range keeps the controller in its linear region;
        // with the default 120 W ceiling both boosts would saturate and
        // the damping would be invisible.
        let wide = ArbiterConfig {
            max_cap_w: 250.0,
            ..cfg(gain)
        };
        // Two arbiters, identical compute times for the slow rank — but
        // in `wire`, node 3 additionally spent 1.5 s on the exchange.
        let mut compute = PowerArbiter::new(wide, 4);
        compute
            .redistribute(&[
                report(1.0, 100.0),
                report(1.0, 100.0),
                report(1.0, 100.0),
                report(2.5, 100.0),
            ])
            .unwrap();
        let mut wire = PowerArbiter::new(wide, 4);
        wire.redistribute(&[
            report_with_comm(1.0, 0.0, 100.0),
            report_with_comm(1.0, 0.0, 100.0),
            report_with_comm(1.0, 0.0, 100.0),
            report_with_comm(2.5, 1.5, 100.0),
        ])
        .unwrap();
        // `analyze` sees the same compute times either way, but the
        // comm-bound rank earns a damped boost: watts cannot speed up the
        // wire.
        assert!(
            wire.grants()[3] < compute.grants()[3] - 1.0,
            "comm-bound rank must be funded less: {:?} vs {:?}",
            wire.grants(),
            compute.grants()
        );
        // The trace records the per-phase split for the policy analysis.
        assert_eq!(wire.trace().ticks()[0].comm_s[3], 1.5);
        assert_eq!(wire.trace().ticks()[0].compute_s[3], 2.5);
    }

    #[test]
    fn compute_only_telemetry_reproduces_the_ideal_barrier_controller() {
        let gain = Policy::ProgressFeedback { gain: 0.9 };
        let mut a = PowerArbiter::new(cfg(gain), 3);
        let mut b = PowerArbiter::new(cfg(gain), 3);
        for _ in 0..4 {
            a.redistribute(&[report(0.8, 90.0), report(1.1, 95.0), report(1.9, 99.0)])
                .unwrap();
            b.redistribute(&[
                report_with_comm(0.8, 0.0, 90.0),
                report_with_comm(1.1, 0.0, 95.0),
                report_with_comm(1.9, 0.0, 99.0),
            ])
            .unwrap();
        }
        for (ga, gb) in a.grants().iter().zip(b.grants()) {
            assert_eq!(ga.to_bits(), gb.to_bits(), "zero comm must be exact");
        }
    }

    #[test]
    fn demand_proportional_follows_measured_draw() {
        // A tight budget (well under 3·max) so proportionality is visible
        // instead of everyone saturating at the clamp ceiling.
        let tight = ArbiterConfig {
            budget_w: 240.0,
            ..cfg(Policy::DemandProportional)
        };
        let mut a = PowerArbiter::new(tight, 3);
        a.redistribute(&[report(1.0, 120.0), report(1.0, 60.0), report(1.0, 60.0)])
            .unwrap();
        let g = a.grants();
        assert!(g[0] > g[1] + 5.0, "double demand must earn more: {:?}", g);
        assert!((g[1] - g[2]).abs() < 1e-9, "equal demand, equal grant");
    }

    #[test]
    fn silent_node_keeps_its_grant_and_is_excluded() {
        let mut a = PowerArbiter::new(cfg(Policy::ProgressFeedback { gain: 1.0 }), 4);
        a.redistribute(&[
            report(1.0, 90.0),
            report(1.5, 90.0),
            report(1.0, 90.0),
            report(1.2, 90.0),
        ])
        .unwrap();
        let held = a.grants()[1];
        // Node 1 goes silent: its grant must not move.
        a.redistribute(&[
            report(1.0, 90.0),
            None,
            report(3.0, 90.0),
            report(1.2, 90.0),
        ])
        .unwrap();
        assert_eq!(a.grants()[1], held, "silent node's cap must freeze");
        assert!(!a.trace().ticks()[1].reporting[1]);
        let total: f64 = a.grants().iter().sum();
        assert!(total <= 400.0 + 1e-6);
    }

    #[test]
    fn all_silent_round_only_records_the_tick() {
        let mut a = PowerArbiter::new(cfg(Policy::DemandProportional), 2);
        let before = a.grants().to_vec();
        a.redistribute(&[None, None]).unwrap();
        assert_eq!(a.grants(), before.as_slice());
        assert_eq!(a.trace().len(), 1);
        assert!(a.trace().min_slack_w() >= -1e-6);
    }

    #[test]
    fn trace_records_the_policy_once() {
        let mut a = PowerArbiter::new(cfg(Policy::DemandProportional), 2);
        a.redistribute(&[report(1.0, 80.0), report(1.0, 90.0)])
            .unwrap();
        a.redistribute(&[report(1.0, 80.0), report(1.0, 90.0)])
            .unwrap();
        assert_eq!(a.trace().policy(), "demand-proportional");
        assert_eq!(a.trace().len(), 2);
    }

    #[test]
    fn untraced_arbiter_grants_are_bit_identical() {
        let gain = Policy::ProgressFeedback { gain: 1.0 };
        let mut traced = PowerArbiter::new(cfg(gain), 4);
        let mut silent = PowerArbiter::new(cfg(gain), 4).with_tracing(false);
        for _ in 0..3 {
            let r = [
                report(0.5, 100.0),
                report(1.0, 100.0),
                None,
                report(2.5, 100.0),
            ];
            traced.redistribute(&r).unwrap();
            silent.redistribute(&r).unwrap();
        }
        for (a, b) in traced.grants().iter().zip(silent.grants()) {
            assert_eq!(a.to_bits(), b.to_bits(), "tracing must not touch grants");
        }
        assert_eq!(traced.trace().len(), 3);
        assert_eq!(silent.trace().len(), 0, "untraced arbiter records nothing");
    }

    #[test]
    fn set_budget_refits_the_grants_and_same_budget_is_a_noop() {
        let mut a = PowerArbiter::new(cfg(Policy::ProgressFeedback { gain: 1.0 }), 4);
        a.redistribute(&[
            report(0.5, 100.0),
            report(1.0, 100.0),
            report(1.0, 100.0),
            report(2.5, 100.0),
        ])
        .unwrap();
        let before = a.grants().to_vec();
        a.set_budget(400.0); // bit-identical budget: nothing moves
        assert_eq!(a.grants(), before.as_slice());

        a.set_budget(200.0); // halved pot: grants shrink to fit
        let total: f64 = a.grants().iter().sum();
        assert!(total <= 200.0 + 1e-6, "refit must respect the new budget");
        for &g in a.grants() {
            assert!((40.0 - 1e-6..=120.0 + 1e-6).contains(&g));
        }
        assert_eq!(BudgetArbiter::budget(&a), 200.0);

        a.set_budget(480.0); // grown pot: grants expand into headroom
        let total: f64 = a.grants().iter().sum();
        assert!(total > 400.0, "refit should use the new headroom");
        assert!(total <= 480.0 + 1e-6);
    }

    #[test]
    fn validate_reports_the_offending_field() {
        let bad = ArbiterConfig {
            budget_w: -5.0,
            ..cfg(Policy::UniformStatic)
        };
        let e = bad.validate().unwrap_err();
        assert_eq!(e.what, "ArbiterConfig.budget_w");
        let bad = ArbiterConfig {
            min_cap_w: 150.0,
            ..cfg(Policy::UniformStatic)
        };
        assert!(bad.validate().is_err());
        let bad = cfg(Policy::ProgressFeedback { gain: -1.0 });
        assert_eq!(
            bad.validate().unwrap_err().what,
            "Policy::ProgressFeedback.gain"
        );
    }

    #[test]
    #[should_panic(expected = "cannot fund")]
    fn infeasible_budget_rejected() {
        PowerArbiter::new(
            ArbiterConfig {
                budget_w: 100.0,
                min_cap_w: 40.0,
                max_cap_w: 120.0,
                policy: Policy::UniformStatic,
            },
            4,
        );
    }

    #[test]
    fn malformed_telemetry_is_nacked_without_state_change() {
        let gain = Policy::ProgressFeedback { gain: 1.0 };
        let mut a = PowerArbiter::new(cfg(gain), 4);
        let before = a.grants().to_vec();

        // Non-finite power: rejected, grants and trace untouched.
        let e = a
            .redistribute(&[
                report(1.0, f64::NAN),
                report(1.0, 100.0),
                report(1.0, 100.0),
                report(1.0, 100.0),
            ])
            .unwrap_err();
        assert!(matches!(
            e,
            TelemetryError::Malformed {
                node: 0,
                field: "power_w",
                ..
            }
        ));
        assert_eq!(a.grants(), before.as_slice());
        assert_eq!(a.trace().len(), 0, "a NACKed round must not be traced");

        // Negative compute time: same treatment.
        let e = a
            .redistribute(&[
                report(1.0, 100.0),
                Some(NodeTelemetry::compute_only(-2.0, 1.0, 100.0)),
                report(1.0, 100.0),
                report(1.0, 100.0),
            ])
            .unwrap_err();
        assert!(matches!(e, TelemetryError::Malformed { node: 1, .. }));

        // Wrong arity = a grant for an unknown node id cannot exist.
        let e = a
            .redistribute(&[report(1.0, 100.0), report(1.0, 100.0)])
            .unwrap_err();
        assert_eq!(
            e,
            TelemetryError::Arity {
                expected: 4,
                got: 2
            }
        );

        // The arbiter still works after NACKs: a clean round succeeds.
        a.redistribute(&[
            report(0.5, 100.0),
            report(1.0, 100.0),
            report(1.0, 100.0),
            report(2.5, 100.0),
        ])
        .unwrap();
        assert_eq!(a.trace().len(), 1);
    }

    #[test]
    fn reclaim_drops_an_expired_node_to_the_floor() {
        let mut a = PowerArbiter::new(cfg(Policy::ProgressFeedback { gain: 1.0 }), 4);
        a.redistribute(&[
            report(0.5, 100.0),
            report(1.0, 100.0),
            report(1.0, 100.0),
            report(2.5, 100.0),
        ])
        .unwrap();
        assert!(a.grants()[3] > 40.0);

        assert!(BudgetArbiter::reclaim(&mut a, 3));
        assert_eq!(a.grants()[3], 40.0, "reclaimed node sits at the floor");
        let total: f64 = a.grants().iter().sum();
        assert!(total <= 400.0 + EPS_W);
        assert!(!BudgetArbiter::reclaim(&mut a, 99), "unknown id is a no-op");
    }

    #[test]
    fn node_ceiling_caps_the_grant_and_frees_watts_for_the_others() {
        // A generous pool: without ceilings everyone would saturate at
        // the shared 120 W max.
        let rich = ArbiterConfig {
            budget_w: 480.0,
            ..cfg(Policy::ProgressFeedback { gain: 1.0 })
        };
        let mut a = PowerArbiter::new(rich, 4).with_node_ceilings(&[
            f64::INFINITY,
            90.0,
            f64::INFINITY,
            f64::INFINITY,
        ]);
        // Node 1 is the critical path — exactly the node the feedback
        // policy wants to boost — but its cooling caps it at 90 W.
        for _ in 0..5 {
            a.redistribute(&[
                report(1.0, 100.0),
                report(2.5, 90.0),
                report(1.0, 100.0),
                report(1.0, 100.0),
            ])
            .unwrap();
            assert!(
                a.grants()[1] <= 90.0 + EPS_W,
                "thermal ceiling must hold: {:?}",
                a.grants()
            );
        }
        // The clamped-off watts are not wasted: some other node sits
        // above the uniform split.
        assert!(
            a.grants().iter().any(|&g| g > 120.0 - 1.0),
            "{:?}",
            a.grants()
        );
        let total: f64 = a.grants().iter().sum();
        assert!(total <= 480.0 + EPS_W);
    }

    #[test]
    fn infinite_ceilings_change_nothing_bitwise() {
        let c = cfg(Policy::ProgressFeedback { gain: 1.0 });
        let mut plain = PowerArbiter::new(c, 4);
        let mut ceiled = PowerArbiter::new(c, 4).with_node_ceilings(&[f64::INFINITY; 4]);
        for _ in 0..3 {
            let r = [
                report(0.5, 100.0),
                report(1.0, 100.0),
                report(1.0, 100.0),
                report(2.5, 100.0),
            ];
            plain.redistribute(&r).unwrap();
            ceiled.redistribute(&r).unwrap();
        }
        for (a, b) in plain.grants().iter().zip(ceiled.grants()) {
            assert_eq!(a.to_bits(), b.to_bits(), "no-limit ceilings must be exact");
        }
    }

    #[test]
    fn ceiling_below_the_floor_pins_the_node_at_the_floor() {
        let mut a = PowerArbiter::new(cfg(Policy::DemandProportional), 4).with_node_ceilings(&[
            10.0,
            f64::INFINITY,
            f64::INFINITY,
            f64::INFINITY,
        ]);
        a.redistribute(&[
            report(1.0, 100.0),
            report(1.0, 100.0),
            report(1.0, 100.0),
            report(1.0, 100.0),
        ])
        .unwrap();
        assert_eq!(a.grants()[0], 40.0, "floor wins over the ceiling");
    }

    #[test]
    fn progress_weights_fund_the_low_yield_node() {
        // Four nodes, perfectly balanced iteration times and rates, but
        // running registry apps whose metrics carry different science
        // yield: LAMMPS (1.0), AMG (0.5), QMCPACK (1.0), URBAN (0.25).
        let w = crate::policy::registry_progress_weights(&["LAMMPS", "AMG", "QMCPACK", "URBAN"])
            .unwrap();
        // A tight pool (well under 4·max) keeps the controller in its
        // linear region; with a generous one every boosted node would
        // saturate at the shared ceiling and the ordering would vanish.
        let c = ArbiterConfig {
            budget_w: 280.0,
            ..cfg(Policy::ProgressFeedback { gain: 1.0 })
        };
        let balanced = [
            report(1.0, 100.0),
            report(1.0, 100.0),
            report(1.0, 100.0),
            report(1.0, 100.0),
        ];
        // Unweighted: balanced times mean nothing moves.
        let mut plain = PowerArbiter::new(c, 4);
        plain.redistribute(&balanced).unwrap();
        let g = plain.grants();
        assert!((g[0] - g[3]).abs() < 1e-9, "time mode holds: {g:?}");
        // Weighted: the lowest-yield node (URBAN) earns the most watts,
        // the full-yield nodes donate, and the ordering follows yield.
        let mut weighted = PowerArbiter::new(c, 4).with_progress_weights(w);
        weighted.redistribute(&balanced).unwrap();
        let g = weighted.grants();
        assert!(
            g[3] > g[1] && g[1] > g[0],
            "useful-progress mode funds low yield: {g:?}"
        );
        assert_eq!(g[0].to_bits(), g[2].to_bits(), "equal yield, equal grant");
        let total: f64 = g.iter().sum();
        assert!(total <= 280.0 + EPS_W);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_weights_rejected() {
        let _ =
            PowerArbiter::new(cfg(Policy::UniformStatic), 2).with_progress_weights(vec![1.0, 0.0]);
    }

    #[test]
    fn restore_respects_tightened_ceilings() {
        let mut a = PowerArbiter::new(cfg(Policy::UniformStatic), 4).with_node_ceilings(&[
            90.0,
            f64::INFINITY,
            f64::INFINITY,
            f64::INFINITY,
        ]);
        // A snapshot putting node 0 above its thermal ceiling is refused
        // even though it is inside the shared clamp range.
        assert!(!BudgetArbiter::restore_grants(
            &mut a,
            &[110.0, 90.0, 90.0, 90.0]
        ));
        assert!(BudgetArbiter::restore_grants(
            &mut a,
            &[85.0, 105.0, 105.0, 105.0]
        ));
    }

    #[test]
    fn restore_grants_enforces_budget_and_clamps() {
        let mut a = PowerArbiter::new(cfg(Policy::UniformStatic), 4);
        let before = a.grants().to_vec();

        // Over budget: refused, state untouched.
        assert!(!BudgetArbiter::restore_grants(&mut a, &[120.0; 4]));
        assert_eq!(a.grants(), before.as_slice());
        // Below the floor: refused.
        assert!(!BudgetArbiter::restore_grants(
            &mut a,
            &[10.0, 100.0, 100.0, 100.0]
        ));
        // Wrong arity: refused.
        assert!(!BudgetArbiter::restore_grants(&mut a, &[100.0; 3]));

        // A conserving snapshot is adopted bitwise.
        let snap = [90.0, 110.0, 80.0, 120.0];
        assert!(BudgetArbiter::restore_grants(&mut a, &snap));
        assert_eq!(a.grants(), snap.as_slice());
    }
}
