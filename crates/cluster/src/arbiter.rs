//! The global power-budget arbiter.
//!
//! A cluster holds one fixed power budget (machine-room breaker, PUE
//! contract, job allocation) and must divide it across nodes. Medhat et
//! al. ("Power Redistribution for Optimizing Performance in MPI
//! Clusters") show that shifting a fixed budget toward critical-path
//! ranks recovers performance lost to imbalance; Cerf et al. argue the
//! actuation should be a feedback controller on an online progress
//! signal. [`PowerArbiter`] implements both on top of this repo's
//! progress stack:
//!
//! - [`Policy::UniformStatic`] — the application-agnostic baseline:
//!   `budget / n` once, never revisited;
//! - [`Policy::DemandProportional`] — each epoch, watts in proportion to
//!   each node's measured power draw (demand), so idle-ish nodes yield
//!   headroom;
//! - [`Policy::ProgressFeedback`] — a proportional controller on the
//!   per-node iteration times: nodes ahead of the barrier (below-mean
//!   compute time) donate watts, the critical-path node (identified with
//!   [`progress::imbalance::analyze`]) receives them, equalizing arrival
//!   times at the barrier.
//!
//! Two invariants hold after every redistribution, checked on every tick
//! and recorded in the [`GrantTick`] trace: granted caps sum to at most
//! the global budget, and every grant respects the per-node `[min, max]`
//! clamp. Nodes whose telemetry dropped out (the PR-1 fault layer) keep
//! their last grant and are excluded from redistribution until they
//! report again.

use serde::{Deserialize, Serialize};

/// Tolerance for floating-point invariant checks, W.
const EPS_W: f64 = 1e-6;

/// Budget-division policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// `budget / n` for everyone, never redistributed.
    UniformStatic,
    /// Watts in proportion to each node's measured power draw.
    DemandProportional,
    /// Proportional feedback on per-node iteration times: steal watts
    /// from ahead-of-barrier nodes for the critical-path node. The error
    /// term is scaled by each rank's compute fraction
    /// ([`NodeTelemetry::compute_fraction`]), so a rank that is slow
    /// because it is waiting on the wire — not because it is capped —
    /// stops being funded.
    ProgressFeedback {
        /// Controller gain: fraction of the relative time error converted
        /// into a relative cap adjustment per epoch (0.5–1.5 is sensible).
        gain: f64,
    },
}

impl Policy {
    /// Display name (table/CSV key).
    pub fn name(self) -> &'static str {
        match self {
            Policy::UniformStatic => "uniform-static",
            Policy::DemandProportional => "demand-proportional",
            Policy::ProgressFeedback { .. } => "progress-feedback",
        }
    }
}

/// Arbiter tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArbiterConfig {
    /// Cluster-wide power budget, W.
    pub budget_w: f64,
    /// Lowest cap the arbiter will ever grant a node, W (RAPL floors and
    /// safe-mode margins live below this).
    pub min_cap_w: f64,
    /// Highest cap the arbiter will ever grant a node, W.
    pub max_cap_w: f64,
    /// Division policy.
    pub policy: Policy,
}

impl ArbiterConfig {
    /// Validate internal consistency.
    ///
    /// # Panics
    /// Panics on non-positive budget, an empty/inverted clamp range, or a
    /// negative feedback gain.
    pub fn validate(&self) {
        assert!(self.budget_w > 0.0, "budget must be positive");
        assert!(
            self.min_cap_w > 0.0 && self.min_cap_w <= self.max_cap_w,
            "need 0 < min_cap_w <= max_cap_w"
        );
        if let Policy::ProgressFeedback { gain } = self.policy {
            assert!(gain >= 0.0, "gain must be non-negative");
        }
    }
}

/// What one node's monitoring stack delivered for the last epoch.
/// A node that could not measure (telemetry dropout) reports `None`
/// instead and is excluded from redistribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeTelemetry {
    /// Compute-phase time this epoch (excluding exchange and wait), s.
    pub compute_s: f64,
    /// Exchange-phase wire time this epoch (see [`crate::comm`]), s.
    pub comm_s: f64,
    /// Time neither computing nor on the wire (barrier/rendezvous
    /// slack), s.
    pub slack_s: f64,
    /// Progress rate while computing, work units/s.
    pub rate: f64,
    /// Measured package power over the epoch (user-space MSR path), W.
    pub power_w: f64,
}

impl NodeTelemetry {
    /// Telemetry for an epoch with no exchange phase (the PR-2
    /// ideal-barrier shape: comm and slack are zero).
    pub fn compute_only(compute_s: f64, rate: f64, power_w: f64) -> Self {
        Self {
            compute_s,
            comm_s: 0.0,
            slack_s: 0.0,
            rate,
            power_w,
        }
    }

    /// Fraction of this node's busy time spent computing (1.0 when the
    /// epoch had no wire time). The feedback policy scales its error
    /// term by this: watts speed up compute, not the network, so a
    /// communication-bound rank earns proportionally less boost.
    pub fn compute_fraction(&self) -> f64 {
        let busy = self.compute_s + self.comm_s;
        if self.comm_s > 0.0 && busy > 0.0 {
            self.compute_s / busy
        } else {
            1.0
        }
    }
}

/// One row of the budget-conservation trace: the grants in force after a
/// redistribution round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrantTick {
    /// Redistribution round (0 = first barrier).
    pub round: usize,
    /// Cap granted to each node, W.
    pub granted_w: Vec<f64>,
    /// Whether each node's telemetry arrived this round.
    pub reporting: Vec<bool>,
    /// Sum of granted caps, W.
    pub total_w: f64,
    /// The global budget, W.
    pub budget_w: f64,
    /// Per-node compute-phase time reported this round, s (NaN for a
    /// silent node).
    pub compute_s: Vec<f64>,
    /// Per-node exchange-phase wire time reported this round, s (NaN for
    /// a silent node).
    pub comm_s: Vec<f64>,
}

impl GrantTick {
    /// Unallocated headroom, W (non-negative when the invariant holds).
    pub fn slack_w(&self) -> f64 {
        self.budget_w - self.total_w
    }
}

/// The cluster-wide budget arbiter.
#[derive(Debug, Clone)]
pub struct PowerArbiter {
    cfg: ArbiterConfig,
    grants: Vec<f64>,
    round: usize,
    trace: Vec<GrantTick>,
}

impl PowerArbiter {
    /// An arbiter over `n` nodes, initially granting a uniform split
    /// (clamped to `[min, max]`) regardless of policy.
    ///
    /// # Panics
    /// Panics when `n` is zero or the budget cannot fund `n` nodes at
    /// `min_cap_w` (no feasible allocation exists).
    pub fn new(cfg: ArbiterConfig, n: usize) -> Self {
        cfg.validate();
        assert!(n > 0, "need at least one node");
        assert!(
            cfg.budget_w >= cfg.min_cap_w * n as f64 - EPS_W,
            "budget {} W cannot fund {} nodes at the {} W floor",
            cfg.budget_w,
            n,
            cfg.min_cap_w
        );
        let uniform = (cfg.budget_w / n as f64).clamp(cfg.min_cap_w, cfg.max_cap_w);
        let arb = Self {
            grants: vec![uniform; n],
            cfg,
            round: 0,
            trace: Vec::new(),
        };
        arb.assert_invariants();
        arb
    }

    /// The arbiter configuration.
    pub fn config(&self) -> &ArbiterConfig {
        &self.cfg
    }

    /// Caps currently in force, W.
    pub fn grants(&self) -> &[f64] {
        &self.grants
    }

    /// The budget-conservation trace, one entry per redistribution round.
    pub fn trace(&self) -> &[GrantTick] {
        &self.trace
    }

    /// Redistribute the budget from the latest telemetry; returns the new
    /// grants. `reports[i] = None` means node `i`'s telemetry dropped out:
    /// it keeps its last grant and is excluded from this round.
    ///
    /// # Panics
    /// Panics if the report arity differs from the node count, or if an
    /// internal invariant (Σ grants ≤ budget, per-node clamps) breaks —
    /// the latter is a bug, not an operating condition.
    pub fn redistribute(&mut self, reports: &[Option<NodeTelemetry>]) -> &[f64] {
        assert_eq!(reports.len(), self.grants.len(), "report arity mismatch");
        let reporting: Vec<usize> = (0..reports.len())
            .filter(|&i| reports[i].is_some())
            .collect();
        if !reporting.is_empty() {
            self.rebalance(reports, &reporting);
        }
        self.record(reports);
        self.assert_invariants();
        &self.grants
    }

    /// Compute new grants for the reporting nodes; frozen (silent) nodes
    /// keep their last grant and reduce the distributable pool.
    fn rebalance(&mut self, reports: &[Option<NodeTelemetry>], reporting: &[usize]) {
        let min = self.cfg.min_cap_w;
        let max = self.cfg.max_cap_w;
        let frozen: Vec<usize> = (0..self.grants.len())
            .filter(|i| !reporting.contains(i))
            .collect();
        let mut pool = self.cfg.budget_w - frozen.iter().map(|&i| self.grants[i]).sum::<f64>();

        // A silent node keeps its cap only while the rest of the cluster
        // can still meet the per-node floor; otherwise frozen grants are
        // clipped toward the floor to restore feasibility.
        let need = min * reporting.len() as f64 - pool;
        if need > 0.0 && !frozen.is_empty() {
            let available: f64 = frozen.iter().map(|&i| self.grants[i] - min).sum();
            let scale = if available > 0.0 {
                (1.0 - need / available).max(0.0)
            } else {
                0.0
            };
            for &i in &frozen {
                self.grants[i] = min + (self.grants[i] - min) * scale;
            }
            pool = self.cfg.budget_w - frozen.iter().map(|&i| self.grants[i]).sum::<f64>();
        }

        let desired: Vec<f64> = match self.cfg.policy {
            Policy::UniformStatic => return, // grants are immutable by design
            Policy::DemandProportional => {
                let demand: Vec<f64> = reporting
                    .iter()
                    .map(|&i| reports[i].expect("reporting").power_w.max(0.0))
                    .collect();
                let total: f64 = demand.iter().sum();
                if total <= 0.0 {
                    vec![pool / reporting.len() as f64; reporting.len()]
                } else {
                    demand.iter().map(|d| pool * d / total).collect()
                }
            }
            Policy::ProgressFeedback { gain } => {
                let times: Vec<f64> = reporting
                    .iter()
                    .map(|&i| reports[i].expect("reporting").compute_s.max(0.0))
                    .collect();
                // Per-iteration compute times are per-node costs under a
                // shared barrier, so the imbalance algebra applies as-is:
                // critical rank = longest time, wait fraction = barrier
                // waste. `analyze` also rejects NaNs for us.
                match progress::imbalance::analyze(&times) {
                    Ok(rep) => {
                        let mean_t: f64 = times.iter().sum::<f64>() / times.len() as f64;
                        if mean_t <= 0.0 {
                            reporting.iter().map(|&i| self.grants[i]).collect()
                        } else {
                            reporting
                                .iter()
                                .zip(&times)
                                .map(|(&i, &t)| {
                                    // Behind the barrier mean (the critical
                                    // path, rep.critical_rank) ⇒ positive
                                    // error ⇒ more watts; ahead ⇒ donate.
                                    let err = (t - mean_t) / mean_t;
                                    debug_assert!(
                                        t < times[rep.critical_rank] + EPS_W || err >= -EPS_W,
                                        "critical node must not donate"
                                    );
                                    // Comm-aware damping: a rank that is
                                    // slow because it is waiting on the
                                    // wire cannot convert watts into
                                    // barrier arrival time, so its error
                                    // (boost *or* donation) is scaled by
                                    // its compute fraction. With no
                                    // exchange phase the fraction is
                                    // exactly 1.0 and this reduces to the
                                    // PR-2 controller bit for bit.
                                    let frac = reports[i].expect("reporting").compute_fraction();
                                    self.grants[i] * (1.0 + gain * err * frac)
                                })
                                .collect()
                        }
                    }
                    // Degenerate telemetry (no usable times): hold grants.
                    Err(_) => reporting.iter().map(|&i| self.grants[i]).collect(),
                }
            }
        };

        let filled = waterfill(&desired, pool, min, max);
        for (&i, g) in reporting.iter().zip(filled) {
            self.grants[i] = g;
        }
    }

    fn record(&mut self, reports: &[Option<NodeTelemetry>]) {
        let total_w = self.grants.iter().sum();
        let phase = |f: fn(&NodeTelemetry) -> f64| -> Vec<f64> {
            reports
                .iter()
                .map(|r| r.as_ref().map(f).unwrap_or(f64::NAN))
                .collect()
        };
        self.trace.push(GrantTick {
            round: self.round,
            granted_w: self.grants.clone(),
            reporting: reports.iter().map(|r| r.is_some()).collect(),
            total_w,
            budget_w: self.cfg.budget_w,
            compute_s: phase(|t| t.compute_s),
            comm_s: phase(|t| t.comm_s),
        });
        self.round += 1;
    }

    /// The hard invariants: Σ grants ≤ budget and every grant clamped.
    fn assert_invariants(&self) {
        let total: f64 = self.grants.iter().sum();
        assert!(
            total <= self.cfg.budget_w + EPS_W,
            "granted {} W exceeds the {} W budget",
            total,
            self.cfg.budget_w
        );
        for (i, &g) in self.grants.iter().enumerate() {
            assert!(
                (self.cfg.min_cap_w - EPS_W..=self.cfg.max_cap_w + EPS_W).contains(&g),
                "node {i} grant {g} W outside [{}, {}] W",
                self.cfg.min_cap_w,
                self.cfg.max_cap_w
            );
        }
    }
}

/// Deterministic clamped proportional fill: clamp `desired` to
/// `[min, max]`, then scale the above-floor portions down to fit `pool`,
/// or push leftover pool into the remaining headroom (proportionally, so
/// nobody exceeds `max`). The result always satisfies Σ ≤ pool and the
/// per-node clamps, provided `pool ≥ len·min`.
fn waterfill(desired: &[f64], pool: f64, min: f64, max: f64) -> Vec<f64> {
    let n = desired.len() as f64;
    let mut out: Vec<f64> = desired.iter().map(|d| d.clamp(min, max)).collect();
    let sum: f64 = out.iter().sum();
    if sum > pool {
        // Scale the above-floor portion to exactly fit the pool.
        let above: f64 = out.iter().map(|g| g - min).sum();
        let target = (pool - min * n).max(0.0);
        let s = if above > 0.0 { target / above } else { 0.0 };
        for g in &mut out {
            *g = min + (*g - min) * s;
        }
    } else {
        // Distribute the leftover into headroom, proportionally.
        let leftover = pool - sum;
        let headroom: f64 = out.iter().map(|g| max - g).sum();
        if leftover > 0.0 && headroom > 0.0 {
            let s = (leftover / headroom).min(1.0);
            for g in &mut out {
                *g += (max - *g) * s;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: Policy) -> ArbiterConfig {
        ArbiterConfig {
            budget_w: 400.0,
            min_cap_w: 40.0,
            max_cap_w: 120.0,
            policy,
        }
    }

    fn report(compute_s: f64, power_w: f64) -> Option<NodeTelemetry> {
        Some(NodeTelemetry::compute_only(
            compute_s,
            1.0 / compute_s,
            power_w,
        ))
    }

    fn report_with_comm(compute_s: f64, comm_s: f64, power_w: f64) -> Option<NodeTelemetry> {
        Some(NodeTelemetry {
            compute_s,
            comm_s,
            slack_s: 0.0,
            rate: 1.0 / compute_s,
            power_w,
        })
    }

    #[test]
    fn uniform_static_never_moves() {
        let mut a = PowerArbiter::new(cfg(Policy::UniformStatic), 4);
        let before = a.grants().to_vec();
        a.redistribute(&[
            report(1.0, 90.0),
            report(4.0, 100.0),
            report(0.5, 80.0),
            report(2.0, 95.0),
        ]);
        assert_eq!(a.grants(), before.as_slice());
        assert_eq!(a.trace().len(), 1);
    }

    #[test]
    fn feedback_steals_from_ahead_for_the_critical_node() {
        let gain = Policy::ProgressFeedback { gain: 1.0 };
        let mut a = PowerArbiter::new(cfg(gain), 4);
        // Node 3 is far behind the barrier; node 0 far ahead.
        a.redistribute(&[
            report(0.5, 100.0),
            report(1.0, 100.0),
            report(1.0, 100.0),
            report(2.5, 100.0),
        ]);
        let g = a.grants();
        assert!(g[3] > 100.0 + 1.0, "critical node must gain: {:?}", g);
        assert!(g[0] < 100.0 - 1.0, "ahead node must donate: {:?}", g);
        let total: f64 = g.iter().sum();
        assert!(total <= 400.0 + 1e-6);
    }

    #[test]
    fn feedback_damps_the_boost_for_communication_bound_ranks() {
        let gain = Policy::ProgressFeedback { gain: 1.0 };
        // A wide clamp range keeps the controller in its linear region;
        // with the default 120 W ceiling both boosts would saturate and
        // the damping would be invisible.
        let wide = ArbiterConfig {
            max_cap_w: 250.0,
            ..cfg(gain)
        };
        // Two arbiters, identical compute times for the slow rank — but
        // in `wire`, node 3 additionally spent 1.5 s on the exchange.
        let mut compute = PowerArbiter::new(wide, 4);
        compute.redistribute(&[
            report(1.0, 100.0),
            report(1.0, 100.0),
            report(1.0, 100.0),
            report(2.5, 100.0),
        ]);
        let mut wire = PowerArbiter::new(wide, 4);
        wire.redistribute(&[
            report_with_comm(1.0, 0.0, 100.0),
            report_with_comm(1.0, 0.0, 100.0),
            report_with_comm(1.0, 0.0, 100.0),
            report_with_comm(2.5, 1.5, 100.0),
        ]);
        // `analyze` sees the same compute times either way, but the
        // comm-bound rank earns a damped boost: watts cannot speed up the
        // wire.
        assert!(
            wire.grants()[3] < compute.grants()[3] - 1.0,
            "comm-bound rank must be funded less: {:?} vs {:?}",
            wire.grants(),
            compute.grants()
        );
        // The trace records the per-phase split for the policy analysis.
        assert_eq!(wire.trace()[0].comm_s[3], 1.5);
        assert_eq!(wire.trace()[0].compute_s[3], 2.5);
    }

    #[test]
    fn compute_only_telemetry_reproduces_the_ideal_barrier_controller() {
        let gain = Policy::ProgressFeedback { gain: 0.9 };
        let mut a = PowerArbiter::new(cfg(gain), 3);
        let mut b = PowerArbiter::new(cfg(gain), 3);
        for _ in 0..4 {
            a.redistribute(&[report(0.8, 90.0), report(1.1, 95.0), report(1.9, 99.0)]);
            b.redistribute(&[
                report_with_comm(0.8, 0.0, 90.0),
                report_with_comm(1.1, 0.0, 95.0),
                report_with_comm(1.9, 0.0, 99.0),
            ]);
        }
        for (ga, gb) in a.grants().iter().zip(b.grants()) {
            assert_eq!(ga.to_bits(), gb.to_bits(), "zero comm must be exact");
        }
    }

    #[test]
    fn demand_proportional_follows_measured_draw() {
        // A tight budget (well under 3·max) so proportionality is visible
        // instead of everyone saturating at the clamp ceiling.
        let tight = ArbiterConfig {
            budget_w: 240.0,
            ..cfg(Policy::DemandProportional)
        };
        let mut a = PowerArbiter::new(tight, 3);
        a.redistribute(&[report(1.0, 120.0), report(1.0, 60.0), report(1.0, 60.0)]);
        let g = a.grants();
        assert!(g[0] > g[1] + 5.0, "double demand must earn more: {:?}", g);
        assert!((g[1] - g[2]).abs() < 1e-9, "equal demand, equal grant");
    }

    #[test]
    fn silent_node_keeps_its_grant_and_is_excluded() {
        let mut a = PowerArbiter::new(cfg(Policy::ProgressFeedback { gain: 1.0 }), 4);
        a.redistribute(&[
            report(1.0, 90.0),
            report(1.5, 90.0),
            report(1.0, 90.0),
            report(1.2, 90.0),
        ]);
        let held = a.grants()[1];
        // Node 1 goes silent: its grant must not move.
        a.redistribute(&[
            report(1.0, 90.0),
            None,
            report(3.0, 90.0),
            report(1.2, 90.0),
        ]);
        assert_eq!(a.grants()[1], held, "silent node's cap must freeze");
        assert!(!a.trace()[1].reporting[1]);
        let total: f64 = a.grants().iter().sum();
        assert!(total <= 400.0 + 1e-6);
    }

    #[test]
    fn all_silent_round_only_records_the_tick() {
        let mut a = PowerArbiter::new(cfg(Policy::DemandProportional), 2);
        let before = a.grants().to_vec();
        a.redistribute(&[None, None]);
        assert_eq!(a.grants(), before.as_slice());
        assert_eq!(a.trace().len(), 1);
        assert!(a.trace()[0].slack_w() >= -1e-6);
    }

    #[test]
    fn waterfill_fits_pool_and_clamps() {
        let out = waterfill(&[500.0, 10.0, 80.0], 240.0, 40.0, 120.0);
        let sum: f64 = out.iter().sum();
        assert!(sum <= 240.0 + 1e-9, "{out:?}");
        for g in &out {
            assert!((40.0..=120.0).contains(g), "{out:?}");
        }
        // The starved entry sits at the floor, the greedy one above it.
        assert!(out[0] > out[1]);
    }

    #[test]
    fn waterfill_spreads_leftover_without_exceeding_max() {
        let out = waterfill(&[50.0, 50.0], 400.0, 40.0, 120.0);
        for g in &out {
            assert!(*g <= 120.0 + 1e-9);
        }
        // Headroom is funded evenly from the oversized pool.
        assert!((out[0] - 120.0).abs() < 1e-9 && (out[1] - 120.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot fund")]
    fn infeasible_budget_rejected() {
        PowerArbiter::new(
            ArbiterConfig {
                budget_w: 100.0,
                min_cap_w: 40.0,
                max_cap_w: 120.0,
                policy: Policy::UniformStatic,
            },
            4,
        );
    }
}
