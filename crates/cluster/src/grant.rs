//! The arbiter → daemon cap channel.
//!
//! The global arbiter and each node's NRM daemon run on different
//! schedules: the arbiter redistributes at cluster barriers, the daemon
//! applies its cap once per control period. A [`GrantCell`] decouples
//! them — the arbiter stores the latest granted cap, and the daemon's
//! [`GrantSchedule`] reads whatever is current at each tick, exactly like
//! a real NRM daemon picking up the newest downstream power message.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nrm::scheme::CapSchedule;
use simnode::time::Nanos;

/// Sentinel for "no cap": not a valid `f64::to_bits` of any finite watts
/// value we ever grant.
const UNCAPPED: u64 = u64::MAX;

/// A shared, atomically updated cap grant (watts; `None` = uncapped).
#[derive(Debug, Clone)]
pub struct GrantCell(Arc<AtomicU64>);

impl GrantCell {
    /// A cell holding `cap` (use `None` for uncapped).
    pub fn new(cap: Option<f64>) -> Self {
        let cell = Self(Arc::new(AtomicU64::new(UNCAPPED)));
        cell.set(cap);
        cell
    }

    /// Store a new grant.
    ///
    /// # Panics
    /// Panics on a non-finite or non-positive cap.
    pub fn set(&self, cap: Option<f64>) {
        let bits = match cap {
            None => UNCAPPED,
            Some(w) => {
                assert!(w.is_finite() && w > 0.0, "cap must be finite positive");
                w.to_bits()
            }
        };
        self.0.store(bits, Ordering::Release);
    }

    /// The current grant.
    pub fn get(&self) -> Option<f64> {
        match self.0.load(Ordering::Acquire) {
            UNCAPPED => None,
            bits => Some(f64::from_bits(bits)),
        }
    }
}

impl Default for GrantCell {
    fn default() -> Self {
        Self::new(None)
    }
}

/// Where a member's next grant comes from.
///
/// The in-process cluster driver pushes arbiter output straight into each
/// member's [`GrantCell`]; a daemon-backed deployment instead *pulls*
/// through this trait (the `arbiterd` `GrantClient` implements it over a
/// framed wire). Returning `None` means "no fresh grant" — the member
/// keeps whatever cap it last programmed, which is the hold-last-grant
/// degradation the arbiter daemon's disconnected clients rely on.
pub trait GrantSource {
    /// The newest grant for `node`, W, or `None` to hold the last one.
    fn poll_grant(&mut self, node: usize) -> Option<f64>;
}

/// The trivial in-process source: a slice of the arbiter's current
/// grants, always fresh.
impl GrantSource for &[f64] {
    fn poll_grant(&mut self, node: usize) -> Option<f64> {
        self.get(node).copied()
    }
}

/// A [`CapSchedule`] that always programs the cell's current grant,
/// ignoring elapsed time (the arbiter, not the clock, drives the cap).
#[derive(Debug, Clone)]
pub struct GrantSchedule(pub GrantCell);

impl CapSchedule for GrantSchedule {
    fn cap_at(&self, _elapsed: Nanos) -> Option<f64> {
        self.0.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_round_trips_grants() {
        let cell = GrantCell::default();
        assert_eq!(cell.get(), None);
        cell.set(Some(87.5));
        assert_eq!(cell.get(), Some(87.5));
        cell.set(None);
        assert_eq!(cell.get(), None);
    }

    #[test]
    fn schedule_tracks_the_cell_not_the_clock() {
        let cell = GrantCell::new(Some(60.0));
        let sched = GrantSchedule(cell.clone());
        assert_eq!(sched.cap_at(0), Some(60.0));
        cell.set(Some(110.0));
        assert_eq!(sched.cap_at(1_000_000_000), Some(110.0));
    }

    #[test]
    #[should_panic(expected = "finite positive")]
    fn non_finite_grant_rejected() {
        GrantCell::default().set(Some(f64::NAN));
    }

    #[test]
    fn a_grant_slice_is_an_always_fresh_source() {
        let grants = [70.0, 85.0];
        let mut src: &[f64] = &grants;
        assert_eq!(src.poll_grant(1), Some(85.0));
        assert_eq!(src.poll_grant(7), None, "unknown node holds its cap");
    }
}
