//! Cluster-level power management over `simnode`.
//!
//! The paper studies how dynamic power capping perturbs *one* node's
//! application progress; the motivating scenario (its §I, and the Medhat
//! and Cerf lines of related work) is a *cluster*: a fixed machine-level
//! power budget that a job-level manager divides across nodes while a
//! bulk-synchronous application couples them at barriers. This crate
//! builds that layer out of the existing single-node pieces:
//!
//! - [`member::ClusterNode`] — a node + hardened NRM daemon + telemetry
//!   collector, advanced between barriers by the driver;
//! - [`grant`] — the atomic arbiter → daemon cap channel
//!   ([`grant::GrantCell`] / [`grant::GrantSchedule`]);
//! - [`arbiter::PowerArbiter`] — the global budget divider with three
//!   policies (uniform-static, demand-proportional, progress-feedback)
//!   and hard Σ ≤ budget / per-node clamp invariants, behind the
//!   [`arbiter::BudgetArbiter`] trait so arbiters compose into trees;
//! - [`hierarchy::RackArbiter`] — the two-level arbiter tree (machine →
//!   rack → node) with independent inner/outer control periods,
//!   upward-aggregated telemetry and downward-flowing sub-budgets;
//! - [`policy`] — the shared allocation engine (waterfill + clamps +
//!   dropout freezing) both arbiter levels dispatch through, plus the
//!   registry-derived useful-progress weights;
//! - [`partition::MachinePartition`] — many per-job arbiters under one
//!   machine envelope (the batch scheduler's substrate), with
//!   Σ(job budgets) ≤ envelope asserted after every mutation;
//! - [`workload`] — per-rank iteration costs and the imbalanced ramp;
//! - [`comm`] / [`topology`] — the exchange-phase cost model: alpha-beta
//!   link pricing with per-link fair-share contention over a flat switch
//!   or 2-level rack tree, all-reduce and halo-exchange patterns, and a
//!   power-dependent NIC drain rate (a capped node drains its injection
//!   queue slower);
//! - [`sim::run_cluster`] — the compute-phase → exchange-phase driver
//!   producing makespan, ground-truth energy, per-phase timing
//!   (`compute_s`/`comm_s`/`slack_s`), per-iteration imbalance analysis
//!   (via [`progress::imbalance`]) and the budget-conservation trace.
//!
//! Everything is deterministic for a fixed configuration, including
//! across thread counts: members are independent simulations between
//! barriers, and the arbiter and exchange pricing are pure arithmetic
//! over ordered vectors.

pub mod arbiter;
pub mod comm;
pub mod error;
pub mod grant;
pub mod hierarchy;
pub mod member;
pub mod partition;
pub mod policy;
pub(crate) mod shard;
pub mod sim;
pub mod topology;
pub mod workload;

pub use arbiter::{
    ArbiterConfig, BudgetArbiter, GrantTick, GrantTrace, NodeTelemetry, Policy, PowerArbiter,
};
pub use comm::{exchange, CommConfig, CommPattern, ExchangeOutcome, Flow, NodePhase};
pub use error::{ClusterError, ConfigError, TelemetryError};
pub use grant::{GrantCell, GrantSchedule, GrantSource};
pub use hierarchy::{HierarchyConfig, OuterSolver, RackArbiter, RackWindow};
pub use member::{ClusterNode, DEFAULT_DAEMON_PERIOD};
pub use partition::MachinePartition;
pub use policy::{progress_weight, registry_progress_weights, Allocator};
pub use sim::{
    run_cluster, run_cluster_reference, ClusterConfig, ClusterOutcome, IterationRecord, NodeSpec,
    Preset,
};
pub use topology::{LinkId, Topology};
pub use workload::{ramp_weights, WorkloadShape};
