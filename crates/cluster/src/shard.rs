//! Sharded event-queue stepping for the cluster driver.
//!
//! The bulk-synchronous loop moves every [`ClusterNode`] through a
//! per-member work item twice per iteration, paying a queue slot and a
//! moved value per node per pass — fine at 16 ranks, ruinous at 4096. A
//! [`Shard`] instead owns a contiguous run of ranks plus preallocated
//! telemetry buffers reused across iterations, so a parallel pass moves
//! a handful of coarse items and telemetry is written in place rather
//! than collected into fresh `Vec`s every barrier (zero-copy batching).
//!
//! Within a shard the spin phase runs as a small event queue: members
//! already at the barrier are parked outright (the wake filter), and the
//! rest are stepped earliest-next-event first ([`ClusterNode::next_event`]
//! keys the queue on the member's next daemon tick, RAPL boundary, fault
//! edge, or core wake). Members are independent between barriers, so the
//! stepping order is a scheduling detail — any order produces identical
//! bits — which is exactly what lets shards run in parallel at all.
//!
//! Sharding is therefore a scheduling choice only: results are gathered
//! in rank order and outcomes are bitwise identical for any shard count.
//! The differential suite in [`crate::sim`] pins the sharded driver to
//! the bulk-synchronous reference ([`crate::sim::run_cluster_reference`]).

use std::ops::Range;

use simnode::time::{secs, Nanos};

use crate::arbiter::NodeTelemetry;
use crate::comm::NodePhase;
use crate::member::ClusterNode;

/// A contiguous run of cluster ranks stepped as one parallel work item,
/// with per-shard buffers reused across iterations.
pub(crate) struct Shard {
    /// Global rank of `members[0]` (ranks are contiguous in a shard).
    base: usize,
    members: Vec<ClusterNode>,
    /// This barrier's telemetry, one slot per member (reused).
    pub reports: Vec<Option<NodeTelemetry>>,
    /// Compute-phase finish times, s (reused).
    pub ready_s: Vec<f64>,
    /// NIC drain factors at compute finish (reused).
    pub drain: Vec<f64>,
    /// Compute-phase durations, s (reused).
    pub compute_s: Vec<f64>,
    /// Spin-phase event queue: (next event, local index), reused.
    queue: Vec<(Nanos, usize)>,
}

impl Shard {
    /// Split `members` (already in rank order) into at most `want`
    /// contiguous shards of near-equal size.
    pub fn partition(members: Vec<ClusterNode>, want: usize) -> Vec<Shard> {
        let n = members.len();
        let per = n.div_ceil(want.clamp(1, n.max(1)));
        let mut out = Vec::with_capacity(n.div_ceil(per.max(1)));
        let mut it = members.into_iter();
        let mut base = 0;
        while base < n {
            let chunk: Vec<ClusterNode> = it.by_ref().take(per).collect();
            let len = chunk.len();
            out.push(Shard {
                base,
                members: chunk,
                reports: vec![None; len],
                ready_s: vec![0.0; len],
                drain: vec![0.0; len],
                compute_s: vec![0.0; len],
                queue: Vec::with_capacity(len),
            });
            base += len;
        }
        out
    }

    /// The global rank range this shard owns.
    pub fn span(&self) -> Range<usize> {
        self.base..self.base + self.members.len()
    }

    pub fn members(&self) -> &[ClusterNode] {
        &self.members
    }

    pub fn members_mut(&mut self) -> &mut [ClusterNode] {
        &mut self.members
    }

    /// Compute phase: every member advances through its share of the
    /// kernel; durations, ready times, and NIC drain factors land in the
    /// reused buffers.
    pub fn compute_phase(&mut self, power_coupling: f64) {
        for (i, m) in self.members.iter_mut().enumerate() {
            self.compute_s[i] = m.compute_iteration();
            self.ready_s[i] = secs(m.now());
            self.drain[i] = m.link_drain_factor(power_coupling);
        }
    }

    /// This shard's candidate for the global barrier: the latest flow
    /// landing among its members (`Nanos::MAX`-free integer max, so the
    /// fold order across shards cannot change the result).
    pub fn barrier_candidate(&self, phases: &[NodePhase]) -> Nanos {
        self.members
            .iter()
            .zip(phases)
            .map(|(m, p)| m.now() + simnode::time::from_secs(p.done_s - p.ready_s))
            .fold(0, Nanos::max)
    }

    /// Spin + telemetry phase; `phases` is this shard's slice of the
    /// exchange outcome. Members at (or past) the barrier are parked
    /// without a single step; the rest spin forward earliest-event
    /// first, then everyone files its phase split and telemetry into the
    /// shard buffers.
    pub fn finish_phase(&mut self, barrier_at: Nanos, phases: &[NodePhase]) {
        self.queue.clear();
        for (i, m) in self.members.iter().enumerate() {
            if m.now() < barrier_at {
                self.queue.push((m.next_event(barrier_at), i));
            }
        }
        // The local index breaks ties, making the order a deterministic
        // function of member state alone.
        self.queue.sort_unstable();
        for k in 0..self.queue.len() {
            let (_, i) = self.queue[k];
            self.members[i].spin_until(barrier_at);
        }
        for (i, m) in self.members.iter_mut().enumerate() {
            m.set_phase(phases[i].comm_s, phases[i].slack_s);
            self.reports[i] = m.take_report();
        }
    }
}
