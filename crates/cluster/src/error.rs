//! Configuration-validation and run-time errors for the cluster layer.
//!
//! The cluster crate's configuration structs used to `assert!` their
//! internal consistency, which turns an operator typo (a budget that
//! cannot fund the floor, an inverted clamp range) into a panic backtrace.
//! [`ConfigError`] carries the same constraint as data so callers — the
//! `repro` CLI in particular — can print *which* field broke *which*
//! invariant and exit cleanly; the simulation entry points still treat an
//! invalid configuration as fatal, but through an explicit `Result`.
//!
//! [`TelemetryError`] extends the same discipline to the arbiter's data
//! plane: a malformed report (negative or non-finite power, wrong arity)
//! is an *operating condition* for a long-running arbiter daemon — one
//! misbehaving client must be NACKable without taking the service down —
//! so [`crate::arbiter::BudgetArbiter::redistribute`] rejects it with a
//! recoverable error. Only genuine internal invariants (Σ grants ≤
//! budget, per-child clamps) remain hard asserts. [`ClusterError`] is the
//! top-level union [`crate::sim::run_cluster`] returns.

use std::fmt;

/// A configuration constraint that failed validation.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    /// The configuration object (and field) that failed, e.g.
    /// `"ArbiterConfig.budget_w"`.
    pub what: &'static str,
    /// The constraint that does not hold, with the offending values.
    pub why: String,
}

impl ConfigError {
    /// Build an error for `what` explaining `why`.
    pub fn new(what: &'static str, why: impl Into<String>) -> Self {
        Self {
            what,
            why: why.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {}", self.what, self.why)
    }
}

impl std::error::Error for ConfigError {}

/// Shorthand used by the validators: fail `what` unless `cond` holds.
pub(crate) fn ensure(
    cond: bool,
    what: &'static str,
    why: impl FnOnce() -> String,
) -> Result<(), ConfigError> {
    if cond {
        Ok(())
    } else {
        Err(ConfigError::new(what, why()))
    }
}

/// A telemetry report the arbiter refuses to act on. Recoverable by
/// construction: the arbiter's state is untouched when this is returned,
/// so the caller (the sim loop, or the arbiter daemon NACKing one bad
/// client) can drop the offending report and carry on.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryError {
    /// The report vector does not match the arbiter's node count — a
    /// grant for an unknown node id cannot exist.
    Arity {
        /// Nodes the arbiter grants to.
        expected: usize,
        /// Reports actually delivered.
        got: usize,
    },
    /// A reported field left its domain (negative or non-finite).
    Malformed {
        /// Which node's report is bad.
        node: usize,
        /// Which [`crate::arbiter::NodeTelemetry`] field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::Arity { expected, got } => {
                write!(f, "telemetry arity {got} does not match {expected} nodes")
            }
            TelemetryError::Malformed { node, field, value } => {
                write!(
                    f,
                    "node {node} telemetry: {field} = {value} must be finite and non-negative"
                )
            }
        }
    }
}

impl std::error::Error for TelemetryError {}

/// Everything that can stop a cluster run: an invalid configuration, or
/// telemetry the arbiter rejected mid-run.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The configuration failed validation before the run started.
    Config(ConfigError),
    /// The arbiter rejected a telemetry report.
    Telemetry(TelemetryError),
    /// A run-time analysis over the telemetry degenerated (e.g. the
    /// imbalance algebra met a non-finite compute time).
    Analysis(String),
}

impl From<ConfigError> for ClusterError {
    fn from(e: ConfigError) -> Self {
        ClusterError::Config(e)
    }
}

impl From<TelemetryError> for ClusterError {
    fn from(e: TelemetryError) -> Self {
        ClusterError::Telemetry(e)
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Config(e) => e.fmt(f),
            ClusterError::Telemetry(e) => e.fmt(f),
            ClusterError::Analysis(why) => write!(f, "degenerate run-time analysis: {why}"),
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field_and_the_constraint() {
        let e = ConfigError::new("ArbiterConfig.budget_w", "-3 W must be positive");
        assert_eq!(
            e.to_string(),
            "invalid ArbiterConfig.budget_w: -3 W must be positive"
        );
    }

    #[test]
    fn ensure_passes_through_on_success() {
        assert!(ensure(true, "x", || unreachable!()).is_ok());
        let e = ensure(false, "x", || "broken".to_string()).unwrap_err();
        assert_eq!(e.what, "x");
    }

    #[test]
    fn telemetry_errors_render_the_offence() {
        let e = TelemetryError::Arity {
            expected: 4,
            got: 3,
        };
        assert_eq!(e.to_string(), "telemetry arity 3 does not match 4 nodes");
        let e = TelemetryError::Malformed {
            node: 2,
            field: "power_w",
            value: f64::NEG_INFINITY,
        };
        assert!(e.to_string().contains("node 2"));
        assert!(e.to_string().contains("power_w"));
    }

    #[test]
    fn cluster_error_wraps_both_sources() {
        let c: ClusterError = ConfigError::new("x", "y").into();
        assert!(matches!(c, ClusterError::Config(_)));
        let t: ClusterError = TelemetryError::Arity {
            expected: 1,
            got: 0,
        }
        .into();
        assert!(t.to_string().contains("arity"));
    }
}
