//! Configuration-validation errors for the cluster layer.
//!
//! The cluster crate's configuration structs used to `assert!` their
//! internal consistency, which turns an operator typo (a budget that
//! cannot fund the floor, an inverted clamp range) into a panic backtrace.
//! [`ConfigError`] carries the same constraint as data so callers — the
//! `repro` CLI in particular — can print *which* field broke *which*
//! invariant and exit cleanly; the simulation entry points still treat an
//! invalid configuration as fatal, but through an explicit `Result`.

use std::fmt;

/// A configuration constraint that failed validation.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    /// The configuration object (and field) that failed, e.g.
    /// `"ArbiterConfig.budget_w"`.
    pub what: &'static str,
    /// The constraint that does not hold, with the offending values.
    pub why: String,
}

impl ConfigError {
    /// Build an error for `what` explaining `why`.
    pub fn new(what: &'static str, why: impl Into<String>) -> Self {
        Self {
            what,
            why: why.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {}", self.what, self.why)
    }
}

impl std::error::Error for ConfigError {}

/// Shorthand used by the validators: fail `what` unless `cond` holds.
pub(crate) fn ensure(
    cond: bool,
    what: &'static str,
    why: impl FnOnce() -> String,
) -> Result<(), ConfigError> {
    if cond {
        Ok(())
    } else {
        Err(ConfigError::new(what, why()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field_and_the_constraint() {
        let e = ConfigError::new("ArbiterConfig.budget_w", "-3 W must be positive");
        assert_eq!(
            e.to_string(),
            "invalid ArbiterConfig.budget_w: -3 W must be positive"
        );
    }

    #[test]
    fn ensure_passes_through_on_success() {
        assert!(ensure(true, "x", || unreachable!()).is_ok());
        let e = ensure(false, "x", || "broken".to_string()).unwrap_err();
        assert_eq!(e.what, "x");
    }
}
