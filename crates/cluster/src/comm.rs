//! The exchange-phase communication cost model.
//!
//! PR 2's cluster treated barriers as ideal: the slowest rank's compute
//! clock gated each iteration and exchange was free, so power policies
//! could only interact with compute time. This module prices the
//! exchange with a latency + bandwidth (alpha-beta) model plus per-link
//! contention over a [`Topology`]:
//!
//! - every message pays `alpha_s` injection latency per message;
//! - every byte crosses the links of its route at the flow's *fair-share
//!   rate* — the minimum over the route of `link_bw / concurrent_flows`,
//!   the standard single-pass approximation of max-min fair sharing;
//! - a node's NIC bandwidth scales with its power-dependent **drain
//!   factor**: a power-capped node runs its cores and uncore slower and
//!   drains its NIC injection queue slower, so capping a rank taxes its
//!   neighbours' exchanges too (cf. Medhat et al., where redistribution
//!   gains hinge on communication slack).
//!
//! Two coupling patterns are modelled:
//!
//! - [`CommPattern::AllReduce`] — a ring all-reduce in `2(n-1)` lockstep
//!   steps; the slowest link gates every step, so one capped NIC drags
//!   the whole collective;
//! - [`CommPattern::HaloExchange`] — nearest-neighbour exchange on a 1-D
//!   periodic rank ring; each flow starts when *both* endpoints have
//!   finished computing (rendezvous), so only the flows a rank actually
//!   touches couple it to its neighbours.
//!
//! Per node, the phase split is exact and non-overlapping:
//! `compute_s + comm_s + slack_s` spans the iteration, where `comm_s` is
//! pure wire time attributable to the node and `slack_s` is time spent
//! neither computing nor moving bytes (barrier wait). A pattern with
//! zero bytes generates no flows at all and reproduces the ideal-barrier
//! schedule bit for bit.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{ensure, ConfigError};
use crate::topology::{LinkId, Topology};

/// Exponent mapping a rank's work *volume* (its weight) to its halo
/// *surface*: a 3-D domain decomposition exchanges faces, so halo bytes
/// grow as `weight^(2/3)`.
pub const HALO_SURFACE_EXP: f64 = 2.0 / 3.0;

/// Which messages the application exchanges at each barrier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CommPattern {
    /// No exchange: the PR-2 ideal barrier, preserved exactly.
    None,
    /// Ring all-reduce of a fixed payload (same reduction vector on every
    /// rank, so the size does not scale with rank weight).
    AllReduce {
        /// Reduction vector size, bytes.
        payload_bytes: f64,
    },
    /// Nearest-neighbour halo exchange on a periodic 1-D rank ring; each
    /// rank sends one face per neighbour, sized
    /// `bytes_per_unit · weight^(2/3)`.
    HaloExchange {
        /// Face bytes for a `weight = 1` rank.
        bytes_per_unit: f64,
    },
}

/// The exchange-phase model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommConfig {
    /// Per-message injection latency, s (the alpha of alpha-beta).
    pub alpha_s: f64,
    /// NIC injection/ejection bandwidth at full power, bytes/s (the
    /// reciprocal beta).
    pub nic_bw: f64,
    /// How strongly a node's power state throttles its NIC drain rate,
    /// in [0, 1]: 0 = network hardware is independent of the cap,
    /// 1 = drain rate follows the core/uncore slowdown in full.
    pub power_coupling: f64,
    /// The message pattern.
    pub pattern: CommPattern,
    /// The wiring.
    pub topology: Topology,
}

impl CommConfig {
    /// The ideal-barrier configuration: no messages, zero exchange cost.
    pub fn none() -> Self {
        Self {
            alpha_s: 0.0,
            nic_bw: 1.0,
            power_coupling: 0.0,
            pattern: CommPattern::None,
            topology: Topology::FlatSwitch,
        }
    }

    /// Validate the model parameters: non-negative latency, positive NIC
    /// bandwidth, a coupling in [0, 1], non-negative message sizes, and
    /// a valid topology.
    pub fn validate(&self) -> Result<(), ConfigError> {
        ensure(
            self.alpha_s.is_finite() && self.alpha_s >= 0.0,
            "CommConfig.alpha_s",
            || format!("latency {} s must be finite non-negative", self.alpha_s),
        )?;
        ensure(
            self.nic_bw.is_finite() && self.nic_bw > 0.0,
            "CommConfig.nic_bw",
            || format!("bandwidth {} bytes/s must be finite positive", self.nic_bw),
        )?;
        ensure(
            (0.0..=1.0).contains(&self.power_coupling),
            "CommConfig.power_coupling",
            || format!("coupling {} must be in [0, 1]", self.power_coupling),
        )?;
        match self.pattern {
            CommPattern::None => {}
            CommPattern::AllReduce { payload_bytes } => ensure(
                payload_bytes.is_finite() && payload_bytes >= 0.0,
                "CommPattern::AllReduce.payload_bytes",
                || format!("{payload_bytes} bytes must be finite non-negative"),
            )?,
            CommPattern::HaloExchange { bytes_per_unit } => ensure(
                bytes_per_unit.is_finite() && bytes_per_unit >= 0.0,
                "CommPattern::HaloExchange.bytes_per_unit",
                || format!("{bytes_per_unit} bytes must be finite non-negative"),
            )?,
        }
        self.topology.validate()
    }
}

/// One point-to-point transfer of the exchange.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Sending node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
    /// Payload, bytes.
    pub bytes: f64,
    /// Messages the payload is packetized into (each pays `alpha_s`).
    pub msgs: usize,
}

/// One node's exchange-phase timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodePhase {
    /// When the node finished computing, s (input, echoed back).
    pub ready_s: f64,
    /// When the node's last flow completed, s.
    pub done_s: f64,
    /// Pure wire time attributable to the node, s.
    pub comm_s: f64,
    /// Time neither computing nor on the wire before the barrier, s
    /// (waiting for rendezvous partners or for the barrier itself).
    pub slack_s: f64,
}

/// Everything one exchange produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeOutcome {
    /// Per-node phase timing.
    pub phases: Vec<NodePhase>,
    /// When the barrier released (max `done_s`), s.
    pub barrier_s: f64,
    /// Bytes charged to every link touched this exchange (deterministic
    /// iteration order).
    pub link_bytes: BTreeMap<LinkId, f64>,
    /// Total bytes injected by all nodes.
    pub total_bytes: f64,
}

/// Generate the exchange's flows for the given per-rank weights.
///
/// Patterns with zero bytes (or a single node) generate no flows at all —
/// not even latency-only messages — which is what makes the zero-size
/// configuration bit-identical to the ideal barrier.
pub fn flows(pattern: CommPattern, weights: &[f64]) -> Vec<Flow> {
    let n = weights.len();
    match pattern {
        CommPattern::None => Vec::new(),
        CommPattern::AllReduce { payload_bytes } => {
            if n < 2 || payload_bytes <= 0.0 {
                return Vec::new();
            }
            // Ring all-reduce: 2(n-1) steps, each rank sends payload/n to
            // its right neighbour per step.
            let steps = 2 * (n - 1);
            let bytes = payload_bytes * steps as f64 / n as f64;
            (0..n)
                .map(|i| Flow {
                    src: i,
                    dst: (i + 1) % n,
                    bytes,
                    msgs: steps,
                })
                .collect()
        }
        CommPattern::HaloExchange { bytes_per_unit } => {
            if n < 2 || bytes_per_unit <= 0.0 {
                return Vec::new();
            }
            let mut out = Vec::with_capacity(2 * n);
            for (i, w) in weights.iter().enumerate() {
                let bytes = bytes_per_unit * w.powf(HALO_SURFACE_EXP);
                let right = (i + 1) % n;
                let left = (i + n - 1) % n;
                out.push(Flow {
                    src: i,
                    dst: right,
                    bytes,
                    msgs: 1,
                });
                if left != right {
                    // n = 2 collapses both neighbours onto one node; send
                    // a single face rather than the same face twice.
                    out.push(Flow {
                        src: i,
                        dst: left,
                        bytes,
                        msgs: 1,
                    });
                }
            }
            out
        }
    }
}

/// Fair-share duration of every flow: each flow runs at the minimum over
/// its route of `link_bw / concurrent_flows`, plus per-message latency.
/// Returns `(durations_s, bytes_per_link)`.
fn flow_durations(
    cfg: &CommConfig,
    flows: &[Flow],
    drain: &[f64],
) -> (Vec<f64>, BTreeMap<LinkId, f64>) {
    let mut flows_on: BTreeMap<LinkId, usize> = BTreeMap::new();
    let mut bytes_on: BTreeMap<LinkId, f64> = BTreeMap::new();
    let routes: Vec<Vec<LinkId>> = flows
        .iter()
        .map(|f| cfg.topology.path(f.src, f.dst))
        .collect();
    for (f, route) in flows.iter().zip(&routes) {
        for &l in route {
            *flows_on.entry(l).or_insert(0) += 1;
            *bytes_on.entry(l).or_insert(0.0) += f.bytes;
        }
    }
    let durations = flows
        .iter()
        .zip(&routes)
        .map(|(f, route)| {
            let rate = route
                .iter()
                .map(|&l| cfg.topology.link_bw(l, cfg.nic_bw, drain) / flows_on[&l] as f64)
                .fold(f64::INFINITY, f64::min);
            let beta_time = if f.bytes > 0.0 { f.bytes / rate } else { 0.0 };
            cfg.alpha_s * f.msgs as f64 + beta_time
        })
        .collect();
    (durations, bytes_on)
}

/// Price one exchange phase.
///
/// `ready_s[i]` is when node `i` finished its compute phase, `weights[i]`
/// its workload weight (sizes halo faces), and `drain[i] ∈ (0, 1]` its
/// power-dependent NIC drain factor for this epoch.
///
/// # Panics
/// Panics on an invalid configuration, mismatched slice lengths, or
/// non-positive drain factors.
pub fn exchange(
    cfg: &CommConfig,
    ready_s: &[f64],
    weights: &[f64],
    drain: &[f64],
) -> ExchangeOutcome {
    cfg.validate().unwrap_or_else(|e| panic!("{e}"));
    let n = ready_s.len();
    assert_eq!(weights.len(), n, "weights arity mismatch");
    assert_eq!(drain.len(), n, "drain arity mismatch");
    for &d in drain {
        assert!(d.is_finite() && d > 0.0, "drain factors must be positive");
    }

    let flows = flows(cfg.pattern, weights);
    let (durations, link_bytes) = flow_durations(cfg, &flows, drain);
    let total_bytes: f64 = flows.iter().map(|f| f.bytes).sum();

    let mut comm = vec![0.0f64; n];
    let mut done = ready_s.to_vec();
    match cfg.pattern {
        CommPattern::AllReduce { .. } if !flows.is_empty() => {
            // Lockstep collective: starts when the last rank arrives, and
            // every step is gated by the slowest ring flow.
            let start = ready_s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let step = durations.iter().copied().fold(0.0f64, f64::max);
            for i in 0..n {
                comm[i] = step;
                done[i] = start + step;
            }
        }
        _ => {
            // Point-to-point rendezvous: a flow starts once both endpoints
            // are ready; a node is done when its last flow lands.
            for (f, &d) in flows.iter().zip(&durations) {
                let start = ready_s[f.src].max(ready_s[f.dst]);
                let end = start + d;
                for node in [f.src, f.dst] {
                    comm[node] = comm[node].max(d);
                    done[node] = done[node].max(end);
                }
            }
        }
    }

    let barrier_s = done.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let phases = (0..n)
        .map(|i| NodePhase {
            ready_s: ready_s[i],
            done_s: done[i],
            comm_s: comm[i],
            // done_i >= ready_i + comm_i by construction, so this is >= 0
            // up to float rounding; clamp the rounding away.
            slack_s: (barrier_s - ready_s[i] - comm[i]).max(0.0),
        })
        .collect();

    ExchangeOutcome {
        phases,
        barrier_s,
        link_bytes,
        total_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn halo_cfg(bytes_per_unit: f64) -> CommConfig {
        CommConfig {
            alpha_s: 2.0e-6,
            nic_bw: 10.0e9,
            power_coupling: 0.5,
            pattern: CommPattern::HaloExchange { bytes_per_unit },
            topology: Topology::FlatSwitch,
        }
    }

    #[test]
    fn zero_bytes_generate_no_flows_and_no_cost() {
        for pattern in [
            CommPattern::None,
            CommPattern::AllReduce { payload_bytes: 0.0 },
            CommPattern::HaloExchange {
                bytes_per_unit: 0.0,
            },
        ] {
            assert!(flows(pattern, &[1.0, 2.0, 3.0]).is_empty(), "{pattern:?}");
            let cfg = CommConfig {
                pattern,
                ..halo_cfg(0.0)
            };
            let out = exchange(&cfg, &[1.0, 3.0, 2.0], &[1.0; 3], &[1.0; 3]);
            assert_eq!(out.barrier_s, 3.0, "barrier = max ready, exactly");
            for p in &out.phases {
                assert_eq!(p.comm_s, 0.0);
                assert_eq!(p.done_s, p.ready_s);
            }
            assert_eq!(out.total_bytes, 0.0);
            assert!(out.link_bytes.is_empty());
        }
    }

    #[test]
    fn single_node_never_communicates() {
        let out = exchange(
            &halo_cfg(1.0e6),
            &[2.5],
            &[1.0],
            &[0.3], // even a heavily capped NIC: there is nobody to talk to
        );
        assert_eq!(out.barrier_s, 2.5);
        assert_eq!(out.phases[0].comm_s, 0.0);
        assert_eq!(out.total_bytes, 0.0);
    }

    #[test]
    fn halo_bytes_follow_the_surface_law() {
        let fl = flows(
            CommPattern::HaloExchange {
                bytes_per_unit: 1000.0,
            },
            &[1.0, 8.0, 1.0],
        );
        // 3 nodes × 2 neighbours.
        assert_eq!(fl.len(), 6);
        let b1: f64 = fl.iter().find(|f| f.src == 0).unwrap().bytes;
        let b8: f64 = fl.iter().find(|f| f.src == 1).unwrap().bytes;
        // 8× the volume → 4× the surface.
        assert!((b8 / b1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn two_node_ring_sends_one_face_each_way() {
        let fl = flows(
            CommPattern::HaloExchange {
                bytes_per_unit: 1.0e6,
            },
            &[1.0, 1.0],
        );
        assert_eq!(fl.len(), 2, "left and right neighbour coincide");
    }

    #[test]
    fn contention_slows_shared_links() {
        // 4 nodes on one ring: each NicTx carries 2 flows, each NicRx 2,
        // so fair share halves the rate vs. an uncontended transfer.
        let cfg = halo_cfg(1.0e9);
        let out = exchange(&cfg, &[0.0; 4], &[1.0; 4], &[1.0; 4]);
        let uncontended = 1.0e9 / 10.0e9;
        let p = &out.phases[0];
        assert!(
            p.comm_s > 1.9 * uncontended,
            "fair-share contention must roughly halve the rate: {:.4} s",
            p.comm_s
        );
    }

    #[test]
    fn capped_nic_drags_its_neighbours() {
        let cfg = halo_cfg(1.0e9);
        let full = exchange(&cfg, &[0.0; 4], &[1.0; 4], &[1.0; 4]);
        let mut drain = [1.0; 4];
        drain[2] = 0.25; // node 2 heavily power-capped
        let capped = exchange(&cfg, &[0.0; 4], &[1.0; 4], &drain);
        // Node 2's neighbours exchange with it through its slow NIC.
        for nbr in [1usize, 3] {
            assert!(
                capped.phases[nbr].comm_s > full.phases[nbr].comm_s * 2.0,
                "neighbour {nbr} must feel the capped NIC"
            );
        }
        // The far node's own wire time only degrades via shared links, and
        // on a flat switch node 0 never touches node 2's NIC.
        assert!((capped.phases[0].comm_s - full.phases[0].comm_s).abs() < 1e-9);
    }

    #[test]
    fn allreduce_is_gated_by_the_slowest_rank_and_link() {
        let cfg = CommConfig {
            pattern: CommPattern::AllReduce {
                payload_bytes: 64.0e6,
            },
            ..halo_cfg(0.0)
        };
        let ready = [0.0, 0.4, 0.1, 0.2];
        let out = exchange(&cfg, &ready, &[1.0; 4], &[1.0, 1.0, 0.5, 1.0]);
        // Everyone finishes together, after the last arrival.
        let d0 = out.phases[0].done_s;
        for p in &out.phases {
            assert_eq!(p.done_s, d0);
            assert_eq!(p.comm_s, out.phases[0].comm_s);
        }
        assert!(d0 > 0.4, "collective cannot start before the last rank");
        // The capped node's NIC gates the whole ring: slower than the
        // full-power collective.
        let full = exchange(&cfg, &ready, &[1.0; 4], &[1.0; 4]);
        assert!(out.phases[0].comm_s > full.phases[0].comm_s * 1.5);
    }

    #[test]
    fn rack_uplink_contention_taxes_inter_rack_flows() {
        // 4 nodes, racks of 2, skinny uplink: the ring's two inter-rack
        // flows each way squeeze through 1/10 of the NIC bandwidth.
        let cfg = CommConfig {
            topology: Topology::RackTree {
                nodes_per_rack: 2,
                uplink_bw: 1.0e9,
            },
            ..halo_cfg(1.0e9)
        };
        let flat = exchange(&halo_cfg(1.0e9), &[0.0; 4], &[1.0; 4], &[1.0; 4]);
        let tree = exchange(&cfg, &[0.0; 4], &[1.0; 4], &[1.0; 4]);
        // Nodes 1/2 and 3/0 talk across racks.
        assert!(tree.phases[0].comm_s > flat.phases[0].comm_s * 2.0);
        // Byte conservation: same flows, same totals, regardless of wiring.
        assert_eq!(tree.total_bytes, flat.total_bytes);
    }

    #[test]
    fn bytes_are_conserved_across_links() {
        let cfg = halo_cfg(3.0e8);
        let out = exchange(&cfg, &[0.0; 6], &[1.0, 1.3, 0.8, 2.0, 1.1, 0.5], &[1.0; 6]);
        let tx: f64 = out
            .link_bytes
            .iter()
            .filter(|(l, _)| matches!(l, LinkId::NicTx(_)))
            .map(|(_, b)| b)
            .sum();
        let rx: f64 = out
            .link_bytes
            .iter()
            .filter(|(l, _)| matches!(l, LinkId::NicRx(_)))
            .map(|(_, b)| b)
            .sum();
        assert!((tx - out.total_bytes).abs() < 1e-6);
        assert!((rx - out.total_bytes).abs() < 1e-6);
    }

    #[test]
    fn phase_split_is_exhaustive_and_non_negative() {
        let cfg = halo_cfg(5.0e8);
        let ready = [0.1, 0.9, 0.4, 0.6];
        let out = exchange(&cfg, &ready, &[1.0, 2.0, 1.5, 1.2], &[1.0, 0.6, 0.8, 1.0]);
        for p in &out.phases {
            assert!(p.comm_s >= 0.0 && p.slack_s >= 0.0);
            // ready + comm + slack lands exactly on the barrier.
            assert!((p.ready_s + p.comm_s + p.slack_s - out.barrier_s).abs() < 1e-9);
        }
    }
}
