//! The cluster driver: sharded event-queue stepping over independent
//! members.
//!
//! [`run_cluster`] instantiates N independent members (heterogeneous
//! presets allowed) and advances them in compute-phase → exchange-phase
//! iterations: members compute their share in parallel, the comm model
//! ([`crate::comm`]) prices the exchange from the global view (message
//! sizes, topology contention, each node's power-dependent NIC drain
//! rate), and the barrier lands when the last flow does — faster ranks
//! spin (MPI-style polling, full power). A [`PowerArbiter`]
//! redistributes the global power budget at each barrier from the
//! telemetry the members report, which splits each iteration into
//! `compute_s` / `comm_s` / `slack_s` so a progress-aware policy can
//! distinguish "slow because capped" from "slow because waiting on the
//! wire". With [`CommConfig::none`] (or zero-byte messages) the exchange
//! generates no flows and the schedule is bit-identical to the PR-2
//! ideal barrier.
//!
//! Between barriers the members are stepped through `crate::shard`:
//! contiguous rank shards with preallocated telemetry buffers move
//! through the thread pool as coarse work items, and within a shard the
//! spin phase wakes only members short of the barrier, earliest event
//! first. The simulation is embarrassingly parallel within an epoch and
//! bitwise deterministic regardless of thread or shard count; the
//! exchange pricing is single-threaded pure arithmetic. The
//! pre-sharding bulk-synchronous loop survives as
//! [`run_cluster_reference`], and the differential suite pins the two
//! drivers bit-for-bit against each other.

use rayon::prelude::*;

use progress::imbalance::{self, ImbalanceReport};
use simnode::config::NodeConfig;
use simnode::faults::FaultPlan;
use simnode::hw::BackendKind;
use simnode::time::{from_secs, secs, Nanos};
use std::sync::Arc;

use crate::arbiter::{ArbiterConfig, BudgetArbiter, GrantTrace, NodeTelemetry, PowerArbiter};
use crate::comm::{self, CommConfig};
use crate::error::{ensure, ClusterError, ConfigError};
use crate::hierarchy::{HierarchyConfig, RackArbiter};
use crate::member::ClusterNode;
use crate::shard::Shard;
use crate::workload::WorkloadShape;

/// Named node hardware variants (see [`simnode::presets`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Preset {
    /// The calibrated reference node.
    Reference,
    /// +pct% switched capacitance: hotter at every operating point.
    Leaky(f64),
    /// Top frequencies fused off at `fmax_mhz`.
    LowBin(u32),
    /// Thermal model with an undersized heatsink.
    PoorCooling,
}

impl Preset {
    fn config(self) -> NodeConfig {
        match self {
            Preset::Reference => simnode::presets::reference(),
            Preset::Leaky(pct) => simnode::presets::leaky(pct),
            Preset::LowBin(fmax) => simnode::presets::low_bin(fmax),
            Preset::PoorCooling => simnode::presets::poor_cooling(),
        }
    }

    /// The highest package power this preset's cooling can sustain
    /// without tripping PROCHOT, or `+∞` for presets without a thermal
    /// model (see [`simnode::thermal::ThermalConfig::sustainable_power_w`]).
    /// The arbiter clamps the node's grant ceiling here: watts granted
    /// above it would be clawed back by the throttle while still being
    /// charged against the cluster budget.
    pub fn thermal_ceiling_w(self) -> f64 {
        self.config()
            .thermal
            .as_ref()
            .map(|t| t.sustainable_power_w())
            .unwrap_or(f64::INFINITY)
    }
}

/// One node's place in the cluster: hardware variant, share of the
/// decomposition, and an optional injected fault plan.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Hardware variant.
    pub preset: Preset,
    /// Work multiplier for this rank.
    pub weight: f64,
    /// Fault plan for this node's MSR layer (PR-1 fault injection),
    /// `Arc`-shared so cloning a spec (or a whole sweep of them) never
    /// deep-copies the plan.
    pub faults: Option<Arc<FaultPlan>>,
    /// MSR backend tier behind this member's register file
    /// ([`BackendKind::Sim`] by default — bit-identical to the seed).
    pub backend: BackendKind,
}

impl NodeSpec {
    /// A healthy node of `preset` carrying `weight`.
    pub fn new(preset: Preset, weight: f64) -> Self {
        Self {
            preset,
            weight,
            faults: None,
            backend: BackendKind::default(),
        }
    }

    /// Attach a fault plan.
    pub fn with_faults(mut self, plan: impl Into<Arc<FaultPlan>>) -> Self {
        self.faults = Some(plan.into());
        self
    }

    /// Select the MSR backend tier for this member.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }
}

/// Full cluster run description.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The member nodes.
    pub nodes: Vec<NodeSpec>,
    /// Outer (barrier-to-barrier) iterations to run.
    pub iters: usize,
    /// Budget arbiter tuning.
    pub arbiter: ArbiterConfig,
    /// Kernel cost shape shared by all ranks.
    pub shape: WorkloadShape,
    /// Exchange-phase cost model ([`CommConfig::none`] for the ideal
    /// barrier).
    pub comm: CommConfig,
    /// NRM daemon control period on every member, ns.
    pub daemon_period: Nanos,
    /// Two-level (machine → rack → node) arbitration instead of the flat
    /// arbiter; `None` keeps the single global pot.
    pub hierarchy: Option<HierarchyConfig>,
}

impl ClusterConfig {
    /// Validate the composite configuration: a non-empty cluster, at
    /// least one iteration, and consistent arbiter / comm / hierarchy
    /// sub-configurations.
    ///
    /// # Panics
    /// Panics on an invalid node preset (those validators live in
    /// `simnode` and still assert).
    pub fn validate(&self) -> Result<(), ConfigError> {
        ensure(!self.nodes.is_empty(), "ClusterConfig.nodes", || {
            "cluster needs at least one node".into()
        })?;
        ensure(self.iters > 0, "ClusterConfig.iters", || {
            "need at least one iteration".into()
        })?;
        self.arbiter.validate()?;
        ensure(
            self.arbiter.budget_w >= self.arbiter.min_cap_w * self.nodes.len() as f64 - 1e-9,
            "ClusterConfig.arbiter",
            || {
                format!(
                    "budget {} W cannot fund {} nodes at the {} W floor",
                    self.arbiter.budget_w,
                    self.nodes.len(),
                    self.arbiter.min_cap_w
                )
            },
        )?;
        self.comm.validate()?;
        if let Some(h) = &self.hierarchy {
            h.validate(&self.arbiter, self.nodes.len())?;
        }
        for spec in &self.nodes {
            ensure(spec.backend.is_available(), "NodeSpec.backend", || {
                format!(
                    "backend {:?} requires this binary to be built with --features rapl",
                    spec.backend
                )
            })?;
            spec.preset.config().validate();
        }
        Ok(())
    }
}

/// Per-iteration record: barrier time, per-node compute times, and the
/// imbalance analysis over them (critical rank = slowest node, wait
/// fraction = share of node-seconds burned at the barrier).
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// Iteration index.
    pub round: usize,
    /// Barrier time (when the last exchange flow landed), s from run
    /// start.
    pub barrier_at_s: f64,
    /// Per-node compute time this iteration, s.
    pub compute_s: Vec<f64>,
    /// Per-node exchange wire time this iteration, s (all zero under an
    /// ideal barrier).
    pub comm_s: Vec<f64>,
    /// Per-node barrier/rendezvous slack this iteration, s.
    pub slack_s: Vec<f64>,
    /// Bytes the exchange moved this iteration.
    pub bytes: f64,
    /// Imbalance analysis over `compute_s`.
    pub imbalance: ImbalanceReport,
    /// Which nodes delivered telemetry this iteration.
    pub reporting: Vec<bool>,
}

/// Everything a cluster run produced.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Wall-clock makespan: when the last member finished the last
    /// barrier, s.
    pub makespan_s: f64,
    /// Ground-truth total energy across all members, J.
    pub energy_j: f64,
    /// Per-iteration records.
    pub iterations: Vec<IterationRecord>,
    /// The (leaf-level) budget-conservation trace, one tick per barrier.
    pub grant_trace: GrantTrace,
    /// The rack-level conservation trace, one tick per outer epoch
    /// (`None` under flat arbitration).
    pub rack_trace: Option<GrantTrace>,
    /// Final grants in force, W.
    pub final_grants_w: Vec<f64>,
}

impl ClusterOutcome {
    /// Mean across iterations of the per-iteration imbalance factor.
    pub fn mean_imbalance_factor(&self) -> f64 {
        mean(self.iterations.iter().map(|i| i.imbalance.imbalance_factor))
    }

    /// Mean across iterations of the barrier wait fraction.
    pub fn mean_wait_fraction(&self) -> f64 {
        mean(self.iterations.iter().map(|i| i.imbalance.wait_fraction))
    }

    /// Mean per-node compute-phase time per iteration, s.
    pub fn mean_compute_s(&self) -> f64 {
        mean(
            self.iterations
                .iter()
                .flat_map(|i| i.compute_s.iter().copied()),
        )
    }

    /// Mean per-node exchange wire time per iteration, s (0 under an
    /// ideal barrier).
    pub fn mean_comm_s(&self) -> f64 {
        mean(
            self.iterations
                .iter()
                .flat_map(|i| i.comm_s.iter().copied()),
        )
    }

    /// Mean per-node barrier/rendezvous slack per iteration, s.
    pub fn mean_slack_s(&self) -> f64 {
        mean(
            self.iterations
                .iter()
                .flat_map(|i| i.slack_s.iter().copied()),
        )
    }

    /// Total bytes the exchange phases moved across the run.
    pub fn total_bytes(&self) -> f64 {
        self.iterations.iter().map(|i| i.bytes).sum()
    }

    /// Smallest budget slack observed across the whole leaf trace, W
    /// (non-negative iff conservation held on every tick).
    pub fn min_budget_slack_w(&self) -> f64 {
        self.grant_trace.min_slack_w()
    }

    /// Node-ticks excluded from redistribution (telemetry dropouts).
    pub fn excluded_node_ticks(&self) -> usize {
        self.grant_trace
            .ticks()
            .iter()
            .map(|t| t.reporting.iter().filter(|r| !**r).count())
            .sum()
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (mut n, mut sum) = (0usize, 0.0);
    for v in it {
        n += 1;
        sum += v;
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// Build the arbiter and the member fleet for a validated `cfg`.
fn setup(cfg: &ClusterConfig) -> (Box<dyn BudgetArbiter>, Vec<ClusterNode>) {
    let n = cfg.nodes.len();
    // Thermal-headroom clamps: a node whose cooling cannot dissipate the
    // shared max cap gets its grant ceiling tightened to what it can
    // actually spend (∞ for presets without a thermal model, which keeps
    // thermally unconstrained clusters bitwise unchanged). Flat
    // arbitration only: the rack tree's per-rack clamps scale with rack
    // size, not per-node cooling, so the hierarchy keeps the shared
    // ceiling for now.
    let ceilings: Vec<f64> = cfg
        .nodes
        .iter()
        .map(|s| s.preset.thermal_ceiling_w())
        .collect();
    let arbiter: Box<dyn BudgetArbiter> = match &cfg.hierarchy {
        Some(h) => Box::new(RackArbiter::new(cfg.arbiter, h.clone())),
        None => Box::new(PowerArbiter::new(cfg.arbiter, n).with_node_ceilings(&ceilings)),
    };
    let rack_of = |id: usize| -> usize {
        match &cfg.hierarchy {
            None => 0,
            Some(h) => {
                let mut start = 0;
                for (r, &k) in h.racks.iter().enumerate() {
                    if id < start + k {
                        return r;
                    }
                    start += k;
                }
                unreachable!("validate() pinned the rack sum to the node count")
            }
        }
    };
    let members = cfg
        .nodes
        .iter()
        .enumerate()
        .map(|(id, spec)| {
            let node_cfg = NodeConfig {
                faults: spec.faults.clone(),
                backend: spec.backend,
                ..spec.preset.config()
            };
            let mut m = ClusterNode::new(id, node_cfg, spec.weight, cfg.shape, cfg.daemon_period)
                .with_rack(rack_of(id));
            m.set_grant(arbiter.grants()[id]);
            m
        })
        .collect();
    (arbiter, members)
}

/// Run the cluster to completion under `cfg`.
///
/// Each iteration: all members compute their share in parallel (stepped
/// as contiguous `crate::shard` work items over the thread pool); the
/// comm model prices the exchange phase from the global view (rendezvous
/// starts, per-link contention, power-throttled NIC drain rates); the
/// barrier lands when the last flow does and everyone short of it spins
/// up to it (MPI-style polling), earliest next event first; members
/// report per-phase telemetry into reused shard buffers; the arbiter
/// redistributes and the new grants take effect for the next iteration
/// (bit-identical regrants skip the store — the daemon re-reads its cell
/// every control tick either way).
///
/// An invalid configuration, rejected telemetry, or a degenerate
/// imbalance analysis is reported as a [`ClusterError`] (the `repro` CLI
/// surfaces it as a clean exit-2 message); only genuine internal
/// invariant violations (Σ grants ≤ budget) still panic.
pub fn run_cluster(cfg: &ClusterConfig) -> Result<ClusterOutcome, ClusterError> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    run_cluster_sharded(cfg, threads)
}

/// [`run_cluster`] with an explicit shard count. Shard geometry is pure
/// scheduling — any count yields bitwise identical outcomes (the
/// differential suite sweeps this) — so the public entry point just
/// picks the thread count.
fn run_cluster_sharded(cfg: &ClusterConfig, want: usize) -> Result<ClusterOutcome, ClusterError> {
    cfg.validate()?;
    let n = cfg.nodes.len();
    let (mut arbiter, members) = setup(cfg);
    let mut shards = Shard::partition(members, want);
    let weights: Vec<f64> = cfg.nodes.iter().map(|s| s.weight).collect();

    // Rank-ordered gather buffers, allocated once and reused every
    // iteration (the per-iteration output records still own their data).
    let mut ready_s = vec![0.0; n];
    let mut drain = vec![0.0; n];
    let mut compute_s = vec![0.0; n];
    let mut reports: Vec<Option<NodeTelemetry>> = vec![None; n];

    let mut iterations = Vec::with_capacity(cfg.iters);
    for round in 0..cfg.iters {
        // Compute phase: shards advance their members independently.
        let coupling = cfg.comm.power_coupling;
        shards = shards
            .into_par_iter()
            .map(|mut s| {
                s.compute_phase(coupling);
                s
            })
            .collect();
        for s in &shards {
            let span = s.span();
            ready_s[span.clone()].copy_from_slice(&s.ready_s);
            drain[span.clone()].copy_from_slice(&s.drain);
            compute_s[span].copy_from_slice(&s.compute_s);
        }

        // Exchange phase: priced from the global view. The NIC drain
        // factors reflect each node's power state at the end of its
        // compute phase — a capped node feeds its injection queue slower.
        let exchange = comm::exchange(&cfg.comm, &ready_s, &weights, &drain);

        // Barrier: the last flow's landing gates everyone. With no flows
        // every `done_s` equals `ready_s` exactly, so this reduces to the
        // ideal barrier (max member clock) bit for bit; the max of
        // per-shard integer maxima is order-independent.
        let phases = &exchange.phases;
        let barrier_at = shards
            .iter()
            .map(|s| s.barrier_candidate(&phases[s.span()]))
            .fold(0, Nanos::max);

        // Spin + telemetry phase: each shard wakes only members short of
        // the barrier and files reports into its reused buffers.
        shards = shards
            .into_par_iter()
            .map(|mut s| {
                let span = s.span();
                s.finish_phase(barrier_at, &phases[span]);
                s
            })
            .collect();
        for s in &shards {
            reports[s.span()].copy_from_slice(&s.reports);
        }

        let imbalance = imbalance::analyze(&compute_s)
            .map_err(|e| ClusterError::Analysis(format!("iteration {round}: {e}")))?;
        let grants = arbiter.redistribute(&reports)?;
        for s in &mut shards {
            let span = s.span();
            for (m, &g) in s.members_mut().iter_mut().zip(&grants[span]) {
                m.set_grant_if_changed(g);
            }
        }

        iterations.push(IterationRecord {
            round,
            barrier_at_s: secs(barrier_at),
            compute_s: compute_s.clone(),
            comm_s: exchange.phases.iter().map(|p| p.comm_s).collect(),
            slack_s: exchange.phases.iter().map(|p| p.slack_s).collect(),
            bytes: exchange.total_bytes,
            imbalance,
            reporting: reports.iter().map(Option::is_some).collect(),
        });
    }

    let makespan_s = iterations.last().map(|i| i.barrier_at_s).unwrap_or(0.0);
    let energy_j = shards
        .iter()
        .flat_map(|s| s.members().iter())
        .map(ClusterNode::total_energy)
        .sum();
    Ok(ClusterOutcome {
        makespan_s,
        energy_j,
        iterations,
        final_grants_w: arbiter.grants().to_vec(),
        rack_trace: arbiter.rack_trace().cloned(),
        grant_trace: arbiter.trace().clone(),
    })
}

/// The pre-sharding bulk-synchronous driver, kept as the executable
/// specification for [`run_cluster`]: every member moves through its own
/// parallel work item and telemetry is re-collected into fresh vectors
/// each barrier. The differential suite pins the sharded engine to this
/// path bit for bit; prefer [`run_cluster`] everywhere else — it runs
/// the same simulation, just scheduled to scale.
pub fn run_cluster_reference(cfg: &ClusterConfig) -> Result<ClusterOutcome, ClusterError> {
    cfg.validate()?;
    let (mut arbiter, mut members) = setup(cfg);
    let weights: Vec<f64> = cfg.nodes.iter().map(|s| s.weight).collect();
    let mut iterations = Vec::with_capacity(cfg.iters);
    for round in 0..cfg.iters {
        // Compute phase: members advance independently in parallel.
        members = members
            .into_par_iter()
            .map(|mut m| {
                m.compute_iteration();
                m
            })
            .collect();

        // Exchange phase: priced from the global view. The NIC drain
        // factors reflect each node's power state at the end of its
        // compute phase — a capped node feeds its injection queue slower.
        let ready_ns: Vec<Nanos> = members.iter().map(ClusterNode::now).collect();
        let ready_s: Vec<f64> = ready_ns.iter().map(|&t| secs(t)).collect();
        let drain: Vec<f64> = members
            .iter()
            .map(|m| m.link_drain_factor(cfg.comm.power_coupling))
            .collect();
        let exchange = comm::exchange(&cfg.comm, &ready_s, &weights, &drain);

        // Barrier: the last flow's landing gates everyone. With no flows
        // every `done_s` equals `ready_s` exactly, so this reduces to the
        // ideal barrier (max member clock) bit for bit. Folding from 0
        // needs no nonempty-witness: clocks are non-negative, and
        // `validate()` pinned the cluster to at least one member anyway.
        let barrier_at = members
            .iter()
            .zip(&exchange.phases)
            .map(|(m, p)| m.now() + from_secs(p.done_s - p.ready_s))
            .fold(0, Nanos::max);
        members = members
            .into_par_iter()
            .map(|mut m| {
                m.spin_until(barrier_at);
                m
            })
            .collect();

        // Telemetry + redistribution.
        for (m, p) in members.iter_mut().zip(&exchange.phases) {
            m.set_phase(p.comm_s, p.slack_s);
        }
        let reports: Vec<Option<NodeTelemetry>> =
            members.iter_mut().map(ClusterNode::take_report).collect();
        let compute_s: Vec<f64> = members.iter().map(ClusterNode::last_compute_s).collect();
        let imbalance = imbalance::analyze(&compute_s)
            .map_err(|e| ClusterError::Analysis(format!("iteration {round}: {e}")))?;
        let grants = arbiter.redistribute(&reports)?.to_vec();
        for (m, &g) in members.iter_mut().zip(&grants) {
            m.set_grant(g);
        }

        iterations.push(IterationRecord {
            round,
            barrier_at_s: secs(barrier_at),
            compute_s,
            comm_s: exchange.phases.iter().map(|p| p.comm_s).collect(),
            slack_s: exchange.phases.iter().map(|p| p.slack_s).collect(),
            bytes: exchange.total_bytes,
            imbalance,
            reporting: reports.iter().map(Option::is_some).collect(),
        });
    }

    let makespan_s = iterations.last().map(|i| i.barrier_at_s).unwrap_or(0.0);
    let energy_j = members.iter().map(ClusterNode::total_energy).sum();
    Ok(ClusterOutcome {
        makespan_s,
        energy_j,
        iterations,
        final_grants_w: arbiter.grants().to_vec(),
        rack_trace: arbiter.rack_trace().cloned(),
        grant_trace: arbiter.trace().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::Policy;
    use crate::member::DEFAULT_DAEMON_PERIOD;

    fn small_cfg(policy: Policy) -> ClusterConfig {
        ClusterConfig {
            nodes: vec![
                NodeSpec::new(Preset::Reference, 1.0),
                NodeSpec::new(Preset::Reference, 1.5),
                NodeSpec::new(Preset::Reference, 2.0),
            ],
            iters: 3,
            arbiter: ArbiterConfig {
                budget_w: 240.0,
                min_cap_w: 40.0,
                max_cap_w: 130.0,
                policy,
            },
            shape: WorkloadShape::default(),
            comm: CommConfig::none(),
            daemon_period: DEFAULT_DAEMON_PERIOD,
            hierarchy: None,
        }
    }

    fn halo_comm(bytes_per_unit: f64) -> CommConfig {
        CommConfig {
            alpha_s: 2.0e-6,
            nic_bw: 12.5e9,
            power_coupling: 0.5,
            pattern: crate::comm::CommPattern::HaloExchange { bytes_per_unit },
            topology: crate::topology::Topology::FlatSwitch,
        }
    }

    #[test]
    fn barrier_couples_the_members() {
        let out = run_cluster(&small_cfg(Policy::UniformStatic)).unwrap();
        assert_eq!(out.iterations.len(), 3);
        for it in &out.iterations {
            // The heaviest rank is the critical path every iteration.
            assert_eq!(it.imbalance.critical_rank, 2);
            assert!(it.imbalance.wait_fraction > 0.05, "light ranks wait");
        }
        assert!(out.makespan_s > 0.0);
        assert!(out.energy_j > 0.0);
    }

    #[test]
    fn budget_is_conserved_on_every_tick() {
        let out = run_cluster(&small_cfg(Policy::ProgressFeedback { gain: 1.0 })).unwrap();
        assert_eq!(out.grant_trace.len(), 3);
        assert!(
            out.min_budget_slack_w() >= -1e-6,
            "slack {}",
            out.min_budget_slack_w()
        );
    }

    #[test]
    fn feedback_shifts_watts_toward_the_heavy_rank() {
        let out = run_cluster(&small_cfg(Policy::ProgressFeedback { gain: 1.0 })).unwrap();
        let g = &out.final_grants_w;
        assert!(
            g[2] > g[0] + 5.0,
            "critical rank must end with more watts: {g:?}"
        );
    }

    #[test]
    fn ideal_barrier_reports_zero_comm_everywhere() {
        let out = run_cluster(&small_cfg(Policy::UniformStatic)).unwrap();
        assert_eq!(out.mean_comm_s(), 0.0);
        assert_eq!(out.total_bytes(), 0.0);
        for it in &out.iterations {
            assert!(it.comm_s.iter().all(|&c| c == 0.0));
        }
    }

    #[test]
    fn halo_exchange_stretches_the_makespan_and_reports_phases() {
        let ideal = run_cluster(&small_cfg(Policy::UniformStatic)).unwrap();
        let mut cfg = small_cfg(Policy::UniformStatic);
        cfg.comm = halo_comm(64.0 * 1024.0 * 1024.0);
        let out = run_cluster(&cfg).unwrap();
        assert!(
            out.makespan_s > ideal.makespan_s,
            "paying for the wire must cost wall-clock: {:.3} vs {:.3}",
            out.makespan_s,
            ideal.makespan_s
        );
        assert!(out.mean_comm_s() > 0.0);
        assert!(out.total_bytes() > 0.0);
        // The phase split reaches the arbiter's trace.
        for tick in out.grant_trace.ticks() {
            for (i, &c) in tick.comm_s.iter().enumerate() {
                if tick.reporting[i] {
                    assert!(c > 0.0, "reporting node {i} must carry wire time");
                }
            }
        }
    }

    #[test]
    fn hierarchical_run_traces_both_levels_and_tags_racks() {
        let mut cfg = small_cfg(Policy::ProgressFeedback { gain: 1.0 });
        cfg.nodes.push(NodeSpec::new(Preset::Reference, 1.0));
        cfg.arbiter.budget_w = 320.0;
        cfg.hierarchy = Some(HierarchyConfig {
            racks: vec![2, 2],
            outer_period: 1,
            inner_period: 1,
            rack_policy: Policy::ProgressFeedback { gain: 1.0 },
            rack_clamps: None,
        });
        let out = run_cluster(&cfg).unwrap();
        assert_eq!(out.grant_trace.len(), 3, "one leaf tick per barrier");
        let rack = out.rack_trace.as_ref().expect("hierarchy traces racks");
        assert_eq!(rack.len(), 3, "outer period 1 fires every barrier");
        assert!(out.min_budget_slack_w() >= -1e-6, "leaf conservation");
        assert!(rack.min_slack_w() >= -1e-6, "rack conservation");
        // Flat runs leave the rack level untraced.
        let flat = run_cluster(&small_cfg(Policy::UniformStatic)).unwrap();
        assert!(flat.rack_trace.is_none());
    }

    #[test]
    fn poor_cooling_node_is_clamped_to_its_thermal_ceiling() {
        // A generous budget that would otherwise let every node saturate
        // at the 130 W shared max — but the PoorCooling node can only
        // dissipate ~115.6 W in steady state, so the arbiter must never
        // grant it more (PROCHOT would claw the excess back).
        let mut cfg = small_cfg(Policy::ProgressFeedback { gain: 1.0 });
        cfg.nodes[2] = NodeSpec::new(Preset::PoorCooling, 2.0);
        cfg.arbiter.budget_w = 390.0;
        let ceiling = Preset::PoorCooling.thermal_ceiling_w();
        assert!(
            ceiling < cfg.arbiter.max_cap_w,
            "preset must be thermally constrained: {ceiling} W"
        );
        let out = run_cluster(&cfg).unwrap();
        for tick in out.grant_trace.ticks() {
            assert!(
                tick.granted_w[2] <= ceiling + 1e-6,
                "round {}: grant {} W above the {ceiling:.1} W ceiling",
                tick.round,
                tick.granted_w[2]
            );
        }
        // The clamped-off watts fund the unconstrained nodes instead:
        // they end above the constrained node's ceiling.
        assert!(
            out.final_grants_w[0] > ceiling && out.final_grants_w[1] > ceiling,
            "freed headroom must reach the others: {:?}",
            out.final_grants_w
        );
        assert!(out.min_budget_slack_w() >= -1e-6);
    }

    #[test]
    fn reference_nodes_have_no_thermal_ceiling() {
        assert_eq!(Preset::Reference.thermal_ceiling_w(), f64::INFINITY);
        assert_eq!(Preset::Leaky(10.0).thermal_ceiling_w(), f64::INFINITY);
    }

    /// Every observable of the two outcomes, compared bitwise.
    fn assert_outcomes_bit_identical(a: &ClusterOutcome, b: &ClusterOutcome) {
        assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits(), "makespan");
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits(), "energy");
        assert_eq!(a.final_grants_w.len(), b.final_grants_w.len());
        for (x, y) in a.final_grants_w.iter().zip(&b.final_grants_w) {
            assert_eq!(x.to_bits(), y.to_bits(), "final grants");
        }
        assert_eq!(a.iterations.len(), b.iterations.len());
        for (ia, ib) in a.iterations.iter().zip(&b.iterations) {
            assert_eq!(ia.barrier_at_s.to_bits(), ib.barrier_at_s.to_bits());
            assert_eq!(ia.reporting, ib.reporting);
            for (x, y) in ia.compute_s.iter().zip(&ib.compute_s) {
                assert_eq!(x.to_bits(), y.to_bits(), "compute_s");
            }
            for (x, y) in ia.comm_s.iter().zip(&ib.comm_s) {
                assert_eq!(x.to_bits(), y.to_bits(), "comm_s");
            }
        }
        assert_eq!(a.grant_trace.len(), b.grant_trace.len());
        for (ta, tb) in a.grant_trace.ticks().iter().zip(b.grant_trace.ticks()) {
            for (x, y) in ta.granted_w.iter().zip(&tb.granted_w) {
                assert_eq!(x.to_bits(), y.to_bits(), "leaf trace grants");
            }
        }
        match (&a.rack_trace, &b.rack_trace) {
            (None, None) => {}
            (Some(ra), Some(rb)) => {
                assert_eq!(ra.len(), rb.len());
                for (ta, tb) in ra.ticks().iter().zip(rb.ticks()) {
                    for (x, y) in ta.granted_w.iter().zip(&tb.granted_w) {
                        assert_eq!(x.to_bits(), y.to_bits(), "rack trace grants");
                    }
                }
            }
            _ => panic!("one outcome traced racks, the other did not"),
        }
    }

    #[test]
    fn sharded_flat_run_matches_the_reference_bit_for_bit() {
        // The nastiest flat config the suite has: feedback policy, halo
        // comm, a thermally clamped node, and a telemetry-dropout fault.
        use simnode::faults::{FaultPlan, FaultWindow};
        use simnode::time::SEC;
        let mut cfg = small_cfg(Policy::ProgressFeedback { gain: 1.0 });
        cfg.nodes[2] = NodeSpec::new(Preset::PoorCooling, 2.0);
        cfg.nodes[1] = cfg.nodes[1]
            .clone()
            .with_faults(FaultPlan::new(7).telemetry_dropout(FaultWindow::new(SEC / 2, 3 * SEC)));
        cfg.comm = halo_comm(16.0 * 1024.0 * 1024.0);
        cfg.iters = 4;
        let sharded = run_cluster(&cfg).unwrap();
        let reference = run_cluster_reference(&cfg).unwrap();
        assert_outcomes_bit_identical(&sharded, &reference);
    }

    #[test]
    fn sharded_hierarchical_run_matches_the_reference_bit_for_bit() {
        let mut cfg = small_cfg(Policy::ProgressFeedback { gain: 1.0 });
        cfg.nodes.push(NodeSpec::new(Preset::Reference, 1.2));
        cfg.nodes.push(NodeSpec::new(Preset::Leaky(10.0), 0.8));
        cfg.nodes.push(NodeSpec::new(Preset::Reference, 1.7));
        cfg.arbiter.budget_w = 480.0;
        cfg.hierarchy = Some(HierarchyConfig {
            racks: vec![2, 2, 2],
            outer_period: 2,
            inner_period: 1,
            rack_policy: Policy::ProgressFeedback { gain: 0.8 },
            rack_clamps: None,
        });
        cfg.comm = halo_comm(8.0 * 1024.0 * 1024.0);
        cfg.iters = 4;
        let sharded = run_cluster(&cfg).unwrap();
        let reference = run_cluster_reference(&cfg).unwrap();
        assert_outcomes_bit_identical(&sharded, &reference);
    }

    #[test]
    fn shard_geometry_never_changes_the_bits() {
        // 6 members split 1 / 2 / 4 / 6 ways (uneven tail shards
        // included) must produce identical outcomes regardless of how
        // many threads the host machine happens to offer.
        let mut cfg = small_cfg(Policy::ProgressFeedback { gain: 1.0 });
        cfg.nodes.push(NodeSpec::new(Preset::Reference, 1.2));
        cfg.nodes.push(NodeSpec::new(Preset::Reference, 0.9));
        cfg.nodes.push(NodeSpec::new(Preset::Reference, 1.7));
        cfg.arbiter.budget_w = 480.0;
        cfg.comm = halo_comm(4.0 * 1024.0 * 1024.0);
        let one = run_cluster_sharded(&cfg, 1).unwrap();
        for want in [2, 4, 6] {
            let many = run_cluster_sharded(&cfg, want).unwrap();
            assert_outcomes_bit_identical(&one, &many);
        }
    }

    #[test]
    fn zero_byte_messages_reproduce_the_ideal_barrier_bit_for_bit() {
        let ideal = run_cluster(&small_cfg(Policy::ProgressFeedback { gain: 1.0 })).unwrap();
        let mut cfg = small_cfg(Policy::ProgressFeedback { gain: 1.0 });
        cfg.comm = halo_comm(0.0);
        let zero = run_cluster(&cfg).unwrap();
        assert_eq!(ideal.makespan_s.to_bits(), zero.makespan_s.to_bits());
        assert_eq!(ideal.energy_j.to_bits(), zero.energy_j.to_bits());
        for (a, b) in ideal
            .grant_trace
            .ticks()
            .iter()
            .zip(zero.grant_trace.ticks())
        {
            for (ga, gb) in a.granted_w.iter().zip(&b.granted_w) {
                assert_eq!(ga.to_bits(), gb.to_bits());
            }
        }
    }
}
