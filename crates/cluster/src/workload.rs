//! Per-node iteration workloads for the bulk-synchronous cluster.
//!
//! Every node runs the same SPMD kernel, but real decompositions are not
//! perfectly balanced: domain geometry, particle clustering, or AMR give
//! some ranks more work per iteration than others. A [`WorkloadShape`]
//! describes the kernel's per-unit cost; each node's share is that shape
//! scaled by a dimensionless *weight*, so `weight = 2.0` means twice the
//! cycles, misses and instructions per iteration of a `weight = 1.0`
//! node.

use simnode::node::WorkPacket;

/// The per-core, per-weight-unit cost of one outer iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadShape {
    /// Core cycles per weight unit.
    pub cycles_per_unit: f64,
    /// L3 misses per weight unit.
    pub misses_per_unit: f64,
    /// Instructions retired per weight unit.
    pub inst_per_unit: f64,
    /// Memory-level parallelism of the misses, in (0, 1].
    pub mlp: f64,
    /// Memory-pressure contribution while in flight, in [0, 1].
    pub mem_weight: f64,
}

impl Default for WorkloadShape {
    /// A compute-bound kernel: ~120 ms per weight unit at the reference
    /// node's 3.3 GHz fmax, with a light memory tail. Compute-bound is
    /// the interesting regime for an arbiter — frequency (and therefore
    /// the granted cap) translates directly into iteration time.
    fn default() -> Self {
        Self {
            cycles_per_unit: 3.3e9 * 0.12,
            misses_per_unit: 2.0e5,
            inst_per_unit: 5.0e8,
            mlp: 0.8,
            mem_weight: 0.2,
        }
    }
}

impl WorkloadShape {
    /// This shape with the per-unit *amount* of work scaled by `factor`,
    /// preserving its compute/memory character (MLP and memory pressure
    /// are intensive properties and stay put). The extreme-scale benches
    /// and smokes use small factors to keep thousand-node iterations
    /// short while still exercising the same kernel regime.
    ///
    /// # Panics
    /// Panics on a non-finite or non-positive factor.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be finite positive"
        );
        Self {
            cycles_per_unit: self.cycles_per_unit * factor,
            misses_per_unit: self.misses_per_unit * factor,
            inst_per_unit: self.inst_per_unit * factor,
            ..*self
        }
    }

    /// The packet one core executes for one iteration at `weight`.
    ///
    /// # Panics
    /// Panics on a non-finite or non-positive weight.
    pub fn packet(&self, weight: f64) -> WorkPacket {
        assert!(
            weight.is_finite() && weight > 0.0,
            "node weight must be finite positive"
        );
        WorkPacket {
            cycles: self.cycles_per_unit * weight,
            misses: self.misses_per_unit * weight,
            instructions: self.inst_per_unit * weight,
            mlp: self.mlp,
            mem_weight: self.mem_weight,
        }
    }
}

/// A linear weight ramp from `lo` to `hi` across `n` nodes — the standard
/// imbalanced decomposition used by the cluster experiments (node `n-1`
/// carries `hi / lo` times the work of node 0 and is the static critical
/// path).
///
/// # Panics
/// Panics when `n` is zero or the ramp is inverted/non-positive.
pub fn ramp_weights(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one node");
    assert!(0.0 < lo && lo <= hi, "need 0 < lo <= hi");
    if n == 1 {
        return vec![hi];
    }
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_scales_linearly_with_weight() {
        let shape = WorkloadShape::default();
        let a = shape.packet(1.0);
        let b = shape.packet(2.5);
        assert!((b.cycles / a.cycles - 2.5).abs() < 1e-12);
        assert!((b.misses / a.misses - 2.5).abs() < 1e-12);
        assert_eq!(a.mlp, b.mlp, "weight scales work, not its character");
    }

    #[test]
    fn ramp_spans_the_requested_range() {
        let w = ramp_weights(8, 1.0, 2.4);
        assert_eq!(w.len(), 8);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[7] - 2.4).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[1] > p[0]), "strictly increasing");
    }

    #[test]
    fn scaled_shape_shrinks_work_but_not_character() {
        let base = WorkloadShape::default();
        let s = base.scaled(0.1);
        assert!((s.cycles_per_unit / base.cycles_per_unit - 0.1).abs() < 1e-12);
        assert!((s.misses_per_unit / base.misses_per_unit - 0.1).abs() < 1e-12);
        assert_eq!(s.mlp, base.mlp);
        assert_eq!(s.mem_weight, base.mem_weight);
    }

    #[test]
    #[should_panic(expected = "finite positive")]
    fn zero_weight_rejected() {
        WorkloadShape::default().packet(0.0);
    }

    #[test]
    #[should_panic(expected = "finite positive")]
    fn zero_scale_rejected() {
        WorkloadShape::default().scaled(0.0);
    }
}
