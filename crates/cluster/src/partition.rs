//! Multi-job machine partitioning: many arbiters under one envelope.
//!
//! The arbiter stack so far divides one budget across the nodes of one
//! job. A batch scheduler runs *many* jobs at once, each with its own
//! node set and its own intra-job arbiter, all under a single site power
//! envelope (the machine-room breaker the admission controller admits
//! against). [`MachinePartition`] is that layer: it owns one
//! [`BudgetArbiter`] per running job, keyed by job id, and enforces the
//! machine-level conservation invariant the scheduler's admission
//! decisions rely on — Σ(job budgets) ≤ envelope, and therefore
//! Σ(all leaf grants) ≤ envelope, re-asserted after every admission,
//! release and redistribution tick.
//!
//! Admission beyond the envelope is a recoverable [`ConfigError`] (the
//! admission controller treats "does not fit" as a scheduling outcome,
//! not a bug); a *violation* of the invariant by arbiters already
//! admitted is a panic, because it can only be an implementation bug.

use std::collections::BTreeMap;

use crate::arbiter::{BudgetArbiter, NodeTelemetry};
use crate::error::{ConfigError, TelemetryError};

/// Tolerance for the envelope conservation checks, W.
const EPS_W: f64 = 1e-6;

/// A machine power envelope partitioned across per-job arbiters.
///
/// Jobs are keyed by an opaque `u32` id (the scheduler's job id). The
/// map is a `BTreeMap` so every iteration over jobs — sums, invariant
/// checks — is in deterministic id order regardless of admission order.
pub struct MachinePartition {
    envelope_w: f64,
    jobs: BTreeMap<u32, Box<dyn BudgetArbiter>>,
}

impl MachinePartition {
    /// An empty partition of `envelope_w` watts.
    ///
    /// # Errors
    /// The envelope must be positive and finite.
    pub fn new(envelope_w: f64) -> Result<Self, ConfigError> {
        if !(envelope_w.is_finite() && envelope_w > 0.0) {
            return Err(ConfigError::new(
                "MachinePartition.envelope_w",
                format!("envelope {envelope_w} W must be positive and finite"),
            ));
        }
        Ok(Self {
            envelope_w,
            jobs: BTreeMap::new(),
        })
    }

    /// The machine envelope, W.
    pub fn envelope_w(&self) -> f64 {
        self.envelope_w
    }

    /// Watts committed to running jobs: Σ over jobs of the arbiter's
    /// budget.
    pub fn committed_w(&self) -> f64 {
        self.jobs.values().map(|a| a.budget()).sum()
    }

    /// Watts actually granted to leaves right now: Σ over jobs of
    /// Σ(grants). Always ≤ [`Self::committed_w`], which is ≤ the
    /// envelope.
    pub fn granted_w(&self) -> f64 {
        self.jobs
            .values()
            .map(|a| a.grants().iter().sum::<f64>())
            .sum()
    }

    /// Envelope headroom not committed to any job, W.
    pub fn headroom_w(&self) -> f64 {
        self.envelope_w - self.committed_w()
    }

    /// Number of running jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Running job ids, ascending.
    pub fn job_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.jobs.keys().copied()
    }

    /// The arbiter serving `job`, if it is running.
    pub fn arbiter(&self, job: u32) -> Option<&dyn BudgetArbiter> {
        self.jobs.get(&job).map(|b| b.as_ref())
    }

    /// Admit a job: hand its intra-job arbiter to the partition. Fails —
    /// with the partition untouched — when the id is already running or
    /// the arbiter's budget does not fit the remaining headroom; fitting
    /// is exactly what the scheduler's admission test must have
    /// established, so a refusal here surfaces a predictor/controller
    /// disagreement instead of silently over-subscribing the breaker.
    pub fn admit(&mut self, job: u32, arbiter: Box<dyn BudgetArbiter>) -> Result<(), ConfigError> {
        if self.jobs.contains_key(&job) {
            return Err(ConfigError::new(
                "MachinePartition.admit",
                format!("job {job} is already running"),
            ));
        }
        let budget = arbiter.budget();
        let committed = self.committed_w();
        if committed + budget > self.envelope_w + EPS_W {
            return Err(ConfigError::new(
                "MachinePartition.admit",
                format!(
                    "job {job} needs {budget} W but only {} W of the {} W envelope is free",
                    self.envelope_w - committed,
                    self.envelope_w
                ),
            ));
        }
        self.jobs.insert(job, arbiter);
        self.assert_envelope();
        Ok(())
    }

    /// Release a finished job, returning its arbiter (for trace
    /// inspection); `None` if the id is not running.
    pub fn release(&mut self, job: u32) -> Option<Box<dyn BudgetArbiter>> {
        let out = self.jobs.remove(&job);
        self.assert_envelope();
        out
    }

    /// One intra-job redistribution tick for `job` from its latest
    /// telemetry, re-asserting the machine invariant afterwards.
    ///
    /// # Errors
    /// [`TelemetryError::Arity`] with `expected = 0` when the job is not
    /// running (an id the partition cannot grant to), or whatever the
    /// job's arbiter rejects about the reports.
    pub fn redistribute(
        &mut self,
        job: u32,
        reports: &[Option<NodeTelemetry>],
    ) -> Result<&[f64], TelemetryError> {
        let Some(arb) = self.jobs.get_mut(&job) else {
            return Err(TelemetryError::Arity {
                expected: 0,
                got: reports.len(),
            });
        };
        arb.redistribute(reports)?;
        self.assert_envelope();
        Ok(self.jobs.get(&job).expect("present above").grants())
    }

    /// Smallest envelope slack over committed budgets, W (equals
    /// [`Self::headroom_w`]; non-negative iff conservation holds).
    pub fn min_slack_w(&self) -> f64 {
        self.headroom_w()
    }

    /// The machine-level conservation invariant, checked after every
    /// mutation: Σ(job budgets) ≤ envelope and Σ(all leaf grants) ≤
    /// envelope.
    ///
    /// # Panics
    /// Panics on a violation — arbiters already maintain Σ(grants) ≤
    /// budget internally, so breaking this is a bug, not an operating
    /// condition.
    pub fn assert_envelope(&self) {
        let committed = self.committed_w();
        assert!(
            committed <= self.envelope_w + EPS_W,
            "committed {} W exceeds the {} W envelope",
            committed,
            self.envelope_w
        );
        let granted = self.granted_w();
        assert!(
            granted <= self.envelope_w + EPS_W,
            "granted {} W exceeds the {} W envelope",
            granted,
            self.envelope_w
        );
    }
}

impl std::fmt::Debug for MachinePartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MachinePartition")
            .field("envelope_w", &self.envelope_w)
            .field("jobs", &self.jobs.keys().collect::<Vec<_>>())
            .field("committed_w", &self.committed_w())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::{ArbiterConfig, Policy, PowerArbiter};

    fn job_arbiter(budget_w: f64, nodes: usize) -> Box<dyn BudgetArbiter> {
        Box::new(PowerArbiter::new(
            ArbiterConfig {
                budget_w,
                min_cap_w: 40.0,
                max_cap_w: 130.0,
                policy: Policy::ProgressFeedback { gain: 1.0 },
            },
            nodes,
        ))
    }

    fn report(compute_s: f64) -> Option<NodeTelemetry> {
        Some(NodeTelemetry::compute_only(
            compute_s,
            1.0 / compute_s,
            80.0,
        ))
    }

    #[test]
    fn admission_is_bounded_by_the_envelope() {
        let mut p = MachinePartition::new(1000.0).unwrap();
        p.admit(1, job_arbiter(400.0, 4)).unwrap();
        p.admit(2, job_arbiter(500.0, 4)).unwrap();
        assert_eq!(p.job_count(), 2);
        assert!((p.headroom_w() - 100.0).abs() < 1e-9);
        // A third job over the headroom is refused, partition untouched.
        let e = p.admit(3, job_arbiter(200.0, 2)).unwrap_err();
        assert!(e.why.contains("100 W"), "{e}");
        assert_eq!(p.job_count(), 2);
        // Exactly fitting is fine.
        p.admit(3, job_arbiter(100.0, 2)).unwrap();
        assert!(p.headroom_w().abs() < 1e-9);
    }

    #[test]
    fn duplicate_ids_are_refused() {
        let mut p = MachinePartition::new(1000.0).unwrap();
        p.admit(7, job_arbiter(100.0, 2)).unwrap();
        assert!(p.admit(7, job_arbiter(100.0, 2)).is_err());
    }

    #[test]
    fn release_frees_headroom_for_the_next_tenant() {
        let mut p = MachinePartition::new(500.0).unwrap();
        p.admit(1, job_arbiter(300.0, 3)).unwrap();
        p.admit(2, job_arbiter(200.0, 2)).unwrap();
        assert!(p.admit(3, job_arbiter(250.0, 2)).is_err());
        let done = p.release(1).expect("job 1 was running");
        assert_eq!(done.node_count(), 3);
        p.admit(3, job_arbiter(250.0, 2)).unwrap();
        assert!(p.release(99).is_none(), "unknown id is a no-op");
    }

    #[test]
    fn redistribution_respects_the_envelope_every_tick() {
        let mut p = MachinePartition::new(700.0).unwrap();
        p.admit(1, job_arbiter(400.0, 4)).unwrap();
        p.admit(2, job_arbiter(300.0, 3)).unwrap();
        for _ in 0..5 {
            p.redistribute(1, &[report(1.0), report(2.0), report(1.5), report(0.5)])
                .unwrap();
            p.redistribute(2, &[report(0.8), report(1.0), report(2.2)])
                .unwrap();
            assert!(p.granted_w() <= p.envelope_w() + 1e-6);
            assert!(p.min_slack_w() >= -1e-6);
        }
        // Grants moved within each job (the intra-job feedback works
        // through the partition).
        let g = p.arbiter(1).unwrap().grants();
        assert!(g[1] > g[3], "critical node funded: {g:?}");
    }

    #[test]
    fn redistribute_unknown_job_is_a_recoverable_error() {
        let mut p = MachinePartition::new(700.0).unwrap();
        let e = p.redistribute(9, &[report(1.0)]).unwrap_err();
        assert!(matches!(e, TelemetryError::Arity { expected: 0, .. }));
    }

    #[test]
    fn invalid_envelope_is_rejected() {
        assert!(MachinePartition::new(0.0).is_err());
        assert!(MachinePartition::new(f64::NAN).is_err());
        assert!(MachinePartition::new(-10.0).is_err());
    }
}
