//! The budget-division strategy objects and the shared redistribution
//! engine.
//!
//! [`Policy`] stays the serde-facing configuration enum; an [`Allocator`]
//! is its executable counterpart: it computes each reporting child's
//! *desired* grant from the latest telemetry, and nothing else. All the
//! invariant-bearing machinery — freezing silent children, clipping
//! frozen grants to restore feasibility, clamping and waterfilling the
//! desired grants into the pool — lives in the crate-private `rebalance`
//! engine, which both the
//! flat [`crate::arbiter::PowerArbiter`] (children = nodes) and the
//! hierarchical [`crate::hierarchy::RackArbiter`] (children = racks) call.
//! One engine, two levels: the sum-≤-budget and per-child clamp
//! invariants cannot drift apart between them.
//!
//! Clamps are per-child slices rather than scalars because the two levels
//! need different shapes: every node of a flat arbiter shares one
//! `[min, max]`, while a rack's sub-budget clamp scales with the rack's
//! size (and can be tightened per rack by the operator).

use crate::arbiter::{NodeTelemetry, Policy};
use crate::error::ConfigError;

/// The executable form of a [`Policy`]: computes desired grants for the
/// reporting children. Construct with [`Policy::allocator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Allocator {
    /// Never move a grant ([`Policy::UniformStatic`]).
    Hold,
    /// Watts in proportion to measured draw
    /// ([`Policy::DemandProportional`]).
    DemandShare,
    /// Proportional feedback on compute times, damped by each child's
    /// compute fraction ([`Policy::ProgressFeedback`]).
    Feedback {
        /// Controller gain (see [`Policy::ProgressFeedback`]).
        gain: f64,
    },
}

impl Policy {
    /// The strategy object executing this policy.
    pub fn allocator(self) -> Allocator {
        match self {
            Policy::UniformStatic => Allocator::Hold,
            Policy::DemandProportional => Allocator::DemandShare,
            Policy::ProgressFeedback { gain } => Allocator::Feedback { gain },
        }
    }
}

impl Allocator {
    /// Desired grants for the reporting children, parallel to `grants`.
    /// `None` means "hold every grant exactly" (the immutable-by-design
    /// uniform-static policy); the engine then skips the waterfill
    /// entirely, so held grants are preserved bit for bit.
    ///
    /// `grants` and `telemetry` carry only the *reporting* children, in
    /// child order; `pool` is the watts available to them after frozen
    /// children kept theirs. `weights`, when present (parallel to
    /// `grants`), gives each child's useful-progress weight — how much
    /// science one unit of its reported `rate` is worth (see
    /// [`registry_progress_weights`]) — and switches the feedback policy
    /// from equalizing iteration *times* to equalizing weighted
    /// *useful-progress rates*.
    pub fn desired(
        &self,
        grants: &[f64],
        telemetry: &[NodeTelemetry],
        pool: f64,
        weights: Option<&[f64]>,
    ) -> Option<Vec<f64>> {
        let mut tmp = Vec::new();
        let mut out = Vec::new();
        self.desired_into(grants, telemetry, pool, weights, &mut tmp, &mut out)
            .then_some(out)
    }

    /// Allocation-free form of [`Allocator::desired`]: writes the desired
    /// grants into `out` (cleared first) and returns whether the policy
    /// produced desires at all (`false` = hold every grant exactly).
    /// `tmp` is caller-owned scratch reused across calls — the hot
    /// redistribution path runs every barrier over thousands of children,
    /// so the per-call `Vec` churn of the allocating form is the first
    /// thing the profiler sees at scale.
    pub(crate) fn desired_into(
        &self,
        grants: &[f64],
        telemetry: &[NodeTelemetry],
        pool: f64,
        weights: Option<&[f64]>,
        tmp: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> bool {
        debug_assert_eq!(grants.len(), telemetry.len(), "strategy input arity");
        tmp.clear();
        out.clear();
        match *self {
            Allocator::Hold => false,
            Allocator::DemandShare => {
                tmp.extend(telemetry.iter().map(|t| t.power_w.max(0.0)));
                let total: f64 = tmp.iter().sum();
                if total <= 0.0 {
                    out.resize(grants.len(), pool / grants.len() as f64);
                } else {
                    out.extend(tmp.iter().map(|d| pool * d / total));
                }
                true
            }
            Allocator::Feedback { gain } if weights.is_some() => {
                // Useful-progress mode: the error term compares each
                // child's *science rate* u = rate × weight against the
                // mean, so a node running a low-yield workload (its rate
                // counts for less science) reads as behind and is funded
                // until yields equalize — the registry's "does the metric
                // relate to science?" semantics, not raw iteration time.
                let w = weights.expect("guarded by the match arm");
                debug_assert_eq!(w.len(), grants.len(), "weight arity");
                tmp.extend(telemetry.iter().zip(w).map(|(t, &wi)| t.rate * wi));
                let mean_u: f64 = tmp.iter().sum::<f64>() / tmp.len() as f64;
                if mean_u <= 0.0 || !mean_u.is_finite() {
                    // Degenerate rates: hold the desires, let the
                    // waterfill renormalize them into the pool.
                    out.extend_from_slice(grants);
                    return true;
                }
                out.extend(
                    grants
                        .iter()
                        .zip(tmp.iter())
                        .zip(telemetry)
                        .map(|((&g, &u), tel)| {
                            // Below the mean useful rate ⇒ positive error
                            // ⇒ more watts; above ⇒ donate. Same
                            // comm-aware damping as the time mode: watts
                            // cannot speed up the wire.
                            let err = (mean_u - u) / mean_u;
                            g * (1.0 + gain * err * tel.compute_fraction())
                        }),
                );
                true
            }
            Allocator::Feedback { gain } => {
                tmp.extend(telemetry.iter().map(|t| t.compute_s.max(0.0)));
                // Per-child compute times under a shared barrier, so the
                // imbalance algebra applies as-is: critical child =
                // longest time. `analyze` also rejects NaNs for us.
                match progress::imbalance::analyze(tmp) {
                    Ok(rep) => {
                        let mean_t: f64 = tmp.iter().sum::<f64>() / tmp.len() as f64;
                        if mean_t <= 0.0 {
                            out.extend_from_slice(grants);
                        } else {
                            out.extend(grants.iter().zip(tmp.iter()).zip(telemetry).map(
                                |((&g, &t), tel)| {
                                    // Behind the barrier mean (the
                                    // critical path) ⇒ positive error
                                    // ⇒ more watts; ahead ⇒ donate.
                                    let err = (t - mean_t) / mean_t;
                                    debug_assert!(
                                        t < tmp[rep.critical_rank] + 1e-6 || err >= -1e-6,
                                        "critical child must not donate"
                                    );
                                    // Comm-aware damping: a child that
                                    // is slow because it is waiting on
                                    // the wire cannot convert watts
                                    // into barrier arrival time, so its
                                    // error (boost *or* donation) is
                                    // scaled by its compute fraction.
                                    g * (1.0 + gain * err * tel.compute_fraction())
                                },
                            ));
                        }
                        true
                    }
                    // Degenerate telemetry (no usable times): keep the
                    // current grants as the desire and let the waterfill
                    // renormalize them into the pool.
                    Err(_) => {
                        out.extend_from_slice(grants);
                        true
                    }
                }
            }
        }
    }
}

/// Reusable working memory for `rebalance`: the gather/scatter buffers
/// for the reporting subset plus the allocator's temporaries. One scratch
/// per arbiter, reused every round — after the first call the engine
/// allocates nothing, which is what keeps a 4096-node redistribution tick
/// flat in the profiler instead of dominated by `Vec` churn.
#[derive(Debug, Clone, Default)]
pub struct RebalanceScratch {
    reporting: Vec<usize>,
    cur: Vec<f64>,
    tel: Vec<NodeTelemetry>,
    r_w: Vec<f64>,
    r_min: Vec<f64>,
    r_max: Vec<f64>,
    desired: Vec<f64>,
    tmp: Vec<f64>,
    filled: Vec<f64>,
}

/// One redistribution round over `grants.len()` children sharing
/// `budget`: freeze silent children at their last grant, clip frozen
/// grants toward their floors if feasibility demands it, ask `alloc` for
/// the reporting children's desired grants, and waterfill those into the
/// remaining pool under the per-child `[min, max]` clamps.
///
/// Postcondition (the level-independent invariant): `Σ grants ≤ budget`
/// and `min[i] ≤ grants[i] ≤ max[i]` for every child, provided they held
/// on entry and `budget ≥ Σ min`.
// One slot per engine input; callers name every argument at the call
// site, so a params struct would add nothing but indirection.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rebalance(
    alloc: Allocator,
    budget: f64,
    grants: &mut [f64],
    min: &[f64],
    max: &[f64],
    reports: &[Option<NodeTelemetry>],
    weights: Option<&[f64]>,
    scratch: &mut RebalanceScratch,
) {
    debug_assert_eq!(grants.len(), reports.len(), "engine input arity");
    debug_assert_eq!(grants.len(), min.len());
    debug_assert_eq!(grants.len(), max.len());
    let s = scratch;
    s.reporting.clear();
    s.reporting
        .extend((0..reports.len()).filter(|&i| reports[i].is_some()));
    if s.reporting.is_empty() {
        return;
    }
    // The frozen (silent) set is the complement of the reporting set; one
    // linear pass over `reports` replaces the old per-child membership
    // probe, which made every redistribution tick O(n²) — ~16M probes per
    // tick at 4096 nodes.
    let any_frozen = s.reporting.len() < grants.len();
    let frozen_sum = |grants: &[f64]| -> f64 {
        reports
            .iter()
            .zip(grants.iter())
            .filter(|(r, _)| r.is_none())
            .map(|(_, &g)| g)
            .sum()
    };
    let mut pool = budget - frozen_sum(grants);

    // A silent child keeps its grant only while the rest can still meet
    // their floors; otherwise frozen grants are clipped toward the floor
    // to restore feasibility.
    let need = s.reporting.iter().map(|&i| min[i]).sum::<f64>() - pool;
    if need > 0.0 && any_frozen {
        let available: f64 = reports
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_none())
            .map(|(i, _)| grants[i] - min[i])
            .sum();
        let scale = if available > 0.0 {
            (1.0 - need / available).max(0.0)
        } else {
            0.0
        };
        for (i, r) in reports.iter().enumerate() {
            if r.is_none() {
                grants[i] = min[i] + (grants[i] - min[i]) * scale;
            }
        }
        pool = budget - frozen_sum(grants);
    }

    s.cur.clear();
    s.cur.extend(s.reporting.iter().map(|&i| grants[i]));
    s.tel.clear();
    s.tel
        .extend(s.reporting.iter().map(|&i| reports[i].expect("reporting")));
    let r_w: Option<&[f64]> = match weights {
        Some(w) => {
            s.r_w.clear();
            s.r_w.extend(s.reporting.iter().map(|&i| w[i]));
            Some(&s.r_w)
        }
        None => None,
    };
    if !alloc.desired_into(&s.cur, &s.tel, pool, r_w, &mut s.tmp, &mut s.desired) {
        return; // grants are immutable by design
    }
    s.r_min.clear();
    s.r_min.extend(s.reporting.iter().map(|&i| min[i]));
    s.r_max.clear();
    s.r_max.extend(s.reporting.iter().map(|&i| max[i]));
    waterfill_into(&s.desired, pool, &s.r_min, &s.r_max, &mut s.filled);
    for (&i, &g) in s.reporting.iter().zip(&s.filled) {
        grants[i] = g;
    }
}

/// Deterministic clamped proportional fill: clamp `desired` into the
/// per-child `[min, max]` ranges, then scale the above-floor portions
/// down to fit `pool`, or push leftover pool into the remaining headroom
/// (proportionally, so nobody exceeds its max). The result always
/// satisfies Σ ≤ pool and the per-child clamps, provided `pool ≥ Σ min`.
///
/// A single child is special-cased to receive exactly
/// `pool.clamp(min, max)`: the scaling algebra would only reconstruct
/// that value through rounding, and the exactness is what keeps a
/// one-rack arbiter tree bitwise identical to the flat arbiter.
pub(crate) fn waterfill(desired: &[f64], pool: f64, min: &[f64], max: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(desired.len());
    waterfill_into(desired, pool, min, max, &mut out);
    out
}

/// Allocation-free form of `waterfill`: the result is written into
/// `out` (cleared first), bit-identical to the allocating form.
pub(crate) fn waterfill_into(
    desired: &[f64],
    pool: f64,
    min: &[f64],
    max: &[f64],
    out: &mut Vec<f64>,
) {
    debug_assert_eq!(desired.len(), min.len());
    debug_assert_eq!(desired.len(), max.len());
    out.clear();
    if let (&[_], &[lo], &[hi]) = (desired, min, max) {
        out.push(pool.clamp(lo, hi));
        return;
    }
    out.extend(
        desired
            .iter()
            .zip(min.iter().zip(max))
            .map(|(d, (&lo, &hi))| d.clamp(lo, hi)),
    );
    let sum: f64 = out.iter().sum();
    if sum > pool {
        // Scale the above-floor portion to exactly fit the pool.
        let above: f64 = out.iter().zip(min).map(|(g, &lo)| g - lo).sum();
        let target = (pool - min.iter().sum::<f64>()).max(0.0);
        let s = if above > 0.0 { target / above } else { 0.0 };
        for (g, &lo) in out.iter_mut().zip(min) {
            *g = lo + (*g - lo) * s;
        }
    } else {
        // Distribute the leftover into headroom, proportionally.
        let leftover = pool - sum;
        let headroom: f64 = out.iter().zip(max).map(|(g, &hi)| hi - g).sum();
        if leftover > 0.0 && headroom > 0.0 {
            let s = (leftover / headroom).min(1.0);
            for (g, &hi) in out.iter_mut().zip(max) {
                *g += (hi - *g) * s;
            }
        }
    }
}

/// Incremental waterfill: a persistent solver over a fixed child set that
/// caches each child's clamped desire and the running sums the fill
/// algebra needs, so a re-solve after `d` desire updates costs
/// `O(d)` sum maintenance plus one `O(n)` output write — no per-call
/// clamping or re-summation over clean children. Clean children (no
/// [`IncrementalFill::update`] since the last solve) reuse their cached
/// clamped desire untouched.
///
/// The running sums are maintained with Neumaier-compensated additions,
/// so a long stream of incremental updates agrees with a fresh
/// `waterfill` over the same desires to well under the `1e-9` relative
/// tolerance the differential suite pins (bit-identical in the common
/// all-clean and single-child cases). [`crate::hierarchy::RackArbiter`]
/// runs this at the rack level: telemetry deltas mark dirty racks, and
/// only their desires are re-clamped and re-summed each outer epoch.
#[derive(Debug, Clone)]
pub struct IncrementalFill {
    min: Vec<f64>,
    max: Vec<f64>,
    /// Cached clamped desires, one per child.
    clamped: Vec<f64>,
    /// Neumaier-compensated running Σ clamped.
    sum: f64,
    comp: f64,
    sum_min: f64,
    sum_max: f64,
    out: Vec<f64>,
}

impl IncrementalFill {
    /// A solver over children clamped to `[min[i], max[i]]`, with every
    /// desire initially at its floor.
    ///
    /// # Panics
    /// Panics on arity mismatch or an empty child set.
    pub fn new(min: &[f64], max: &[f64]) -> Self {
        assert_eq!(min.len(), max.len(), "one clamp pair per child");
        assert!(!min.is_empty(), "need at least one child");
        Self {
            clamped: min.to_vec(),
            sum: min.iter().sum(),
            comp: 0.0,
            sum_min: min.iter().sum(),
            sum_max: max.iter().sum(),
            out: vec![0.0; min.len()],
            min: min.to_vec(),
            max: max.to_vec(),
        }
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        self.clamped.len()
    }

    /// Whether the solver has no children (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.clamped.is_empty()
    }

    /// The cached clamped desires (parallel to the child set).
    pub fn clamped(&self) -> &[f64] {
        &self.clamped
    }

    /// Mark child `i` dirty with a new desire: clamp it into the child's
    /// range and fold the delta into the running sum. Clean children cost
    /// nothing — only call this for children whose telemetry moved.
    pub fn update(&mut self, i: usize, desired: f64) {
        let c = desired.clamp(self.min[i], self.max[i]);
        let old = std::mem::replace(&mut self.clamped[i], c);
        // Neumaier-compensated add of the delta: plain `sum += c - old`
        // drifts linearly with update count, which would eat the 1e-9
        // differential budget on long runs.
        let x = c - old;
        let t = self.sum + x;
        self.comp += if self.sum.abs() >= x.abs() {
            (self.sum - t) + x
        } else {
            (x - t) + self.sum
        };
        self.sum = t;
    }

    /// Tighten child `i`'s ceiling (a thermal clamp arriving at run
    /// time). The cached desire is re-clamped into the new range.
    pub fn tighten_max(&mut self, i: usize, ceiling: f64) {
        let hi = ceiling.clamp(self.min[i], self.max[i]);
        if hi < self.max[i] {
            self.sum_max += hi - self.max[i];
            self.max[i] = hi;
            self.update(i, self.clamped[i]);
        }
    }

    /// Solve the fill for `pool` watts from the cached clamped desires:
    /// the same clamped-proportional algebra as `waterfill`, driven by
    /// the cached sums. Returns the per-child grants.
    pub fn solve(&mut self, pool: f64) -> &[f64] {
        let n = self.clamped.len();
        if n == 1 {
            // Bit-identical to the full solve's single-child special case.
            self.out[0] = pool.clamp(self.min[0], self.max[0]);
            return &self.out;
        }
        let sum = self.sum + self.comp;
        if sum > pool {
            let above = sum - self.sum_min;
            let target = (pool - self.sum_min).max(0.0);
            let s = if above > 0.0 { target / above } else { 0.0 };
            for i in 0..n {
                self.out[i] = self.min[i] + (self.clamped[i] - self.min[i]) * s;
            }
        } else {
            let leftover = pool - sum;
            let headroom = self.sum_max - sum;
            if leftover > 0.0 && headroom > 0.0 {
                let s = (leftover / headroom).min(1.0);
                for i in 0..n {
                    self.out[i] = self.clamped[i] + (self.max[i] - self.clamped[i]) * s;
                }
            } else {
                self.out.copy_from_slice(&self.clamped);
            }
        }
        &self.out
    }

    /// The reference solve over the same cached desires: a fresh
    /// `waterfill` with no cached sums. The differential suite pins
    /// [`IncrementalFill::solve`] to this within 1e-9 relative.
    pub fn solve_full(&self, pool: f64) -> Vec<f64> {
        waterfill(&self.clamped, pool, &self.min, &self.max)
    }
}

/// The useful-progress weight of one registry application: how much
/// science a unit of its online rate metric is worth, derived from the
/// paper's Table IV/V semantics. An app with no online metric at all
/// (the paper's category-3 applications) is worth 0.25 — its "rate" is a
/// proxy at best; an app whose metric does not relate to science (AMG's
/// CG iterations, CANDLE's epochs) is worth 0.5; an app whose metric is
/// the science (LAMMPS atom-steps, QMCPACK blocks) is worth 1.0.
pub fn progress_weight(rec: &progress::registry::AppRecord) -> f64 {
    if rec.metric.is_none() {
        0.25
    } else if rec.answers.relates_to_science == Some(true) {
        1.0
    } else {
        0.5
    }
}

/// Per-node useful-progress weights for a cluster running `apps` (one
/// registry application name per node, case-insensitive), for
/// [`crate::PowerArbiter::with_progress_weights`]. Unknown names are a
/// [`ConfigError`] naming the offending entry.
pub fn registry_progress_weights(apps: &[&str]) -> Result<Vec<f64>, ConfigError> {
    apps.iter()
        .map(|name| {
            progress::registry::lookup(name)
                .map(progress_weight)
                .ok_or_else(|| {
                    ConfigError::new(
                        "registry_progress_weights.apps",
                        format!("application {name:?} is not in the paper's registry"),
                    )
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, v: f64) -> Vec<f64> {
        vec![v; n]
    }

    #[test]
    fn waterfill_fits_pool_and_clamps() {
        let out = waterfill(
            &[500.0, 10.0, 80.0],
            240.0,
            &uniform(3, 40.0),
            &uniform(3, 120.0),
        );
        let sum: f64 = out.iter().sum();
        assert!(sum <= 240.0 + 1e-9, "{out:?}");
        for g in &out {
            assert!((40.0..=120.0).contains(g), "{out:?}");
        }
        // The starved entry sits at the floor, the greedy one above it.
        assert!(out[0] > out[1]);
    }

    #[test]
    fn waterfill_spreads_leftover_without_exceeding_max() {
        let out = waterfill(&[50.0, 50.0], 400.0, &uniform(2, 40.0), &uniform(2, 120.0));
        for g in &out {
            assert!(*g <= 120.0 + 1e-9);
        }
        // Headroom is funded evenly from the oversized pool.
        assert!((out[0] - 120.0).abs() < 1e-9 && (out[1] - 120.0).abs() < 1e-9);
    }

    #[test]
    fn waterfill_honours_per_child_clamps() {
        // Child 1 has a private ceiling well under the shared one.
        let out = waterfill(&[200.0, 200.0], 260.0, &[40.0, 40.0], &[200.0, 60.0]);
        assert!(out[1] <= 60.0 + 1e-9, "{out:?}");
        assert!(out.iter().sum::<f64>() <= 260.0 + 1e-9);
    }

    #[test]
    fn single_child_takes_exactly_the_clamped_pool() {
        let out = waterfill(&[73.2], 500.0, &[40.0], &[130.0]);
        assert_eq!(out[0].to_bits(), 130.0f64.to_bits());
        let out = waterfill(&[999.0], 88.5, &[40.0], &[130.0]);
        assert_eq!(out[0].to_bits(), 88.5f64.to_bits());
    }

    #[test]
    fn hold_allocator_never_produces_desires() {
        let t = NodeTelemetry::compute_only(1.0, 1.0, 90.0);
        assert_eq!(Allocator::Hold.desired(&[80.0], &[t], 100.0, None), None);
    }

    #[test]
    fn demand_share_is_proportional_and_survives_zero_demand() {
        let alloc = Policy::DemandProportional.allocator();
        let tel = [
            NodeTelemetry::compute_only(1.0, 1.0, 120.0),
            NodeTelemetry::compute_only(1.0, 1.0, 60.0),
        ];
        let d = alloc
            .desired(&[80.0, 80.0], &tel, 180.0, None)
            .expect("moves");
        assert!((d[0] - 120.0).abs() < 1e-9 && (d[1] - 60.0).abs() < 1e-9);
        let dark = [
            NodeTelemetry::compute_only(1.0, 1.0, 0.0),
            NodeTelemetry::compute_only(1.0, 1.0, 0.0),
        ];
        let d = alloc
            .desired(&[80.0, 80.0], &dark, 180.0, None)
            .expect("moves");
        assert_eq!(d, vec![90.0, 90.0]);
    }

    #[test]
    fn feedback_boosts_the_critical_child() {
        let alloc = Policy::ProgressFeedback { gain: 1.0 }.allocator();
        let tel = [
            NodeTelemetry::compute_only(0.5, 2.0, 90.0),
            NodeTelemetry::compute_only(1.5, 1.0 / 1.5, 90.0),
        ];
        let d = alloc
            .desired(&[100.0, 100.0], &tel, 200.0, None)
            .expect("moves");
        assert!(d[1] > 100.0 && d[0] < 100.0, "{d:?}");
    }

    #[test]
    fn weighted_feedback_funds_the_low_yield_child() {
        // Equal iteration times and rates: the time mode sees perfect
        // balance and holds. With weights, the 0.5-weight child's science
        // rate is half the mean, so it reads as behind and is funded.
        let alloc = Policy::ProgressFeedback { gain: 1.0 }.allocator();
        let tel = [
            NodeTelemetry::compute_only(1.0, 1.0, 90.0),
            NodeTelemetry::compute_only(1.0, 1.0, 90.0),
        ];
        let flat = alloc
            .desired(&[100.0, 100.0], &tel, 200.0, None)
            .expect("moves");
        assert!(
            (flat[0] - flat[1]).abs() < 1e-9,
            "time mode holds: {flat:?}"
        );
        let d = alloc
            .desired(&[100.0, 100.0], &tel, 200.0, Some(&[1.0, 0.5]))
            .expect("moves");
        assert!(d[1] > 100.0 && d[0] < 100.0, "{d:?}");
    }

    #[test]
    fn registry_weights_follow_the_table_iv_semantics() {
        // LAMMPS's metric is the science (1.0); AMG's CG iterations are
        // not (0.5); URBAN has no online metric at all (0.25).
        let w = registry_progress_weights(&["LAMMPS", "AMG", "QMCPACK", "URBAN"]).unwrap();
        assert_eq!(w, vec![1.0, 0.5, 1.0, 0.25]);
        let e = registry_progress_weights(&["NoSuchApp"]).unwrap_err();
        assert!(e.why.contains("NoSuchApp"), "{e}");
    }

    #[test]
    fn engine_freezes_silent_children_and_keeps_the_sum_bounded() {
        let mut grants = vec![100.0, 100.0, 100.0];
        let min = uniform(3, 40.0);
        let max = uniform(3, 130.0);
        let t = |s: f64| Some(NodeTelemetry::compute_only(s, 1.0 / s, 90.0));
        rebalance(
            Policy::ProgressFeedback { gain: 1.0 }.allocator(),
            300.0,
            &mut grants,
            &min,
            &max,
            &[t(1.0), None, t(2.0)],
            None,
            &mut RebalanceScratch::default(),
        );
        assert_eq!(grants[1], 100.0, "silent child must freeze");
        assert!(grants.iter().sum::<f64>() <= 300.0 + 1e-6);
        assert!(grants[2] > grants[0], "critical child earns more");
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_rounds() {
        // One shared scratch across rounds must give exactly the grants a
        // fresh scratch would: the buffers carry no state between calls.
        let t = |s: f64| Some(NodeTelemetry::compute_only(s, 1.0 / s, 90.0));
        let streams = [
            [t(1.0), t(2.0), None],
            [t(0.5), None, t(1.5)],
            [t(1.2), t(1.2), t(1.2)],
        ];
        let alloc = Policy::ProgressFeedback { gain: 1.0 }.allocator();
        let (min, max) = (uniform(3, 40.0), uniform(3, 130.0));
        let mut shared = vec![100.0; 3];
        let mut scratch = RebalanceScratch::default();
        let mut fresh = vec![100.0; 3];
        for reports in &streams {
            rebalance(
                alloc,
                300.0,
                &mut shared,
                &min,
                &max,
                reports,
                None,
                &mut scratch,
            );
            rebalance(
                alloc,
                300.0,
                &mut fresh,
                &min,
                &max,
                reports,
                None,
                &mut RebalanceScratch::default(),
            );
        }
        for (a, b) in shared.iter().zip(&fresh) {
            assert_eq!(a.to_bits(), b.to_bits(), "{shared:?} vs {fresh:?}");
        }
    }

    #[test]
    fn incremental_fill_matches_the_full_solve() {
        let min = uniform(4, 40.0);
        let max = uniform(4, 130.0);
        let mut fill = IncrementalFill::new(&min, &max);
        for (i, d) in [(0, 90.0), (1, 150.0), (2, 10.0), (3, 77.5)] {
            fill.update(i, d);
        }
        for pool in [200.0, 320.0, 600.0] {
            let full = fill.solve_full(pool);
            let inc = fill.solve(pool).to_vec();
            for (a, b) in inc.iter().zip(&full) {
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                    "pool {pool}: {inc:?} vs {full:?}"
                );
            }
            let total: f64 = inc.iter().sum();
            assert!(total <= pool + 1e-6, "Σ {total} over pool {pool}");
        }
    }

    #[test]
    fn incremental_fill_clean_children_reuse_cached_desires() {
        let mut fill = IncrementalFill::new(&uniform(3, 40.0), &uniform(3, 130.0));
        fill.update(0, 80.0);
        fill.update(1, 90.0);
        fill.update(2, 100.0);
        let before = fill.solve(400.0).to_vec();
        // Only child 1 goes dirty; 0 and 2 keep their cached desires.
        fill.update(1, 90.0);
        let after = fill.solve(400.0).to_vec();
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.to_bits(), b.to_bits(), "clean re-solve must hold");
        }
        assert_eq!(fill.clamped(), &[80.0, 90.0, 100.0]);
    }

    #[test]
    fn incremental_fill_single_child_is_bit_exact() {
        let mut fill = IncrementalFill::new(&[40.0], &[130.0]);
        fill.update(0, 999.0);
        assert_eq!(fill.solve(88.5)[0].to_bits(), 88.5f64.to_bits());
        assert_eq!(fill.solve(500.0)[0].to_bits(), 130.0f64.to_bits());
    }

    #[test]
    fn incremental_fill_thermal_tighten_reclamps_the_cache() {
        let mut fill = IncrementalFill::new(&uniform(2, 40.0), &uniform(2, 130.0));
        fill.update(0, 120.0);
        fill.update(1, 120.0);
        fill.tighten_max(0, 90.0);
        let g = fill.solve(400.0).to_vec();
        assert!(g[0] <= 90.0 + 1e-9, "tightened ceiling must hold: {g:?}");
        let full = fill.solve_full(400.0);
        for (a, b) in g.iter().zip(&full) {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "{g:?} vs {full:?}"
            );
        }
    }
}
