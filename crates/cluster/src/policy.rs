//! The budget-division strategy objects and the shared redistribution
//! engine.
//!
//! [`Policy`] stays the serde-facing configuration enum; an [`Allocator`]
//! is its executable counterpart: it computes each reporting child's
//! *desired* grant from the latest telemetry, and nothing else. All the
//! invariant-bearing machinery — freezing silent children, clipping
//! frozen grants to restore feasibility, clamping and waterfilling the
//! desired grants into the pool — lives in the crate-private `rebalance`
//! engine, which both the
//! flat [`crate::arbiter::PowerArbiter`] (children = nodes) and the
//! hierarchical [`crate::hierarchy::RackArbiter`] (children = racks) call.
//! One engine, two levels: the sum-≤-budget and per-child clamp
//! invariants cannot drift apart between them.
//!
//! Clamps are per-child slices rather than scalars because the two levels
//! need different shapes: every node of a flat arbiter shares one
//! `[min, max]`, while a rack's sub-budget clamp scales with the rack's
//! size (and can be tightened per rack by the operator).

use crate::arbiter::{NodeTelemetry, Policy};
use crate::error::ConfigError;

/// The executable form of a [`Policy`]: computes desired grants for the
/// reporting children. Construct with [`Policy::allocator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Allocator {
    /// Never move a grant ([`Policy::UniformStatic`]).
    Hold,
    /// Watts in proportion to measured draw
    /// ([`Policy::DemandProportional`]).
    DemandShare,
    /// Proportional feedback on compute times, damped by each child's
    /// compute fraction ([`Policy::ProgressFeedback`]).
    Feedback {
        /// Controller gain (see [`Policy::ProgressFeedback`]).
        gain: f64,
    },
}

impl Policy {
    /// The strategy object executing this policy.
    pub fn allocator(self) -> Allocator {
        match self {
            Policy::UniformStatic => Allocator::Hold,
            Policy::DemandProportional => Allocator::DemandShare,
            Policy::ProgressFeedback { gain } => Allocator::Feedback { gain },
        }
    }
}

impl Allocator {
    /// Desired grants for the reporting children, parallel to `grants`.
    /// `None` means "hold every grant exactly" (the immutable-by-design
    /// uniform-static policy); the engine then skips the waterfill
    /// entirely, so held grants are preserved bit for bit.
    ///
    /// `grants` and `telemetry` carry only the *reporting* children, in
    /// child order; `pool` is the watts available to them after frozen
    /// children kept theirs. `weights`, when present (parallel to
    /// `grants`), gives each child's useful-progress weight — how much
    /// science one unit of its reported `rate` is worth (see
    /// [`registry_progress_weights`]) — and switches the feedback policy
    /// from equalizing iteration *times* to equalizing weighted
    /// *useful-progress rates*.
    pub fn desired(
        &self,
        grants: &[f64],
        telemetry: &[NodeTelemetry],
        pool: f64,
        weights: Option<&[f64]>,
    ) -> Option<Vec<f64>> {
        debug_assert_eq!(grants.len(), telemetry.len(), "strategy input arity");
        match *self {
            Allocator::Hold => None,
            Allocator::DemandShare => {
                let demand: Vec<f64> = telemetry.iter().map(|t| t.power_w.max(0.0)).collect();
                let total: f64 = demand.iter().sum();
                if total <= 0.0 {
                    Some(vec![pool / grants.len() as f64; grants.len()])
                } else {
                    Some(demand.iter().map(|d| pool * d / total).collect())
                }
            }
            Allocator::Feedback { gain } if weights.is_some() => {
                // Useful-progress mode: the error term compares each
                // child's *science rate* u = rate × weight against the
                // mean, so a node running a low-yield workload (its rate
                // counts for less science) reads as behind and is funded
                // until yields equalize — the registry's "does the metric
                // relate to science?" semantics, not raw iteration time.
                let w = weights.expect("guarded by the match arm");
                debug_assert_eq!(w.len(), grants.len(), "weight arity");
                let useful: Vec<f64> = telemetry
                    .iter()
                    .zip(w)
                    .map(|(t, &wi)| t.rate * wi)
                    .collect();
                let mean_u: f64 = useful.iter().sum::<f64>() / useful.len() as f64;
                if mean_u <= 0.0 || !mean_u.is_finite() {
                    // Degenerate rates: hold the desires, let the
                    // waterfill renormalize them into the pool.
                    return Some(grants.to_vec());
                }
                Some(
                    grants
                        .iter()
                        .zip(&useful)
                        .zip(telemetry)
                        .map(|((&g, &u), tel)| {
                            // Below the mean useful rate ⇒ positive error
                            // ⇒ more watts; above ⇒ donate. Same
                            // comm-aware damping as the time mode: watts
                            // cannot speed up the wire.
                            let err = (mean_u - u) / mean_u;
                            g * (1.0 + gain * err * tel.compute_fraction())
                        })
                        .collect(),
                )
            }
            Allocator::Feedback { gain } => {
                let times: Vec<f64> = telemetry.iter().map(|t| t.compute_s.max(0.0)).collect();
                // Per-child compute times under a shared barrier, so the
                // imbalance algebra applies as-is: critical child =
                // longest time. `analyze` also rejects NaNs for us.
                match progress::imbalance::analyze(&times) {
                    Ok(rep) => {
                        let mean_t: f64 = times.iter().sum::<f64>() / times.len() as f64;
                        if mean_t <= 0.0 {
                            Some(grants.to_vec())
                        } else {
                            Some(
                                grants
                                    .iter()
                                    .zip(&times)
                                    .zip(telemetry)
                                    .map(|((&g, &t), tel)| {
                                        // Behind the barrier mean (the
                                        // critical path) ⇒ positive error
                                        // ⇒ more watts; ahead ⇒ donate.
                                        let err = (t - mean_t) / mean_t;
                                        debug_assert!(
                                            t < times[rep.critical_rank] + 1e-6 || err >= -1e-6,
                                            "critical child must not donate"
                                        );
                                        // Comm-aware damping: a child that
                                        // is slow because it is waiting on
                                        // the wire cannot convert watts
                                        // into barrier arrival time, so its
                                        // error (boost *or* donation) is
                                        // scaled by its compute fraction.
                                        g * (1.0 + gain * err * tel.compute_fraction())
                                    })
                                    .collect(),
                            )
                        }
                    }
                    // Degenerate telemetry (no usable times): keep the
                    // current grants as the desire and let the waterfill
                    // renormalize them into the pool.
                    Err(_) => Some(grants.to_vec()),
                }
            }
        }
    }
}

/// One redistribution round over `grants.len()` children sharing
/// `budget`: freeze silent children at their last grant, clip frozen
/// grants toward their floors if feasibility demands it, ask `alloc` for
/// the reporting children's desired grants, and waterfill those into the
/// remaining pool under the per-child `[min, max]` clamps.
///
/// Postcondition (the level-independent invariant): `Σ grants ≤ budget`
/// and `min[i] ≤ grants[i] ≤ max[i]` for every child, provided they held
/// on entry and `budget ≥ Σ min`.
pub(crate) fn rebalance(
    alloc: Allocator,
    budget: f64,
    grants: &mut [f64],
    min: &[f64],
    max: &[f64],
    reports: &[Option<NodeTelemetry>],
    weights: Option<&[f64]>,
) {
    debug_assert_eq!(grants.len(), reports.len(), "engine input arity");
    debug_assert_eq!(grants.len(), min.len());
    debug_assert_eq!(grants.len(), max.len());
    let reporting: Vec<usize> = (0..reports.len())
        .filter(|&i| reports[i].is_some())
        .collect();
    if reporting.is_empty() {
        return;
    }
    let frozen: Vec<usize> = (0..grants.len())
        .filter(|i| !reporting.contains(i))
        .collect();
    let mut pool = budget - frozen.iter().map(|&i| grants[i]).sum::<f64>();

    // A silent child keeps its grant only while the rest can still meet
    // their floors; otherwise frozen grants are clipped toward the floor
    // to restore feasibility.
    let need = reporting.iter().map(|&i| min[i]).sum::<f64>() - pool;
    if need > 0.0 && !frozen.is_empty() {
        let available: f64 = frozen.iter().map(|&i| grants[i] - min[i]).sum();
        let scale = if available > 0.0 {
            (1.0 - need / available).max(0.0)
        } else {
            0.0
        };
        for &i in &frozen {
            grants[i] = min[i] + (grants[i] - min[i]) * scale;
        }
        pool = budget - frozen.iter().map(|&i| grants[i]).sum::<f64>();
    }

    let cur: Vec<f64> = reporting.iter().map(|&i| grants[i]).collect();
    let tel: Vec<NodeTelemetry> = reporting
        .iter()
        .map(|&i| reports[i].expect("reporting"))
        .collect();
    let r_w: Option<Vec<f64>> = weights.map(|w| reporting.iter().map(|&i| w[i]).collect());
    let Some(desired) = alloc.desired(&cur, &tel, pool, r_w.as_deref()) else {
        return; // grants are immutable by design
    };
    let r_min: Vec<f64> = reporting.iter().map(|&i| min[i]).collect();
    let r_max: Vec<f64> = reporting.iter().map(|&i| max[i]).collect();
    let filled = waterfill(&desired, pool, &r_min, &r_max);
    for (&i, g) in reporting.iter().zip(filled) {
        grants[i] = g;
    }
}

/// Deterministic clamped proportional fill: clamp `desired` into the
/// per-child `[min, max]` ranges, then scale the above-floor portions
/// down to fit `pool`, or push leftover pool into the remaining headroom
/// (proportionally, so nobody exceeds its max). The result always
/// satisfies Σ ≤ pool and the per-child clamps, provided `pool ≥ Σ min`.
///
/// A single child is special-cased to receive exactly
/// `pool.clamp(min, max)`: the scaling algebra would only reconstruct
/// that value through rounding, and the exactness is what keeps a
/// one-rack arbiter tree bitwise identical to the flat arbiter.
pub(crate) fn waterfill(desired: &[f64], pool: f64, min: &[f64], max: &[f64]) -> Vec<f64> {
    debug_assert_eq!(desired.len(), min.len());
    debug_assert_eq!(desired.len(), max.len());
    if let (&[_], &[lo], &[hi]) = (desired, min, max) {
        return vec![pool.clamp(lo, hi)];
    }
    let mut out: Vec<f64> = desired
        .iter()
        .zip(min.iter().zip(max))
        .map(|(d, (&lo, &hi))| d.clamp(lo, hi))
        .collect();
    let sum: f64 = out.iter().sum();
    if sum > pool {
        // Scale the above-floor portion to exactly fit the pool.
        let above: f64 = out.iter().zip(min).map(|(g, &lo)| g - lo).sum();
        let target = (pool - min.iter().sum::<f64>()).max(0.0);
        let s = if above > 0.0 { target / above } else { 0.0 };
        for (g, &lo) in out.iter_mut().zip(min) {
            *g = lo + (*g - lo) * s;
        }
    } else {
        // Distribute the leftover into headroom, proportionally.
        let leftover = pool - sum;
        let headroom: f64 = out.iter().zip(max).map(|(g, &hi)| hi - g).sum();
        if leftover > 0.0 && headroom > 0.0 {
            let s = (leftover / headroom).min(1.0);
            for (g, &hi) in out.iter_mut().zip(max) {
                *g += (hi - *g) * s;
            }
        }
    }
    out
}

/// The useful-progress weight of one registry application: how much
/// science a unit of its online rate metric is worth, derived from the
/// paper's Table IV/V semantics. An app with no online metric at all
/// (the paper's category-3 applications) is worth 0.25 — its "rate" is a
/// proxy at best; an app whose metric does not relate to science (AMG's
/// CG iterations, CANDLE's epochs) is worth 0.5; an app whose metric is
/// the science (LAMMPS atom-steps, QMCPACK blocks) is worth 1.0.
pub fn progress_weight(rec: &progress::registry::AppRecord) -> f64 {
    if rec.metric.is_none() {
        0.25
    } else if rec.answers.relates_to_science == Some(true) {
        1.0
    } else {
        0.5
    }
}

/// Per-node useful-progress weights for a cluster running `apps` (one
/// registry application name per node, case-insensitive), for
/// [`crate::PowerArbiter::with_progress_weights`]. Unknown names are a
/// [`ConfigError`] naming the offending entry.
pub fn registry_progress_weights(apps: &[&str]) -> Result<Vec<f64>, ConfigError> {
    apps.iter()
        .map(|name| {
            progress::registry::lookup(name)
                .map(progress_weight)
                .ok_or_else(|| {
                    ConfigError::new(
                        "registry_progress_weights.apps",
                        format!("application {name:?} is not in the paper's registry"),
                    )
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, v: f64) -> Vec<f64> {
        vec![v; n]
    }

    #[test]
    fn waterfill_fits_pool_and_clamps() {
        let out = waterfill(
            &[500.0, 10.0, 80.0],
            240.0,
            &uniform(3, 40.0),
            &uniform(3, 120.0),
        );
        let sum: f64 = out.iter().sum();
        assert!(sum <= 240.0 + 1e-9, "{out:?}");
        for g in &out {
            assert!((40.0..=120.0).contains(g), "{out:?}");
        }
        // The starved entry sits at the floor, the greedy one above it.
        assert!(out[0] > out[1]);
    }

    #[test]
    fn waterfill_spreads_leftover_without_exceeding_max() {
        let out = waterfill(&[50.0, 50.0], 400.0, &uniform(2, 40.0), &uniform(2, 120.0));
        for g in &out {
            assert!(*g <= 120.0 + 1e-9);
        }
        // Headroom is funded evenly from the oversized pool.
        assert!((out[0] - 120.0).abs() < 1e-9 && (out[1] - 120.0).abs() < 1e-9);
    }

    #[test]
    fn waterfill_honours_per_child_clamps() {
        // Child 1 has a private ceiling well under the shared one.
        let out = waterfill(&[200.0, 200.0], 260.0, &[40.0, 40.0], &[200.0, 60.0]);
        assert!(out[1] <= 60.0 + 1e-9, "{out:?}");
        assert!(out.iter().sum::<f64>() <= 260.0 + 1e-9);
    }

    #[test]
    fn single_child_takes_exactly_the_clamped_pool() {
        let out = waterfill(&[73.2], 500.0, &[40.0], &[130.0]);
        assert_eq!(out[0].to_bits(), 130.0f64.to_bits());
        let out = waterfill(&[999.0], 88.5, &[40.0], &[130.0]);
        assert_eq!(out[0].to_bits(), 88.5f64.to_bits());
    }

    #[test]
    fn hold_allocator_never_produces_desires() {
        let t = NodeTelemetry::compute_only(1.0, 1.0, 90.0);
        assert_eq!(Allocator::Hold.desired(&[80.0], &[t], 100.0, None), None);
    }

    #[test]
    fn demand_share_is_proportional_and_survives_zero_demand() {
        let alloc = Policy::DemandProportional.allocator();
        let tel = [
            NodeTelemetry::compute_only(1.0, 1.0, 120.0),
            NodeTelemetry::compute_only(1.0, 1.0, 60.0),
        ];
        let d = alloc
            .desired(&[80.0, 80.0], &tel, 180.0, None)
            .expect("moves");
        assert!((d[0] - 120.0).abs() < 1e-9 && (d[1] - 60.0).abs() < 1e-9);
        let dark = [
            NodeTelemetry::compute_only(1.0, 1.0, 0.0),
            NodeTelemetry::compute_only(1.0, 1.0, 0.0),
        ];
        let d = alloc
            .desired(&[80.0, 80.0], &dark, 180.0, None)
            .expect("moves");
        assert_eq!(d, vec![90.0, 90.0]);
    }

    #[test]
    fn feedback_boosts_the_critical_child() {
        let alloc = Policy::ProgressFeedback { gain: 1.0 }.allocator();
        let tel = [
            NodeTelemetry::compute_only(0.5, 2.0, 90.0),
            NodeTelemetry::compute_only(1.5, 1.0 / 1.5, 90.0),
        ];
        let d = alloc
            .desired(&[100.0, 100.0], &tel, 200.0, None)
            .expect("moves");
        assert!(d[1] > 100.0 && d[0] < 100.0, "{d:?}");
    }

    #[test]
    fn weighted_feedback_funds_the_low_yield_child() {
        // Equal iteration times and rates: the time mode sees perfect
        // balance and holds. With weights, the 0.5-weight child's science
        // rate is half the mean, so it reads as behind and is funded.
        let alloc = Policy::ProgressFeedback { gain: 1.0 }.allocator();
        let tel = [
            NodeTelemetry::compute_only(1.0, 1.0, 90.0),
            NodeTelemetry::compute_only(1.0, 1.0, 90.0),
        ];
        let flat = alloc
            .desired(&[100.0, 100.0], &tel, 200.0, None)
            .expect("moves");
        assert!(
            (flat[0] - flat[1]).abs() < 1e-9,
            "time mode holds: {flat:?}"
        );
        let d = alloc
            .desired(&[100.0, 100.0], &tel, 200.0, Some(&[1.0, 0.5]))
            .expect("moves");
        assert!(d[1] > 100.0 && d[0] < 100.0, "{d:?}");
    }

    #[test]
    fn registry_weights_follow_the_table_iv_semantics() {
        // LAMMPS's metric is the science (1.0); AMG's CG iterations are
        // not (0.5); URBAN has no online metric at all (0.25).
        let w = registry_progress_weights(&["LAMMPS", "AMG", "QMCPACK", "URBAN"]).unwrap();
        assert_eq!(w, vec![1.0, 0.5, 1.0, 0.25]);
        let e = registry_progress_weights(&["NoSuchApp"]).unwrap_err();
        assert!(e.why.contains("NoSuchApp"), "{e}");
    }

    #[test]
    fn engine_freezes_silent_children_and_keeps_the_sum_bounded() {
        let mut grants = vec![100.0, 100.0, 100.0];
        let min = uniform(3, 40.0);
        let max = uniform(3, 130.0);
        let t = |s: f64| Some(NodeTelemetry::compute_only(s, 1.0 / s, 90.0));
        rebalance(
            Policy::ProgressFeedback { gain: 1.0 }.allocator(),
            300.0,
            &mut grants,
            &min,
            &max,
            &[t(1.0), None, t(2.0)],
            None,
        );
        assert_eq!(grants[1], 100.0, "silent child must freeze");
        assert!(grants.iter().sum::<f64>() <= 300.0 + 1e-6);
        assert!(grants[2] > grants[0], "critical child earns more");
    }
}
