//! Network topologies for the cluster's exchange phase.
//!
//! The comm model ([`crate::comm`]) charges every byte to the links it
//! crosses. A [`Topology`] names those links and routes node-to-node
//! flows over them:
//!
//! - [`Topology::FlatSwitch`] — one non-blocking crossbar: the only
//!   contended resources are the per-node NIC injection/ejection links,
//!   so congestion is purely endpoint congestion;
//! - [`Topology::RackTree`] — a 2-level fat-tree sketch matching the
//!   hierarchical-arbiter layout ([`crate::hierarchy`]): nodes are
//!   grouped into racks of
//!   `nodes_per_rack`, intra-rack traffic stays on the rack switch
//!   (non-blocking), and inter-rack traffic additionally crosses the
//!   source rack's uplink and the destination rack's downlink, which all
//!   nodes of a rack share (oversubscription made explicit).
//!
//! Links are directional: a full-duplex NIC is two links (`NicTx`,
//! `NicRx`), and a rack uplink is distinct from its downlink, so an
//! all-to-one incast and a one-to-all broadcast stress different
//! resources.

use serde::{Deserialize, Serialize};

use crate::error::{ensure, ConfigError};

/// A directional contended resource in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkId {
    /// Node `n`'s NIC injection (send) side.
    NicTx(usize),
    /// Node `n`'s NIC ejection (receive) side.
    NicRx(usize),
    /// Rack `r`'s shared uplink into the core (leaving the rack).
    RackUp(usize),
    /// Rack `r`'s shared downlink from the core (entering the rack).
    RackDown(usize),
}

/// The wiring between nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// A single non-blocking switch: only NICs contend.
    FlatSwitch,
    /// Two-level rack tree with shared, possibly oversubscribed uplinks.
    RackTree {
        /// Nodes per rack (the last rack may be partial).
        nodes_per_rack: usize,
        /// Uplink/downlink bandwidth shared by a whole rack, bytes/s.
        uplink_bw: f64,
    },
}

impl Topology {
    /// Validate the topology parameters: racks must be non-empty and the
    /// uplink bandwidth finite positive.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Topology::RackTree {
            nodes_per_rack,
            uplink_bw,
        } = self
        {
            ensure(
                *nodes_per_rack > 0,
                "Topology::RackTree.nodes_per_rack",
                || "racks need at least one node".into(),
            )?;
            ensure(
                uplink_bw.is_finite() && *uplink_bw > 0.0,
                "Topology::RackTree.uplink_bw",
                || format!("uplink bandwidth {uplink_bw} bytes/s must be finite positive"),
            )?;
        }
        Ok(())
    }

    /// Which rack a node lives in (nodes are packed in rank order).
    pub fn rack_of(&self, node: usize) -> usize {
        match self {
            Topology::FlatSwitch => 0,
            Topology::RackTree { nodes_per_rack, .. } => node / nodes_per_rack,
        }
    }

    /// The ordered links a `src → dst` flow crosses. Self-flows are
    /// loopback and cross nothing.
    pub fn path(&self, src: usize, dst: usize) -> Vec<LinkId> {
        if src == dst {
            return Vec::new();
        }
        let mut links = vec![LinkId::NicTx(src)];
        if let Topology::RackTree { .. } = self {
            let (rs, rd) = (self.rack_of(src), self.rack_of(dst));
            if rs != rd {
                links.push(LinkId::RackUp(rs));
                links.push(LinkId::RackDown(rd));
            }
        }
        links.push(LinkId::NicRx(dst));
        links
    }

    /// The capacity of a link, bytes/s. NIC links scale with the owning
    /// node's power-dependent drain factor (see [`crate::comm`]); rack
    /// links are passive switch hardware and do not.
    pub fn link_bw(&self, link: LinkId, nic_bw: f64, drain: &[f64]) -> f64 {
        match link {
            LinkId::NicTx(n) | LinkId::NicRx(n) => nic_bw * drain[n],
            LinkId::RackUp(_) | LinkId::RackDown(_) => match self {
                Topology::RackTree { uplink_bw, .. } => *uplink_bw,
                Topology::FlatSwitch => unreachable!("flat switch has no rack links"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_switch_paths_touch_only_nics() {
        let t = Topology::FlatSwitch;
        assert_eq!(t.path(0, 3), vec![LinkId::NicTx(0), LinkId::NicRx(3)]);
        assert_eq!(t.rack_of(7), 0);
        assert!(t.path(2, 2).is_empty(), "loopback crosses nothing");
    }

    #[test]
    fn rack_tree_adds_uplinks_only_across_racks() {
        let t = Topology::RackTree {
            nodes_per_rack: 4,
            uplink_bw: 25.0e9,
        };
        // Intra-rack: NICs only.
        assert_eq!(t.path(0, 3), vec![LinkId::NicTx(0), LinkId::NicRx(3)]);
        // Inter-rack: up out of rack 0, down into rack 1.
        assert_eq!(
            t.path(1, 5),
            vec![
                LinkId::NicTx(1),
                LinkId::RackUp(0),
                LinkId::RackDown(1),
                LinkId::NicRx(5)
            ]
        );
        assert_eq!(t.rack_of(3), 0);
        assert_eq!(t.rack_of(4), 1);
    }

    #[test]
    fn nic_bandwidth_scales_with_drain_factor() {
        let t = Topology::FlatSwitch;
        let drain = [1.0, 0.5];
        assert_eq!(t.link_bw(LinkId::NicTx(0), 10.0e9, &drain), 10.0e9);
        assert_eq!(t.link_bw(LinkId::NicRx(1), 10.0e9, &drain), 5.0e9);
    }

    #[test]
    fn zero_node_rack_rejected() {
        let err = Topology::RackTree {
            nodes_per_rack: 0,
            uplink_bw: 1.0e9,
        }
        .validate()
        .unwrap_err();
        assert_eq!(err.what, "Topology::RackTree.nodes_per_rack");
        assert!(Topology::FlatSwitch.validate().is_ok());
    }
}
