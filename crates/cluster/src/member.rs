//! One cluster member: a simulated node, its NRM daemon, and its rank of
//! the bulk-synchronous proxy application.
//!
//! Each member owns a full per-node stack — [`simnode::node::Node`] with
//! optional fault plan and a per-member MSR backend tier (the
//! [`NodeSpec::backend`](crate::sim::NodeSpec::backend) selection rides
//! in on the member's [`NodeConfig`], so a cluster can mix closed-form
//! and emulated-bus register files), a hardened [`ResilientDaemon`]
//! applying the
//! arbiter's grant through the [`GrantSchedule`] channel, and an
//! [`MsrPowerSensor`] playing the role of the job manager's telemetry
//! collector (user-space MSR reads, so the PR-1 fault layer can take it
//! out). The cluster driver calls [`ClusterNode::compute_iteration`] /
//! [`ClusterNode::spin_until`] to advance the member between barriers;
//! the daemon is ticked inline on its own control period, exactly like
//! the single-node SPMD driver does.

use nrm::actuator::ActuatorKind;
use nrm::resilience::{MsrPowerSensor, ResilienceConfig, ResilientDaemon};
use simnode::agent::SimAgent;
use simnode::config::NodeConfig;
use simnode::node::{CoreWork, Node};
use simnode::time::{secs, Nanos, SEC};

use crate::arbiter::NodeTelemetry;
use crate::grant::{GrantCell, GrantSchedule, GrantSource};
use crate::workload::WorkloadShape;

/// Telemetry plausibility window for the cluster collector, W.
const MIN_PLAUSIBLE_W: f64 = 1.0;
const MAX_PLAUSIBLE_W: f64 = 400.0;

/// Resilience tuning for cluster daemons. Arbiter grants step at every
/// barrier, so a tick measured under the *previous* (higher) grant can
/// transiently read over the new budget; a wider tolerance and a longer
/// safe-mode fuse keep redistribution from tripping the overshoot logic.
fn cluster_resilience() -> ResilienceConfig {
    ResilienceConfig {
        overshoot_tolerance_w: 8.0,
        safe_mode_after: 8,
        ..ResilienceConfig::default()
    }
}

/// A node participating in the bulk-synchronous cluster.
pub struct ClusterNode {
    /// Cluster-wide rank of this member.
    pub id: usize,
    /// Which rack the member lives in (0 for a flat cluster; set by the
    /// driver from [`crate::hierarchy::HierarchyConfig`] when the
    /// arbitration is hierarchical).
    rack: usize,
    node: Node,
    daemon: ResilientDaemon,
    grant: GrantCell,
    /// Next daemon tick, absolute node time.
    next_tick: Nanos,
    tick_period: Nanos,
    /// The job manager's own power telemetry (separate from the daemon's
    /// sensor: a real collector samples the MSR independently).
    sensor: MsrPowerSensor,
    /// Work multiplier for this rank (see [`crate::workload`]).
    weight: f64,
    shape: WorkloadShape,
    last_compute_s: f64,
    /// Exchange-phase wire time of the most recent iteration, s (set by
    /// the driver from the comm model; 0 under an ideal barrier).
    last_comm_s: f64,
    /// Barrier/rendezvous slack of the most recent iteration, s.
    last_slack_s: f64,
}

impl ClusterNode {
    /// Build a member with its daemon ticking every `daemon_period`.
    ///
    /// # Panics
    /// Panics when `daemon_period` is not a positive multiple of the node
    /// quantum (ticks must land on quantum boundaries).
    pub fn new(
        id: usize,
        cfg: NodeConfig,
        weight: f64,
        shape: WorkloadShape,
        daemon_period: Nanos,
    ) -> Self {
        assert!(
            daemon_period > 0 && daemon_period.is_multiple_of(cfg.quantum),
            "daemon period must be a positive multiple of the quantum"
        );
        let grant = GrantCell::default();
        let daemon = ResilientDaemon::new(
            Box::new(GrantSchedule(grant.clone())),
            ActuatorKind::Rapl,
            cluster_resilience(),
        )
        .with_period(daemon_period);
        let node = Node::new(cfg);
        let mut member = Self {
            id,
            rack: 0,
            node,
            daemon,
            grant,
            // First tick lands on the first quantum after start, so the
            // initial grant is programmed as soon as the run begins rather
            // than a full control period in.
            next_tick: 0,
            tick_period: daemon_period,
            sensor: MsrPowerSensor::new(),
            weight,
            shape,
            last_compute_s: 0.0,
            last_comm_s: 0.0,
            last_slack_s: 0.0,
        };
        // Prime the collector: the first MSR sample only establishes the
        // (time, counter) baseline and never yields a power reading.
        let now = member.node.now();
        member
            .sensor
            .sample(&member.node, now, MIN_PLAUSIBLE_W, MAX_PLAUSIBLE_W);
        member
    }

    /// Place the member in a rack of the arbitration hierarchy.
    pub fn with_rack(mut self, rack: usize) -> Self {
        self.rack = rack;
        self
    }

    /// Which rack the member lives in (0 for a flat cluster).
    pub fn rack(&self) -> usize {
        self.rack
    }

    /// The member's local clock, ns.
    pub fn now(&self) -> Nanos {
        self.node.now()
    }

    /// Ground-truth energy consumed so far, J (meter, not MSR).
    pub fn total_energy(&self) -> f64 {
        self.node.total_energy()
    }

    /// Compute time of the most recent iteration, s.
    pub fn last_compute_s(&self) -> f64 {
        self.last_compute_s
    }

    /// Exchange-phase wire time of the most recent iteration, s.
    pub fn last_comm_s(&self) -> f64 {
        self.last_comm_s
    }

    /// Barrier/rendezvous slack of the most recent iteration, s.
    pub fn last_slack_s(&self) -> f64 {
        self.last_slack_s
    }

    /// Record this iteration's exchange-phase split (driver-computed from
    /// the cluster-wide comm model, which needs the global view).
    pub fn set_phase(&mut self, comm_s: f64, slack_s: f64) {
        debug_assert!(comm_s >= 0.0 && slack_s >= 0.0, "phases are durations");
        self.last_comm_s = comm_s;
        self.last_slack_s = slack_s;
    }

    /// This epoch's NIC drain factor in (0, 1]: how fast the node can
    /// feed its injection queue relative to full power. A power cap
    /// slows the cores (DVFS/DDCM) that post descriptors and the uncore
    /// that moves payload to the NIC, so the factor blends the effective
    /// core-frequency ratio with the uncore-frequency ratio; `coupling`
    /// in [0, 1] scales how much of that slowdown the NIC path feels.
    pub fn link_drain_factor(&self, coupling: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&coupling), "coupling in [0,1]");
        let cfg = self.node.config();
        let f_ratio = self.node.telemetry().effective_mhz / cfg.fmax_mhz() as f64;
        let u_ratio = cfg.uncore.scale(self.node.actuation().uncore);
        let norm = (0.5 * f_ratio + 0.5 * u_ratio).clamp(0.05, 1.0);
        (1.0 - coupling) + coupling * norm
    }

    /// This rank's work multiplier.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The member's NRM daemon (health counters, safe-mode state).
    pub fn daemon(&self) -> &ResilientDaemon {
        &self.daemon
    }

    /// The underlying node (read-only; the driver advances it through the
    /// iteration methods).
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Store the arbiter's latest grant; the daemon programs it at its
    /// next tick (grants propagate with control-period latency, as in a
    /// real NRM hierarchy).
    pub fn set_grant(&mut self, cap_w: f64) {
        self.grant.set(Some(cap_w));
    }

    /// Store the arbiter's latest grant only when it differs bitwise from
    /// the cell's current value; returns whether a store happened. The
    /// daemon re-reads the cell every control tick regardless, so
    /// skipping a bit-identical store is behaviorally invisible — it just
    /// spares the atomic write (and cache-line bounce) for the common
    /// steady-state case where the arbiter held the grant.
    pub fn set_grant_if_changed(&mut self, cap_w: f64) -> bool {
        if self.grant.get().map(f64::to_bits) == Some(cap_w.to_bits()) {
            return false;
        }
        self.grant.set(Some(cap_w));
        true
    }

    /// Absolute sim-time of this member's next actionable event, capped at
    /// `horizon`: its next daemon control tick or the node's own next
    /// scheduled event ([`Node::next_event_hint`]), whichever is first.
    /// The sharded driver parks members whose next event lies at or past
    /// the horizon instead of stepping them.
    pub fn next_event(&self, horizon: Nanos) -> Nanos {
        self.node
            .next_event_hint(horizon.min(self.next_tick))
            .max(self.node.now())
    }

    /// Pull the newest grant from `source` (an in-process grant slice, or
    /// an `arbiterd` client polling its wire). When the source has
    /// nothing fresh — disconnected client, silent arbiter — the member
    /// holds its last programmed cap: degradation, not a panic.
    pub fn pull_grant(&mut self, source: &mut dyn GrantSource) {
        if let Some(w) = source.poll_grant(self.id) {
            self.grant.set(Some(w));
        }
    }

    /// Advance toward `target` in one [`Node::step_until`] segment — to the
    /// earliest of `target`, the next daemon tick, or a core event — then
    /// tick the daemon if its period elapsed. Daemon ticks land on exactly
    /// the quantum boundaries the fixed-quantum reference put them on;
    /// between them the node macro-steps event-free stretches in closed
    /// form. Callers loop, re-examining node state after each segment.
    fn advance_toward(&mut self, target: Nanos) {
        let deadline = target.min(self.next_tick).max(self.node.now() + 1);
        self.node.step_until(deadline);
        let now = self.node.now();
        while now >= self.next_tick {
            self.daemon.on_tick(&mut self.node, now);
            self.next_tick += self.tick_period;
        }
    }

    /// Run one iteration of this rank's share of the kernel on every core;
    /// returns the compute time, s.
    pub fn compute_iteration(&mut self) -> f64 {
        let packet = self.shape.packet(self.weight);
        for c in 0..self.node.cores() {
            self.node.assign(c, CoreWork::Compute(packet.into()));
        }
        let t0 = self.node.now();
        while !(0..self.node.cores()).all(|c| self.node.is_available(c)) {
            self.advance_toward(Nanos::MAX);
        }
        self.last_compute_s = secs(self.node.now() - t0);
        self.last_compute_s
    }

    /// Busy-wait at the barrier until the member's clock reaches
    /// `barrier_at` (MPI-style polling: full dynamic power, no progress).
    pub fn spin_until(&mut self, barrier_at: Nanos) {
        if self.node.now() >= barrier_at {
            return;
        }
        for c in 0..self.node.cores() {
            self.node.assign(c, CoreWork::Spin);
        }
        while self.node.now() < barrier_at {
            self.advance_toward(barrier_at);
        }
        for c in 0..self.node.cores() {
            self.node.assign(c, CoreWork::Idle);
        }
    }

    /// Report this epoch's telemetry to the arbiter, or `None` when the
    /// MSR power path is faulted (dropout, stuck/jumping counter): the
    /// member then keeps its last grant and sits out redistribution.
    pub fn take_report(&mut self) -> Option<NodeTelemetry> {
        let now = self.node.now();
        let power_w = self
            .sensor
            .sample(&self.node, now, MIN_PLAUSIBLE_W, MAX_PLAUSIBLE_W)?;
        if self.last_compute_s <= 0.0 {
            return None;
        }
        Some(NodeTelemetry {
            compute_s: self.last_compute_s,
            comm_s: self.last_comm_s,
            slack_s: self.last_slack_s,
            rate: self.weight / self.last_compute_s,
            power_w,
        })
    }
}

/// A second is a whole number of default daemon periods.
pub const DEFAULT_DAEMON_PERIOD: Nanos = SEC / 4;

#[cfg(test)]
mod tests {
    use super::*;
    use simnode::faults::{FaultPlan, FaultWindow};

    fn member(cfg: NodeConfig) -> ClusterNode {
        ClusterNode::new(0, cfg, 1.0, WorkloadShape::default(), DEFAULT_DAEMON_PERIOD)
    }

    #[test]
    fn iteration_runs_to_completion_and_times_it() {
        let mut m = member(simnode::presets::reference());
        m.set_grant(120.0);
        let t = m.compute_iteration();
        // ~120 ms of compute at fmax; capped at 120 W barely stretches it.
        assert!((0.1..0.5).contains(&t), "iteration took {t:.3} s");
        assert!(m.total_energy() > 0.0);
    }

    #[test]
    fn conditional_grant_store_skips_bit_identical_values() {
        let mut m = member(simnode::presets::reference());
        assert!(m.set_grant_if_changed(80.0), "first store must land");
        assert!(!m.set_grant_if_changed(80.0), "bit-identical regrant held");
        assert!(m.set_grant_if_changed(80.0 + 1e-9), "any bit change stores");
    }

    #[test]
    fn next_event_stays_between_now_and_the_horizon() {
        let mut m = member(simnode::presets::reference());
        m.set_grant(100.0);
        m.compute_iteration();
        let now = m.now();
        let horizon = now + SEC;
        let e = m.next_event(horizon);
        assert!(e >= now, "event in the past: {e} < {now}");
        assert!(e <= horizon, "event past the horizon: {e} > {horizon}");
        // A daemon tick is always due within one control period.
        assert!(e <= now + DEFAULT_DAEMON_PERIOD);
    }

    #[test]
    fn spin_burns_time_and_power_without_progress() {
        let mut m = member(simnode::presets::reference());
        m.set_grant(100.0);
        m.compute_iteration();
        let e0 = m.total_energy();
        let target = m.now() + SEC / 2;
        m.spin_until(target);
        assert!(m.now() >= target);
        assert!(m.total_energy() > e0, "spinning must burn energy");
    }

    #[test]
    fn grant_reaches_the_package_via_the_daemon() {
        let mut m = member(simnode::presets::reference());
        m.set_grant(70.0);
        m.compute_iteration();
        assert_eq!(
            m.node().package_cap(),
            Some(70.0),
            "daemon must program the granted cap"
        );
    }

    #[test]
    fn report_carries_power_and_rate() {
        let mut m = member(simnode::presets::reference());
        m.set_grant(90.0);
        m.compute_iteration();
        let rep = m.take_report().expect("healthy node reports");
        assert!(rep.power_w > 20.0 && rep.power_w < 160.0, "{rep:?}");
        assert!((rep.rate - 1.0 / rep.compute_s).abs() < 1e-9);
    }

    #[test]
    fn report_carries_the_phase_split() {
        let mut m = member(simnode::presets::reference());
        m.set_grant(90.0);
        m.compute_iteration();
        m.set_phase(0.025, 0.075);
        let rep = m.take_report().expect("healthy node reports");
        assert_eq!(rep.comm_s, 0.025);
        assert_eq!(rep.slack_s, 0.075);
        assert!(rep.compute_fraction() < 1.0);
    }

    #[test]
    fn capped_node_drains_its_nic_slower() {
        let run_at = |cap: f64| {
            let mut m = member(simnode::presets::reference());
            m.set_grant(cap);
            m.compute_iteration();
            m.link_drain_factor(1.0)
        };
        let full = run_at(130.0);
        let capped = run_at(45.0);
        assert!(
            capped < full - 0.05,
            "a 45 W node must drain slower than a 130 W one: {capped:.2} vs {full:.2}"
        );
        // With the coupling off, the NIC ignores the power state entirely.
        let mut m = member(simnode::presets::reference());
        m.set_grant(45.0);
        m.compute_iteration();
        assert_eq!(m.link_drain_factor(0.0), 1.0);
    }

    #[test]
    fn telemetry_dropout_suppresses_the_report() {
        let plan = FaultPlan::new(11).telemetry_dropout(FaultWindow::new(0, 3600 * SEC));
        let cfg = NodeConfig {
            faults: Some(std::sync::Arc::new(plan)),
            ..simnode::presets::reference()
        };
        let mut m = member(cfg);
        m.set_grant(90.0);
        m.compute_iteration();
        assert!(m.take_report().is_none(), "dropout must suppress telemetry");
    }
}
