//! Transports: in-process pipes for deterministic tests, non-blocking
//! TCP for deployment, and a seeded fault wrapper for chaos runs.
//!
//! Everything speaks [`Wire`]: non-blocking `send`/`poll` over the
//! framed protocol in [`crate::proto`]. The daemon's service loop and
//! the load generator only ever see this trait, so the same code path
//! is exercised whether messages cross a `VecDeque`, a socket, or a
//! deliberately lossy [`FaultyWire`] — which is what makes the
//! fault-free daemon path bit-comparable to the in-process arbiter.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use simnode::faults::FaultWindow;

use crate::proto::{drain_frames, Msg};

/// Transport failure, as seen by one endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The peer is gone (socket closed, pipe dropped, partition treated
    /// as fatal by a higher layer).
    Disconnected,
    /// The byte stream is unparseable; the connection must be dropped.
    Corrupt(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Disconnected => write!(f, "peer disconnected"),
            WireError::Corrupt(why) => write!(f, "corrupt stream: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A non-blocking, framed, bidirectional message channel.
pub trait Wire: Send {
    /// Queue `msg` for the peer. An error means the connection is dead.
    fn send(&mut self, msg: &Msg) -> Result<(), WireError>;
    /// One received message, or `None` when nothing is pending.
    fn poll(&mut self) -> Result<Option<Msg>, WireError>;
}

/// Shared state of one in-process pipe direction.
type Lane = Arc<Mutex<VecDeque<Vec<u8>>>>;

/// In-process transport: two frame queues and a liveness flag. Fully
/// deterministic — no threads, no clocks — which is what the snapshot
/// round-trip and chaos tests need to compare runs bit-for-bit.
#[derive(Debug, Clone)]
pub struct PipeWire {
    tx: Lane,
    rx: Lane,
    alive: Arc<AtomicBool>,
}

impl PipeWire {
    /// A connected pair of endpoints.
    pub fn pair() -> (PipeWire, PipeWire) {
        let a: Lane = Arc::new(Mutex::new(VecDeque::new()));
        let b: Lane = Arc::new(Mutex::new(VecDeque::new()));
        let alive = Arc::new(AtomicBool::new(true));
        (
            PipeWire {
                tx: a.clone(),
                rx: b.clone(),
                alive: alive.clone(),
            },
            PipeWire {
                tx: b,
                rx: a,
                alive,
            },
        )
    }

    /// Sever both directions: every later `send`/`poll` on either
    /// endpoint reports [`WireError::Disconnected`] (the daemon-crash
    /// primitive in the chaos tests).
    pub fn hang_up(&self) {
        self.alive.store(false, Ordering::SeqCst);
    }
}

impl Wire for PipeWire {
    fn send(&mut self, msg: &Msg) -> Result<(), WireError> {
        if !self.alive.load(Ordering::SeqCst) {
            return Err(WireError::Disconnected);
        }
        self.tx.lock().unwrap().push_back(msg.encode());
        Ok(())
    }

    fn poll(&mut self) -> Result<Option<Msg>, WireError> {
        let frame = self.rx.lock().unwrap().pop_front();
        match frame {
            Some(f) => Msg::decode(&f[4..])
                .map(Some)
                .map_err(|e| WireError::Corrupt(e.to_string())),
            None if !self.alive.load(Ordering::SeqCst) => Err(WireError::Disconnected),
            None => Ok(None),
        }
    }
}

/// A framed wire over a [`TcpStream`], in one of two modes:
///
/// - **non-blocking** ([`TcpWire::new`]): `poll` drains whatever the
///   kernel has and returns immediately — the client side, where one
///   thread advances many connections;
/// - **blocking with timeouts** ([`TcpWire::new_blocking`]): `poll`
///   parks the thread in `read(2)` until bytes arrive or the read
///   timeout lapses — the daemon's reader threads, where an idle
///   connection must cost zero CPU instead of a 1 ms poll loop.
///
/// `SO_RCVTIMEO`/`SO_SNDTIMEO` live on the socket (shared across
/// `try_clone`d halves), so a connection split into a read half and a
/// write half keeps one consistent mode.
#[derive(Debug)]
pub struct TcpWire {
    stream: TcpStream,
    /// Bytes read but not yet framed.
    inbuf: Vec<u8>,
    /// Decoded messages waiting for `poll`.
    pending: VecDeque<Msg>,
    /// Blocking mode: reads park until the timeout, a blocked write is a
    /// dead peer (instead of a spin).
    blocking: bool,
}

impl TcpWire {
    /// Wrap a connected stream (switched to non-blocking mode here).
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            inbuf: Vec::new(),
            pending: VecDeque::new(),
            blocking: false,
        })
    }

    /// Wrap a connected stream in blocking mode: `poll` parks in the
    /// kernel up to `read_timeout` (returning `Ok(None)` on a quiet
    /// interval), and a write stalled past `write_timeout` is treated as
    /// a dead peer rather than a reason to block the daemon. Both
    /// timeouts apply to the underlying socket, so they are shared with
    /// any `try_clone`d half of the same connection.
    pub fn new_blocking(
        stream: TcpStream,
        read_timeout: std::time::Duration,
        write_timeout: std::time::Duration,
    ) -> std::io::Result<Self> {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(write_timeout))?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            inbuf: Vec::new(),
            pending: VecDeque::new(),
            blocking: true,
        })
    }

    /// A second [`TcpWire`] over the same connection (shared file
    /// description, shared mode and timeouts), so one thread can own the
    /// read side while another owns the write side without contending on
    /// a lock.
    pub fn split(&self) -> std::io::Result<Self> {
        Ok(Self {
            stream: self.stream.try_clone()?,
            inbuf: Vec::new(),
            pending: VecDeque::new(),
            blocking: self.blocking,
        })
    }
}

impl Wire for TcpWire {
    fn send(&mut self, msg: &Msg) -> Result<(), WireError> {
        let frame = msg.encode();
        let mut at = 0;
        while at < frame.len() {
            match self.stream.write(&frame[at..]) {
                Ok(0) => return Err(WireError::Disconnected),
                Ok(n) => at += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if self.blocking {
                        // The write timeout lapsed with the peer's socket
                        // buffer still full: a consumer that stalled for
                        // that long is dead to the daemon — dropping the
                        // connection beats blocking the tick loop.
                        return Err(WireError::Disconnected);
                    }
                    // Non-blocking frames are tiny (≤ 60 bytes) so a full
                    // socket buffer clears in microseconds; spin rather
                    // than growing an unbounded outbound queue.
                    std::thread::yield_now();
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Err(WireError::Disconnected),
            }
        }
        Ok(())
    }

    fn poll(&mut self) -> Result<Option<Msg>, WireError> {
        if let Some(m) = self.pending.pop_front() {
            return Ok(Some(m));
        }
        let mut chunk = [0u8; 4096];
        if self.blocking {
            // One read, parked in the kernel up to the read timeout. A
            // quiet interval is Ok(None) — the caller re-checks its stop
            // flag and parks again — so idle connections cost no CPU.
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(WireError::Disconnected),
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Err(WireError::Disconnected),
            }
        } else {
            loop {
                match self.stream.read(&mut chunk) {
                    Ok(0) => return Err(WireError::Disconnected),
                    Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => return Err(WireError::Disconnected),
                }
            }
        }
        let msgs = drain_frames(&mut self.inbuf).map_err(|e| WireError::Corrupt(e.to_string()))?;
        self.pending.extend(msgs);
        Ok(self.pending.pop_front())
    }
}

/// Seeded fault injection for a wrapped wire, reusing PR 1's
/// [`FaultWindow`] machinery with the wire's own poll counter as the
/// clock. Sends are dropped, duplicated, or delayed by whole polls;
/// partition windows silence the wire in both directions without
/// reporting a disconnect (the peer just looks dead, which is exactly
/// what a lease must handle).
#[derive(Debug, Clone)]
pub struct WireFaultPlan {
    /// SplitMix64 seed for the probabilistic faults.
    pub seed: u64,
    /// Per-message drop probability in `[0, 1]`.
    pub drop_prob: f64,
    /// Per-message duplication probability in `[0, 1]`.
    pub dup_prob: f64,
    /// Per-message delay probability in `[0, 1]`.
    pub delay_prob: f64,
    /// Maximum delay, in polls (a delayed message is held back a
    /// uniformly drawn `1..=max_delay_polls` polls).
    pub max_delay_polls: u64,
    /// Both-direction blackout windows over the poll counter.
    pub partitions: Vec<FaultWindow>,
}

impl WireFaultPlan {
    /// No faults at all (the wrapper becomes a pass-through).
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_delay_polls: 0,
            partitions: Vec::new(),
        }
    }

    /// A moderately hostile default used by the chaos tests: 5 % drops,
    /// 2 % duplicates, 10 % delays of up to 3 polls.
    pub fn hostile(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.05,
            dup_prob: 0.02,
            delay_prob: 0.10,
            max_delay_polls: 3,
            partitions: Vec::new(),
        }
    }

    /// Add a partition window over the poll counter.
    pub fn partition(mut self, window: FaultWindow) -> Self {
        self.partitions.push(window);
        self
    }
}

/// Counters of what the fault layer actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireFaultStats {
    /// Messages silently dropped.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages held back at least one poll.
    pub delayed: u64,
    /// Sends swallowed by an active partition.
    pub partitioned: u64,
}

/// The fault-injecting wrapper. Faults apply on the send side (the
/// injected direction is the client's, mirroring how PR 1 faults the
/// MSR path the daemon reads through).
pub struct FaultyWire<W: Wire> {
    inner: W,
    plan: WireFaultPlan,
    rng: u64,
    /// Monotone fault clock: one tick per `poll` call.
    polls: u64,
    /// Messages held back until `release_at ≤ polls`.
    held: Vec<(u64, Msg)>,
    stats: WireFaultStats,
}

impl<W: Wire> FaultyWire<W> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: W, plan: WireFaultPlan) -> Self {
        Self {
            rng: plan.seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            inner,
            plan,
            polls: 0,
            held: Vec::new(),
            stats: WireFaultStats::default(),
        }
    }

    /// Injection counters.
    pub fn stats(&self) -> WireFaultStats {
        self.stats
    }

    /// The wrapped wire.
    pub fn inner(&self) -> &W {
        &self.inner
    }

    fn draw(&mut self) -> f64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn hit(&mut self, prob: f64) -> bool {
        prob >= 1.0 || (prob > 0.0 && self.draw() < prob)
    }

    fn partitioned(&self) -> bool {
        self.plan.partitions.iter().any(|w| w.contains(self.polls))
    }
}

impl<W: Wire> Wire for FaultyWire<W> {
    fn send(&mut self, msg: &Msg) -> Result<(), WireError> {
        if self.partitioned() {
            self.stats.partitioned += 1;
            return Ok(()); // swallowed, not an error: the link looks alive
        }
        if self.hit(self.plan.drop_prob) {
            self.stats.dropped += 1;
            return Ok(());
        }
        if self.plan.max_delay_polls > 0 && self.hit(self.plan.delay_prob) {
            let hold = 1 + (self.draw() * self.plan.max_delay_polls as f64) as u64;
            self.stats.delayed += 1;
            self.held.push((self.polls + hold, msg.clone()));
            return Ok(());
        }
        self.inner.send(msg)?;
        if self.hit(self.plan.dup_prob) {
            self.stats.duplicated += 1;
            self.inner.send(msg)?;
        }
        Ok(())
    }

    fn poll(&mut self) -> Result<Option<Msg>, WireError> {
        self.polls += 1;
        // Flush messages whose delay expired (in original send order).
        if !self.held.is_empty() && !self.partitioned() {
            let due: Vec<Msg> = {
                let polls = self.polls;
                let mut due = Vec::new();
                self.held.retain(|(at, m)| {
                    if *at <= polls {
                        due.push(m.clone());
                        false
                    } else {
                        true
                    }
                });
                due
            };
            for m in due {
                self.inner.send(&m)?;
            }
        }
        if self.partitioned() {
            return Ok(None); // blackout: nothing arrives, no disconnect
        }
        self.inner.poll()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_delivers_in_order_and_reports_hangup() {
        let (mut a, mut b) = PipeWire::pair();
        a.send(&Msg::Hello { node: 1 }).unwrap();
        a.send(&Msg::Heartbeat { node: 1 }).unwrap();
        assert_eq!(b.poll().unwrap(), Some(Msg::Hello { node: 1 }));
        assert_eq!(b.poll().unwrap(), Some(Msg::Heartbeat { node: 1 }));
        assert_eq!(b.poll().unwrap(), None);
        a.hang_up();
        assert_eq!(b.poll(), Err(WireError::Disconnected));
        assert_eq!(
            a.send(&Msg::Hello { node: 1 }),
            Err(WireError::Disconnected)
        );
    }

    #[test]
    fn clean_fault_plan_is_a_pass_through() {
        let (a, mut b) = PipeWire::pair();
        let mut f = FaultyWire::new(a, WireFaultPlan::clean(9));
        for i in 0..50 {
            f.send(&Msg::Nack { seq: i }).unwrap();
        }
        for i in 0..50 {
            assert_eq!(b.poll().unwrap(), Some(Msg::Nack { seq: i }));
        }
        assert_eq!(f.stats(), WireFaultStats::default());
    }

    #[test]
    fn drops_and_dups_follow_the_seed() {
        let run = |seed: u64| {
            let (a, mut b) = PipeWire::pair();
            let mut f = FaultyWire::new(
                a,
                WireFaultPlan {
                    drop_prob: 0.3,
                    dup_prob: 0.2,
                    ..WireFaultPlan::clean(seed)
                },
            );
            for i in 0..200 {
                f.send(&Msg::Nack { seq: i }).unwrap();
            }
            let mut got = Vec::new();
            while let Ok(Some(m)) = b.poll() {
                got.push(m);
            }
            (got, f.stats())
        };
        let (got1, stats1) = run(7);
        let (got2, stats2) = run(7);
        assert_eq!(got1, got2, "same seed, same fault schedule");
        assert!(stats1.dropped > 20 && stats1.dropped < 120, "{stats1:?}");
        assert!(stats1.duplicated > 5, "{stats1:?}");
        assert_eq!(stats1, stats2);
        let (got3, _) = run(8);
        assert_ne!(got1, got3, "different seeds decorrelate");
    }

    #[test]
    fn partition_silences_without_disconnecting() {
        let (a, mut b) = PipeWire::pair();
        let mut f = FaultyWire::new(a, WireFaultPlan::clean(3).partition(FaultWindow::new(2, 5)));
        // Poll twice to enter the window at polls=2.
        assert_eq!(f.poll().unwrap(), None);
        assert_eq!(f.poll().unwrap(), None);
        f.send(&Msg::Hello { node: 4 }).unwrap();
        assert_eq!(b.poll().unwrap(), None, "send swallowed by partition");
        assert_eq!(f.stats().partitioned, 1);
        // The peer sends during the window: held invisible, no error.
        b.send(&Msg::Busy { retry_after: 1 }).unwrap();
        assert_eq!(f.poll().unwrap(), None);
        assert_eq!(f.poll().unwrap(), None);
        // Window over (polls = 5): traffic resumes.
        assert_eq!(f.poll().unwrap(), Some(Msg::Busy { retry_after: 1 }));
    }

    #[test]
    fn delayed_messages_arrive_later_in_order() {
        let (a, mut b) = PipeWire::pair();
        let mut f = FaultyWire::new(
            a,
            WireFaultPlan {
                delay_prob: 1.0,
                max_delay_polls: 2,
                ..WireFaultPlan::clean(1)
            },
        );
        f.send(&Msg::Nack { seq: 1 }).unwrap();
        f.send(&Msg::Nack { seq: 2 }).unwrap();
        assert_eq!(b.poll().unwrap(), None, "both held");
        let mut got = Vec::new();
        for _ in 0..6 {
            let _ = f.poll();
            while let Ok(Some(m)) = b.poll() {
                got.push(m);
            }
        }
        assert_eq!(got, vec![Msg::Nack { seq: 1 }, Msg::Nack { seq: 2 }]);
        assert_eq!(f.stats().delayed, 2);
    }
}
