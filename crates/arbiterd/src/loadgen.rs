//! Deterministic load generator: up to 100k simulated telemetry
//! producers against one or more [`ArbiterService`] shards, with seeded
//! transport faults and an optional mid-run daemon crash.
//!
//! Everything is in-process and lockstep — clients, "network", and
//! services advance one tick at a time over [`PipeWire`] pairs — so a
//! run is a pure function of its configuration: the same seed gives the
//! same sheds, the same reconnect schedule, the same grants, bit for
//! bit. That determinism is what lets the chaos acceptance test demand
//! *bitwise* equality between a crashed-and-recovered run and an
//! uncrashed reference instead of hand-waving tolerances.
//!
//! Two scale levers beyond the original single-service generator:
//!
//! - **Sharding** (`shards > 1`): producers split across N
//!   [`ShardedService`] shards, the machine budget re-split on
//!   `outer_period` by the rack-level solver. `shards = 1` takes the
//!   single-service path untouched (bit-identical to the pre-sharding
//!   generator).
//! - **Batching** (`batch > 1`): producers multiplex in groups over one
//!   wire each, sending one [`Msg::Batch`] of telemetry per tick
//!   instead of one frame per producer. Grants return batched the same
//!   way. The service treats a batch exactly as its members (tested
//!   bitwise), so this only changes frame count, never grants.
//!
//! The crash model mirrors `kill -9` at a tick boundary: the victim
//! shard's endpoints hang up, its service object is dropped on the
//! floor (no flush), and a fresh service restores from the write-ahead
//! snapshot. `crash_shard` selects one victim; `None` crashes every
//! shard at once (the single-daemon legacy shape). Clients notice only
//! through their wires dying.
//!
//! [`run_concurrent_loadgen`] is the wall-clock sibling: genuinely
//! concurrent TCP clients from a thread pool with seeded jitter against
//! live [`ShardedDaemon`] sockets. It measures throughput and checks
//! Σ ≤ budget, but makes no bitwise claims — lockstep mode is the
//! bitwise-reference path.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cluster::{ArbiterConfig, BudgetArbiter, ConfigError, NodeTelemetry, Policy, PowerArbiter};
use nrm::Backoff;

use crate::client::{ClientStats, GrantClient};
use crate::proto::Msg;
use crate::service::{ArbiterService, ServiceConfig, ServiceStats};
use crate::sharded::{shard_spans, ShardedDaemon, ShardedService};
use crate::wire::{FaultyWire, PipeWire, TcpWire, Wire, WireFaultPlan};

/// Transport-fault knobs for the simulated cluster.
#[derive(Debug, Clone)]
pub struct FaultKnobs {
    /// Per-message drop probability.
    pub drop_prob: f64,
    /// Per-message duplication probability.
    pub dup_prob: f64,
    /// Per-message delay probability.
    pub delay_prob: f64,
    /// Maximum delay, polls.
    pub max_delay_polls: u64,
    /// Partition `(start_tick, end_tick)` applied to every `stride`-th
    /// client (`None` = no partitions).
    pub partition: Option<(u64, u64, usize)>,
}

impl FaultKnobs {
    /// The chaos-test default: drops, dups, delays, and a partition
    /// hitting every 7th client.
    pub fn hostile() -> Self {
        Self {
            drop_prob: 0.05,
            dup_prob: 0.02,
            delay_prob: 0.10,
            max_delay_polls: 3,
            partition: Some((20, 35, 7)),
        }
    }
}

/// One load-generation scenario.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Simulated telemetry producers (= arbiter nodes, machine-wide).
    pub clients: usize,
    /// Arbiter shards the producers are spread across (contiguous
    /// near-equal spans; 1 = the single-service legacy path).
    pub shards: usize,
    /// Producers multiplexed per wire (1 = one connection per producer,
    /// the legacy shape; >1 sends one batched frame per group per tick).
    pub batch: usize,
    /// Ticks between machine-budget re-splits across shards (ignored
    /// when `shards` is 1).
    pub outer_period: u64,
    /// Lockstep ticks to run.
    pub ticks: u64,
    /// Master seed: telemetry content, fault schedules, backoff jitter.
    pub seed: u64,
    /// Cluster budget per client, W (total budget = `clients ×` this).
    pub budget_per_client_w: f64,
    /// Per-node grant floor, W.
    pub min_cap_w: f64,
    /// Per-node grant ceiling, W.
    pub max_cap_w: f64,
    /// Service tuning (queue depth, leases, snapshot cadence, …).
    pub service: ServiceConfig,
    /// Transport faults (`None` = clean wires).
    pub faults: Option<FaultKnobs>,
    /// Kill a daemon at the start of this tick and restore it from the
    /// snapshot.
    pub crash_at: Option<u64>,
    /// Which shard `crash_at` kills: `Some(k)` = shard `k` only (the
    /// others keep serving); `None` = every shard at once.
    pub crash_shard: Option<usize>,
    /// Snapshot location (required for `crash_at`; `None` disables
    /// snapshotting). With `shards > 1` each shard appends `.s<i>`.
    pub snapshot_path: Option<PathBuf>,
    /// Send telemetry every N ticks (heartbeats in between).
    pub report_every: u64,
    /// Reconnect backoff cap, ticks.
    pub backoff_cap: u32,
    /// Use one shared jitter seed for every client's backoff so a
    /// crashed cohort reconnects in lockstep — required by the bitwise
    /// recovery comparison, unrealistic for throughput runs.
    pub lockstep_backoff: bool,
    /// Record every `(seq, grant-bits)` per node in the report's
    /// `grant_log`. The bitwise tests need it; throughput benches turn
    /// it off so they measure message handling, not test bookkeeping.
    pub record_grants: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            clients: 64,
            shards: 1,
            batch: 1,
            outer_period: 4,
            ticks: 60,
            seed: 1,
            budget_per_client_w: 100.0,
            min_cap_w: 40.0,
            max_cap_w: 130.0,
            service: ServiceConfig::default(),
            faults: None,
            crash_at: None,
            crash_shard: None,
            snapshot_path: None,
            report_every: 1,
            backoff_cap: 8,
            lockstep_backoff: false,
            record_grants: true,
        }
    }
}

impl LoadgenConfig {
    /// Check the scale knobs, with the constraint in the error message.
    /// The `repro` CLI maps a failure here to exit code 2.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.clients == 0 {
            return Err(ConfigError::new(
                "LoadgenConfig.clients",
                "need at least one client",
            ));
        }
        if self.shards == 0 {
            return Err(ConfigError::new(
                "LoadgenConfig.shards",
                "need at least one shard",
            ));
        }
        if self.shards > self.clients {
            return Err(ConfigError::new(
                "LoadgenConfig.shards",
                format!(
                    "cannot spread {} clients over {} shards",
                    self.clients, self.shards
                ),
            ));
        }
        if self.batch == 0 {
            return Err(ConfigError::new(
                "LoadgenConfig.batch",
                "batch must be at least 1",
            ));
        }
        if self.outer_period == 0 {
            return Err(ConfigError::new(
                "LoadgenConfig.outer_period",
                "outer period must be positive",
            ));
        }
        if self.report_every == 0 {
            return Err(ConfigError::new(
                "LoadgenConfig.report_every",
                "report cadence must be positive",
            ));
        }
        if let Some(k) = self.crash_shard {
            if k >= self.shards {
                return Err(ConfigError::new(
                    "LoadgenConfig.crash_shard",
                    format!("shard {k} does not exist (shards = {})", self.shards),
                ));
            }
        }
        Ok(())
    }
}

/// What a run did, in aggregate and grant-for-grant.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Clients simulated.
    pub clients: usize,
    /// Shards the clients were spread across.
    pub shards: usize,
    /// Ticks executed.
    pub ticks: u64,
    /// Total budget, W.
    pub budget_w: f64,
    /// Σ grants ≤ budget held at every observed tick, machine-wide.
    pub invariant_ok: bool,
    /// Largest Σ grants observed, W.
    pub max_sum_grants_w: f64,
    /// FNV-1a over the per-tick machine-wide Σ-grants bits: one u64
    /// carrying the whole Σ trace, printable in a CSV cell so the soak
    /// harness can diff two runs bit-for-bit without shipping logs.
    pub sum_fingerprint: u64,
    /// Telemetry messages actually handed to a wire (batch members
    /// counted individually).
    pub telemetry_sent: u64,
    /// Service counters (summed across shards and crashes).
    pub service: ServiceStats,
    /// Σ successful client (re)connections beyond each client's first.
    pub reconnects: u64,
    /// Σ reports held back client-side (hold-last-grant ticks).
    pub held_reports: u64,
    /// Σ Busy sheds observed client-side.
    pub busy_seen: u64,
    /// Ticks from the crash until every crashed-span client held a
    /// fresh post-crash grant (`None`: no crash, or recovery incomplete
    /// at run end).
    pub recovery_ticks: Option<u64>,
    /// Times a disconnected client's held grant changed (must be 0).
    pub hold_violations: u64,
    /// Per-node grant log (global node order): seq → granted watts
    /// bits. The bitwise fingerprint recovery runs are compared on.
    pub grant_log: Vec<BTreeMap<u64, u64>>,
}

impl LoadgenReport {
    /// Largest seq granted to every node (0 when some node got none).
    pub fn min_granted_seq(&self) -> u64 {
        self.grant_log
            .iter()
            .map(|m| m.keys().next_back().copied().unwrap_or(0))
            .min()
            .unwrap_or(0)
    }
}

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn fnv1a_fold(h: u64, bits: u64) -> u64 {
    let mut h = h;
    for b in bits.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Synthetic telemetry, a pure function of `(seed, node, seq)` — keyed
/// by the client's own sequence, *not* wall time, so a client that
/// paused through an outage resumes producing exactly the reports the
/// uncrashed reference produced under the same seqs. `node` is always
/// the *global* id, so re-sharding never changes the workload.
pub fn synth_telemetry(seed: u64, node: u32, seq: u64) -> NodeTelemetry {
    let h = mix(seed, ((node as u64) << 32) ^ seq);
    let compute_s = 0.5 + 2.0 * unit(h);
    NodeTelemetry {
        compute_s,
        comm_s: 0.2 * unit(mix(h, 1)),
        slack_s: 0.3 * unit(mix(h, 2)),
        rate: 1.0 / compute_s,
        power_w: 60.0 + 60.0 * unit(mix(h, 3)),
    }
}

/// Server ends waiting to be "accepted" by the driver. The key is the
/// connection's conn-id: the (shard-local) node for single clients, the
/// group's first local node for multiplexed ones.
type Registry = Arc<Mutex<Vec<(u32, PipeWire)>>>;

fn machine_config(cfg: &LoadgenConfig) -> ArbiterConfig {
    ArbiterConfig {
        budget_w: cfg.budget_per_client_w * cfg.clients as f64,
        min_cap_w: cfg.min_cap_w,
        max_cap_w: cfg.max_cap_w,
        policy: Policy::ProgressFeedback { gain: 1.0 },
    }
}

/// The snapshot file for shard `i`: the configured path untouched for a
/// single shard (the legacy layout), `.s<i>`-suffixed otherwise.
fn shard_snapshot_path(cfg: &LoadgenConfig, i: usize) -> Option<PathBuf> {
    let base = cfg.snapshot_path.as_ref()?;
    if cfg.shards == 1 {
        Some(base.clone())
    } else {
        Some(PathBuf::from(format!("{}.s{i}", base.display())))
    }
}

fn make_shard_service(
    cfg: &LoadgenConfig,
    i: usize,
    shard_cfg: ArbiterConfig,
    k: usize,
) -> ArbiterService {
    // Tracing is observational (it never feeds back into grants); off,
    // so 100k-node runs don't pay for per-round history they never read.
    let arbiter: Box<dyn BudgetArbiter> =
        Box::new(PowerArbiter::new(shard_cfg, k).with_tracing(false));
    let svc = ArbiterService::new(arbiter, cfg.service.clone());
    match shard_snapshot_path(cfg, i) {
        Some(p) => svc.with_snapshot_path(p),
        None => svc,
    }
}

/// Build the seeded fault plan for a connection whose identity (for
/// fault purposes) is the *global* node id `global` — so moving a
/// producer between shards never re-rolls its faults.
fn fault_plan(cfg: &LoadgenConfig, global: u64, attempt: u64) -> WireFaultPlan {
    match &cfg.faults {
        None => WireFaultPlan::clean(0),
        Some(k) => {
            let mut plan = WireFaultPlan {
                seed: mix(cfg.seed, (global << 24) ^ attempt),
                drop_prob: k.drop_prob,
                dup_prob: k.dup_prob,
                delay_prob: k.delay_prob,
                max_delay_polls: k.max_delay_polls,
                partitions: Vec::new(),
            };
            if let Some((start, end, stride)) = k.partition {
                if stride > 0 && (global as usize).is_multiple_of(stride) {
                    plan = plan.partition(simnode::faults::FaultWindow::new(start, end));
                }
            }
            plan
        }
    }
}

fn make_client(cfg: &LoadgenConfig, local: u32, global: usize, registry: &Registry) -> GrantClient {
    let registry = registry.clone();
    let plan_cfg = cfg.clone();
    let mut attempt = 0u64;
    let connector = Box::new(move || {
        attempt += 1;
        let (client_end, server_end) = PipeWire::pair();
        registry.lock().unwrap().push((local, server_end));
        let plan = fault_plan(&plan_cfg, global as u64, attempt);
        Some(Box::new(FaultyWire::new(client_end, plan)) as Box<dyn Wire>)
    });
    let jitter_seed = if cfg.lockstep_backoff {
        cfg.seed
    } else {
        mix(cfg.seed, 0x00C1_1E47 ^ global as u64)
    };
    GrantClient::new(local, connector, cfg.backoff_cap, jitter_seed)
}

/// A multiplexing producer group: `count` simulated nodes over one
/// wire, one batched frame each way per tick. Mirrors [`GrantClient`]'s
/// timing exactly — Hello (batched) on connect, one settle poll, then
/// telemetry — so the server sees the same per-node message schedule
/// whether producers arrive multiplexed or not.
struct MuxClient {
    local_start: u32,
    global_start: usize,
    count: u32,
    link: Option<Box<dyn Wire>>,
    connector: Box<dyn FnMut() -> Option<Box<dyn Wire>>>,
    backoff: Backoff,
    retry_in: u32,
    polls: u64,
    muted_until: u64,
    seq: u64,
    /// Reused member buffer for outgoing batch frames.
    scratch: Vec<Msg>,
    stats: ClientStats,
}

impl MuxClient {
    fn new(
        cfg: &LoadgenConfig,
        local_start: u32,
        global_start: usize,
        count: u32,
        registry: &Registry,
    ) -> Self {
        let registry = registry.clone();
        let plan_cfg = cfg.clone();
        let mut attempt = 0u64;
        let connector = Box::new(move || {
            attempt += 1;
            let (client_end, server_end) = PipeWire::pair();
            registry.lock().unwrap().push((local_start, server_end));
            // The group's faults are keyed by its first global node:
            // chaos drops or duplicates whole batches at once.
            let plan = fault_plan(&plan_cfg, global_start as u64, attempt);
            Some(Box::new(FaultyWire::new(client_end, plan)) as Box<dyn Wire>)
        });
        let jitter_seed = if cfg.lockstep_backoff {
            cfg.seed
        } else {
            mix(cfg.seed, 0x00C1_1E47 ^ global_start as u64)
        };
        let mut c = Self {
            local_start,
            global_start,
            count,
            link: None,
            connector,
            backoff: Backoff::new(cfg.backoff_cap, jitter_seed),
            retry_in: 0,
            polls: 0,
            muted_until: 0,
            seq: 0,
            scratch: Vec::with_capacity(count as usize),
            stats: ClientStats::default(),
        };
        c.try_connect();
        c
    }

    fn try_connect(&mut self) {
        match (self.connector)() {
            Some(mut wire) => {
                let hello = Msg::Batch(
                    (self.local_start..self.local_start + self.count)
                        .map(|node| Msg::Hello { node })
                        .collect(),
                );
                if wire.send(&hello).is_ok() {
                    self.link = Some(wire);
                    self.backoff.reset();
                    self.stats.connects += 1;
                    self.muted_until = self.polls + 1;
                } else {
                    self.note_down();
                }
            }
            None => self.note_down(),
        }
    }

    fn note_down(&mut self) {
        self.stats.disconnects += u64::from(self.link.is_some());
        self.link = None;
        self.retry_in = self.backoff.record_failure();
    }

    fn advance(&mut self) {
        self.polls += 1;
        if self.link.is_none() {
            if self.retry_in == 0 {
                self.try_connect();
            } else {
                self.retry_in -= 1;
            }
            return;
        }
        while let Some(wire) = &mut self.link {
            let polled = wire.poll();
            match polled {
                Ok(Some(Msg::Batch(msgs))) => {
                    for m in msgs {
                        self.absorb(m);
                    }
                }
                Ok(Some(msg)) => self.absorb(msg),
                Ok(None) => break,
                Err(_) => {
                    self.note_down();
                    break;
                }
            }
        }
    }

    fn absorb(&mut self, msg: Msg) {
        match msg {
            // Grants are logged server-side; the group holds no
            // per-node cap state of its own.
            Msg::Grant { .. } => {}
            Msg::Busy { retry_after } => {
                self.stats.busy += 1;
                // Coarse: one member's shed mutes the whole wire — the
                // daemon is telling this connection to slow down.
                self.muted_until = self.polls + retry_after as u64;
            }
            Msg::Nack { .. } => self.stats.nacked += 1,
            _ => {}
        }
    }

    /// Send one batched telemetry frame (all members, same seq), or
    /// hold it when muted/down. Returns members actually sent.
    fn send_reports(&mut self, seed: u64) -> u64 {
        if self.polls < self.muted_until || self.link.is_none() {
            self.stats.held += self.count as u64;
            return 0;
        }
        let seq = self.seq + 1;
        let mut members = std::mem::take(&mut self.scratch);
        members.clear();
        members.extend((0..self.count).map(|j| Msg::Telemetry {
            node: self.local_start + j,
            seq,
            report: synth_telemetry(seed, (self.global_start + j as usize) as u32, seq),
        }));
        let batch = Msg::Batch(members);
        let sent = self.link.as_mut().expect("checked above").send(&batch);
        if let Msg::Batch(v) = batch {
            self.scratch = v;
        }
        match sent {
            Ok(()) => {
                self.seq = seq;
                self.count as u64
            }
            Err(_) => {
                self.note_down();
                self.stats.held += self.count as u64;
                0
            }
        }
    }

    fn heartbeats(&mut self) {
        if let Some(wire) = self.link.as_mut() {
            let beat = Msg::Batch(
                (self.local_start..self.local_start + self.count)
                    .map(|node| Msg::Heartbeat { node })
                    .collect(),
            );
            if wire.send(&beat).is_err() {
                self.note_down();
            }
        }
    }
}

/// Send one connection's consecutive grants as a single frame (one
/// singleton, or one batch), draining `run` for reuse.
fn flush_grants(conns: &mut BTreeMap<u32, PipeWire>, key: u32, run: &mut Vec<Msg>) {
    if let Some(wire) = conns.get_mut(&key) {
        if run.len() == 1 {
            wire.send(&run[0]).ok();
        } else {
            // `send` borrows the frame, so the member Vec survives the
            // call and its allocation is handed back to `run` for the
            // next flush instead of growing from empty every time.
            let frame = Msg::Batch(std::mem::take(run));
            wire.send(&frame).ok();
            if let Msg::Batch(v) = frame {
                *run = v;
            }
        }
    }
    run.clear();
}

/// The conn-id a grant for shard-local `node` routes to.
fn conn_key(node: u32, batch: usize) -> u32 {
    if batch <= 1 {
        node
    } else {
        (node / batch as u32) * batch as u32
    }
}

/// Run the scenario to completion.
///
/// # Panics
/// Panics when the configuration fails [`LoadgenConfig::validate`],
/// when `crash_at` is set without a `snapshot_path`, or when the
/// post-crash snapshot cannot be restored — all harness bugs, not
/// operating conditions.
pub fn run_loadgen(cfg: &LoadgenConfig) -> LoadgenReport {
    cfg.validate().unwrap_or_else(|e| panic!("{e}"));
    assert!(
        cfg.crash_at.is_none() || cfg.snapshot_path.is_some(),
        "a crash scenario needs a snapshot path to recover from"
    );
    // A stale snapshot from a previous run must not leak into this one.
    for i in 0..cfg.shards {
        if let Some(p) = shard_snapshot_path(cfg, i) {
            std::fs::remove_file(p).ok();
        }
    }

    let machine = machine_config(cfg);
    let mut make =
        |i: usize, shard_cfg: ArbiterConfig, k: usize| make_shard_service(cfg, i, shard_cfg, k);
    let mut sharded = ShardedService::new(
        &machine,
        cfg.clients,
        cfg.shards,
        cfg.outer_period,
        &mut make,
    );
    let spans = sharded.spans().to_vec();

    let registries: Vec<Registry> = (0..cfg.shards)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    // Per-shard conn table: conn-id → server wire of its latest Hello
    // (BTreeMap: deterministic iteration order, unlike HashMap).
    let mut conns: Vec<BTreeMap<u32, PipeWire>> = vec![BTreeMap::new(); cfg.shards];

    // Producers: one GrantClient per node (batch = 1, the bitwise
    // legacy shape) or one MuxClient per group of `batch` nodes.
    let mut singles: Vec<(usize, GrantClient)> = Vec::new(); // (shard, client)
    let mut muxes: Vec<MuxClient> = Vec::new();
    if cfg.batch <= 1 {
        for (shard, span) in spans.iter().enumerate() {
            for local in 0..span.len() {
                singles.push((
                    shard,
                    make_client(cfg, local as u32, span.start + local, &registries[shard]),
                ));
            }
        }
    } else {
        for (shard, span) in spans.iter().enumerate() {
            let mut local = 0usize;
            while local < span.len() {
                let count = cfg.batch.min(span.len() - local);
                muxes.push(MuxClient::new(
                    cfg,
                    local as u32,
                    span.start + local,
                    count as u32,
                    &registries[shard],
                ));
                local += count;
            }
        }
    }

    let budget_w = machine.budget_w;
    let mut grant_log: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); cfg.clients];
    let mut invariant_ok = true;
    let mut max_sum = 0.0f64;
    let mut sum_fingerprint: u64 = 0xcbf2_9ce4_8422_2325;
    let mut telemetry_sent = 0u64;
    let mut pre_crash_stats = ServiceStats::default();
    let mut hold_violations = 0u64;
    let mut recovery_ticks = None;
    let mut awaiting_recovery: Vec<bool> = Vec::new();
    // Grant-run staging, kept across ticks so batch frames reuse one
    // allocation instead of re-growing from empty every tick.
    let mut grant_run: Vec<Msg> = Vec::new();

    for t in 1..=cfg.ticks {
        // kill -9 at the tick boundary: the victim shard's wires die,
        // its state lands on the floor, a fresh service adopts the
        // write-ahead snapshot. Other shards keep serving.
        if cfg.crash_at == Some(t) {
            let victims: Vec<usize> = match cfg.crash_shard {
                Some(k) => vec![k],
                None => (0..cfg.shards).collect(),
            };
            if awaiting_recovery.is_empty() {
                awaiting_recovery = vec![false; cfg.clients];
            }
            for &k in &victims {
                for (_, wire) in conns[k].iter() {
                    wire.hang_up();
                }
                for (_, wire) in registries[k].lock().unwrap().drain(..) {
                    wire.hang_up();
                }
                conns[k].clear();
                pre_crash_stats = add_stats(pre_crash_stats, sharded.shard(k).stats());
                let sub_budget = sharded.sub_budgets()[k];
                let fresh = make_shard_service(
                    cfg,
                    k,
                    ArbiterConfig {
                        budget_w: sub_budget,
                        ..machine
                    },
                    spans[k].len(),
                );
                assert!(
                    sharded.replace_shard(k, fresh),
                    "the write-ahead snapshot must be adoptable after a crash"
                );
                for g in spans[k].clone() {
                    awaiting_recovery[g] = true;
                }
            }
        }

        // Accept pending connections (latest Hello wins the route).
        for (shard, registry) in registries.iter().enumerate() {
            for (conn_id, wire) in registry.lock().unwrap().drain(..) {
                conns[shard].insert(conn_id, wire);
            }
        }

        // Clients: drain inbound, run reconnect state machines, then
        // produce this tick's traffic.
        for (global, (_, c)) in singles.iter_mut().enumerate() {
            let was_connected = c.connected();
            let held_before = c.last_grant();
            c.advance();
            if !was_connected && !c.connected() && held_before != c.last_grant() {
                hold_violations += 1;
            }
            if t.is_multiple_of(cfg.report_every) {
                let rep = synth_telemetry(cfg.seed, global as u32, c.next_seq());
                if c.send_report(&rep).is_some() {
                    telemetry_sent += 1;
                }
            } else {
                c.heartbeat();
            }
        }
        for m in muxes.iter_mut() {
            m.advance();
            if t.is_multiple_of(cfg.report_every) {
                telemetry_sent += m.send_reports(cfg.seed);
            } else {
                m.heartbeats();
            }
        }

        // Server: ingest everything that arrived, reply in place.
        for (shard, shard_conns) in conns.iter_mut().enumerate() {
            let mut immediate: Vec<(u32, Vec<Msg>)> = Vec::new();
            for (&conn_id, wire) in shard_conns.iter_mut() {
                while let Ok(Some(msg)) = wire.poll() {
                    let replies = sharded.ingest(shard, msg);
                    if !replies.is_empty() {
                        immediate.push((conn_id, replies));
                    }
                }
            }
            for (conn_id, replies) in immediate {
                if let Some(wire) = shard_conns.get_mut(&conn_id) {
                    for r in &replies {
                        wire.send(r).ok();
                    }
                }
            }
        }

        // The arbitration tick, then grant routing + logging. Grants
        // arrive in node order, so grants sharing a connection are
        // consecutive: coalesce each run into one batched frame (with
        // batch = 1 every run has length one — singleton frames, the
        // legacy shape).
        let all_replies = sharded.tick();
        for (shard, replies) in all_replies.into_iter().enumerate() {
            let mut run = std::mem::take(&mut grant_run);
            let mut run_key = 0u32;
            for msg in replies {
                let Msg::Grant {
                    node, seq, watts, ..
                } = msg
                else {
                    continue;
                };
                let global = spans[shard].start + node as usize;
                if seq > 0 {
                    if cfg.record_grants {
                        grant_log[global].insert(seq, watts.to_bits());
                    }
                    if let Some(flag) = awaiting_recovery.get_mut(global) {
                        *flag = false;
                    }
                }
                let key = conn_key(node, cfg.batch);
                if key != run_key && !run.is_empty() {
                    flush_grants(&mut conns[shard], run_key, &mut run);
                }
                run_key = key;
                run.push(msg);
            }
            if !run.is_empty() {
                flush_grants(&mut conns[shard], run_key, &mut run);
            }
            grant_run = run;
        }

        // The headline invariant, observed from outside every tick, and
        // the Σ trace folded into one diffable fingerprint.
        let sum: f64 = sharded.sum_grants();
        max_sum = max_sum.max(sum);
        sum_fingerprint = fnv1a_fold(sum_fingerprint, sum.to_bits());
        if sum > budget_w + 1e-6 {
            invariant_ok = false;
        }

        if recovery_ticks.is_none()
            && cfg.crash_at.is_some_and(|c| t >= c)
            && !awaiting_recovery.is_empty()
            && awaiting_recovery.iter().all(|w| !w)
        {
            recovery_ticks = Some(t - cfg.crash_at.unwrap());
        }
    }

    let stats = add_stats(pre_crash_stats, sharded.stats());
    let single_stats = singles
        .iter()
        .map(|(_, c)| c.stats())
        .fold(ClientStats::default(), add_client_stats);
    let client_stats = muxes
        .iter()
        .map(|m| m.stats)
        .fold(single_stats, add_client_stats);

    LoadgenReport {
        clients: cfg.clients,
        shards: cfg.shards,
        ticks: cfg.ticks,
        budget_w,
        invariant_ok: invariant_ok && sharded.max_sum_grants_w() <= budget_w + 1e-6,
        max_sum_grants_w: max_sum,
        sum_fingerprint,
        telemetry_sent,
        service: stats,
        reconnects: client_stats
            .connects
            .saturating_sub(singles.len() as u64 + muxes.len() as u64),
        held_reports: client_stats.held,
        busy_seen: client_stats.busy,
        recovery_ticks,
        hold_violations,
        grant_log,
    }
}

fn add_stats(a: ServiceStats, b: ServiceStats) -> ServiceStats {
    ServiceStats {
        shed: a.shed + b.shed,
        rate_limited: a.rate_limited + b.rate_limited,
        nacked: a.nacked + b.nacked,
        duplicates: a.duplicates + b.duplicates,
        leases_expired: a.leases_expired + b.leases_expired,
        rounds: a.rounds + b.rounds,
        snapshots: a.snapshots + b.snapshots,
    }
}

fn add_client_stats(a: ClientStats, b: ClientStats) -> ClientStats {
    ClientStats {
        connects: a.connects + b.connects,
        disconnects: a.disconnects + b.disconnects,
        held: a.held + b.held,
        busy: a.busy + b.busy,
        nacked: a.nacked + b.nacked,
    }
}

/// A wall-clock scenario for [`run_concurrent_loadgen`]: thread-pooled
/// TCP producer groups against live [`ShardedDaemon`] sockets.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Daemon shards (each on its own listener).
    pub shards: usize,
    /// Simulated producers, machine-wide.
    pub producers: usize,
    /// Producers multiplexed per TCP connection.
    pub batch: usize,
    /// Worker threads driving the connections.
    pub threads: usize,
    /// Telemetry rounds each group sends.
    pub rounds: u64,
    /// Jitter seed (micro-sleep schedule per worker).
    pub seed: u64,
    /// Budget per producer, W.
    pub budget_per_client_w: f64,
    /// Per-node grant floor, W.
    pub min_cap_w: f64,
    /// Per-node grant ceiling, W.
    pub max_cap_w: f64,
    /// Daemon arbitration period.
    pub tick_period: Duration,
    /// Outer re-split period, daemon ticks.
    pub outer_period: u64,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            producers: 64,
            batch: 8,
            threads: 4,
            rounds: 20,
            seed: 1,
            budget_per_client_w: 100.0,
            min_cap_w: 40.0,
            max_cap_w: 130.0,
            tick_period: Duration::from_millis(2),
            outer_period: 4,
        }
    }
}

/// What the concurrent run measured. No bitwise claims here — lockstep
/// mode is the reference path; this one exists to put real threads,
/// real sockets, and real contention on the daemon.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// Telemetry messages sent (batch members counted individually).
    pub telemetry_sent: u64,
    /// Grant messages received across all workers.
    pub grants_seen: u64,
    /// Wall-clock duration of the send/receive phase.
    pub elapsed: Duration,
    /// `telemetry_sent / elapsed`.
    pub msgs_per_sec: f64,
    /// Σ grants ≤ budget held at the coordinator's every epoch and at
    /// the final observation.
    pub invariant_ok: bool,
    /// Largest Σ grants the coordinator observed, W.
    pub max_sum_grants_w: f64,
    /// Machine budget, W.
    pub budget_w: f64,
}

/// Drive genuinely concurrent TCP producers — `threads` workers, each
/// owning whole multiplexed connections, with a seeded per-worker
/// jitter schedule — against a live [`ShardedDaemon`].
///
/// # Panics
/// Panics on zero shards/producers/batch/threads, or when a listener
/// cannot bind.
pub fn run_concurrent_loadgen(cfg: &ConcurrentConfig) -> ConcurrentReport {
    assert!(
        cfg.shards > 0 && cfg.producers >= cfg.shards,
        "bad shard count"
    );
    assert!(
        cfg.batch > 0 && cfg.threads > 0 && cfg.rounds > 0,
        "bad scale knobs"
    );

    let machine = ArbiterConfig {
        budget_w: cfg.budget_per_client_w * cfg.producers as f64,
        min_cap_w: cfg.min_cap_w,
        max_cap_w: cfg.max_cap_w,
        policy: Policy::ProgressFeedback { gain: 1.0 },
    };
    // Generous service limits: this run measures transport throughput,
    // not shedding behaviour (which has its own lockstep scenarios).
    let service = ServiceConfig {
        queue_depth: (cfg.producers * 4).max(4096),
        rate_capacity: 1e9,
        rate_refill: 1e9,
        lease_ticks: 1 << 20,
        snapshot_every: 0,
        ..ServiceConfig::default()
    };
    let mut make = |_i: usize, shard_cfg: ArbiterConfig, k: usize| {
        let arbiter: Box<dyn BudgetArbiter> =
            Box::new(PowerArbiter::new(shard_cfg, k).with_tracing(false));
        ArbiterService::new(arbiter, service.clone())
    };
    let daemon = ShardedDaemon::spawn(
        &machine,
        cfg.producers,
        cfg.shards,
        cfg.outer_period,
        crate::daemon::DaemonConfig {
            tick_period: cfg.tick_period,
            ..crate::daemon::DaemonConfig::default()
        },
        &mut make,
    )
    .expect("sharded daemon must spawn");

    // Groups: (shard, local_start, global_start, count), dealt
    // round-robin to the workers.
    let spans = shard_spans(cfg.producers, cfg.shards);
    let mut groups: Vec<(usize, u32, usize, u32)> = Vec::new();
    for (shard, span) in spans.iter().enumerate() {
        let mut local = 0usize;
        while local < span.len() {
            let count = cfg.batch.min(span.len() - local);
            groups.push((shard, local as u32, span.start + local, count as u32));
            local += count;
        }
    }

    let telemetry_sent = Arc::new(AtomicU64::new(0));
    let grants_seen = Arc::new(AtomicU64::new(0));
    let connect_ok = Arc::new(AtomicBool::new(true));
    let addrs = daemon.addrs().to_vec();
    let started = Instant::now();
    let mut workers = Vec::new();
    for w in 0..cfg.threads {
        let my_groups: Vec<(usize, u32, usize, u32)> = groups
            .iter()
            .copied()
            .skip(w)
            .step_by(cfg.threads)
            .collect();
        let addrs = addrs.clone();
        let telemetry_sent = telemetry_sent.clone();
        let grants_seen = grants_seen.clone();
        let connect_ok = connect_ok.clone();
        let rounds = cfg.rounds;
        let mut jitter = mix(cfg.seed, 0x7778_0000 ^ w as u64);
        workers.push(std::thread::spawn(move || {
            // (wire, first local node, group size) per owned connection.
            let mut wires: Vec<(TcpWire, u32, u32)> = Vec::new();
            for &(shard, local_start, _global, count) in &my_groups {
                let Ok(stream) =
                    std::net::TcpStream::connect_timeout(&addrs[shard], Duration::from_secs(2))
                else {
                    connect_ok.store(false, Ordering::SeqCst);
                    continue;
                };
                let Ok(mut wire) = TcpWire::new(stream) else {
                    connect_ok.store(false, Ordering::SeqCst);
                    continue;
                };
                let hello = Msg::Batch(
                    (local_start..local_start + count)
                        .map(|node| Msg::Hello { node })
                        .collect(),
                );
                if wire.send(&hello).is_err() {
                    connect_ok.store(false, Ordering::SeqCst);
                    continue;
                }
                wires.push((wire, local_start, count));
            }
            for seq in 1..=rounds {
                for (wire, local_start, count) in wires.iter_mut() {
                    let batch = Msg::Batch(
                        (0..*count)
                            .map(|j| Msg::Telemetry {
                                node: *local_start + j,
                                seq,
                                report: synth_telemetry(7, *local_start + j, seq),
                            })
                            .collect(),
                    );
                    if wire.send(&batch).is_ok() {
                        telemetry_sent.fetch_add(*count as u64, Ordering::Relaxed);
                    }
                    while let Ok(Some(msg)) = wire.poll() {
                        grants_seen.fetch_add(count_grants(&msg), Ordering::Relaxed);
                    }
                }
                // Seeded jitter: workers drift apart instead of hammering
                // the daemons in lockstep.
                jitter = mix(jitter, seq);
                std::thread::sleep(Duration::from_micros(100 + jitter % 400));
            }
            // Drain the tail so late grants still count.
            let deadline = Instant::now() + Duration::from_millis(50);
            while Instant::now() < deadline {
                for (wire, _, _) in wires.iter_mut() {
                    while let Ok(Some(msg)) = wire.poll() {
                        grants_seen.fetch_add(count_grants(&msg), Ordering::Relaxed);
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }));
    }
    for wkr in workers {
        wkr.join().ok();
    }
    let elapsed = started.elapsed();

    let final_sum = daemon.sum_grants();
    let max_sum = daemon.max_sum_grants_w().max(final_sum);
    let invariant_ok = daemon.invariant_ok()
        && final_sum <= machine.budget_w + 1e-6
        && connect_ok.load(Ordering::SeqCst);
    let sent = telemetry_sent.load(Ordering::Relaxed);
    let report = ConcurrentReport {
        telemetry_sent: sent,
        grants_seen: grants_seen.load(Ordering::Relaxed),
        elapsed,
        msgs_per_sec: sent as f64 / elapsed.as_secs_f64().max(1e-9),
        invariant_ok,
        max_sum_grants_w: max_sum,
        budget_w: machine.budget_w,
    };
    daemon.kill();
    report
}

fn count_grants(msg: &Msg) -> u64 {
    match msg {
        Msg::Grant { .. } => 1,
        Msg::Batch(ms) => ms.iter().filter(|m| matches!(m, Msg::Grant { .. })).count() as u64,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(clients: usize, ticks: u64) -> LoadgenConfig {
        LoadgenConfig {
            clients,
            ticks,
            service: ServiceConfig {
                snapshot_every: 0,
                ..ServiceConfig::default()
            },
            ..LoadgenConfig::default()
        }
    }

    #[test]
    fn clean_run_grants_everyone_and_conserves_budget() {
        let r = run_loadgen(&quick(16, 20));
        assert!(r.invariant_ok);
        assert!(r.max_sum_grants_w <= r.budget_w + 1e-6);
        assert!(r.min_granted_seq() >= 15, "steady traffic grants steadily");
        assert_eq!(r.reconnects, 0);
        assert_eq!(r.hold_violations, 0);
        assert!(r.telemetry_sent > 0);
    }

    #[test]
    fn same_seed_same_run_bit_for_bit() {
        let cfg = LoadgenConfig {
            faults: Some(FaultKnobs::hostile()),
            ..quick(12, 30)
        };
        let a = run_loadgen(&cfg);
        let b = run_loadgen(&cfg);
        assert_eq!(a.grant_log, b.grant_log);
        assert_eq!(a.service, b.service);
        assert_eq!(a.sum_fingerprint, b.sum_fingerprint);
        let c = run_loadgen(&LoadgenConfig { seed: 2, ..cfg });
        assert_ne!(a.grant_log, c.grant_log, "seeds must matter");
    }

    #[test]
    fn faulty_wires_still_conserve_the_budget() {
        let r = run_loadgen(&LoadgenConfig {
            faults: Some(FaultKnobs::hostile()),
            ..quick(21, 50)
        });
        assert!(r.invariant_ok);
        assert_eq!(r.hold_violations, 0);
        // The partitioned clients went silent long enough to lose their
        // leases; expiry must have reclaimed watts, not leaked them.
        assert!(r.service.leases_expired > 0, "{:?}", r.service);
        assert!(r.max_sum_grants_w <= r.budget_w + 1e-6);
    }

    #[test]
    fn invalid_scale_knobs_are_config_errors() {
        for bad in [
            LoadgenConfig {
                clients: 0,
                ..LoadgenConfig::default()
            },
            LoadgenConfig {
                shards: 0,
                ..LoadgenConfig::default()
            },
            LoadgenConfig {
                shards: 65,
                ..LoadgenConfig::default()
            },
            LoadgenConfig {
                batch: 0,
                ..LoadgenConfig::default()
            },
            LoadgenConfig {
                outer_period: 0,
                ..LoadgenConfig::default()
            },
            LoadgenConfig {
                crash_shard: Some(1),
                ..LoadgenConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
        assert!(LoadgenConfig::default().validate().is_ok());
    }

    #[test]
    fn batched_producers_grant_bitwise_like_singletons() {
        // Same seed, same workload; the only difference is 8 producers
        // per wire sending one batched frame per tick. The server-side
        // grant log must be bit-identical.
        let base = quick(24, 20);
        let singles = run_loadgen(&base);
        let batched = run_loadgen(&LoadgenConfig { batch: 8, ..base });
        assert!(batched.invariant_ok);
        assert_eq!(
            singles.grant_log, batched.grant_log,
            "batching must not change a single grant bit"
        );
        assert_eq!(singles.sum_fingerprint, batched.sum_fingerprint);
        assert_eq!(singles.telemetry_sent, batched.telemetry_sent);
    }

    #[test]
    fn sharded_run_conserves_budget_and_reproduces() {
        let cfg = LoadgenConfig {
            shards: 4,
            batch: 4,
            outer_period: 4,
            ..quick(32, 30)
        };
        let a = run_loadgen(&cfg);
        assert!(a.invariant_ok);
        assert!(a.max_sum_grants_w <= a.budget_w + 1e-6);
        assert_eq!(a.shards, 4);
        assert!(a.min_granted_seq() >= 25, "all shards grant steadily");
        let b = run_loadgen(&cfg);
        assert_eq!(a.sum_fingerprint, b.sum_fingerprint);
        assert_eq!(a.grant_log, b.grant_log);
    }

    #[test]
    fn concurrent_tcp_loadgen_smoke() {
        let r = run_concurrent_loadgen(&ConcurrentConfig {
            shards: 2,
            producers: 32,
            batch: 8,
            threads: 2,
            rounds: 10,
            ..ConcurrentConfig::default()
        });
        assert!(r.invariant_ok, "Σ ≤ budget over live sockets: {r:?}");
        assert_eq!(r.telemetry_sent, 32 * 10);
        assert!(r.grants_seen > 0, "grants must flow back: {r:?}");
        assert!(r.msgs_per_sec > 0.0);
    }
}
