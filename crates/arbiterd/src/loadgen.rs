//! Deterministic load generator: thousands of simulated telemetry
//! producers against one [`ArbiterService`], with seeded transport
//! faults and an optional mid-run daemon crash.
//!
//! Everything is in-process and lockstep — clients, "network", and
//! service advance one tick at a time over [`PipeWire`] pairs — so a
//! run is a pure function of its configuration: the same seed gives the
//! same sheds, the same reconnect schedule, the same grants, bit for
//! bit. That determinism is what lets the chaos acceptance test demand
//! *bitwise* equality between a crashed-and-recovered run and an
//! uncrashed reference instead of hand-waving tolerances.
//!
//! The crash model mirrors `kill -9` at a tick boundary: every server
//! endpoint hangs up, the service object is dropped on the floor
//! (no flush), and a fresh service restores from the write-ahead
//! snapshot. Clients notice only through their wires dying.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use cluster::{ArbiterConfig, BudgetArbiter, NodeTelemetry, Policy, PowerArbiter};

use crate::client::GrantClient;
use crate::proto::Msg;
use crate::service::{ArbiterService, ServiceConfig, ServiceStats};
use crate::wire::{FaultyWire, PipeWire, Wire, WireFaultPlan};

/// Transport-fault knobs for the simulated cluster.
#[derive(Debug, Clone)]
pub struct FaultKnobs {
    /// Per-message drop probability.
    pub drop_prob: f64,
    /// Per-message duplication probability.
    pub dup_prob: f64,
    /// Per-message delay probability.
    pub delay_prob: f64,
    /// Maximum delay, polls.
    pub max_delay_polls: u64,
    /// Partition `(start_tick, end_tick)` applied to every `stride`-th
    /// client (`None` = no partitions).
    pub partition: Option<(u64, u64, usize)>,
}

impl FaultKnobs {
    /// The chaos-test default: drops, dups, delays, and a partition
    /// hitting every 7th client.
    pub fn hostile() -> Self {
        Self {
            drop_prob: 0.05,
            dup_prob: 0.02,
            delay_prob: 0.10,
            max_delay_polls: 3,
            partition: Some((20, 35, 7)),
        }
    }
}

/// One load-generation scenario.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Simulated telemetry producers (= arbiter nodes).
    pub clients: usize,
    /// Lockstep ticks to run.
    pub ticks: u64,
    /// Master seed: telemetry content, fault schedules, backoff jitter.
    pub seed: u64,
    /// Cluster budget per client, W (total budget = `clients ×` this).
    pub budget_per_client_w: f64,
    /// Per-node grant floor, W.
    pub min_cap_w: f64,
    /// Per-node grant ceiling, W.
    pub max_cap_w: f64,
    /// Service tuning (queue depth, leases, snapshot cadence, …).
    pub service: ServiceConfig,
    /// Transport faults (`None` = clean wires).
    pub faults: Option<FaultKnobs>,
    /// Kill the daemon at the start of this tick and restore it from
    /// the snapshot.
    pub crash_at: Option<u64>,
    /// Snapshot location (required for `crash_at`; `None` disables
    /// snapshotting).
    pub snapshot_path: Option<PathBuf>,
    /// Send telemetry every N ticks (heartbeats in between).
    pub report_every: u64,
    /// Reconnect backoff cap, ticks.
    pub backoff_cap: u32,
    /// Use one shared jitter seed for every client's backoff so a
    /// crashed cohort reconnects in lockstep — required by the bitwise
    /// recovery comparison, unrealistic for throughput runs.
    pub lockstep_backoff: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            clients: 64,
            ticks: 60,
            seed: 1,
            budget_per_client_w: 100.0,
            min_cap_w: 40.0,
            max_cap_w: 130.0,
            service: ServiceConfig::default(),
            faults: None,
            crash_at: None,
            snapshot_path: None,
            report_every: 1,
            backoff_cap: 8,
            lockstep_backoff: false,
        }
    }
}

/// What a run did, in aggregate and grant-for-grant.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Clients simulated.
    pub clients: usize,
    /// Ticks executed.
    pub ticks: u64,
    /// Total budget, W.
    pub budget_w: f64,
    /// Σ grants ≤ budget held at every observed tick.
    pub invariant_ok: bool,
    /// Largest Σ grants observed, W.
    pub max_sum_grants_w: f64,
    /// Service counters (summed across a crash).
    pub service: ServiceStats,
    /// Σ successful client (re)connections beyond each client's first.
    pub reconnects: u64,
    /// Σ reports held back client-side (hold-last-grant ticks).
    pub held_reports: u64,
    /// Σ Busy sheds observed client-side.
    pub busy_seen: u64,
    /// Ticks from the crash until every client held a fresh post-crash
    /// grant (`None`: no crash, or recovery incomplete at run end).
    pub recovery_ticks: Option<u64>,
    /// Times a disconnected client's held grant changed (must be 0).
    pub hold_violations: u64,
    /// Per-node grant log: seq → granted watts bits. The bitwise
    /// fingerprint recovery runs are compared on.
    pub grant_log: Vec<BTreeMap<u64, u64>>,
}

impl LoadgenReport {
    /// Largest seq granted to every node (0 when some node got none).
    pub fn min_granted_seq(&self) -> u64 {
        self.grant_log
            .iter()
            .map(|m| m.keys().next_back().copied().unwrap_or(0))
            .min()
            .unwrap_or(0)
    }
}

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Synthetic telemetry, a pure function of `(seed, node, seq)` — keyed
/// by the client's own sequence, *not* wall time, so a client that
/// paused through an outage resumes producing exactly the reports the
/// uncrashed reference produced under the same seqs.
pub fn synth_telemetry(seed: u64, node: u32, seq: u64) -> NodeTelemetry {
    let h = mix(seed, ((node as u64) << 32) ^ seq);
    let compute_s = 0.5 + 2.0 * unit(h);
    NodeTelemetry {
        compute_s,
        comm_s: 0.2 * unit(mix(h, 1)),
        slack_s: 0.3 * unit(mix(h, 2)),
        rate: 1.0 / compute_s,
        power_w: 60.0 + 60.0 * unit(mix(h, 3)),
    }
}

/// Server ends waiting to be "accepted" by the driver.
type Registry = Arc<Mutex<Vec<(u32, PipeWire)>>>;

fn make_service(cfg: &LoadgenConfig) -> ArbiterService {
    let arbiter: Box<dyn BudgetArbiter> = Box::new(PowerArbiter::new(
        ArbiterConfig {
            budget_w: cfg.budget_per_client_w * cfg.clients as f64,
            min_cap_w: cfg.min_cap_w,
            max_cap_w: cfg.max_cap_w,
            policy: Policy::ProgressFeedback { gain: 1.0 },
        },
        cfg.clients,
    ));
    let svc = ArbiterService::new(arbiter, cfg.service.clone());
    match &cfg.snapshot_path {
        Some(p) => svc.with_snapshot_path(p.clone()),
        None => svc,
    }
}

fn make_client(cfg: &LoadgenConfig, node: u32, registry: &Registry) -> GrantClient {
    let registry = registry.clone();
    let knobs = cfg.faults.clone();
    let seed = cfg.seed;
    let mut attempt = 0u64;
    let connector = Box::new(move || {
        attempt += 1;
        let (client_end, server_end) = PipeWire::pair();
        registry.lock().unwrap().push((node, server_end));
        let plan = match &knobs {
            None => WireFaultPlan::clean(0),
            Some(k) => {
                let mut plan = WireFaultPlan {
                    seed: mix(seed, ((node as u64) << 24) ^ attempt),
                    drop_prob: k.drop_prob,
                    dup_prob: k.dup_prob,
                    delay_prob: k.delay_prob,
                    max_delay_polls: k.max_delay_polls,
                    partitions: Vec::new(),
                };
                if let Some((start, end, stride)) = k.partition {
                    if stride > 0 && (node as usize).is_multiple_of(stride) {
                        plan = plan.partition(simnode::faults::FaultWindow::new(start, end));
                    }
                }
                plan
            }
        };
        Some(Box::new(FaultyWire::new(client_end, plan)) as Box<dyn Wire>)
    });
    let jitter_seed = if cfg.lockstep_backoff {
        cfg.seed
    } else {
        mix(cfg.seed, 0x00C1_1E47 ^ node as u64)
    };
    GrantClient::new(node, connector, cfg.backoff_cap, jitter_seed)
}

/// Run the scenario to completion.
///
/// # Panics
/// Panics when `crash_at` is set without a `snapshot_path`, or when the
/// post-crash snapshot cannot be restored — both are harness bugs, not
/// operating conditions.
pub fn run_loadgen(cfg: &LoadgenConfig) -> LoadgenReport {
    assert!(
        cfg.crash_at.is_none() || cfg.snapshot_path.is_some(),
        "a crash scenario needs a snapshot path to recover from"
    );
    // A stale snapshot from a previous run must not leak into this one.
    if let Some(p) = &cfg.snapshot_path {
        std::fs::remove_file(p).ok();
    }

    let registry: Registry = Arc::new(Mutex::new(Vec::new()));
    let mut service = make_service(cfg);
    let mut clients: Vec<GrantClient> = (0..cfg.clients as u32)
        .map(|i| make_client(cfg, i, &registry))
        .collect();

    let budget_w = cfg.budget_per_client_w * cfg.clients as f64;
    // node → server wire of its latest Hello (BTreeMap: deterministic
    // iteration order, unlike HashMap).
    let mut conns: BTreeMap<u32, PipeWire> = BTreeMap::new();
    let mut grant_log: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); cfg.clients];

    let mut invariant_ok = true;
    let mut max_sum = 0.0f64;
    let mut pre_crash_stats = ServiceStats::default();
    let mut hold_violations = 0u64;
    let mut recovery_ticks = None;
    let mut awaiting_recovery: Vec<bool> = Vec::new();
    let mut last_seen_grant: Vec<Option<f64>> = vec![None; cfg.clients];

    for t in 1..=cfg.ticks {
        // kill -9 at the tick boundary: wires die, state on the floor,
        // a fresh service adopts the write-ahead snapshot.
        if cfg.crash_at == Some(t) {
            for (_, wire) in conns.iter() {
                wire.hang_up();
            }
            for (_, wire) in registry.lock().unwrap().drain(..) {
                wire.hang_up();
            }
            conns.clear();
            pre_crash_stats = service.stats();
            service = make_service(cfg);
            assert!(
                service.restore(),
                "the write-ahead snapshot must be adoptable after a crash"
            );
            awaiting_recovery = vec![true; cfg.clients];
        }

        // Accept pending connections (latest Hello wins the route).
        for (node, wire) in registry.lock().unwrap().drain(..) {
            conns.insert(node, wire);
        }

        // Clients: drain inbound, run reconnect state machines, then
        // produce this tick's traffic.
        for (i, c) in clients.iter_mut().enumerate() {
            let was_connected = c.connected();
            let held_before = c.last_grant();
            c.advance();
            if !was_connected && !c.connected() && held_before != c.last_grant() {
                hold_violations += 1;
            }
            if t.is_multiple_of(cfg.report_every) {
                let rep = synth_telemetry(cfg.seed, i as u32, c.next_seq());
                c.send_report(&rep);
            } else {
                c.heartbeat();
            }
        }

        // Server: ingest everything that arrived, reply in place.
        let mut immediate: Vec<(u32, Vec<Msg>)> = Vec::new();
        for (&node, wire) in conns.iter_mut() {
            while let Ok(Some(msg)) = wire.poll() {
                let replies = service.ingest(msg);
                if !replies.is_empty() {
                    immediate.push((node, replies));
                }
            }
        }
        for (node, replies) in immediate {
            if let Some(wire) = conns.get_mut(&node) {
                for r in &replies {
                    wire.send(r).ok();
                }
            }
        }

        // The arbitration tick, then grant routing + logging.
        let replies = service.tick();
        for msg in &replies {
            let Msg::Grant {
                node, seq, watts, ..
            } = msg
            else {
                continue;
            };
            if *seq > 0 {
                grant_log[*node as usize].insert(*seq, watts.to_bits());
                if let Some(flag) = awaiting_recovery.get_mut(*node as usize) {
                    *flag = false;
                }
            }
            if let Some(wire) = conns.get_mut(node) {
                wire.send(msg).ok();
            }
        }

        // The headline invariant, observed from outside every tick.
        let sum: f64 = service.grants().iter().sum();
        max_sum = max_sum.max(sum);
        if sum > budget_w + 1e-6 {
            invariant_ok = false;
        }

        if recovery_ticks.is_none()
            && cfg.crash_at.is_some_and(|c| t >= c)
            && !awaiting_recovery.is_empty()
            && awaiting_recovery.iter().all(|w| !w)
        {
            recovery_ticks = Some(t - cfg.crash_at.unwrap());
        }

        for (i, c) in clients.iter().enumerate() {
            last_seen_grant[i] = c.last_grant();
        }
    }
    let _ = last_seen_grant;

    let mut stats = service.stats();
    stats.shed += pre_crash_stats.shed;
    stats.rate_limited += pre_crash_stats.rate_limited;
    stats.nacked += pre_crash_stats.nacked;
    stats.duplicates += pre_crash_stats.duplicates;
    stats.leases_expired += pre_crash_stats.leases_expired;
    stats.rounds += pre_crash_stats.rounds;
    stats.snapshots += pre_crash_stats.snapshots;

    LoadgenReport {
        clients: cfg.clients,
        ticks: cfg.ticks,
        budget_w,
        invariant_ok,
        max_sum_grants_w: max_sum,
        service: stats,
        reconnects: clients
            .iter()
            .map(|c| c.stats().connects.saturating_sub(1))
            .sum(),
        held_reports: clients.iter().map(|c| c.stats().held).sum(),
        busy_seen: clients.iter().map(|c| c.stats().busy).sum(),
        recovery_ticks,
        hold_violations,
        grant_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(clients: usize, ticks: u64) -> LoadgenConfig {
        LoadgenConfig {
            clients,
            ticks,
            service: ServiceConfig {
                snapshot_every: 0,
                ..ServiceConfig::default()
            },
            ..LoadgenConfig::default()
        }
    }

    #[test]
    fn clean_run_grants_everyone_and_conserves_budget() {
        let r = run_loadgen(&quick(16, 20));
        assert!(r.invariant_ok);
        assert!(r.max_sum_grants_w <= r.budget_w + 1e-6);
        assert!(r.min_granted_seq() >= 15, "steady traffic grants steadily");
        assert_eq!(r.reconnects, 0);
        assert_eq!(r.hold_violations, 0);
    }

    #[test]
    fn same_seed_same_run_bit_for_bit() {
        let cfg = LoadgenConfig {
            faults: Some(FaultKnobs::hostile()),
            ..quick(12, 30)
        };
        let a = run_loadgen(&cfg);
        let b = run_loadgen(&cfg);
        assert_eq!(a.grant_log, b.grant_log);
        assert_eq!(a.service, b.service);
        let c = run_loadgen(&LoadgenConfig { seed: 2, ..cfg });
        assert_ne!(a.grant_log, c.grant_log, "seeds must matter");
    }

    #[test]
    fn faulty_wires_still_conserve_the_budget() {
        let r = run_loadgen(&LoadgenConfig {
            faults: Some(FaultKnobs::hostile()),
            ..quick(21, 50)
        });
        assert!(r.invariant_ok);
        assert_eq!(r.hold_violations, 0);
        // The partitioned clients went silent long enough to lose their
        // leases; expiry must have reclaimed watts, not leaked them.
        assert!(r.service.leases_expired > 0, "{:?}", r.service);
        assert!(r.max_sum_grants_w <= r.budget_w + 1e-6);
    }
}
