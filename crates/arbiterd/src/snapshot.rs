//! Write-ahead arbiter-state snapshots with atomic replacement.
//!
//! The durability contract: the daemon persists its state *before*
//! releasing the grants computed from it, so a `kill -9` at any instant
//! leaves on disk either the pre-tick or the post-tick state — never a
//! torn hybrid — and a restarted daemon resumes with Σ grants ≤ budget
//! intact and grants bit-identical to what clients last saw (or were
//! about to see). Atomicity comes from the classic
//! write-temp → fsync → rename dance; torn or tampered files are caught
//! by an FNV-1a checksum over the payload and rejected as "no snapshot"
//! rather than trusted.
//!
//! Watts are stored as hex-encoded `f64` bits, not decimal — restore
//! must be *bitwise*, and a decimal round-trip would quietly break the
//! chaos acceptance criterion.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

/// A daemon state capture: everything needed to resume arbitration.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Service tick counter at capture time.
    pub tick: u64,
    /// Budget, W.
    pub budget_w: f64,
    /// Per-node grants, W.
    pub grants_w: Vec<f64>,
    /// Per-node lease expiry tick (`None` = no live lease).
    pub leases: Vec<Option<u64>>,
    /// Partially-accumulated outer-window telemetry: the raw field sums
    /// `[compute_s, comm_s, slack_s, rate, power_w]` and the report
    /// count. A sharded deployment drains this window to the coordinator
    /// on the outer period; persisting it mid-window keeps a restarted
    /// shard's upward aggregation bit-identical to an uncrashed one.
    /// `None` in pre-window snapshot files (read back as an empty
    /// window).
    pub window: Option<([f64; 5], u64)>,
}

const MAGIC: &str = "arbiterd-snapshot v1";

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Snapshot {
    /// Render the on-disk form (text lines + trailing checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = String::new();
        body.push_str(MAGIC);
        body.push('\n');
        body.push_str(&format!("tick {}\n", self.tick));
        body.push_str(&format!("budget {:016x}\n", self.budget_w.to_bits()));
        body.push_str("grants");
        for g in &self.grants_w {
            body.push_str(&format!(" {:016x}", g.to_bits()));
        }
        body.push('\n');
        body.push_str("leases");
        for l in &self.leases {
            match l {
                Some(t) => body.push_str(&format!(" {t}")),
                None => body.push_str(" -"),
            }
        }
        body.push('\n');
        if let Some((sums, count)) = &self.window {
            body.push_str("window");
            for s in sums {
                body.push_str(&format!(" {:016x}", s.to_bits()));
            }
            body.push_str(&format!(" {count}\n"));
        }
        let sum = fnv1a(body.as_bytes());
        body.push_str(&format!("checksum {sum:016x}\n"));
        body.into_bytes()
    }

    /// Parse the on-disk form. `None` on any structural or checksum
    /// mismatch — a broken snapshot is treated as absent, never trusted.
    pub fn from_bytes(bytes: &[u8]) -> Option<Snapshot> {
        let text = std::str::from_utf8(bytes).ok()?;
        let (body, sum_line) = text.rsplit_once("checksum ")?;
        let stored = u64::from_str_radix(sum_line.trim(), 16).ok()?;
        if fnv1a(body.as_bytes()) != stored {
            return None;
        }
        let mut lines = body.lines();
        if lines.next()? != MAGIC {
            return None;
        }
        let tick = lines.next()?.strip_prefix("tick ")?.parse().ok()?;
        let budget_w =
            f64::from_bits(u64::from_str_radix(lines.next()?.strip_prefix("budget ")?, 16).ok()?);
        let grants_w = lines
            .next()?
            .strip_prefix("grants")?
            .split_whitespace()
            .map(|t| u64::from_str_radix(t, 16).ok().map(f64::from_bits))
            .collect::<Option<Vec<_>>>()?;
        let leases = lines
            .next()?
            .strip_prefix("leases")?
            .split_whitespace()
            .map(|t| {
                if t == "-" {
                    Some(None)
                } else {
                    t.parse().ok().map(Some)
                }
            })
            .collect::<Option<Vec<_>>>()?;
        if leases.len() != grants_w.len() {
            return None;
        }
        // The window line is optional: snapshots written before sharding
        // landed simply lack it, and restore as an empty window.
        let window = match lines.next() {
            None => None,
            Some(line) => {
                let mut toks = line.strip_prefix("window")?.split_whitespace();
                let mut sums = [0.0f64; 5];
                for s in &mut sums {
                    *s = f64::from_bits(u64::from_str_radix(toks.next()?, 16).ok()?);
                }
                let count = toks.next()?.parse().ok()?;
                if toks.next().is_some() {
                    return None;
                }
                Some((sums, count))
            }
        };
        Some(Snapshot {
            tick,
            budget_w,
            grants_w,
            leases,
            window,
        })
    }

    /// Persist atomically: write `<path>.tmp`, fsync, rename over
    /// `path`. On any error the previous snapshot (if one exists) is
    /// left untouched.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)
    }

    /// Load from `path`; `None` when missing or unusable.
    pub fn load(path: &Path) -> Option<Snapshot> {
        Snapshot::from_bytes(&fs::read(path).ok()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            tick: 42,
            budget_w: 400.0,
            // Values with awkward bit patterns, to catch any decimal
            // round-trip sneaking in.
            grants_w: vec![f64::from_bits(0x4056_8A3D_70A3_D70A), 95.125, 40.0],
            leases: vec![Some(50), None, Some(61)],
            window: Some((
                [1.5, 0.25, f64::from_bits(0x3FD5_5555_5555_5555), 2.0, 190.5],
                6,
            )),
        }
    }

    #[test]
    fn byte_round_trip_is_exact() {
        let s = sample();
        let back = Snapshot::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
        for (a, b) in back.grants_w.iter().zip(&s.grants_w) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn corruption_is_detected_not_trusted() {
        let mut bytes = sample().to_bytes();
        // Flip one payload byte: the checksum must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert_eq!(Snapshot::from_bytes(&bytes), None);
        // Truncation too.
        let bytes = sample().to_bytes();
        assert_eq!(Snapshot::from_bytes(&bytes[..bytes.len() - 3]), None);
        // And garbage.
        assert_eq!(Snapshot::from_bytes(b"not a snapshot"), None);
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("arbiterd-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        let s = sample();
        s.save(&path).unwrap();
        assert_eq!(Snapshot::load(&path), Some(s.clone()));
        // Overwrite is atomic-replace, not append.
        let s2 = Snapshot { tick: 43, ..s };
        s2.save(&path).unwrap();
        assert_eq!(Snapshot::load(&path), Some(s2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_no_snapshot() {
        assert_eq!(Snapshot::load(Path::new("/nonexistent/nope.snap")), None);
    }

    #[test]
    fn pre_window_snapshots_still_parse() {
        // A file written before the window line existed is exactly what
        // `window: None` serializes to; it must restore as an empty
        // window, not be rejected.
        let old = Snapshot {
            window: None,
            ..sample()
        };
        let back = Snapshot::from_bytes(&old.to_bytes()).unwrap();
        assert_eq!(back.window, None);
        assert_eq!(back, old);
    }
}
