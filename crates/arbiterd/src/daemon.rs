//! The long-running daemon: an [`ArbiterService`] behind a TCP listener.
//!
//! Plain threads over `std::net`, no async runtime: an accept thread
//! spawns one reader per connection, every reader parks on a *blocking*
//! read (with a timeout so it can notice shutdown) and stages inbound
//! messages into its own per-connection inbox, and a ticker thread
//! drives [`ArbiterService::tick`] on a fixed period. The ticker is the
//! only thread that touches the service: it drains every inbox, takes
//! the service lock exactly once per tick, ingests the staged traffic,
//! ticks, and then routes the resulting grants back — grouped into one
//! [`Msg::Batch`] frame per connection, so a connection multiplexing
//! many producers costs one syscall per tick instead of one per node.
//! The service object is the single source of truth; the threads are
//! plumbing, so every robustness property lives in the deterministic
//! core where the tests can reach it.
//!
//! [`Daemon::kill`] is deliberately abrupt — it drops the listener and
//! lets connections die without any state flush — because the crash
//! story the chaos tests exercise is `kill -9`, not a polite shutdown:
//! durability must come from the write-ahead snapshots alone.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::proto::Msg;
use crate::service::{ArbiterService, ServiceStats};
use crate::wire::{TcpWire, Wire, WireError};

use nrm::Backoff;

/// Route table: node id → the write half of its most recent Hello.
type Routes = Arc<Mutex<HashMap<u32, Arc<Mutex<TcpWire>>>>>;

/// Socket/threading knobs, distinct from the deterministic
/// [`crate::service::ServiceConfig`]: nothing here can change *what* the
/// service grants, only how promptly bytes move.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Arbitration heartbeat.
    pub tick_period: Duration,
    /// How long a reader parks in `read(2)` before re-checking the stop
    /// flag. Bounds shutdown latency; idle connections cost no CPU.
    pub read_timeout: Duration,
    /// How long a send may park before the peer is declared dead.
    pub write_timeout: Duration,
    /// Per-connection staged-message cap; overflow drops the newest
    /// message (producers resend telemetry every tick, so a drop heals
    /// on the next report, exactly like a lost datagram).
    pub inbox_depth: usize,
    /// Cap (in 500 µs quanta) for the acceptor's idle backoff.
    pub accept_backoff_cap: u32,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            tick_period: Duration::from_millis(5),
            read_timeout: Duration::from_millis(20),
            write_timeout: Duration::from_millis(250),
            inbox_depth: 8192,
            accept_backoff_cap: 8,
        }
    }
}

/// The acceptor sleeps `quantum × Backoff::record_failure()` when no
/// connection is pending, so an idle listener decays toward ~4 ms polls
/// while a connect burst is drained at full speed after one `reset`.
const ACCEPT_QUANTUM: Duration = Duration::from_micros(500);

/// One live connection as the ticker sees it: the write half for
/// replies, the staged inbound traffic, and a liveness flag the reader
/// clears on its way out.
struct Conn {
    wire: Arc<Mutex<TcpWire>>,
    inbox: Arc<Mutex<Vec<Msg>>>,
    alive: Arc<AtomicBool>,
}

type Conns = Arc<Mutex<Vec<Conn>>>;

/// A running daemon and its control handle.
pub struct Daemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    service: Arc<Mutex<ArbiterService>>,
    dropped: Arc<AtomicU64>,
    threads: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Serve `service` on `listener`, ticking every `tick_period`.
    pub fn spawn(
        listener: TcpListener,
        service: ArbiterService,
        tick_period: Duration,
    ) -> std::io::Result<Daemon> {
        Daemon::spawn_shared(
            listener,
            Arc::new(Mutex::new(service)),
            DaemonConfig {
                tick_period,
                ..DaemonConfig::default()
            },
        )
    }

    /// Serve an externally-owned service handle. A sharded deployment
    /// uses this to keep the coordinator's grip on each shard's service
    /// while the daemon moves its bytes.
    pub fn spawn_shared(
        listener: TcpListener,
        service: Arc<Mutex<ArbiterService>>,
        cfg: DaemonConfig,
    ) -> std::io::Result<Daemon> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let routes: Routes = Arc::new(Mutex::new(HashMap::new()));
        let conns: Conns = Arc::new(Mutex::new(Vec::new()));
        let dropped = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();

        // Ticker: the arbitration heartbeat, and the only service user.
        {
            let stop = stop.clone();
            let service = service.clone();
            let routes = routes.clone();
            let conns = conns.clone();
            let tick_period = cfg.tick_period;
            threads.push(std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(tick_period);

                    // Stage: swap each connection's inbox out under its
                    // own tiny lock; prune connections whose reader left.
                    let mut staged: Vec<(Arc<Mutex<TcpWire>>, Vec<Msg>)> = Vec::new();
                    {
                        let mut table = conns.lock().unwrap();
                        table.retain(|c| c.alive.load(Ordering::SeqCst));
                        for c in table.iter() {
                            let msgs = std::mem::take(&mut *c.inbox.lock().unwrap());
                            if !msgs.is_empty() {
                                staged.push((c.wire.clone(), msgs));
                            }
                        }
                    }

                    // The service lock is taken once per tick, not once
                    // per message: readers never contend on it at all.
                    let mut immediate: Vec<(Arc<Mutex<TcpWire>>, Vec<Msg>)> = Vec::new();
                    let grants = {
                        let mut svc = service.lock().unwrap();
                        for (wire, msgs) in staged {
                            let mut replies = Vec::new();
                            for m in msgs {
                                replies.extend(svc.ingest(m));
                            }
                            if !replies.is_empty() {
                                immediate.push((wire, replies));
                            }
                        }
                        svc.tick()
                    };

                    for (wire, replies) in immediate {
                        send_batched(&wire, replies);
                    }
                    route_replies(&routes, &grants);
                }
            }));
        }

        // Acceptor: one reader thread per connection, jittered
        // exponential backoff while the queue is empty.
        {
            let stop = stop.clone();
            let routes = routes.clone();
            let conns = conns.clone();
            let dropped = dropped.clone();
            let read_timeout = cfg.read_timeout;
            let write_timeout = cfg.write_timeout;
            let inbox_depth = cfg.inbox_depth;
            let mut backoff = Backoff::new(cfg.accept_backoff_cap.max(1), addr.port() as u64);
            threads.push(std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            backoff.reset();
                            spawn_reader(
                                stream,
                                stop.clone(),
                                routes.clone(),
                                conns.clone(),
                                dropped.clone(),
                                read_timeout,
                                write_timeout,
                                inbox_depth,
                            );
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_QUANTUM * backoff.record_failure());
                        }
                        Err(_) => break,
                    }
                }
            }));
        }

        Ok(Daemon {
            addr,
            stop,
            service,
            dropped,
            threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.service.lock().unwrap().stats()
    }

    /// Current grants, W.
    pub fn grants(&self) -> Vec<f64> {
        self.service.lock().unwrap().grants().to_vec()
    }

    /// Messages dropped on inbox overflow since spawn.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    /// The shared service handle (a sharded coordinator holds its own
    /// clone; this one is for tests and tooling).
    pub fn service(&self) -> Arc<Mutex<ArbiterService>> {
        self.service.clone()
    }

    /// Simulated `kill -9`: stop every thread without flushing anything
    /// beyond what the write-ahead snapshots already persisted.
    pub fn kill(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            t.join().ok();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            t.join().ok();
        }
    }
}

/// Send `replies` down one wire as a single frame: one message goes as
/// itself, several are wrapped in a [`Msg::Batch`]. Replies that are
/// already batches (the service folds a batched ingest's replies) are
/// flattened first — batches do not nest on the wire.
fn send_batched(wire: &Arc<Mutex<TcpWire>>, replies: Vec<Msg>) {
    let mut flat: Vec<Msg> = Vec::with_capacity(replies.len());
    for r in replies {
        match r {
            Msg::Batch(members) => flat.extend(members),
            m => flat.push(m),
        }
    }
    // A dead route is cleaned up by its reader thread; a failed send
    // here just means the client reconnects and re-Hellos.
    let mut w = wire.lock().unwrap();
    if flat.len() == 1 {
        w.send(&flat[0]).ok();
    } else if !flat.is_empty() {
        w.send(&Msg::Batch(flat)).ok();
    }
}

/// Deliver a tick's grants: group by destination wire, one batched
/// frame per connection.
fn route_replies(routes: &Routes, replies: &[Msg]) {
    if replies.is_empty() {
        return;
    }
    let mut order: Vec<Arc<Mutex<TcpWire>>> = Vec::new();
    let mut groups: HashMap<usize, Vec<Msg>> = HashMap::new();
    {
        let table = routes.lock().unwrap();
        for msg in replies {
            let Msg::Grant { node, .. } = msg else {
                continue;
            };
            let Some(wire) = table.get(node) else {
                continue;
            };
            let key = Arc::as_ptr(wire) as usize;
            groups
                .entry(key)
                .or_insert_with(|| {
                    order.push(wire.clone());
                    Vec::new()
                })
                .push(msg.clone());
        }
    }
    for wire in order {
        let key = Arc::as_ptr(&wire) as usize;
        if let Some(msgs) = groups.remove(&key) {
            send_batched(&wire, msgs);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_reader(
    stream: TcpStream,
    stop: Arc<AtomicBool>,
    routes: Routes,
    conns: Conns,
    dropped: Arc<AtomicU64>,
    read_timeout: Duration,
    write_timeout: Duration,
    inbox_depth: usize,
) {
    // The reader exclusively owns the blocking read half; the write
    // half goes behind a mutex shared with the ticker. Timeouts live on
    // the shared socket, so the split preserves them.
    let Ok(mut rd) = TcpWire::new_blocking(stream, read_timeout, write_timeout) else {
        return;
    };
    let Ok(wr) = rd.split() else {
        return;
    };
    let wire = Arc::new(Mutex::new(wr));
    let inbox = Arc::new(Mutex::new(Vec::new()));
    let alive = Arc::new(AtomicBool::new(true));
    conns.lock().unwrap().push(Conn {
        wire: wire.clone(),
        inbox: inbox.clone(),
        alive: alive.clone(),
    });
    std::thread::spawn(move || {
        let mut my_nodes: Vec<u32> = Vec::new();
        while !stop.load(Ordering::SeqCst) {
            match rd.poll() {
                Ok(Some(msg)) => {
                    register_hellos(&msg, &routes, &wire, &mut my_nodes);
                    let mut q = inbox.lock().unwrap();
                    if q.len() < inbox_depth {
                        q.push(msg);
                    } else {
                        dropped.fetch_add(1, Ordering::SeqCst);
                    }
                }
                // Read timeout: nothing arrived, loop re-checks stop.
                Ok(None) => {}
                Err(WireError::Disconnected) | Err(WireError::Corrupt(_)) => break,
            }
        }
        alive.store(false, Ordering::SeqCst);
        // Drop our routes so grants stop chasing a dead socket.
        let mut table = routes.lock().unwrap();
        for node in my_nodes {
            if table.get(&node).is_some_and(|w| Arc::ptr_eq(w, &wire)) {
                table.remove(&node);
            }
        }
    });
}

/// Route registration happens on the reader (not the ticker) so a Hello
/// and the grants it provokes can never race: by the time the staged
/// Hello is ingested, its route already exists. Batched Hellos count.
fn register_hellos(
    msg: &Msg,
    routes: &Routes,
    wire: &Arc<Mutex<TcpWire>>,
    my_nodes: &mut Vec<u32>,
) {
    let mut register = |node: u32| {
        routes.lock().unwrap().insert(node, wire.clone());
        if !my_nodes.contains(&node) {
            my_nodes.push(node);
        }
    };
    match msg {
        Msg::Hello { node } => register(*node),
        Msg::Batch(members) => {
            for m in members {
                if let Msg::Hello { node } = m {
                    register(*node);
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::GrantClient;
    use crate::service::ServiceConfig;
    use cluster::{ArbiterConfig, BudgetArbiter, NodeTelemetry, Policy, PowerArbiter};

    fn service(n: usize) -> ArbiterService {
        let arbiter: Box<dyn BudgetArbiter> = Box::new(PowerArbiter::new(
            ArbiterConfig {
                budget_w: 100.0 * n as f64,
                min_cap_w: 40.0,
                max_cap_w: 130.0,
                policy: Policy::ProgressFeedback { gain: 1.0 },
            },
            n,
        ));
        ArbiterService::new(
            arbiter,
            ServiceConfig {
                snapshot_every: 0,
                ..ServiceConfig::default()
            },
        )
    }

    fn tcp_connector(addr: SocketAddr) -> Box<dyn FnMut() -> Option<Box<dyn Wire>> + Send> {
        Box::new(move || {
            TcpStream::connect_timeout(&addr, Duration::from_millis(250))
                .ok()
                .and_then(|s| TcpWire::new(s).ok())
                .map(|w| Box::new(w) as Box<dyn Wire>)
        })
    }

    #[test]
    fn grants_flow_over_real_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let daemon = Daemon::spawn(listener, service(2), Duration::from_millis(5)).unwrap();

        let mut clients: Vec<GrantClient> = (0..2u32)
            .map(|i| GrantClient::new(i, tcp_connector(daemon.addr()), 32, i as u64))
            .collect();

        // Everyone reports until a joint round funds the critical path
        // (node 1): one-shot sends can land in different ticks, so keep
        // the telemetry flowing.
        let times = [0.5, 2.0];
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            for (i, c) in clients.iter_mut().enumerate() {
                c.advance();
                c.send_report(&NodeTelemetry::compute_only(times[i], 1.0 / times[i], 95.0));
            }
            if let (Some(g0), Some(g1)) = (clients[0].last_grant(), clients[1].last_grant()) {
                if g1 > g0 {
                    assert!(g0 + g1 <= 200.0 + 1e-6);
                    break;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "critical node must be funded over the wire: {:?} vs {:?}",
                clients[0].last_grant(),
                clients[1].last_grant()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        daemon.kill();
    }

    #[test]
    fn client_survives_a_daemon_kill_and_redials() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let daemon = Daemon::spawn(listener, service(1), Duration::from_millis(5)).unwrap();
        let addr = daemon.addr();
        let mut c = GrantClient::new(0, tcp_connector(addr), 8, 3);
        c.send_report(&NodeTelemetry::compute_only(1.0, 1.0, 90.0));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while c.last_grant().is_none() && std::time::Instant::now() < deadline {
            c.advance();
            c.send_report(&NodeTelemetry::compute_only(1.0, 1.0, 90.0));
            std::thread::sleep(Duration::from_millis(2));
        }
        let held = c.last_grant().expect("grant before the crash");

        daemon.kill();
        // The outage: sends fail, the grant holds.
        for _ in 0..20 {
            c.advance();
            c.send_report(&NodeTelemetry::compute_only(1.0, 1.0, 90.0));
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(c.last_grant(), Some(held), "hold-last-grant through crash");

        // Restart on the same port; the client redials through backoff.
        let listener = match TcpListener::bind(addr) {
            Ok(l) => l,
            // The OS may hold the port in TIME_WAIT; don't fail the test
            // on environment noise.
            Err(_) => return,
        };
        let daemon2 = Daemon::spawn(listener, service(1), Duration::from_millis(5)).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !c.connected() && std::time::Instant::now() < deadline {
            c.advance();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(c.connected(), "client must redial the restarted daemon");
        assert!(c.stats().connects >= 2);
        daemon2.kill();
    }

    #[test]
    fn one_connection_multiplexes_many_nodes_with_batched_grants() {
        // Four producers share one TCP connection: a batched Hello+
        // telemetry frame up, one batched grant frame back per tick.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let daemon = Daemon::spawn(listener, service(4), Duration::from_millis(5)).unwrap();

        let stream = TcpStream::connect_timeout(&daemon.addr(), Duration::from_millis(250))
            .expect("connect");
        let mut wire = TcpWire::new(stream).expect("wire");
        let hello = Msg::Batch((0..4).map(|node| Msg::Hello { node }).collect());
        wire.send(&hello).expect("hello batch");

        let mut grants = vec![None::<f64>; 4];
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut seq = 1;
        while grants.iter().any(Option::is_none) {
            let report = Msg::Batch(
                (0..4u32)
                    .map(|node| Msg::Telemetry {
                        node,
                        seq,
                        report: NodeTelemetry::compute_only(1.0 + node as f64, 1.0, 95.0),
                    })
                    .collect(),
            );
            seq += 1;
            wire.send(&report).ok();
            while let Ok(Some(msg)) = wire.poll() {
                let members = match msg {
                    Msg::Batch(ms) => ms,
                    m => vec![m],
                };
                for m in members {
                    if let Msg::Grant { node, watts, .. } = m {
                        grants[node as usize] = Some(watts);
                    }
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "all multiplexed nodes must be granted: {grants:?}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let sum: f64 = grants.iter().map(|g| g.unwrap()).sum();
        assert!(sum <= 400.0 + 1e-6, "Σ grants {sum} over budget");
        daemon.kill();
    }
}
