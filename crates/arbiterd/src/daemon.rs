//! The long-running daemon: an [`ArbiterService`] behind a TCP listener.
//!
//! Plain threads over `std::net`, no async runtime: an accept thread
//! spawns one reader per connection, every reader funnels messages into
//! the shared service under a mutex, and a ticker thread drives
//! [`ArbiterService::tick`] on a fixed period, routing each grant back
//! through the connection that most recently said Hello for that node.
//! The service object is the single source of truth; the threads are
//! plumbing, so every robustness property lives in the deterministic
//! core where the tests can reach it.
//!
//! [`Daemon::kill`] is deliberately abrupt — it drops the listener and
//! lets connections die without any state flush — because the crash
//! story the chaos tests exercise is `kill -9`, not a polite shutdown:
//! durability must come from the write-ahead snapshots alone.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::proto::Msg;
use crate::service::{ArbiterService, ServiceStats};
use crate::wire::{TcpWire, Wire, WireError};

/// Route table: node id → the wire of its most recent Hello.
type Routes = Arc<Mutex<HashMap<u32, Arc<Mutex<TcpWire>>>>>;

/// A running daemon and its control handle.
pub struct Daemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    service: Arc<Mutex<ArbiterService>>,
    threads: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Serve `service` on `listener`, ticking every `tick_period`.
    pub fn spawn(
        listener: TcpListener,
        service: ArbiterService,
        tick_period: Duration,
    ) -> std::io::Result<Daemon> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let service = Arc::new(Mutex::new(service));
        let routes: Routes = Arc::new(Mutex::new(HashMap::new()));
        let mut threads = Vec::new();

        // Ticker: the arbitration heartbeat.
        {
            let stop = stop.clone();
            let service = service.clone();
            let routes = routes.clone();
            threads.push(std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(tick_period);
                    let replies = service.lock().unwrap().tick();
                    route_replies(&routes, &replies);
                }
            }));
        }

        // Acceptor: one reader thread per connection.
        {
            let stop = stop.clone();
            let service = service.clone();
            let routes = routes.clone();
            threads.push(std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            spawn_reader(stream, stop.clone(), service.clone(), routes.clone());
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            }));
        }

        Ok(Daemon {
            addr,
            stop,
            service,
            threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.service.lock().unwrap().stats()
    }

    /// Current grants, W.
    pub fn grants(&self) -> Vec<f64> {
        self.service.lock().unwrap().grants().to_vec()
    }

    /// Simulated `kill -9`: stop every thread without flushing anything
    /// beyond what the write-ahead snapshots already persisted.
    pub fn kill(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            t.join().ok();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            t.join().ok();
        }
    }
}

fn route_replies(routes: &Routes, replies: &[Msg]) {
    if replies.is_empty() {
        return;
    }
    let table = routes.lock().unwrap();
    for msg in replies {
        let Msg::Grant { node, .. } = msg else {
            continue;
        };
        if let Some(wire) = table.get(node) {
            // A dead route is cleaned up by its reader thread; a failed
            // send here just means the client reconnects and re-Hellos.
            wire.lock().unwrap().send(msg).ok();
        }
    }
}

fn spawn_reader(
    stream: TcpStream,
    stop: Arc<AtomicBool>,
    service: Arc<Mutex<ArbiterService>>,
    routes: Routes,
) {
    std::thread::spawn(move || {
        let Ok(wire) = TcpWire::new(stream) else {
            return;
        };
        let wire = Arc::new(Mutex::new(wire));
        let mut my_nodes: Vec<u32> = Vec::new();
        'conn: while !stop.load(Ordering::SeqCst) {
            let polled = wire.lock().unwrap().poll();
            match polled {
                Ok(Some(msg)) => {
                    if let Msg::Hello { node } = msg {
                        routes.lock().unwrap().insert(node, wire.clone());
                        if !my_nodes.contains(&node) {
                            my_nodes.push(node);
                        }
                    }
                    let replies = service.lock().unwrap().ingest(msg);
                    let mut w = wire.lock().unwrap();
                    for r in &replies {
                        if w.send(r).is_err() {
                            break 'conn;
                        }
                    }
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(1)),
                Err(WireError::Disconnected) | Err(WireError::Corrupt(_)) => break,
            }
        }
        // Drop our routes so grants stop chasing a dead socket.
        let mut table = routes.lock().unwrap();
        for node in my_nodes {
            if table.get(&node).is_some_and(|w| Arc::ptr_eq(w, &wire)) {
                table.remove(&node);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::GrantClient;
    use crate::service::ServiceConfig;
    use cluster::{ArbiterConfig, BudgetArbiter, NodeTelemetry, Policy, PowerArbiter};

    fn service(n: usize) -> ArbiterService {
        let arbiter: Box<dyn BudgetArbiter> = Box::new(PowerArbiter::new(
            ArbiterConfig {
                budget_w: 100.0 * n as f64,
                min_cap_w: 40.0,
                max_cap_w: 130.0,
                policy: Policy::ProgressFeedback { gain: 1.0 },
            },
            n,
        ));
        ArbiterService::new(
            arbiter,
            ServiceConfig {
                snapshot_every: 0,
                ..ServiceConfig::default()
            },
        )
    }

    fn tcp_connector(addr: SocketAddr) -> Box<dyn FnMut() -> Option<Box<dyn Wire>> + Send> {
        Box::new(move || {
            TcpStream::connect_timeout(&addr, Duration::from_millis(250))
                .ok()
                .and_then(|s| TcpWire::new(s).ok())
                .map(|w| Box::new(w) as Box<dyn Wire>)
        })
    }

    #[test]
    fn grants_flow_over_real_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let daemon = Daemon::spawn(listener, service(2), Duration::from_millis(5)).unwrap();

        let mut clients: Vec<GrantClient> = (0..2u32)
            .map(|i| GrantClient::new(i, tcp_connector(daemon.addr()), 32, i as u64))
            .collect();

        // Everyone reports until a joint round funds the critical path
        // (node 1): one-shot sends can land in different ticks, so keep
        // the telemetry flowing.
        let times = [0.5, 2.0];
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            for (i, c) in clients.iter_mut().enumerate() {
                c.advance();
                c.send_report(&NodeTelemetry::compute_only(times[i], 1.0 / times[i], 95.0));
            }
            if let (Some(g0), Some(g1)) = (clients[0].last_grant(), clients[1].last_grant()) {
                if g1 > g0 {
                    assert!(g0 + g1 <= 200.0 + 1e-6);
                    break;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "critical node must be funded over the wire: {:?} vs {:?}",
                clients[0].last_grant(),
                clients[1].last_grant()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        daemon.kill();
    }

    #[test]
    fn client_survives_a_daemon_kill_and_redials() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let daemon = Daemon::spawn(listener, service(1), Duration::from_millis(5)).unwrap();
        let addr = daemon.addr();
        let mut c = GrantClient::new(0, tcp_connector(addr), 8, 3);
        c.send_report(&NodeTelemetry::compute_only(1.0, 1.0, 90.0));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while c.last_grant().is_none() && std::time::Instant::now() < deadline {
            c.advance();
            std::thread::sleep(Duration::from_millis(2));
        }
        let held = c.last_grant().expect("grant before the crash");

        daemon.kill();
        // The outage: sends fail, the grant holds.
        for _ in 0..20 {
            c.advance();
            c.send_report(&NodeTelemetry::compute_only(1.0, 1.0, 90.0));
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(c.last_grant(), Some(held), "hold-last-grant through crash");

        // Restart on the same port; the client redials through backoff.
        let listener = match TcpListener::bind(addr) {
            Ok(l) => l,
            // The OS may hold the port in TIME_WAIT; don't fail the test
            // on environment noise.
            Err(_) => return,
        };
        let daemon2 = Daemon::spawn(listener, service(1), Duration::from_millis(5)).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !c.connected() && std::time::Instant::now() < deadline {
            c.advance();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(c.connected(), "client must redial the restarted daemon");
        assert!(c.stats().connects >= 2);
        daemon2.kill();
    }
}
