//! The daemon's deterministic core: ingress policing, leases, ticks,
//! and write-ahead snapshots around a wrapped [`BudgetArbiter`].
//!
//! [`ArbiterService`] is intentionally free of threads, sockets, and
//! clocks — the TCP daemon ([`crate::daemon`]) and the in-process load
//! generator ([`crate::loadgen`]) both drive this same object, so every
//! robustness property (bounded queues, shedding, lease expiry, crash
//! recovery) is testable bit-reproducibly without touching the network.
//!
//! Robustness posture, in ingest order:
//! 1. **unknown node id** → NACK (a grant for it cannot exist);
//! 2. **duplicate/stale seq** → silently ignored (the fault layer
//!    duplicates and reorders; the service must be idempotent);
//! 3. **token bucket** per client → [`Msg::Busy`] with a retry hint;
//! 4. **bounded ingress queue** → shed with [`Msg::Busy`], never an
//!    unbounded buffer;
//! 5. **malformed telemetry** → [`Msg::Nack`] via the recoverable
//!    [`cluster::TelemetryError`] path — one bad client cannot abort
//!    the daemon.
//!
//! Σ grants ≤ budget stays a *hard assert* inside the arbiter: that
//! invariant breaking is a daemon bug, not an operating condition.

use std::path::PathBuf;

use cluster::{BudgetArbiter, NodeTelemetry, RackWindow};

use crate::proto::Msg;
use crate::snapshot::Snapshot;

/// Service tuning knobs (see EXPERIMENTS.md for the operational guide).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Ingress queue capacity, telemetry messages. Arrivals beyond this
    /// are shed with [`Msg::Busy`].
    pub queue_depth: usize,
    /// Token-bucket burst capacity per client, messages.
    pub rate_capacity: f64,
    /// Token refill per client per tick.
    pub rate_refill: f64,
    /// Lease length, ticks: a client silent for this long is expired
    /// and its watts reclaimed.
    pub lease_ticks: u64,
    /// Snapshot every N ticks (1 = write-ahead on every tick; 0
    /// disables snapshotting).
    pub snapshot_every: u64,
    /// Back-off hint carried by [`Msg::Busy`], ticks.
    pub retry_after: u32,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_depth: 4096,
            rate_capacity: 4.0,
            rate_refill: 2.0,
            lease_ticks: 8,
            snapshot_every: 1,
            retry_after: 2,
        }
    }
}

/// What the service did so far (monotone counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Telemetry shed because the ingress queue was full.
    pub shed: u64,
    /// Telemetry rejected by the per-client token bucket.
    pub rate_limited: u64,
    /// Telemetry NACKed as malformed (or for an unknown node id).
    pub nacked: u64,
    /// Duplicate/stale messages silently dropped.
    pub duplicates: u64,
    /// Leases expired (watts reclaimed).
    pub leases_expired: u64,
    /// Redistribution rounds actually run.
    pub rounds: u64,
    /// Snapshots written.
    pub snapshots: u64,
}

/// The daemon core: one wrapped arbiter plus all the service state.
pub struct ArbiterService {
    arbiter: Box<dyn BudgetArbiter>,
    cfg: ServiceConfig,
    /// Accepted-but-unprocessed telemetry this round. Reports fold
    /// straight into `fresh` at ingest (newest seq wins, so arrival
    /// order is irrelevant); this counter only enforces the bounded-
    /// ingress contract — arrivals past `queue_depth` shed with Busy.
    queued: usize,
    /// Per-client token buckets.
    buckets: Vec<f64>,
    /// Per-client lease expiry tick (`None` = not leased).
    leases: Vec<Option<u64>>,
    /// Highest telemetry seq accepted per client (duplicate filter).
    last_seq: Vec<u64>,
    /// Freshest report per client in the current round.
    fresh: Vec<Option<(u64, NodeTelemetry)>>,
    /// Accumulated telemetry sums since the last [`ArbiterService::
    /// take_window`]: the upward half of a sharded deployment, where a
    /// coordinator drains each shard's window on the outer period
    /// exactly as [`cluster::RackArbiter`] drains its racks'.
    window: RackWindow,
    /// Reused per-tick staging for the redistribute call; kept across
    /// ticks so a full round does not reallocate `node_count` options.
    reports_scratch: Vec<Option<NodeTelemetry>>,
    tick: u64,
    snapshot_path: Option<PathBuf>,
    stats: ServiceStats,
}

impl ArbiterService {
    /// Wrap `arbiter` under `cfg`. Snapshotting is off until
    /// [`ArbiterService::with_snapshot_path`] supplies a location.
    pub fn new(arbiter: Box<dyn BudgetArbiter>, cfg: ServiceConfig) -> Self {
        let n = arbiter.node_count();
        Self {
            arbiter,
            buckets: vec![cfg.rate_capacity; n],
            leases: vec![None; n],
            last_seq: vec![0; n],
            fresh: vec![None; n],
            cfg,
            queued: 0,
            window: RackWindow::default(),
            reports_scratch: Vec::with_capacity(n),
            tick: 0,
            snapshot_path: None,
            stats: ServiceStats::default(),
        }
    }

    /// Persist state to `path` every `snapshot_every` ticks, write-ahead
    /// of grant release.
    pub fn with_snapshot_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot_path = Some(path.into());
        self
    }

    /// Try to resume from the snapshot at the configured path. Returns
    /// `true` when a usable snapshot was adopted (tick counter, budget,
    /// grants — bitwise — and the lease table); `false` leaves the fresh
    /// state untouched, which is the cold-start path.
    pub fn restore(&mut self) -> bool {
        let Some(path) = &self.snapshot_path else {
            return false;
        };
        let Some(snap) = Snapshot::load(path) else {
            return false;
        };
        if snap.grants_w.len() != self.arbiter.node_count() {
            return false;
        }
        self.arbiter.set_budget(snap.budget_w);
        if !self.arbiter.restore_grants(&snap.grants_w) {
            return false;
        }
        self.tick = snap.tick;
        self.leases = snap.leases;
        // Adopt the mid-epoch aggregation window (bit-exact), so a
        // restarted shard's upward sums match an uncrashed run's.
        self.window = match snap.window {
            Some((sums, count)) => RackWindow::from_parts(sums, count),
            None => RackWindow::default(),
        };
        true
    }

    /// Handle one inbound message, returning the immediate replies to
    /// send back on the same connection. A [`Msg::Batch`] distributes
    /// over its members, and multiple replies fold back into one batch —
    /// so batching is transparent to the service semantics (same state
    /// transitions, same reply contents) and costs one frame each way.
    pub fn ingest(&mut self, msg: Msg) -> Vec<Msg> {
        match msg {
            Msg::Batch(msgs) => {
                let mut replies = Vec::new();
                for m in msgs {
                    // Nested batches never decode off the wire; one built
                    // in process is a harness bug and is skipped.
                    if matches!(m, Msg::Batch(_)) {
                        continue;
                    }
                    replies.extend(self.ingest_one(m));
                }
                if replies.len() > 1 {
                    vec![Msg::Batch(replies)]
                } else {
                    replies
                }
            }
            other => self.ingest_one(other),
        }
    }

    fn ingest_one(&mut self, msg: Msg) -> Vec<Msg> {
        match msg {
            Msg::Hello { node } => {
                let Some(id) = self.known(node) else {
                    return vec![Msg::Nack { seq: 0 }];
                };
                self.renew_lease(id);
                // Answer with the current grant so a reconnecting client
                // recovers its cap immediately.
                vec![Msg::Grant {
                    node,
                    seq: 0,
                    tick: self.tick,
                    watts: self.arbiter.grants()[id],
                }]
            }
            Msg::Heartbeat { node } => {
                if let Some(id) = self.known(node) {
                    self.renew_lease(id);
                }
                Vec::new()
            }
            Msg::Telemetry { node, seq, report } => self.ingest_telemetry(node, seq, report),
            // Server-only messages arriving here mean a confused client;
            // ignore rather than die. Batches were unpacked by `ingest`.
            Msg::Grant { .. } | Msg::Busy { .. } | Msg::Nack { .. } | Msg::Batch(_) => Vec::new(),
        }
    }

    fn ingest_telemetry(&mut self, node: u32, seq: u64, report: NodeTelemetry) -> Vec<Msg> {
        let Some(id) = self.known(node) else {
            self.stats.nacked += 1;
            return vec![Msg::Nack { seq }];
        };
        if seq <= self.last_seq[id] && self.last_seq[id] != 0 {
            self.stats.duplicates += 1;
            return Vec::new();
        }
        if self.buckets[id] < 1.0 {
            self.stats.rate_limited += 1;
            return vec![Msg::Busy {
                retry_after: self.cfg.retry_after,
            }];
        }
        if self.queued >= self.cfg.queue_depth {
            self.stats.shed += 1;
            return vec![Msg::Busy {
                retry_after: self.cfg.retry_after,
            }];
        }
        if let Err(_e) = report.validate(id) {
            self.stats.nacked += 1;
            return vec![Msg::Nack { seq }];
        }
        self.buckets[id] -= 1.0;
        self.last_seq[id] = seq;
        self.renew_lease(id);
        self.queued += 1;
        // Fold into the round immediately — same newest-seq-wins
        // predicate the old deferred queue drain applied, minus a
        // round-trip through a staging deque per message.
        if self.fresh[id].as_ref().is_none_or(|(s, _)| *s < seq) {
            self.fresh[id] = Some((seq, report));
        }
        Vec::new()
    }

    /// One arbitration tick: refill buckets, expire leases (reclaiming
    /// their watts), fold queued telemetry into the round, redistribute,
    /// snapshot (write-ahead), and emit the round's grants.
    ///
    /// Equivalent to [`ArbiterService::begin_tick`] +
    /// [`ArbiterService::finish_tick`]; the split exists so a sharding
    /// coordinator can drain windows and re-fit shard budgets *between*
    /// the two halves (telemetry up, sub-budget down, then redistribute
    /// under the new budget — the [`cluster::RackArbiter`] ordering).
    pub fn tick(&mut self) -> Vec<Msg> {
        self.begin_tick();
        self.finish_tick()
    }

    /// First half of a tick: advance the clock, refill buckets, expire
    /// leases, and fold queued telemetry into the round (and into the
    /// outer aggregation window). Must be followed by
    /// [`ArbiterService::finish_tick`].
    pub fn begin_tick(&mut self) {
        self.tick += 1;
        for b in &mut self.buckets {
            *b = (*b + self.cfg.rate_refill).min(self.cfg.rate_capacity);
        }

        // Lease expiry: the silent client's grant is dropped to the
        // floor and the freed watts return to the pool at the next
        // redistribution. Σ ≤ budget can only improve here.
        for id in 0..self.leases.len() {
            if let Some(expiry) = self.leases[id] {
                if expiry <= self.tick {
                    self.leases[id] = None;
                    self.arbiter.reclaim(id);
                    self.stats.leases_expired += 1;
                }
            }
        }

        // Telemetry already folded into `fresh` at ingest (newest seq
        // wins); a report accepted this round outlives its lease expiry
        // above, exactly as a queued report used to. Reset the bounded-
        // ingress counter for the next round.
        self.queued = 0;

        // Aggregate the round's accepted reports upward, in node order —
        // the same fold order RackArbiter uses over a rack span, which
        // keeps a sharded run's window sums bit-identical to the
        // in-process tree's.
        for (_, report) in self.fresh.iter().flatten() {
            self.window.add(report);
        }
    }

    /// Second half of a tick: redistribute (when the round saw
    /// telemetry), snapshot write-ahead, and emit the round's grants.
    pub fn finish_tick(&mut self) -> Vec<Msg> {
        // Redistribute only when the round saw telemetry: an idle tick
        // must not perturb grants (and bitwise-matches the in-process
        // arbiter, which is only called when reports exist).
        if self.fresh.iter().any(Option::is_some) {
            let mut reports = std::mem::take(&mut self.reports_scratch);
            reports.clear();
            reports.extend(self.fresh.iter().map(|f| f.as_ref().map(|(_, r)| *r)));
            // Ingest already validated every queued report, so the
            // trusted path skips the redundant per-field scan (grants
            // are bit-identical either way); an error here is
            // unreachable in practice; treat it as a dropped round
            // rather than a reason to die.
            match self.arbiter.redistribute_trusted(&reports) {
                Ok(_) => self.stats.rounds += 1,
                Err(_) => self.stats.nacked += 1,
            }
            self.reports_scratch = reports;
        }

        // Write-ahead: persist the post-round state before any grant
        // leaves the process.
        if self.cfg.snapshot_every > 0 && self.tick.is_multiple_of(self.cfg.snapshot_every) {
            self.write_snapshot();
        }

        let grants = self.arbiter.grants();
        // Sized up front: filter_map gives collect no usable size hint,
        // and on a full round this reallocates its way to node_count.
        let mut replies: Vec<Msg> = Vec::with_capacity(self.fresh.len());
        replies.extend(self.fresh.iter().enumerate().filter_map(|(id, f)| {
            f.as_ref().map(|(seq, _)| Msg::Grant {
                node: id as u32,
                seq: *seq,
                tick: self.tick,
                watts: grants[id],
            })
        }));
        for f in &mut self.fresh {
            *f = None;
        }
        replies
    }

    fn write_snapshot(&mut self) {
        let Some(path) = &self.snapshot_path else {
            return;
        };
        let snap = Snapshot {
            tick: self.tick,
            budget_w: self.arbiter.budget(),
            grants_w: self.arbiter.grants().to_vec(),
            leases: self.leases.clone(),
            window: Some((self.window.sums(), self.window.count())),
        };
        // A failed write is survivable (the previous snapshot stays);
        // recovery fidelity degrades, the service does not.
        if snap.save(path).is_ok() {
            self.stats.snapshots += 1;
        }
    }

    fn known(&self, node: u32) -> Option<usize> {
        let id = node as usize;
        (id < self.arbiter.node_count()).then_some(id)
    }

    fn renew_lease(&mut self, id: usize) {
        self.leases[id] = Some(self.tick + self.cfg.lease_ticks);
    }

    /// Current per-node grants, W.
    pub fn grants(&self) -> &[f64] {
        self.arbiter.grants()
    }

    /// The budget being divided, W.
    pub fn budget(&self) -> f64 {
        self.arbiter.budget()
    }

    /// The service tick counter.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Whether `node` currently holds a live lease.
    pub fn leased(&self, node: usize) -> bool {
        self.leases.get(node).is_some_and(Option::is_some)
    }

    /// Drain the outer aggregation window into one shard-level report:
    /// `None` when no telemetry was accepted since the last drain (the
    /// whole shard is silent and the coordinator freezes its
    /// sub-budget, mirroring the silent-rack rule).
    pub fn take_window(&mut self) -> Option<NodeTelemetry> {
        self.window.take()
    }

    /// Re-budget the wrapped arbiter (the downward half of a sharded
    /// deployment). Bit-stable: a same-bits budget is a no-op, so a
    /// coordinator re-asserting an unchanged sub-budget never perturbs
    /// grants.
    pub fn set_budget(&mut self, budget_w: f64) {
        self.arbiter.set_budget(budget_w);
    }

    /// Σ of the current grants, W.
    pub fn sum_grants(&self) -> f64 {
        self.arbiter.grants().iter().sum()
    }

    /// Service counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ArbiterConfig, Policy, PowerArbiter};

    fn arbiter(n: usize) -> Box<dyn BudgetArbiter> {
        Box::new(PowerArbiter::new(
            ArbiterConfig {
                budget_w: 100.0 * n as f64,
                min_cap_w: 40.0,
                max_cap_w: 130.0,
                policy: Policy::ProgressFeedback { gain: 1.0 },
            },
            n,
        ))
    }

    fn telemetry(node: u32, seq: u64, compute_s: f64) -> Msg {
        Msg::Telemetry {
            node,
            seq,
            report: NodeTelemetry::compute_only(compute_s, 1.0 / compute_s, 90.0),
        }
    }

    fn sum(grants: &[f64]) -> f64 {
        grants.iter().sum()
    }

    #[test]
    fn a_full_round_matches_the_bare_arbiter_bitwise() {
        let mut svc = ArbiterService::new(arbiter(4), ServiceConfig::default());
        let mut bare = PowerArbiter::new(
            ArbiterConfig {
                budget_w: 400.0,
                min_cap_w: 40.0,
                max_cap_w: 130.0,
                policy: Policy::ProgressFeedback { gain: 1.0 },
            },
            4,
        );
        let times = [0.5, 1.0, 1.5, 2.5];
        for (i, t) in times.iter().enumerate() {
            assert!(svc.ingest(telemetry(i as u32, 1, *t)).is_empty());
        }
        let replies = svc.tick();
        assert_eq!(replies.len(), 4);
        let reports: Vec<Option<NodeTelemetry>> = times
            .iter()
            .map(|t| Some(NodeTelemetry::compute_only(*t, 1.0 / t, 90.0)))
            .collect();
        let expect = bare.redistribute(&reports).unwrap();
        for r in &replies {
            let Msg::Grant { node, watts, .. } = r else {
                panic!("expected a grant, got {r:?}");
            };
            assert_eq!(
                watts.to_bits(),
                expect[*node as usize].to_bits(),
                "daemon grants must be bit-identical to the bare arbiter"
            );
        }
    }

    #[test]
    fn queue_overflow_sheds_with_retry_hint() {
        let cfg = ServiceConfig {
            queue_depth: 2,
            rate_capacity: 100.0,
            rate_refill: 100.0,
            ..ServiceConfig::default()
        };
        let mut svc = ArbiterService::new(arbiter(8), cfg);
        assert!(svc.ingest(telemetry(0, 1, 1.0)).is_empty());
        assert!(svc.ingest(telemetry(1, 1, 1.0)).is_empty());
        let reply = svc.ingest(telemetry(2, 1, 1.0));
        assert_eq!(reply, vec![Msg::Busy { retry_after: 2 }]);
        assert_eq!(svc.stats().shed, 1);
        // The shed round still redistributes what fit.
        let replies = svc.tick();
        assert_eq!(replies.len(), 2);
    }

    #[test]
    fn token_bucket_limits_a_chatty_client() {
        let cfg = ServiceConfig {
            rate_capacity: 2.0,
            rate_refill: 1.0,
            ..ServiceConfig::default()
        };
        let mut svc = ArbiterService::new(arbiter(2), cfg);
        assert!(svc.ingest(telemetry(0, 1, 1.0)).is_empty());
        assert!(svc.ingest(telemetry(0, 2, 1.0)).is_empty());
        let reply = svc.ingest(telemetry(0, 3, 1.0));
        assert_eq!(reply, vec![Msg::Busy { retry_after: 2 }]);
        assert_eq!(svc.stats().rate_limited, 1);
        // A tick refills one token; the client may speak again.
        svc.tick();
        assert!(svc.ingest(telemetry(0, 3, 1.0)).is_empty());
    }

    #[test]
    fn malformed_and_unknown_are_nacked_without_dying() {
        let mut svc = ArbiterService::new(arbiter(2), ServiceConfig::default());
        let bad = Msg::Telemetry {
            node: 0,
            seq: 1,
            report: NodeTelemetry::compute_only(1.0, 1.0, f64::NAN),
        };
        assert_eq!(svc.ingest(bad), vec![Msg::Nack { seq: 1 }]);
        assert_eq!(
            svc.ingest(telemetry(99, 5, 1.0)),
            vec![Msg::Nack { seq: 5 }]
        );
        assert_eq!(svc.stats().nacked, 2);
        // Healthy traffic still flows.
        assert!(svc.ingest(telemetry(0, 2, 1.0)).is_empty());
        assert!(svc.ingest(telemetry(1, 1, 1.0)).is_empty());
        assert_eq!(svc.tick().len(), 2);
    }

    #[test]
    fn duplicates_are_idempotent() {
        let mut svc = ArbiterService::new(arbiter(2), ServiceConfig::default());
        assert!(svc.ingest(telemetry(0, 1, 1.0)).is_empty());
        assert!(svc.ingest(telemetry(0, 1, 1.0)).is_empty(), "dup ignored");
        assert_eq!(svc.stats().duplicates, 1);
        assert!(svc.ingest(telemetry(1, 1, 2.0)).is_empty());
        let replies = svc.tick();
        assert_eq!(replies.len(), 2);
    }

    #[test]
    fn lease_expiry_freezes_then_reclaims_the_silent_client() {
        let cfg = ServiceConfig {
            lease_ticks: 3,
            ..ServiceConfig::default()
        };
        let mut svc = ArbiterService::new(arbiter(3), cfg);
        let budget = svc.budget();
        // Round 1: everyone reports; node 2 is the critical path.
        for (i, t) in [0.5, 1.0, 2.5].iter().enumerate() {
            svc.ingest(telemetry(i as u32, 1, *t));
        }
        svc.tick();
        let boosted = svc.grants()[2];
        assert!(boosted > 100.0, "critical node funded: {boosted}");

        // Node 2 goes silent. While the lease lives, its grant freezes
        // bitwise (the PR-5 silent semantics).
        svc.ingest(telemetry(0, 2, 0.5));
        svc.ingest(telemetry(1, 2, 1.0));
        svc.tick();
        assert_eq!(svc.grants()[2].to_bits(), boosted.to_bits());
        assert!(svc.leased(2));

        // Lease expires: watts reclaimed to the floor, Σ ≤ budget holds.
        svc.ingest(telemetry(0, 3, 0.5));
        svc.ingest(telemetry(1, 3, 1.0));
        svc.tick();
        assert!(!svc.leased(2), "lease must expire");
        assert_eq!(svc.stats().leases_expired, 1);
        assert_eq!(svc.grants()[2], 40.0, "watts reclaimed to the floor");
        assert!(sum(svc.grants()) <= budget + 1e-6);

        // The freed watts fund the survivors at the next round.
        svc.ingest(telemetry(0, 4, 0.5));
        svc.ingest(telemetry(1, 4, 3.0));
        svc.tick();
        assert!(sum(svc.grants()) <= budget + 1e-6);
        assert!(
            svc.grants()[1] > 100.0,
            "reclaimed watts should fund the lagging survivor: {:?}",
            svc.grants()
        );
    }

    #[test]
    fn snapshot_restore_resumes_bitwise() {
        let dir = std::env::temp_dir().join(format!("arbiterd-svc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("svc.snap");

        let cfg = ServiceConfig::default();
        let mut svc = ArbiterService::new(arbiter(3), cfg.clone()).with_snapshot_path(path.clone());
        for round in 1..=3u64 {
            for (i, t) in [0.5, 1.0, 2.0].iter().enumerate() {
                svc.ingest(telemetry(i as u32, round, *t));
            }
            svc.tick();
        }
        let grants_before = svc.grants().to_vec();
        let tick_before = svc.now();
        drop(svc); // kill -9: no shutdown path runs

        let mut revived = ArbiterService::new(arbiter(3), cfg).with_snapshot_path(path.clone());
        assert!(revived.restore(), "snapshot must be adoptable");
        assert_eq!(revived.now(), tick_before);
        for (a, b) in revived.grants().iter().zip(&grants_before) {
            assert_eq!(a.to_bits(), b.to_bits(), "grants restore bitwise");
        }
        for node in 0..3 {
            assert!(revived.leased(node), "leases restore with the state");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batched_ingest_is_transparent() {
        // The same four reports, as singletons vs one batch: identical
        // state transitions, bit-identical grants, and the batched
        // replies are the singleton replies folded into one frame.
        let mut single = ArbiterService::new(arbiter(4), ServiceConfig::default());
        let mut batched = ArbiterService::new(arbiter(4), ServiceConfig::default());
        let times = [0.5, 1.0, 1.5, 2.5];
        let msgs: Vec<Msg> = times
            .iter()
            .enumerate()
            .map(|(i, t)| telemetry(i as u32, 1, *t))
            .collect();
        for m in &msgs {
            assert!(single.ingest(m.clone()).is_empty());
        }
        assert!(batched.ingest(Msg::Batch(msgs)).is_empty());
        let a = single.tick();
        let b = batched.tick();
        assert_eq!(a, b, "tick replies must match");
        for (ga, gb) in single.grants().iter().zip(batched.grants()) {
            assert_eq!(ga.to_bits(), gb.to_bits());
        }
        assert_eq!(single.stats(), batched.stats());

        // Replies fold into one batch when there are several (here: two
        // Hellos each answered with a grant).
        let replies = batched.ingest(Msg::Batch(vec![
            Msg::Hello { node: 0 },
            Msg::Hello { node: 1 },
        ]));
        assert_eq!(replies.len(), 1);
        let Msg::Batch(inner) = &replies[0] else {
            panic!("expected a batched reply, got {replies:?}");
        };
        assert_eq!(inner.len(), 2);
        assert!(inner.iter().all(|m| matches!(m, Msg::Grant { .. })));
    }

    #[test]
    fn window_accumulates_and_drains_like_a_rack() {
        // The service's window must equal folding the same accepted
        // reports into a bare RackWindow in node order.
        let mut svc = ArbiterService::new(arbiter(3), ServiceConfig::default());
        let mut shadow = cluster::RackWindow::default();
        for round in 1..=2u64 {
            let times = [0.5, 1.0, 2.0];
            for (i, t) in times.iter().enumerate() {
                svc.ingest(telemetry(i as u32, round, *t));
                shadow.add(&NodeTelemetry::compute_only(*t, 1.0 / t, 90.0));
            }
            svc.tick();
        }
        let got = svc.take_window().expect("window has reports");
        let want = shadow.take().expect("shadow has reports");
        for (a, b) in [
            (got.compute_s, want.compute_s),
            (got.comm_s, want.comm_s),
            (got.slack_s, want.slack_s),
            (got.rate, want.rate),
            (got.power_w, want.power_w),
        ] {
            assert_eq!(a.to_bits(), b.to_bits(), "window sums must be bitwise");
        }
        assert!(svc.take_window().is_none(), "drain empties the window");
    }

    #[test]
    fn idle_ticks_do_not_perturb_grants() {
        let mut svc = ArbiterService::new(arbiter(2), ServiceConfig::default());
        svc.ingest(telemetry(0, 1, 1.0));
        svc.ingest(telemetry(1, 1, 2.0));
        svc.tick();
        let grants = svc.grants().to_vec();
        for _ in 0..5 {
            assert!(svc.tick().is_empty(), "idle tick grants nothing");
        }
        assert_eq!(svc.grants(), grants.as_slice());
        assert_eq!(svc.stats().rounds, 1);
    }
}
