//! Horizontal sharding: N arbiter shards under one budget coordinator.
//!
//! One `arbiterd` instance tops out at one machine's connection load.
//! This module splits the producer population across `N` shards — each
//! a full [`ArbiterService`] owning a contiguous span of nodes and a
//! rack-style *sub-budget* — and re-splits the machine budget across
//! the shards on an outer period, reusing [`cluster::OuterSolver`]
//! verbatim: telemetry sums flow up (each shard drains its
//! [`cluster::RackWindow`]), sub-budgets flow down, and a silent shard
//! keeps its sub-budget frozen exactly like a silent rack.
//!
//! Because the solver *is* the rack-level engine and each shard's
//! service redistributes exactly like a rack's child arbiter, a
//! lockstep sharded run is bit-identical to one [`cluster::RackArbiter`]
//! whose racks are the shard spans (`inner_period = 1`, same outer
//! period and policy) — the tests assert that, grant for grant.
//!
//! Two layers, same split as service/daemon:
//! - [`ShardedService`]: the deterministic core — lockstep ticks, no
//!   threads, drives `N` services and the solver in a fixed order.
//! - [`ShardedDaemon`]: the live plumbing — `N` TCP daemons over shared
//!   service handles plus a coordinator thread running the same solve
//!   on a wall-clock outer period, with the machine-wide
//!   Σ grants ≤ budget invariant monitored on every epoch.
//!
//! Node addressing: the wire always carries *shard-local* ids (shard
//! `s` numbers its nodes `0..span.len()`); [`ShardedService::locate`]
//! maps a global node id to its `(shard, local)` pair.

use std::net::{SocketAddr, TcpListener};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use cluster::{ArbiterConfig, NodeTelemetry, OuterSolver};

use crate::daemon::{Daemon, DaemonConfig};
use crate::proto::Msg;
use crate::service::{ArbiterService, ServiceStats};

/// Split `nodes` into `shards` contiguous, near-equal spans (the first
/// `nodes % shards` spans get one extra node), in global node order.
///
/// # Panics
/// Panics when `shards` is zero or exceeds `nodes`.
pub fn shard_spans(nodes: usize, shards: usize) -> Vec<Range<usize>> {
    assert!(shards > 0, "need at least one shard");
    assert!(
        shards <= nodes,
        "cannot spread {nodes} nodes over {shards} shards"
    );
    let base = nodes / shards;
    let extra = nodes % shards;
    let mut spans = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        spans.push(start..start + len);
        start += len;
    }
    spans
}

/// Builds one shard's service from its position, its node count, and
/// its arbiter configuration (budget already set to the sub-budget).
pub type MakeShard<'a> = dyn FnMut(usize, ArbiterConfig, usize) -> ArbiterService + 'a;

/// The deterministic sharded core: `N` services plus the outer solver,
/// stepped in lockstep.
pub struct ShardedService {
    shards: Vec<ArbiterService>,
    spans: Vec<Range<usize>>,
    solver: OuterSolver,
    outer_period: u64,
    machine_budget_w: f64,
    tick: u64,
    max_sum_w: f64,
}

impl ShardedService {
    /// Split `nodes` producers across `shards` services. `cfg` is the
    /// *machine-level* configuration (`budget_w` = whole machine); each
    /// shard is built by `make` from an `ArbiterConfig` whose budget is
    /// its initial sub-budget — the same proportional-share waterfill
    /// [`cluster::RackArbiter::new`] seeds its racks with. `cfg.policy`
    /// divides at both levels.
    ///
    /// # Panics
    /// Panics on a zero/oversized shard count or a non-positive outer
    /// period.
    pub fn new(
        cfg: &ArbiterConfig,
        nodes: usize,
        shards: usize,
        outer_period: u64,
        make: &mut MakeShard,
    ) -> Self {
        assert!(outer_period > 0, "outer period must be positive");
        let spans = shard_spans(nodes, shards);
        let (min, max): (Vec<f64>, Vec<f64>) = spans
            .iter()
            .map(|s| {
                (
                    s.len() as f64 * cfg.min_cap_w,
                    s.len() as f64 * cfg.max_cap_w,
                )
            })
            .unzip();
        let shares: Vec<f64> = spans
            .iter()
            .map(|s| cfg.budget_w * (s.len() as f64 / nodes as f64))
            .collect();
        let solver = OuterSolver::new(cfg.policy, min, max, &shares, cfg.budget_w);
        let services: Vec<ArbiterService> = spans
            .iter()
            .zip(solver.sub_budgets())
            .enumerate()
            .map(|(i, (span, &b))| {
                make(
                    i,
                    ArbiterConfig {
                        budget_w: b,
                        ..*cfg
                    },
                    span.len(),
                )
            })
            .collect();
        Self {
            shards: services,
            spans,
            solver,
            outer_period,
            machine_budget_w: cfg.budget_w,
            tick: 0,
            max_sum_w: 0.0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Global-node span of each shard, in shard order.
    pub fn spans(&self) -> &[Range<usize>] {
        &self.spans
    }

    /// Map a global node id to `(shard, shard-local id)`.
    pub fn locate(&self, node: usize) -> (usize, u32) {
        let shard = self
            .spans
            .iter()
            .position(|s| s.contains(&node))
            .unwrap_or_else(|| panic!("node {node} outside every shard span"));
        (shard, (node - self.spans[shard].start) as u32)
    }

    /// The whole-machine budget being divided, W.
    pub fn machine_budget_w(&self) -> f64 {
        self.machine_budget_w
    }

    /// Current per-shard sub-budgets, W.
    pub fn sub_budgets(&self) -> &[f64] {
        self.solver.sub_budgets()
    }

    /// Borrow shard `i`'s service (tests, stats).
    pub fn shard(&self, i: usize) -> &ArbiterService {
        &self.shards[i]
    }

    /// Feed one message to shard `i`. The message carries shard-local
    /// node ids; replies come back the same way.
    pub fn ingest(&mut self, shard: usize, msg: Msg) -> Vec<Msg> {
        self.shards[shard].ingest(msg)
    }

    /// One lockstep machine tick: every shard runs the first half of
    /// its tick (fold telemetry, aggregate its window); on the outer
    /// period the coordinator drains all windows, re-splits the machine
    /// budget, and pushes sub-budgets down (decreases before increases,
    /// so Σ sub-budgets never transiently exceeds the machine budget);
    /// then every shard redistributes under its (possibly new) budget.
    /// Returns each shard's replies, in shard order, and asserts
    /// machine-wide Σ grants ≤ budget.
    pub fn tick(&mut self) -> Vec<Vec<Msg>> {
        self.tick += 1;
        for s in &mut self.shards {
            s.begin_tick();
        }
        // A single shard owns the whole budget: nothing to split, and
        // skipping the solve keeps the path bitwise-identical to an
        // unsharded service.
        if self.shards.len() > 1 && self.tick.is_multiple_of(self.outer_period) {
            let reports: Vec<Option<NodeTelemetry>> = self
                .shards
                .iter_mut()
                .map(ArbiterService::take_window)
                .collect();
            self.solver.resolve(self.machine_budget_w, &reports);
            let subs: Vec<f64> = self.solver.sub_budgets().to_vec();
            apply_sub_budgets(&subs, &mut self.shards, |s| s);
        }
        let replies: Vec<Vec<Msg>> = self
            .shards
            .iter_mut()
            .map(ArbiterService::finish_tick)
            .collect();
        let sum = self.sum_grants();
        assert!(
            sum <= self.machine_budget_w + 1e-6,
            "machine-wide Σ grants {sum} W exceeds the {} W budget",
            self.machine_budget_w
        );
        if sum > self.max_sum_w {
            self.max_sum_w = sum;
        }
        replies
    }

    /// Machine-wide Σ of current grants, W.
    pub fn sum_grants(&self) -> f64 {
        self.shards.iter().map(ArbiterService::sum_grants).sum()
    }

    /// High-water mark of the per-tick machine-wide Σ grants, W.
    pub fn max_sum_grants_w(&self) -> f64 {
        self.max_sum_w
    }

    /// Concatenated grants in global node order, W.
    pub fn grants(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.spans.last().map_or(0, |s| s.end));
        for s in &self.shards {
            out.extend_from_slice(s.grants());
        }
        out
    }

    /// Summed service counters across the shards.
    pub fn stats(&self) -> ServiceStats {
        self.shards
            .iter()
            .map(ArbiterService::stats)
            .fold(ServiceStats::default(), |a, b| ServiceStats {
                shed: a.shed + b.shed,
                rate_limited: a.rate_limited + b.rate_limited,
                nacked: a.nacked + b.nacked,
                duplicates: a.duplicates + b.duplicates,
                leases_expired: a.leases_expired + b.leases_expired,
                rounds: a.rounds + b.rounds,
                snapshots: a.snapshots + b.snapshots,
            })
    }

    /// Crash-replace shard `i`: swap in a freshly built service (same
    /// shape, e.g. from the same `make` closure as construction) and
    /// let it adopt its write-ahead snapshot. The solver — and with it
    /// every other shard's sub-budget — lives in the coordinator and
    /// survives the crash, so a restored shard resumes bit-identically.
    /// Returns whether a snapshot was adopted.
    pub fn replace_shard(&mut self, i: usize, mut fresh: ArbiterService) -> bool {
        let adopted = fresh.restore();
        self.shards[i] = fresh;
        adopted
    }
}

/// Push new sub-budgets down: all decreases first, then the rest, so
/// Σ budgets stays ≤ the machine budget at every intermediate state
/// (a same-bits budget is a no-op inside the arbiter).
fn apply_sub_budgets<T>(
    subs: &[f64],
    shards: &mut [T],
    mut as_service: impl FnMut(&mut T) -> &mut ArbiterService,
) {
    for (t, &b) in shards.iter_mut().zip(subs) {
        let svc = as_service(t);
        if b < svc.budget() {
            svc.set_budget(b);
        }
    }
    for (t, &b) in shards.iter_mut().zip(subs) {
        let svc = as_service(t);
        if b > svc.budget() {
            svc.set_budget(b);
        }
    }
}

/// `N` live TCP daemons over shared service handles, plus a coordinator
/// thread re-splitting the machine budget on a wall-clock outer period.
pub struct ShardedDaemon {
    daemons: Vec<Option<Daemon>>,
    services: Vec<Arc<Mutex<ArbiterService>>>,
    addrs: Vec<SocketAddr>,
    dcfg: DaemonConfig,
    stop: Arc<AtomicBool>,
    coordinator: Option<JoinHandle<()>>,
    machine_budget_w: f64,
    /// High-water Σ grants across epochs, as f64 bits.
    max_sum_bits: Arc<AtomicU64>,
    /// Cleared by the coordinator if Σ grants ever exceeds the budget.
    invariant_ok: Arc<AtomicBool>,
}

impl ShardedDaemon {
    /// Bind `shards` listeners on `127.0.0.1:0`, spawn one daemon per
    /// shard over a shared service handle, and start the coordinator.
    /// `cfg` is machine-level; shards are built by `make` exactly as in
    /// [`ShardedService::new`].
    pub fn spawn(
        cfg: &ArbiterConfig,
        nodes: usize,
        shards: usize,
        outer_period: u64,
        dcfg: DaemonConfig,
        make: &mut MakeShard,
    ) -> std::io::Result<ShardedDaemon> {
        assert!(outer_period > 0, "outer period must be positive");
        let spans = shard_spans(nodes, shards);
        let (min, max): (Vec<f64>, Vec<f64>) = spans
            .iter()
            .map(|s| {
                (
                    s.len() as f64 * cfg.min_cap_w,
                    s.len() as f64 * cfg.max_cap_w,
                )
            })
            .unzip();
        let shares: Vec<f64> = spans
            .iter()
            .map(|s| cfg.budget_w * (s.len() as f64 / nodes as f64))
            .collect();
        let mut solver = OuterSolver::new(cfg.policy, min, max, &shares, cfg.budget_w);

        let services: Vec<Arc<Mutex<ArbiterService>>> = spans
            .iter()
            .zip(solver.sub_budgets())
            .enumerate()
            .map(|(i, (span, &b))| {
                Arc::new(Mutex::new(make(
                    i,
                    ArbiterConfig {
                        budget_w: b,
                        ..*cfg
                    },
                    span.len(),
                )))
            })
            .collect();

        let mut daemons = Vec::with_capacity(shards);
        let mut addrs = Vec::with_capacity(shards);
        for svc in &services {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let d = Daemon::spawn_shared(listener, svc.clone(), dcfg.clone())?;
            addrs.push(d.addr());
            daemons.push(Some(d));
        }

        let stop = Arc::new(AtomicBool::new(false));
        let max_sum_bits = Arc::new(AtomicU64::new(0.0f64.to_bits()));
        let invariant_ok = Arc::new(AtomicBool::new(true));
        let coordinator = {
            let stop = stop.clone();
            let services = services.clone();
            let max_sum_bits = max_sum_bits.clone();
            let invariant_ok = invariant_ok.clone();
            let budget_w = cfg.budget_w;
            let period = dcfg.tick_period * outer_period.max(1) as u32;
            Some(std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(period);
                    // Lock every shard in index order for the epoch:
                    // windows drain and budgets land atomically with
                    // respect to the shard tickers (which each take a
                    // single lock — no ordering cycle, no deadlock).
                    let mut guards: Vec<_> = services.iter().map(|s| s.lock().unwrap()).collect();
                    let reports: Vec<Option<NodeTelemetry>> =
                        guards.iter_mut().map(|g| g.take_window()).collect();
                    solver.resolve(budget_w, &reports);
                    let subs: Vec<f64> = solver.sub_budgets().to_vec();
                    apply_sub_budgets(&subs, &mut guards, |g| &mut **g);
                    let sum: f64 = guards.iter().map(|g| g.sum_grants()).sum();
                    drop(guards);
                    if sum > budget_w + 1e-6 {
                        invariant_ok.store(false, Ordering::SeqCst);
                    }
                    max_sum_bits
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |bits| {
                            (sum > f64::from_bits(bits)).then(|| sum.to_bits())
                        })
                        .ok();
                }
            }))
        };

        Ok(ShardedDaemon {
            daemons,
            services,
            addrs,
            dcfg,
            stop,
            coordinator,
            machine_budget_w: cfg.budget_w,
            max_sum_bits,
            invariant_ok,
        })
    }

    /// Shard listen addresses, in shard order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Machine-wide Σ of current grants, W (locks each shard briefly).
    pub fn sum_grants(&self) -> f64 {
        self.services
            .iter()
            .map(|s| s.lock().unwrap().sum_grants())
            .sum()
    }

    /// High-water Σ grants the coordinator has observed, W.
    pub fn max_sum_grants_w(&self) -> f64 {
        f64::from_bits(self.max_sum_bits.load(Ordering::SeqCst))
    }

    /// Whether Σ grants ≤ machine budget has held at every epoch so far.
    pub fn invariant_ok(&self) -> bool {
        self.invariant_ok.load(Ordering::SeqCst)
    }

    /// The machine budget, W.
    pub fn machine_budget_w(&self) -> f64 {
        self.machine_budget_w
    }

    /// Summed service counters across live shards.
    pub fn stats(&self) -> ServiceStats {
        self.services
            .iter()
            .map(|s| s.lock().unwrap().stats())
            .fold(ServiceStats::default(), |a, b| ServiceStats {
                shed: a.shed + b.shed,
                rate_limited: a.rate_limited + b.rate_limited,
                nacked: a.nacked + b.nacked,
                duplicates: a.duplicates + b.duplicates,
                leases_expired: a.leases_expired + b.leases_expired,
                rounds: a.rounds + b.rounds,
                snapshots: a.snapshots + b.snapshots,
            })
    }

    /// `kill -9` one shard: its daemon threads stop, its connections
    /// die, nothing is flushed. The coordinator keeps running (the dead
    /// shard's window drains `None` → its sub-budget freezes, the
    /// silent-rack rule).
    pub fn kill_shard(&mut self, i: usize) {
        if let Some(d) = self.daemons[i].take() {
            d.kill();
        }
    }

    /// Restart a killed shard on its old address: `fresh` (same shape
    /// as construction, typically with the shard's snapshot path)
    /// adopts its write-ahead snapshot, replaces the in-memory service
    /// — a real `kill -9` lost that memory — and a new daemon serves
    /// it. Returns whether a snapshot was adopted.
    pub fn restart_shard(&mut self, i: usize, mut fresh: ArbiterService) -> std::io::Result<bool> {
        let adopted = fresh.restore();
        *self.services[i].lock().unwrap() = fresh;
        let listener = TcpListener::bind(self.addrs[i])?;
        let d = Daemon::spawn_shared(listener, self.services[i].clone(), self.dcfg.clone())?;
        self.addrs[i] = d.addr();
        self.daemons[i] = Some(d);
        Ok(adopted)
    }

    /// Stop the coordinator and every live shard.
    pub fn kill(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(c) = self.coordinator.take() {
            c.join().ok();
        }
        for d in self.daemons.iter_mut().filter_map(Option::take) {
            d.kill();
        }
    }
}

impl Drop for ShardedDaemon {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(c) = self.coordinator.take() {
            c.join().ok();
        }
        for d in self.daemons.iter_mut().filter_map(Option::take) {
            d.kill();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use cluster::{BudgetArbiter, HierarchyConfig, Policy, PowerArbiter, RackArbiter};
    use std::time::Duration;

    fn machine_cfg(n: usize) -> ArbiterConfig {
        ArbiterConfig {
            budget_w: 100.0 * n as f64,
            min_cap_w: 40.0,
            max_cap_w: 130.0,
            policy: Policy::ProgressFeedback { gain: 1.0 },
        }
    }

    fn plain_make(
        svc_cfg: ServiceConfig,
    ) -> impl FnMut(usize, ArbiterConfig, usize) -> ArbiterService {
        move |_i, cfg, k| {
            let arb: Box<dyn BudgetArbiter> =
                Box::new(PowerArbiter::new(cfg, k).with_tracing(false));
            ArbiterService::new(arb, svc_cfg.clone())
        }
    }

    fn no_snap() -> ServiceConfig {
        ServiceConfig {
            snapshot_every: 0,
            ..ServiceConfig::default()
        }
    }

    fn synth(node: usize, tick: u64) -> NodeTelemetry {
        // Varying but validate-clean telemetry.
        let t = 0.5 + ((node as u64 * 7 + tick * 3) % 11) as f64 * 0.25;
        NodeTelemetry::compute_only(t, 1.0 / t, 90.0 + (node % 5) as f64)
    }

    #[test]
    fn spans_are_contiguous_and_near_equal() {
        assert_eq!(shard_spans(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
        assert_eq!(shard_spans(4, 4), vec![0..1, 1..2, 2..3, 3..4]);
        assert_eq!(shard_spans(5, 1), vec![0..5]);
        let spans = shard_spans(100_000, 4);
        assert_eq!(spans.iter().map(|s| s.len()).sum::<usize>(), 100_000);
        assert!(spans.windows(2).all(|w| w[0].end == w[1].start));
    }

    #[test]
    fn lockstep_sharded_run_is_bitwise_identical_to_the_rack_tree() {
        // 3 shards over 12 nodes vs one RackArbiter whose racks are the
        // shard spans: same policy, inner period 1, same outer period.
        let n = 12;
        let shards = 3;
        let outer_period = 4u64;
        let cfg = machine_cfg(n);
        let mut sharded =
            ShardedService::new(&cfg, n, shards, outer_period, &mut plain_make(no_snap()));
        let mut tree = RackArbiter::new(
            cfg,
            HierarchyConfig {
                racks: sharded.spans().iter().map(Range::len).collect(),
                outer_period: outer_period as usize,
                inner_period: 1,
                rack_policy: cfg.policy,
                rack_clamps: None,
            },
        );
        for tick in 1..=13u64 {
            let mut reports = Vec::with_capacity(n);
            for node in 0..n {
                let r = synth(node, tick);
                reports.push(Some(r));
                let (shard, local) = sharded.locate(node);
                let replies = sharded.ingest(
                    shard,
                    Msg::Telemetry {
                        node: local,
                        seq: tick,
                        report: r,
                    },
                );
                assert!(replies.is_empty(), "clean telemetry is queued silently");
            }
            sharded.tick();
            let expect = tree.redistribute(&reports).unwrap().to_vec();
            let got = sharded.grants();
            for (node, (g, e)) in got.iter().zip(&expect).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    e.to_bits(),
                    "tick {tick} node {node}: sharded {g} vs tree {e}"
                );
            }
            assert!(sharded.sum_grants() <= sharded.machine_budget_w() + 1e-6);
        }
        // The outer split actually moved budgets (the workload is skewed).
        assert!(
            sharded
                .sub_budgets()
                .iter()
                .zip(shard_spans(n, shards))
                .any(|(&b, s)| (b - 100.0 * s.len() as f64).abs() > 1e-9),
            "outer epochs should have re-split the machine budget: {:?}",
            sharded.sub_budgets()
        );
    }

    #[test]
    fn single_shard_is_bitwise_transparent() {
        let n = 6;
        let cfg = machine_cfg(n);
        let mut sharded = ShardedService::new(&cfg, n, 1, 4, &mut plain_make(no_snap()));
        let arb: Box<dyn BudgetArbiter> = Box::new(PowerArbiter::new(cfg, n).with_tracing(false));
        let mut plain = ArbiterService::new(arb, no_snap());
        for tick in 1..=9u64 {
            for node in 0..n {
                let msg = Msg::Telemetry {
                    node: node as u32,
                    seq: tick,
                    report: synth(node, tick),
                };
                assert_eq!(sharded.ingest(0, msg.clone()), plain.ingest(msg));
            }
            let replies = sharded.tick();
            assert_eq!(replies.len(), 1);
            assert_eq!(replies[0], plain.tick());
            for (a, b) in sharded.grants().iter().zip(plain.grants()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn crashed_shard_restores_bitwise_mid_run() {
        let n = 8;
        let shards = 2;
        let outer_period = 3u64;
        let cfg = machine_cfg(n);
        let dir = std::env::temp_dir().join(format!("arbiterd-shard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let make_with_snaps = |dir: std::path::PathBuf, svc_cfg: ServiceConfig| {
            move |i: usize, cfg: ArbiterConfig, k: usize| {
                let arb: Box<dyn BudgetArbiter> =
                    Box::new(PowerArbiter::new(cfg, k).with_tracing(false));
                ArbiterService::new(arb, svc_cfg.clone())
                    .with_snapshot_path(dir.join(format!("shard{i}.snap")))
            }
        };
        let svc_cfg = ServiceConfig {
            snapshot_every: 1,
            ..ServiceConfig::default()
        };

        let drive = |svc: &mut ShardedService, tick: u64| {
            for node in 0..n {
                let (shard, local) = svc.locate(node);
                svc.ingest(
                    shard,
                    Msg::Telemetry {
                        node: local,
                        seq: tick,
                        report: synth(node, tick),
                    },
                );
            }
            svc.tick();
        };

        // Reference: no crash.
        let ref_dir = dir.join("ref");
        std::fs::create_dir_all(&ref_dir).unwrap();
        let mut reference = ShardedService::new(
            &cfg,
            n,
            shards,
            outer_period,
            &mut make_with_snaps(ref_dir.clone(), svc_cfg.clone()),
        );
        for tick in 1..=10u64 {
            drive(&mut reference, tick);
        }

        // Crashed run: shard 1 is replaced from its snapshot at tick 5.
        let crash_dir = dir.join("crash");
        std::fs::create_dir_all(&crash_dir).unwrap();
        let mut make = make_with_snaps(crash_dir.clone(), svc_cfg.clone());
        let mut crashed = ShardedService::new(&cfg, n, shards, outer_period, &mut make);
        for tick in 1..=10u64 {
            if tick == 5 {
                let k = crashed.spans()[1].len();
                let sub = crashed.sub_budgets()[1];
                let fresh = make(
                    1,
                    ArbiterConfig {
                        budget_w: sub,
                        ..cfg
                    },
                    k,
                );
                assert!(crashed.replace_shard(1, fresh), "snapshot must adopt");
            }
            drive(&mut crashed, tick);
        }

        for (node, (a, b)) in crashed.grants().iter().zip(reference.grants()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "node {node}: crashed {a} vs reference {b}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_daemons_grant_over_sockets_and_hold_the_invariant() {
        use crate::client::GrantClient;
        use crate::wire::{TcpWire, Wire};
        use std::net::TcpStream;

        let n = 4;
        let cfg = machine_cfg(n);
        let daemon = ShardedDaemon::spawn(
            &cfg,
            n,
            2,
            2,
            DaemonConfig {
                tick_period: Duration::from_millis(5),
                ..DaemonConfig::default()
            },
            &mut plain_make(no_snap()),
        )
        .unwrap();

        let connector = |addr: SocketAddr| -> Box<dyn FnMut() -> Option<Box<dyn Wire>> + Send> {
            Box::new(move || {
                TcpStream::connect_timeout(&addr, Duration::from_millis(250))
                    .ok()
                    .and_then(|s| TcpWire::new(s).ok())
                    .map(|w| Box::new(w) as Box<dyn Wire>)
            })
        };
        // Two producers per shard, shard-local ids 0 and 1.
        let mut clients: Vec<GrantClient> = (0..n)
            .map(|g| {
                let shard = g / 2;
                GrantClient::new(
                    (g % 2) as u32,
                    connector(daemon.addrs()[shard]),
                    32,
                    g as u64,
                )
            })
            .collect();

        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut seq = 0u64;
        loop {
            seq += 1;
            for (g, c) in clients.iter_mut().enumerate() {
                c.advance();
                c.send_report(&synth(g, seq));
            }
            if clients.iter().all(|c| c.last_grant().is_some()) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "all shards must grant over sockets: {:?}",
                clients
                    .iter()
                    .map(GrantClient::last_grant)
                    .collect::<Vec<_>>()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let sum = daemon.sum_grants();
        assert!(sum <= cfg.budget_w + 1e-6, "Σ {sum} over {}", cfg.budget_w);
        assert!(daemon.invariant_ok(), "coordinator saw Σ ≤ budget");
        assert!(daemon.max_sum_grants_w() <= cfg.budget_w + 1e-6);
        daemon.kill();
    }
}
