//! The member-side grant client: timeouts, jittered backoff, and
//! hold-last-grant degradation.
//!
//! [`GrantClient`] is the bridge between a cluster member and the
//! daemon: it pushes telemetry upstream and implements
//! [`cluster::GrantSource`], so [`cluster::ClusterNode::pull_grant`]
//! works identically whether grants come from an in-process arbiter
//! slice or over a lossy wire. Degradation is the design center, per
//! Cerf et al.'s assumption that the runtime outlives its transport:
//!
//! - **disconnected** → the member keeps the last grant it saw (a stale
//!   cap is safe — the daemon froze the same value bitwise) and the
//!   client reconnects under seeded jittered exponential backoff
//!   ([`nrm::Backoff`], the same curve the resilient NRM daemon uses
//!   for actuator re-probes);
//! - **shed** ([`Msg::Busy`]) → the client honours the daemon's
//!   `retry_after` hint and mutes telemetry, never retries hot;
//! - **NACKed** → the offending report is dropped, not resent: the
//!   next epoch produces fresher telemetry anyway.

use cluster::GrantSource;
use nrm::Backoff;

use crate::proto::Msg;
use crate::wire::{Wire, WireError};

/// Client-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Successful (re)connections, first connect included.
    pub connects: u64,
    /// Link losses observed.
    pub disconnects: u64,
    /// Reports suppressed while muted or down (hold-last-grant ticks).
    pub held: u64,
    /// [`Msg::Busy`] sheds honoured.
    pub busy: u64,
    /// [`Msg::Nack`] rejections observed.
    pub nacked: u64,
}

enum Link {
    Up(Box<dyn Wire>),
    /// Waiting `retry_in` more polls before redialing.
    Down {
        /// Polls left before the next connection attempt.
        retry_in: u32,
    },
}

/// A telemetry producer / grant consumer for one node.
pub struct GrantClient {
    node: u32,
    link: Link,
    /// Produces a fresh wire to the daemon, or `None` while the daemon
    /// is unreachable (each call is one connection attempt).
    connector: Box<dyn FnMut() -> Option<Box<dyn Wire>> + Send>,
    backoff: Backoff,
    /// Newest grant seen, W; held across outages.
    last_grant: Option<f64>,
    /// Daemon tick of the newest grant.
    last_tick: u64,
    /// Telemetry sequence — advances only when a report is actually
    /// sent, so a recovered run's seq stream aligns with an uncrashed
    /// reference regardless of how long the outage lasted.
    seq: u64,
    /// Local poll counter (the client's clock).
    polls: u64,
    /// Busy-shed mute: no telemetry until this local poll.
    muted_until: u64,
    stats: ClientStats,
}

impl GrantClient {
    /// Build a client for `node`. `connector` dials the daemon (or
    /// hands over a pre-connected test pipe); `backoff_cap` and `seed`
    /// shape the reconnect schedule.
    pub fn new(
        node: u32,
        connector: Box<dyn FnMut() -> Option<Box<dyn Wire>> + Send>,
        backoff_cap: u32,
        seed: u64,
    ) -> Self {
        let mut c = Self {
            node,
            link: Link::Down { retry_in: 0 },
            connector,
            backoff: Backoff::new(backoff_cap, seed),
            last_grant: None,
            last_tick: 0,
            seq: 0,
            polls: 0,
            muted_until: 0,
            stats: ClientStats::default(),
        };
        c.try_connect();
        c
    }

    fn try_connect(&mut self) {
        match (self.connector)() {
            Some(mut wire) => {
                // Introduce ourselves; the daemon answers with the
                // current grant so the cap recovers without waiting a
                // full telemetry round.
                if wire.send(&Msg::Hello { node: self.node }).is_ok() {
                    self.link = Link::Up(wire);
                    self.backoff.reset();
                    self.stats.connects += 1;
                    // Settle for one poll before resuming telemetry: the
                    // Hello grant gets a round trip to land, and a
                    // recovering daemon sees at most one report per
                    // control period — which keeps a recovered run's
                    // round structure aligned with an uncrashed one.
                    self.muted_until = self.polls + 1;
                } else {
                    self.note_down();
                }
            }
            None => self.note_down(),
        }
    }

    fn note_down(&mut self) {
        self.stats.disconnects += u64::from(matches!(self.link, Link::Up(_)));
        self.link = Link::Down {
            retry_in: self.backoff.record_failure(),
        };
    }

    /// One client tick: drain inbound grants, run the reconnect state
    /// machine. Call once per control period (the load generator calls
    /// it once per simulated tick).
    pub fn advance(&mut self) {
        self.polls += 1;
        if let Link::Down { retry_in } = &mut self.link {
            if *retry_in == 0 {
                self.try_connect();
            } else {
                *retry_in -= 1;
            }
            return;
        }
        while let Link::Up(wire) = &mut self.link {
            let polled = wire.poll();
            match polled {
                // A batch is its members in order — the daemon groups a
                // tick's replies per connection into one frame.
                Ok(Some(Msg::Batch(msgs))) => {
                    for m in msgs {
                        self.absorb(m);
                    }
                }
                Ok(Some(msg)) => self.absorb(msg),
                Ok(None) => break,
                Err(WireError::Disconnected) | Err(WireError::Corrupt(_)) => {
                    self.note_down();
                    break;
                }
            }
        }
    }

    fn absorb(&mut self, msg: Msg) {
        match msg {
            Msg::Grant { tick, watts, .. } => {
                self.last_grant = Some(watts);
                self.last_tick = tick;
            }
            Msg::Busy { retry_after } => {
                self.stats.busy += 1;
                self.muted_until = self.polls + retry_after as u64;
            }
            Msg::Nack { .. } => {
                self.stats.nacked += 1;
            }
            // Client-only messages from a confused peer; nested batches
            // never decode off the wire.
            Msg::Hello { .. } | Msg::Heartbeat { .. } | Msg::Telemetry { .. } | Msg::Batch(_) => {}
        }
    }

    /// Offer this epoch's telemetry. Returns the seq it was sent under,
    /// or `None` when held back (down, muted, or send failure) — the
    /// member then simply keeps its current cap.
    pub fn send_report(&mut self, report: &cluster::NodeTelemetry) -> Option<u64> {
        if self.polls < self.muted_until {
            self.stats.held += 1;
            return None;
        }
        let Link::Up(wire) = &mut self.link else {
            self.stats.held += 1;
            return None;
        };
        let seq = self.seq + 1;
        let msg = Msg::Telemetry {
            node: self.node,
            seq,
            report: *report,
        };
        match wire.send(&msg) {
            Ok(()) => {
                self.seq = seq;
                Some(seq)
            }
            Err(_) => {
                self.note_down();
                self.stats.held += 1;
                None
            }
        }
    }

    /// Keep the lease alive on an epoch without telemetry.
    pub fn heartbeat(&mut self) {
        if let Link::Up(wire) = &mut self.link {
            if wire.send(&Msg::Heartbeat { node: self.node }).is_err() {
                self.note_down();
            }
        }
    }

    /// Whether the link is currently up.
    pub fn connected(&self) -> bool {
        matches!(self.link, Link::Up(_))
    }

    /// Newest grant seen, W (held across outages).
    pub fn last_grant(&self) -> Option<f64> {
        self.last_grant
    }

    /// Daemon tick of the newest grant.
    pub fn last_grant_tick(&self) -> u64 {
        self.last_tick
    }

    /// The seq the next successful [`GrantClient::send_report`] will
    /// consume — lets a driver generate telemetry keyed to it.
    pub fn next_seq(&self) -> u64 {
        self.seq + 1
    }

    /// Client counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }
}

impl GrantSource for GrantClient {
    fn poll_grant(&mut self, _node: usize) -> Option<f64> {
        self.advance();
        self.last_grant
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Msg;
    use crate::wire::PipeWire;
    use cluster::NodeTelemetry;

    /// A connector that hands out pre-made pipes, one per call.
    fn pipe_connector(
        mut pipes: Vec<Option<PipeWire>>,
    ) -> Box<dyn FnMut() -> Option<Box<dyn Wire>> + Send> {
        pipes.reverse();
        Box::new(move || pipes.pop().flatten().map(|p| Box::new(p) as Box<dyn Wire>))
    }

    fn report() -> NodeTelemetry {
        NodeTelemetry::compute_only(1.0, 1.0, 95.0)
    }

    #[test]
    fn connects_says_hello_and_tracks_grants() {
        let (client_end, mut server_end) = PipeWire::pair();
        let mut c = GrantClient::new(3, pipe_connector(vec![Some(client_end)]), 32, 1);
        assert!(c.connected());
        assert_eq!(server_end.poll().unwrap(), Some(Msg::Hello { node: 3 }));

        server_end
            .send(&Msg::Grant {
                node: 3,
                seq: 0,
                tick: 7,
                watts: 88.5,
            })
            .unwrap();
        c.advance();
        assert_eq!(c.last_grant(), Some(88.5));
        assert_eq!(c.last_grant_tick(), 7);

        let seq = c.send_report(&report()).unwrap();
        assert_eq!(seq, 1);
        assert!(matches!(
            server_end.poll().unwrap(),
            Some(Msg::Telemetry {
                node: 3,
                seq: 1,
                ..
            })
        ));
    }

    #[test]
    fn holds_last_grant_and_seq_across_an_outage() {
        let (a, server_a) = PipeWire::pair();
        let (b, mut server_b) = PipeWire::pair();
        let mut c = GrantClient::new(0, pipe_connector(vec![Some(a), None, Some(b)]), 4, 9);
        // Deliver a grant, then kill the first pipe.
        let mut sa = server_a;
        sa.poll().unwrap(); // consume Hello
        sa.send(&Msg::Grant {
            node: 0,
            seq: 0,
            tick: 1,
            watts: 77.0,
        })
        .unwrap();
        c.advance();
        assert_eq!(c.last_grant(), Some(77.0));
        sa.hang_up();

        // The outage: grant held, telemetry suppressed, seq frozen.
        c.advance();
        assert!(!c.connected());
        assert_eq!(c.last_grant(), Some(77.0), "hold-last-grant");
        assert_eq!(c.send_report(&report()), None);
        assert!(c.stats().held >= 1);

        // Backoff eventually redials: attempt 1 fails (None), attempt 2
        // lands on the second pipe and re-Hellos.
        for _ in 0..64 {
            c.advance();
            if c.connected() {
                break;
            }
        }
        assert!(c.connected(), "client must reconnect through backoff");
        assert_eq!(server_b.poll().unwrap(), Some(Msg::Hello { node: 0 }));
        // One settle poll after the redial, then telemetry resumes.
        assert_eq!(c.send_report(&report()), None, "settling after redial");
        c.advance();
        // Seq resumes where it left off — nothing was consumed while down.
        assert_eq!(c.send_report(&report()), Some(1));
        assert!(c.stats().connects >= 2);
        assert_eq!(c.stats().disconnects, 1);
    }

    #[test]
    fn busy_shed_mutes_telemetry_for_the_hinted_window() {
        let (client_end, mut server_end) = PipeWire::pair();
        let mut c = GrantClient::new(0, pipe_connector(vec![Some(client_end)]), 32, 5);
        server_end.poll().unwrap(); // Hello
        server_end.send(&Msg::Busy { retry_after: 3 }).unwrap();
        c.advance();
        assert_eq!(c.stats().busy, 1);
        assert_eq!(c.send_report(&report()), None, "muted after shed");
        c.advance();
        c.advance();
        assert_eq!(c.send_report(&report()), None, "still muted");
        c.advance();
        assert!(c.send_report(&report()).is_some(), "mute expires");
    }

    #[test]
    fn poll_grant_is_the_grant_source_bridge() {
        let (client_end, mut server_end) = PipeWire::pair();
        let mut c = GrantClient::new(2, pipe_connector(vec![Some(client_end)]), 32, 2);
        server_end.poll().unwrap();
        server_end
            .send(&Msg::Grant {
                node: 2,
                seq: 1,
                tick: 4,
                watts: 64.25,
            })
            .unwrap();
        let src: &mut dyn GrantSource = &mut c;
        assert_eq!(src.poll_grant(2), Some(64.25));
    }
}
