//! `arbiterd` — the power arbiter as a crash-tolerant service.
//!
//! The in-process [`cluster::BudgetArbiter`] assumes its callers never
//! crash, never flood it, and never lie. This crate drops that
//! assumption: it wraps any boxed arbiter in a long-running daemon that
//! serves telemetry → grant streams over a framed transport and
//! survives the failure modes a real facility deployment meets —
//! client crashes, telemetry floods, lossy links, and its own `kill -9`.
//!
//! The layering keeps every robustness property deterministic and
//! testable:
//!
//! - [`proto`] — the framed wire protocol. Watts travel as raw `f64`
//!   bits so the daemon path can be *bit-identical* to the in-process
//!   arbiter.
//! - [`wire`] — transports behind one [`wire::Wire`] trait: an
//!   in-process pipe for lockstep tests, non-blocking TCP for
//!   deployment, and a seeded fault wrapper (drop/duplicate/delay/
//!   partition) for chaos runs.
//! - [`service`] — the deterministic core: bounded ingress with
//!   load-shedding, per-client token buckets, heartbeat leases that
//!   reclaim a crashed client's watts, and write-ahead snapshots.
//! - [`snapshot`] — atomic (write-temp → fsync → rename) checksummed
//!   state captures; a restarted daemon resumes with Σ grants ≤ budget
//!   intact and grants bitwise-unchanged.
//! - [`daemon`] — the threaded TCP front-end around the service:
//!   blocking readers staging into per-connection inboxes, one service
//!   lock per tick, grants batched into one frame per connection.
//! - [`sharded`] — horizontal scale-out: N shards, each owning a span
//!   of producers and a rack-style sub-budget, under a coordinator
//!   that reuses [`cluster::OuterSolver`] so the machine budget splits
//!   exactly as the in-process rack tree splits it.
//! - [`client`] — the member side: hold-last-grant degradation,
//!   jittered exponential reconnect backoff, shed-hint compliance; it
//!   implements [`cluster::GrantSource`], so cluster members consume
//!   daemon grants exactly like in-process ones.
//! - [`loadgen`] — a lockstep in-process load generator driving
//!   thousands of simulated producers, with seeded faults and a
//!   mid-run crash/restore, reproducible bit-for-bit.

pub mod client;
pub mod daemon;
pub mod loadgen;
pub mod proto;
pub mod service;
pub mod sharded;
pub mod snapshot;
pub mod wire;

pub use client::{ClientStats, GrantClient};
pub use daemon::{Daemon, DaemonConfig};
pub use loadgen::{
    run_concurrent_loadgen, run_loadgen, ConcurrentConfig, ConcurrentReport, FaultKnobs,
    LoadgenConfig, LoadgenReport,
};
pub use proto::Msg;
pub use service::{ArbiterService, ServiceConfig, ServiceStats};
pub use sharded::{shard_spans, ShardedDaemon, ShardedService};
pub use snapshot::Snapshot;
pub use wire::{FaultyWire, PipeWire, TcpWire, Wire, WireError, WireFaultPlan, WireFaultStats};
