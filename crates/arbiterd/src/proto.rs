//! The framed wire protocol between telemetry producers and the daemon.
//!
//! Frames are length-prefixed (`u32` little-endian byte count, then the
//! payload) so they survive arbitrary TCP segmentation; the payload is a
//! one-byte tag followed by fixed-width little-endian fields. All watts
//! and seconds travel as raw `f64` bits ([`f64::to_bits`]), never as
//! decimal text — the chaos acceptance criterion is *bitwise* grant
//! equality between the daemon path and the in-process arbiter, and a
//! round-trip through formatting would forfeit it.
//!
//! The protocol is deliberately version-tagged and paranoid on decode:
//! a daemon that parses attacker-shaped bytes with `unwrap` is a daemon
//! that dies to a single corrupt frame, so every decode path returns
//! [`ProtoError`] and the frame scanner bounds allocation with
//! [`MAX_FRAME`].

use cluster::NodeTelemetry;

/// Cap on a single *singleton* frame's payload, bytes. The largest
/// legitimate message is `Telemetry` at 53 bytes; anything claiming more
/// is a corrupt or hostile length prefix and is rejected before
/// allocation. [`Msg::Batch`] frames get their own cap,
/// [`MAX_BATCH_FRAME`].
pub const MAX_FRAME: usize = 256;

/// Cap on a [`Msg::Batch`] frame's payload, bytes. Batches exist so one
/// syscall can carry thousands of telemetry reports or grants (57 bytes
/// per inner telemetry frame → ~18k reports fit); a prefix claiming more
/// than this is hostile regardless of tag.
pub const MAX_BATCH_FRAME: usize = 1 << 20;

/// Decoding failure: the frame is structurally broken. The connection
/// that produced it is dropped, not the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// Unknown message tag.
    BadTag(u8),
    /// The payload is shorter or longer than its tag demands.
    BadLength {
        /// Message tag.
        tag: u8,
        /// Payload bytes actually present.
        got: usize,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Oversized(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            ProtoError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            ProtoError::BadLength { tag, got } => {
                write!(f, "tag {tag:#04x} payload has {got} bytes")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// Every message either side of the wire can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Client → daemon: (re)introduce node `node`. Renews the lease and
    /// solicits an immediate [`Msg::Grant`] so a reconnecting client
    /// recovers its cap without waiting a full arbiter tick.
    Hello {
        /// Cluster-wide node id.
        node: u32,
    },
    /// Client → daemon: keep the lease alive without fresh telemetry.
    Heartbeat {
        /// Cluster-wide node id.
        node: u32,
    },
    /// Client → daemon: one epoch's telemetry. `seq` is the client's own
    /// monotone counter, echoed back on the matching grant so recovery
    /// runs can be compared grant-for-grant.
    Telemetry {
        /// Cluster-wide node id.
        node: u32,
        /// Client-side sequence number.
        seq: u64,
        /// The report itself.
        report: NodeTelemetry,
    },
    /// Daemon → client: the current grant for `node`.
    Grant {
        /// Cluster-wide node id.
        node: u32,
        /// Sequence of the telemetry this grant answers (0 for grants
        /// pushed outside a telemetry round, e.g. on Hello).
        seq: u64,
        /// Daemon tick that produced the grant.
        tick: u64,
        /// Granted cap, W.
        watts: f64,
    },
    /// Daemon → client: load shed. The ingress queue is full or the
    /// client is over its rate; retry after `retry_after` ticks.
    Busy {
        /// Ticks to back off before retrying.
        retry_after: u32,
    },
    /// Daemon → client: the telemetry was malformed and dropped. The
    /// lease survives; the client keeps its last grant.
    Nack {
        /// Which seq was rejected.
        seq: u64,
    },
    /// Either direction: many messages in one frame, so one syscall
    /// carries a whole tick's worth of telemetry or grants. The payload
    /// is a count followed by the inner messages' complete *singleton*
    /// frames, verbatim — so a batch is bit-identical to the
    /// concatenation of its members' individual encodings (after the
    /// 5-byte batch header), and decoding distributes over the members.
    /// Batches do not nest: an inner `Batch` is a [`ProtoError::BadTag`].
    Batch(Vec<Msg>),
}

const TAG_HELLO: u8 = 1;
const TAG_HEARTBEAT: u8 = 2;
const TAG_TELEMETRY: u8 = 3;
const TAG_GRANT: u8 = 4;
const TAG_BUSY: u8 = 5;
const TAG_NACK: u8 = 6;
const TAG_BATCH: u8 = 7;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn get_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().unwrap())
}

fn get_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

fn get_f64(b: &[u8]) -> f64 {
    f64::from_bits(get_u64(b))
}

impl Msg {
    /// Serialize into a complete frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        // Size the allocation to the message: a batch would otherwise
        // realloc-and-copy its way up from nothing, member by member.
        let cap = match self {
            Msg::Batch(msgs) => 16 + 64 * msgs.len(),
            _ => 64,
        };
        let mut frame = Vec::with_capacity(cap);
        self.encode_into(&mut frame);
        frame
    }

    /// Append this message's complete frame (length prefix included) to
    /// `frame`, reusing the caller's allocation — the hot path when a
    /// tick's worth of grants is batched into one buffer.
    ///
    /// # Panics
    /// Panics on a nested [`Msg::Batch`] (batches do not nest) and when
    /// the encoded payload would exceed its frame cap — both are
    /// construction bugs on *our* side of the wire, not input errors.
    pub fn encode_into(&self, frame: &mut Vec<u8>) {
        // Fixed-size fast paths for the two frame types that dominate
        // every wire (telemetry up, grants down): build the whole frame
        // in a stack buffer and append it in one go, instead of one
        // capacity-checked extend per field. Byte layout is identical
        // to the generic path below (covered by the round-trip tests).
        match self {
            Msg::Telemetry { node, seq, report } => {
                let mut b = [0u8; 57];
                b[..4].copy_from_slice(&53u32.to_le_bytes());
                b[4] = TAG_TELEMETRY;
                b[5..9].copy_from_slice(&node.to_le_bytes());
                b[9..17].copy_from_slice(&seq.to_le_bytes());
                b[17..25].copy_from_slice(&report.compute_s.to_bits().to_le_bytes());
                b[25..33].copy_from_slice(&report.comm_s.to_bits().to_le_bytes());
                b[33..41].copy_from_slice(&report.slack_s.to_bits().to_le_bytes());
                b[41..49].copy_from_slice(&report.rate.to_bits().to_le_bytes());
                b[49..57].copy_from_slice(&report.power_w.to_bits().to_le_bytes());
                frame.extend_from_slice(&b);
                return;
            }
            Msg::Grant {
                node,
                seq,
                tick,
                watts,
            } => {
                let mut b = [0u8; 33];
                b[..4].copy_from_slice(&29u32.to_le_bytes());
                b[4] = TAG_GRANT;
                b[5..9].copy_from_slice(&node.to_le_bytes());
                b[9..17].copy_from_slice(&seq.to_le_bytes());
                b[17..25].copy_from_slice(&tick.to_le_bytes());
                b[25..33].copy_from_slice(&watts.to_bits().to_le_bytes());
                frame.extend_from_slice(&b);
                return;
            }
            _ => {}
        }
        let start = frame.len();
        frame.extend_from_slice(&[0u8; 4]); // length prefix backpatched below
        self.encode_payload(frame);
        let len = frame.len() - start - 4;
        let cap = if matches!(self, Msg::Batch(_)) {
            MAX_BATCH_FRAME
        } else {
            MAX_FRAME
        };
        assert!(
            len <= cap,
            "encoded {len}-byte payload exceeds the {cap}-byte cap"
        );
        frame[start..start + 4].copy_from_slice(&(len as u32).to_le_bytes());
    }

    fn encode_payload(&self, p: &mut Vec<u8>) {
        match self {
            Msg::Hello { node } => {
                p.push(TAG_HELLO);
                put_u32(p, *node);
            }
            Msg::Heartbeat { node } => {
                p.push(TAG_HEARTBEAT);
                put_u32(p, *node);
            }
            Msg::Telemetry { node, seq, report } => {
                p.push(TAG_TELEMETRY);
                put_u32(p, *node);
                put_u64(p, *seq);
                put_f64(p, report.compute_s);
                put_f64(p, report.comm_s);
                put_f64(p, report.slack_s);
                put_f64(p, report.rate);
                put_f64(p, report.power_w);
            }
            Msg::Grant {
                node,
                seq,
                tick,
                watts,
            } => {
                p.push(TAG_GRANT);
                put_u32(p, *node);
                put_u64(p, *seq);
                put_u64(p, *tick);
                put_f64(p, *watts);
            }
            Msg::Busy { retry_after } => {
                p.push(TAG_BUSY);
                put_u32(p, *retry_after);
            }
            Msg::Nack { seq } => {
                p.push(TAG_NACK);
                put_u64(p, *seq);
            }
            Msg::Batch(msgs) => {
                p.push(TAG_BATCH);
                put_u32(p, msgs.len() as u32);
                for m in msgs {
                    assert!(!matches!(m, Msg::Batch(_)), "batches do not nest");
                    m.encode_into(p);
                }
            }
        }
    }

    /// Parse one frame payload (the bytes after the length prefix).
    pub fn decode(payload: &[u8]) -> Result<Msg, ProtoError> {
        let (&tag, body) = payload
            .split_first()
            .ok_or(ProtoError::BadLength { tag: 0, got: 0 })?;
        let need = |n: usize| -> Result<(), ProtoError> {
            if body.len() == n {
                Ok(())
            } else {
                Err(ProtoError::BadLength {
                    tag,
                    got: body.len(),
                })
            }
        };
        match tag {
            TAG_HELLO => {
                need(4)?;
                Ok(Msg::Hello {
                    node: get_u32(body),
                })
            }
            TAG_HEARTBEAT => {
                need(4)?;
                Ok(Msg::Heartbeat {
                    node: get_u32(body),
                })
            }
            TAG_TELEMETRY => {
                need(4 + 8 + 5 * 8)?;
                Ok(Msg::Telemetry {
                    node: get_u32(body),
                    seq: get_u64(&body[4..]),
                    report: NodeTelemetry {
                        compute_s: get_f64(&body[12..]),
                        comm_s: get_f64(&body[20..]),
                        slack_s: get_f64(&body[28..]),
                        rate: get_f64(&body[36..]),
                        power_w: get_f64(&body[44..]),
                    },
                })
            }
            TAG_GRANT => {
                need(4 + 8 + 8 + 8)?;
                Ok(Msg::Grant {
                    node: get_u32(body),
                    seq: get_u64(&body[4..]),
                    tick: get_u64(&body[12..]),
                    watts: get_f64(&body[20..]),
                })
            }
            TAG_BUSY => {
                need(4)?;
                Ok(Msg::Busy {
                    retry_after: get_u32(body),
                })
            }
            TAG_NACK => {
                need(8)?;
                Ok(Msg::Nack { seq: get_u64(body) })
            }
            TAG_BATCH => {
                if body.len() < 4 {
                    return Err(ProtoError::BadLength {
                        tag,
                        got: body.len(),
                    });
                }
                let count = get_u32(body) as usize;
                // Allocation is bounded by what the body can actually
                // hold (5 bytes is the smallest inner frame), not by the
                // attacker-controlled count field.
                let mut inner = Vec::with_capacity(count.min(body.len() / 5));
                let mut at = 4usize;
                for _ in 0..count {
                    if body.len() - at < 4 {
                        return Err(ProtoError::BadLength {
                            tag,
                            got: body.len(),
                        });
                    }
                    let len = get_u32(&body[at..]) as usize;
                    if len > MAX_FRAME {
                        return Err(ProtoError::Oversized(len));
                    }
                    if body.len() - at - 4 < len {
                        return Err(ProtoError::BadLength {
                            tag,
                            got: body.len(),
                        });
                    }
                    let m = Msg::decode(&body[at + 4..at + 4 + len])?;
                    if matches!(m, Msg::Batch(_)) {
                        // Nesting would let one frame amplify into
                        // unbounded recursion; flat batches only.
                        return Err(ProtoError::BadTag(TAG_BATCH));
                    }
                    inner.push(m);
                    at += 4 + len;
                }
                if at != body.len() {
                    return Err(ProtoError::BadLength {
                        tag,
                        got: body.len(),
                    });
                }
                Ok(Msg::Batch(inner))
            }
            other => Err(ProtoError::BadTag(other)),
        }
    }
}

/// Scan `buf` for complete frames, removing consumed bytes. Returns the
/// decoded messages in arrival order; a structurally broken frame aborts
/// the scan with the error (the caller drops the connection).
pub fn drain_frames(buf: &mut Vec<u8>) -> Result<Vec<Msg>, ProtoError> {
    let mut msgs = Vec::new();
    let mut at = 0usize;
    while buf.len() - at >= 4 {
        let len = get_u32(&buf[at..]) as usize;
        if len > MAX_BATCH_FRAME {
            return Err(ProtoError::Oversized(len));
        }
        if len > MAX_FRAME {
            // Only a batch may run past the singleton cap, and judging
            // that needs the tag byte; with exactly 4 bytes buffered we
            // wait for it rather than guess.
            if buf.len() - at == 4 {
                break;
            }
            if buf[at + 4] != TAG_BATCH {
                return Err(ProtoError::Oversized(len));
            }
        }
        if buf.len() - at - 4 < len {
            break;
        }
        msgs.push(Msg::decode(&buf[at + 4..at + 4 + len])?);
        at += 4 + len;
    }
    buf.drain(..at);
    Ok(msgs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> NodeTelemetry {
        NodeTelemetry {
            compute_s: 1.25,
            comm_s: 0.125,
            slack_s: 0.5,
            rate: 0.8,
            power_w: 97.3,
        }
    }

    #[test]
    fn every_message_round_trips_bitwise() {
        let msgs = [
            Msg::Hello { node: 7 },
            Msg::Heartbeat { node: 0 },
            Msg::Telemetry {
                node: 3,
                seq: 41,
                report: sample_report(),
            },
            Msg::Grant {
                node: 3,
                seq: 41,
                tick: 9,
                watts: 88.125,
            },
            Msg::Busy { retry_after: 4 },
            Msg::Nack { seq: 41 },
        ];
        for m in msgs {
            let frame = m.encode();
            let got = Msg::decode(&frame[4..]).unwrap();
            assert_eq!(got, m);
        }
    }

    #[test]
    fn grants_preserve_exact_f64_bits() {
        // A value with no short decimal representation.
        let w = f64::from_bits(0x3FF7_3ABC_DEF0_1234);
        let m = Msg::Grant {
            node: 0,
            seq: 1,
            tick: 1,
            watts: w,
        };
        let frame = m.encode();
        match Msg::decode(&frame[4..]).unwrap() {
            Msg::Grant { watts, .. } => assert_eq!(watts.to_bits(), w.to_bits()),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn drain_handles_split_and_coalesced_frames() {
        let a = Msg::Hello { node: 1 }.encode();
        let b = Msg::Heartbeat { node: 2 }.encode();
        let mut buf = Vec::new();
        buf.extend_from_slice(&a);
        buf.extend_from_slice(&b[..3]); // partial second frame
        let msgs = drain_frames(&mut buf).unwrap();
        assert_eq!(msgs, vec![Msg::Hello { node: 1 }]);
        buf.extend_from_slice(&b[3..]);
        let msgs = drain_frames(&mut buf).unwrap();
        assert_eq!(msgs, vec![Msg::Heartbeat { node: 2 }]);
        assert!(buf.is_empty());
    }

    #[test]
    fn batch_payload_is_bitwise_the_concatenation_of_singleton_frames() {
        let msgs = vec![
            Msg::Hello { node: 7 },
            Msg::Telemetry {
                node: 3,
                seq: 41,
                report: sample_report(),
            },
            Msg::Grant {
                node: 3,
                seq: 41,
                tick: 9,
                watts: f64::from_bits(0x3FF7_3ABC_DEF0_1234),
            },
        ];
        let batch = Msg::Batch(msgs.clone()).encode();
        let mut singles = Vec::new();
        for m in &msgs {
            singles.extend_from_slice(&m.encode());
        }
        // Frame = len prefix, tag, count, then the singleton frames verbatim.
        assert_eq!(&batch[9..], &singles[..]);
        assert_eq!(batch[4], TAG_BATCH);
        assert_eq!(get_u32(&batch[5..]), msgs.len() as u32);
        assert_eq!(Msg::decode(&batch[4..]).unwrap(), Msg::Batch(msgs));
    }

    #[test]
    fn empty_batch_round_trips() {
        let frame = Msg::Batch(Vec::new()).encode();
        assert_eq!(Msg::decode(&frame[4..]).unwrap(), Msg::Batch(Vec::new()));
    }

    #[test]
    fn truncated_and_padded_batches_are_rejected() {
        let frame = Msg::Batch(vec![Msg::Hello { node: 1 }, Msg::Nack { seq: 2 }]).encode();
        let payload = &frame[4..];
        // Any strict prefix that still has the batch header is BadLength.
        for cut in 5..payload.len() {
            assert!(
                matches!(
                    Msg::decode(&payload[..cut]),
                    Err(ProtoError::BadLength { tag: TAG_BATCH, .. })
                ),
                "cut at {cut} must be rejected"
            );
        }
        // Trailing bytes beyond the counted members are BadLength too.
        let mut padded = payload.to_vec();
        padded.push(0);
        assert!(matches!(
            Msg::decode(&padded),
            Err(ProtoError::BadLength { tag: TAG_BATCH, .. })
        ));
    }

    #[test]
    fn batches_do_not_nest() {
        // Hand-craft a batch whose single member is itself a batch.
        let inner = Msg::Batch(vec![Msg::Hello { node: 1 }]).encode();
        let mut payload = vec![TAG_BATCH];
        put_u32(&mut payload, 1);
        payload.extend_from_slice(&inner);
        assert_eq!(Msg::decode(&payload), Err(ProtoError::BadTag(TAG_BATCH)));
    }

    #[test]
    fn oversized_inner_frame_inside_a_batch_is_rejected() {
        let mut payload = vec![TAG_BATCH];
        put_u32(&mut payload, 1);
        put_u32(&mut payload, (MAX_FRAME + 1) as u32); // hostile inner prefix
        payload.extend_from_slice(&vec![0u8; MAX_FRAME + 1]);
        assert!(matches!(
            Msg::decode(&payload),
            Err(ProtoError::Oversized(_))
        ));
    }

    #[test]
    fn drain_accepts_large_batches_and_waits_for_the_tag_byte() {
        // A batch bigger than MAX_FRAME must pass the scanner...
        let big = Msg::Batch(
            (0..40)
                .map(|i| Msg::Telemetry {
                    node: i,
                    seq: u64::from(i),
                    report: sample_report(),
                })
                .collect(),
        );
        let frame = big.encode();
        assert!(frame.len() > MAX_FRAME);
        // ...even when it arrives one byte at a time (in particular when
        // only the 4-byte length prefix is in, before the tag settles
        // whether the large length is legitimate).
        let mut buf = Vec::new();
        let mut got = Vec::new();
        for &b in &frame {
            buf.push(b);
            got.extend(drain_frames(&mut buf).unwrap());
        }
        assert_eq!(got, vec![big]);
        // A non-batch tag claiming a batch-sized frame stays hostile.
        let mut bad = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        bad.push(TAG_GRANT);
        bad.extend_from_slice(&[0u8; 32]);
        assert!(matches!(
            drain_frames(&mut bad),
            Err(ProtoError::Oversized(_))
        ));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut buf = u32::MAX.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            drain_frames(&mut buf),
            Err(ProtoError::Oversized(_))
        ));
    }

    #[test]
    fn unknown_tags_and_short_payloads_are_errors() {
        assert_eq!(
            Msg::decode(&[0xEE, 0, 0, 0, 0]),
            Err(ProtoError::BadTag(0xEE))
        );
        assert!(matches!(
            Msg::decode(&[TAG_GRANT, 1, 2]),
            Err(ProtoError::BadLength { .. })
        ));
    }
}
