//! The framed wire protocol between telemetry producers and the daemon.
//!
//! Frames are length-prefixed (`u32` little-endian byte count, then the
//! payload) so they survive arbitrary TCP segmentation; the payload is a
//! one-byte tag followed by fixed-width little-endian fields. All watts
//! and seconds travel as raw `f64` bits ([`f64::to_bits`]), never as
//! decimal text — the chaos acceptance criterion is *bitwise* grant
//! equality between the daemon path and the in-process arbiter, and a
//! round-trip through formatting would forfeit it.
//!
//! The protocol is deliberately version-tagged and paranoid on decode:
//! a daemon that parses attacker-shaped bytes with `unwrap` is a daemon
//! that dies to a single corrupt frame, so every decode path returns
//! [`ProtoError`] and the frame scanner bounds allocation with
//! [`MAX_FRAME`].

use cluster::NodeTelemetry;

/// Cap on a single frame's payload, bytes. The largest legitimate
/// message is `Telemetry` at 53 bytes; anything claiming more is a
/// corrupt or hostile length prefix and is rejected before allocation.
pub const MAX_FRAME: usize = 256;

/// Decoding failure: the frame is structurally broken. The connection
/// that produced it is dropped, not the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// Unknown message tag.
    BadTag(u8),
    /// The payload is shorter or longer than its tag demands.
    BadLength {
        /// Message tag.
        tag: u8,
        /// Payload bytes actually present.
        got: usize,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Oversized(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            ProtoError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            ProtoError::BadLength { tag, got } => {
                write!(f, "tag {tag:#04x} payload has {got} bytes")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// Every message either side of the wire can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Client → daemon: (re)introduce node `node`. Renews the lease and
    /// solicits an immediate [`Msg::Grant`] so a reconnecting client
    /// recovers its cap without waiting a full arbiter tick.
    Hello {
        /// Cluster-wide node id.
        node: u32,
    },
    /// Client → daemon: keep the lease alive without fresh telemetry.
    Heartbeat {
        /// Cluster-wide node id.
        node: u32,
    },
    /// Client → daemon: one epoch's telemetry. `seq` is the client's own
    /// monotone counter, echoed back on the matching grant so recovery
    /// runs can be compared grant-for-grant.
    Telemetry {
        /// Cluster-wide node id.
        node: u32,
        /// Client-side sequence number.
        seq: u64,
        /// The report itself.
        report: NodeTelemetry,
    },
    /// Daemon → client: the current grant for `node`.
    Grant {
        /// Cluster-wide node id.
        node: u32,
        /// Sequence of the telemetry this grant answers (0 for grants
        /// pushed outside a telemetry round, e.g. on Hello).
        seq: u64,
        /// Daemon tick that produced the grant.
        tick: u64,
        /// Granted cap, W.
        watts: f64,
    },
    /// Daemon → client: load shed. The ingress queue is full or the
    /// client is over its rate; retry after `retry_after` ticks.
    Busy {
        /// Ticks to back off before retrying.
        retry_after: u32,
    },
    /// Daemon → client: the telemetry was malformed and dropped. The
    /// lease survives; the client keeps its last grant.
    Nack {
        /// Which seq was rejected.
        seq: u64,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_HEARTBEAT: u8 = 2;
const TAG_TELEMETRY: u8 = 3;
const TAG_GRANT: u8 = 4;
const TAG_BUSY: u8 = 5;
const TAG_NACK: u8 = 6;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn get_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().unwrap())
}

fn get_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

fn get_f64(b: &[u8]) -> f64 {
    f64::from_bits(get_u64(b))
}

impl Msg {
    /// Serialize into a complete frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(64);
        match self {
            Msg::Hello { node } => {
                p.push(TAG_HELLO);
                put_u32(&mut p, *node);
            }
            Msg::Heartbeat { node } => {
                p.push(TAG_HEARTBEAT);
                put_u32(&mut p, *node);
            }
            Msg::Telemetry { node, seq, report } => {
                p.push(TAG_TELEMETRY);
                put_u32(&mut p, *node);
                put_u64(&mut p, *seq);
                put_f64(&mut p, report.compute_s);
                put_f64(&mut p, report.comm_s);
                put_f64(&mut p, report.slack_s);
                put_f64(&mut p, report.rate);
                put_f64(&mut p, report.power_w);
            }
            Msg::Grant {
                node,
                seq,
                tick,
                watts,
            } => {
                p.push(TAG_GRANT);
                put_u32(&mut p, *node);
                put_u64(&mut p, *seq);
                put_u64(&mut p, *tick);
                put_f64(&mut p, *watts);
            }
            Msg::Busy { retry_after } => {
                p.push(TAG_BUSY);
                put_u32(&mut p, *retry_after);
            }
            Msg::Nack { seq } => {
                p.push(TAG_NACK);
                put_u64(&mut p, *seq);
            }
        }
        let mut frame = Vec::with_capacity(4 + p.len());
        put_u32(&mut frame, p.len() as u32);
        frame.extend_from_slice(&p);
        frame
    }

    /// Parse one frame payload (the bytes after the length prefix).
    pub fn decode(payload: &[u8]) -> Result<Msg, ProtoError> {
        let (&tag, body) = payload
            .split_first()
            .ok_or(ProtoError::BadLength { tag: 0, got: 0 })?;
        let need = |n: usize| -> Result<(), ProtoError> {
            if body.len() == n {
                Ok(())
            } else {
                Err(ProtoError::BadLength {
                    tag,
                    got: body.len(),
                })
            }
        };
        match tag {
            TAG_HELLO => {
                need(4)?;
                Ok(Msg::Hello {
                    node: get_u32(body),
                })
            }
            TAG_HEARTBEAT => {
                need(4)?;
                Ok(Msg::Heartbeat {
                    node: get_u32(body),
                })
            }
            TAG_TELEMETRY => {
                need(4 + 8 + 5 * 8)?;
                Ok(Msg::Telemetry {
                    node: get_u32(body),
                    seq: get_u64(&body[4..]),
                    report: NodeTelemetry {
                        compute_s: get_f64(&body[12..]),
                        comm_s: get_f64(&body[20..]),
                        slack_s: get_f64(&body[28..]),
                        rate: get_f64(&body[36..]),
                        power_w: get_f64(&body[44..]),
                    },
                })
            }
            TAG_GRANT => {
                need(4 + 8 + 8 + 8)?;
                Ok(Msg::Grant {
                    node: get_u32(body),
                    seq: get_u64(&body[4..]),
                    tick: get_u64(&body[12..]),
                    watts: get_f64(&body[20..]),
                })
            }
            TAG_BUSY => {
                need(4)?;
                Ok(Msg::Busy {
                    retry_after: get_u32(body),
                })
            }
            TAG_NACK => {
                need(8)?;
                Ok(Msg::Nack { seq: get_u64(body) })
            }
            other => Err(ProtoError::BadTag(other)),
        }
    }
}

/// Scan `buf` for complete frames, removing consumed bytes. Returns the
/// decoded messages in arrival order; a structurally broken frame aborts
/// the scan with the error (the caller drops the connection).
pub fn drain_frames(buf: &mut Vec<u8>) -> Result<Vec<Msg>, ProtoError> {
    let mut msgs = Vec::new();
    let mut at = 0usize;
    while buf.len() - at >= 4 {
        let len = get_u32(&buf[at..]) as usize;
        if len > MAX_FRAME {
            return Err(ProtoError::Oversized(len));
        }
        if buf.len() - at - 4 < len {
            break;
        }
        msgs.push(Msg::decode(&buf[at + 4..at + 4 + len])?);
        at += 4 + len;
    }
    buf.drain(..at);
    Ok(msgs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> NodeTelemetry {
        NodeTelemetry {
            compute_s: 1.25,
            comm_s: 0.125,
            slack_s: 0.5,
            rate: 0.8,
            power_w: 97.3,
        }
    }

    #[test]
    fn every_message_round_trips_bitwise() {
        let msgs = [
            Msg::Hello { node: 7 },
            Msg::Heartbeat { node: 0 },
            Msg::Telemetry {
                node: 3,
                seq: 41,
                report: sample_report(),
            },
            Msg::Grant {
                node: 3,
                seq: 41,
                tick: 9,
                watts: 88.125,
            },
            Msg::Busy { retry_after: 4 },
            Msg::Nack { seq: 41 },
        ];
        for m in msgs {
            let frame = m.encode();
            let got = Msg::decode(&frame[4..]).unwrap();
            assert_eq!(got, m);
        }
    }

    #[test]
    fn grants_preserve_exact_f64_bits() {
        // A value with no short decimal representation.
        let w = f64::from_bits(0x3FF7_3ABC_DEF0_1234);
        let m = Msg::Grant {
            node: 0,
            seq: 1,
            tick: 1,
            watts: w,
        };
        let frame = m.encode();
        match Msg::decode(&frame[4..]).unwrap() {
            Msg::Grant { watts, .. } => assert_eq!(watts.to_bits(), w.to_bits()),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn drain_handles_split_and_coalesced_frames() {
        let a = Msg::Hello { node: 1 }.encode();
        let b = Msg::Heartbeat { node: 2 }.encode();
        let mut buf = Vec::new();
        buf.extend_from_slice(&a);
        buf.extend_from_slice(&b[..3]); // partial second frame
        let msgs = drain_frames(&mut buf).unwrap();
        assert_eq!(msgs, vec![Msg::Hello { node: 1 }]);
        buf.extend_from_slice(&b[3..]);
        let msgs = drain_frames(&mut buf).unwrap();
        assert_eq!(msgs, vec![Msg::Heartbeat { node: 2 }]);
        assert!(buf.is_empty());
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut buf = u32::MAX.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            drain_frames(&mut buf),
            Err(ProtoError::Oversized(_))
        ));
    }

    #[test]
    fn unknown_tags_and_short_payloads_are_errors() {
        assert_eq!(
            Msg::decode(&[0xEE, 0, 0, 0, 0]),
            Err(ProtoError::BadTag(0xEE))
        );
        assert!(matches!(
            Msg::decode(&[TAG_GRANT, 1, 2]),
            Err(ProtoError::BadLength { .. })
        ));
    }
}
