//! Chaos acceptance tests for the arbiter daemon.
//!
//! These are the PR's contract, executed: under seeded transport faults
//! plus a mid-run `kill -9`/restore, the load generator completes with
//! zero panics or deadlocks, Σ grants ≤ budget at every observed tick,
//! disconnected members degrade to hold-last-grant, and post-recovery
//! grants match an uncrashed reference run — while the fault-free
//! daemon path stays grant-for-grant *bit-identical* to the in-process
//! [`cluster::BudgetArbiter`].

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use arbiterd::loadgen::{run_loadgen, synth_telemetry, FaultKnobs, LoadgenConfig};
use arbiterd::{ArbiterService, Msg, ServiceConfig, Snapshot};
use cluster::{ArbiterConfig, NodeTelemetry, Policy, PowerArbiter};
use proptest::prelude::*;

/// A collision-free scratch path per call (the proptest cases all run in
/// one process, so the pid alone is not enough).
fn scratch(tag: &str) -> PathBuf {
    static NTH: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "arbiterd-chaos-{}-{}-{}.snap",
        std::process::id(),
        tag,
        NTH.fetch_add(1, Ordering::Relaxed)
    ))
}

fn bare_arbiter(n: usize) -> PowerArbiter {
    PowerArbiter::new(
        ArbiterConfig {
            budget_w: 100.0 * n as f64,
            min_cap_w: 40.0,
            max_cap_w: 130.0,
            policy: Policy::ProgressFeedback { gain: 1.0 },
        },
        n,
    )
}

/// The determinism half of the contract: with clean wires the daemon is
/// a transparent shell — every grant it streams out is bit-identical to
/// what the in-process arbiter computes from the same telemetry.
#[test]
fn fault_free_daemon_is_bit_identical_to_the_bare_arbiter() {
    let cfg = LoadgenConfig {
        clients: 8,
        ticks: 25,
        seed: 42,
        service: ServiceConfig {
            snapshot_every: 0,
            ..ServiceConfig::default()
        },
        ..LoadgenConfig::default()
    };
    let run = run_loadgen(&cfg);
    assert!(run.invariant_ok);
    assert_eq!(run.reconnects, 0);
    assert_eq!(run.hold_violations, 0);

    let mut bare = bare_arbiter(cfg.clients);
    for seq in 1..=cfg.ticks {
        let reports: Vec<Option<NodeTelemetry>> = (0..cfg.clients)
            .map(|i| Some(synth_telemetry(cfg.seed, i as u32, seq)))
            .collect();
        let grants = bare.redistribute(&reports).unwrap().to_vec();
        for (node, log) in run.grant_log.iter().enumerate() {
            assert_eq!(
                log.get(&seq),
                Some(&grants[node].to_bits()),
                "node {node} seq {seq}: daemon grant must be bit-identical"
            );
        }
    }
}

/// The recovery half: kill the daemon mid-run, restore from the
/// write-ahead snapshot, and every grant the recovered daemon issues —
/// by telemetry seq — matches the run that never crashed, bit for bit.
#[test]
fn crash_recovery_matches_the_uncrashed_reference_bitwise() {
    let base = LoadgenConfig {
        clients: 6,
        ticks: 40,
        seed: 7,
        service: ServiceConfig {
            // Long leases: expiry during the short outage would
            // (correctly) reclaim watts and diverge from the reference;
            // lease expiry has its own tests.
            lease_ticks: 64,
            snapshot_every: 1,
            ..ServiceConfig::default()
        },
        backoff_cap: 4,
        lockstep_backoff: true,
        ..LoadgenConfig::default()
    };
    let reference = run_loadgen(&base.clone());

    let path = scratch("recovery");
    let crashed = run_loadgen(&LoadgenConfig {
        crash_at: Some(15),
        snapshot_path: Some(path.clone()),
        ..base
    });
    std::fs::remove_file(&path).ok();

    assert!(
        crashed.invariant_ok,
        "Σ ≤ budget through crash and recovery"
    );
    assert_eq!(crashed.hold_violations, 0, "grants hold while disconnected");
    assert_eq!(crashed.reconnects, 6, "every client redials exactly once");
    let recovery = crashed.recovery_ticks.expect("recovery must complete");
    assert!(
        recovery <= 8,
        "recovery should be quick, took {recovery} ticks"
    );

    // Grant-for-grant: everything the crashed run issued, the reference
    // issued identically. (The crashed run grants fewer seqs — seqs
    // pause during the outage — but never *different* ones.)
    for (node, log) in crashed.grant_log.iter().enumerate() {
        assert!(!log.is_empty());
        for (seq, bits) in log {
            assert_eq!(
                reference.grant_log[node].get(seq),
                Some(bits),
                "node {node} seq {seq}: recovered grant diverged from reference"
            );
        }
    }
    // And recovery made real progress past the crash point.
    assert!(
        crashed.min_granted_seq() > 25,
        "post-recovery rounds must flow: min granted seq {}",
        crashed.min_granted_seq()
    );
}

/// The robustness half: hostile wires (drops, dups, delays, a long
/// partition) *plus* a mid-run crash. No panics, no invariant breach,
/// hold-last-grant everywhere, leases reclaim the partitioned clients'
/// watts, and the cluster still fully recovers.
#[test]
fn hostile_wires_plus_crash_keep_every_invariant() {
    let path = scratch("hostile");
    let run = run_loadgen(&LoadgenConfig {
        clients: 28,
        ticks: 90,
        seed: 11,
        faults: Some(FaultKnobs {
            // A partition long enough (in polls ≈ ticks) to outlive the
            // default 8-tick lease on every 5th client.
            partition: Some((10, 40, 5)),
            ..FaultKnobs::hostile()
        }),
        crash_at: Some(45),
        snapshot_path: Some(path.clone()),
        ..LoadgenConfig::default()
    });
    std::fs::remove_file(&path).ok();

    assert!(run.invariant_ok, "Σ ≤ budget under faults + crash");
    assert_eq!(run.hold_violations, 0);
    assert!(run.max_sum_grants_w <= run.budget_w + 1e-6);
    assert!(
        run.service.leases_expired > 0,
        "partitioned clients must lose their leases: {:?}",
        run.service
    );
    assert!(
        run.reconnects >= run.clients as u64,
        "every client redials after the crash: {}",
        run.reconnects
    );
    assert!(
        run.recovery_ticks.is_some(),
        "the cluster must fully recover despite lossy wires"
    );
    // The wires were genuinely hostile and the service genuinely busy.
    assert!(run.service.duplicates > 0, "{:?}", run.service);
    assert!(run.service.rounds > 50, "{:?}", run.service);
}

/// Batched framing under fire: multiplexed producers send one
/// [`Msg::Batch`] per group per tick through hostile wires, so the
/// fault plan drops and duplicates *whole batches* at once — and a
/// mid-run crash lands on top. Every invariant must still hold, and
/// duplicate batches must be absorbed by per-member seq dedup.
#[test]
fn hostile_wires_drop_whole_batches_and_nothing_breaks() {
    let path = scratch("batch-hostile");
    let run = run_loadgen(&LoadgenConfig {
        clients: 24,
        batch: 6,
        ticks: 80,
        seed: 13,
        faults: Some(FaultKnobs {
            drop_prob: 0.08,
            dup_prob: 0.05,
            delay_prob: 0.10,
            max_delay_polls: 3,
            partition: Some((10, 40, 2)),
        }),
        crash_at: Some(45),
        snapshot_path: Some(path.clone()),
        ..LoadgenConfig::default()
    });
    std::fs::remove_file(&path).ok();

    assert!(run.invariant_ok, "Σ ≤ budget under batch faults + crash");
    assert!(run.max_sum_grants_w <= run.budget_w + 1e-6);
    assert!(
        run.service.duplicates > 0,
        "duplicated batches must be deduped member-by-member: {:?}",
        run.service
    );
    assert!(
        run.service.leases_expired > 0,
        "partitioned groups lose whole leases at once: {:?}",
        run.service
    );
    assert!(
        run.recovery_ticks.is_some(),
        "the batched cluster must still fully recover"
    );
    assert!(run.min_granted_seq() > 0, "everyone got granted eventually");
}

/// Sharded recovery: kill exactly one of two daemons mid-run while its
/// peer keeps serving, restore it from its own snapshot. Before the
/// crash the run is bit-identical to a never-crashed sharded reference.
/// After it, grants may legitimately diverge — the crashed span's seqs
/// pause, so the next outer re-split sees different telemetry windows —
/// but the crashed run must stay fully deterministic, conserve the
/// machine budget at every tick, and recover completely.
#[test]
fn single_shard_crash_recovers_while_peers_keep_serving() {
    let crash_at = 15u64;
    let base = LoadgenConfig {
        clients: 12,
        shards: 2,
        outer_period: 4,
        ticks: 40,
        seed: 7,
        service: ServiceConfig {
            lease_ticks: 64,
            snapshot_every: 1,
            ..ServiceConfig::default()
        },
        backoff_cap: 4,
        lockstep_backoff: true,
        ..LoadgenConfig::default()
    };
    let ref_path = scratch("shard-ref");
    let reference = run_loadgen(&LoadgenConfig {
        snapshot_path: Some(ref_path.clone()),
        ..base.clone()
    });
    let crash_cfg = LoadgenConfig {
        crash_at: Some(crash_at),
        crash_shard: Some(1),
        snapshot_path: Some(scratch("shard-crash")),
        ..base
    };
    let crashed = run_loadgen(&crash_cfg);
    let replay = run_loadgen(&crash_cfg);
    for p in [&ref_path, crash_cfg.snapshot_path.as_ref().unwrap()] {
        for i in 0..2 {
            std::fs::remove_file(format!("{}.s{i}", p.display())).ok();
        }
    }

    assert!(
        crashed.invariant_ok,
        "machine-wide Σ ≤ budget through the crash"
    );
    assert_eq!(crashed.hold_violations, 0);
    assert_eq!(
        crashed.reconnects, 6,
        "only the crashed shard's six clients redial"
    );
    assert!(crashed.recovery_ticks.is_some(), "shard 1 must recover");
    assert!(
        crashed.min_granted_seq() > 25,
        "post-recovery rounds must flow on both shards: min granted seq {}",
        crashed.min_granted_seq()
    );
    // Pre-crash prefix: bit-identical to the uncrashed reference on
    // every node of every shard.
    for (node, log) in crashed.grant_log.iter().enumerate() {
        for (seq, bits) in log.range(..crash_at) {
            assert_eq!(
                reference.grant_log[node].get(seq),
                Some(bits),
                "node {node} seq {seq}: pre-crash grants must match the reference"
            );
        }
    }
    // And the whole chaotic run — outage, redials, restore — replays
    // bit-for-bit from the same seed.
    assert_eq!(crashed.grant_log, replay.grant_log);
    assert_eq!(crashed.sum_fingerprint, replay.sum_fingerprint);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Snapshot serialization is bitwise-lossless for *any* f64 payload
    /// — including NaNs, infinities, and subnormals a policy bug might
    /// produce — and any lease table shape.
    #[test]
    fn snapshot_bytes_round_trip_bitwise(
        tick in any::<u64>(),
        budget_bits in any::<u64>(),
        cells in prop::collection::vec((any::<u64>(), any::<bool>(), 0u64..10_000), 1..48),
    ) {
        let snap = Snapshot {
            tick,
            budget_w: f64::from_bits(budget_bits),
            grants_w: cells.iter().map(|(b, _, _)| f64::from_bits(*b)).collect(),
            leases: cells.iter().map(|(_, live, at)| live.then_some(*at)).collect(),
            window: Some((
                [
                    f64::from_bits(budget_bits.rotate_left(7)),
                    f64::from_bits(budget_bits.rotate_left(13)),
                    f64::NAN,
                    f64::NEG_INFINITY,
                    5e-324,
                ],
                tick.wrapping_mul(3),
            )),
        };
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        prop_assert_eq!(back.tick, snap.tick);
        prop_assert_eq!(back.budget_w.to_bits(), snap.budget_w.to_bits());
        prop_assert_eq!(back.grants_w.len(), snap.grants_w.len());
        for (a, b) in back.grants_w.iter().zip(&snap.grants_w) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(back.leases, snap.leases);
        let (back_w, back_n) = back.window.expect("window must survive");
        let (snap_w, snap_n) = snap.window.unwrap();
        for (a, b) in back_w.iter().zip(&snap_w) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(back_n, snap_n);
    }

    /// Any truncation of a valid snapshot is rejected, never trusted —
    /// a torn write at the worst possible byte reads as "no snapshot".
    #[test]
    fn truncated_snapshots_are_rejected(
        cut_frac in 0.0f64..1.0,
        grants in prop::collection::vec(20.0f64..150.0, 1..16),
    ) {
        let n = grants.len();
        let snap = Snapshot {
            tick: 9,
            budget_w: 100.0 * n as f64,
            grants_w: grants,
            leases: vec![None; n],
            window: Some(([1.0, 2.0, 3.0, 4.0, 5.0], 9)),
        };
        let bytes = snap.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert_eq!(Snapshot::from_bytes(&bytes[..cut]), None);
    }

    /// Crash/restore is grant-for-grant exact under arbitrary load
    /// shapes: run some rounds, kill the service, restore a fresh one
    /// from disk, and both the restored grants *and the next round's
    /// grants* are bit-identical to a service that never died.
    #[test]
    fn service_recovery_is_grant_for_grant_exact(
        times in prop::collection::vec(0.2f64..4.0, 2..9),
        rounds in 1u64..6,
    ) {
        let n = times.len();
        let cfg = ServiceConfig::default();
        let path = scratch("prop");

        let mut svc = ArbiterService::new(Box::new(bare_arbiter(n)), cfg.clone())
            .with_snapshot_path(path.clone());
        let mut witness = ArbiterService::new(Box::new(bare_arbiter(n)), cfg.clone());
        for round in 1..=rounds {
            for (i, t) in times.iter().enumerate() {
                let msg = Msg::Telemetry {
                    node: i as u32,
                    seq: round,
                    report: NodeTelemetry::compute_only(*t, 1.0 / t, 90.0),
                };
                svc.ingest(msg.clone());
                witness.ingest(msg);
            }
            svc.tick();
            witness.tick();
        }
        drop(svc); // kill -9: no shutdown path runs

        let mut revived = ArbiterService::new(Box::new(bare_arbiter(n)), cfg)
            .with_snapshot_path(path.clone());
        prop_assert!(revived.restore());
        for (a, b) in revived.grants().iter().zip(witness.grants()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // One more round on both: recovery preserved the feedback state,
        // not just the surface numbers.
        for (i, t) in times.iter().enumerate() {
            let msg = Msg::Telemetry {
                node: i as u32,
                seq: rounds + 1,
                report: NodeTelemetry::compute_only(t * 1.5, 1.0 / (t * 1.5), 85.0),
            };
            revived.ingest(msg.clone());
            witness.ingest(msg);
        }
        revived.tick();
        witness.tick();
        for (a, b) in revived.grants().iter().zip(witness.grants()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    /// Whatever a client throws at the service — unknown nodes, replayed
    /// seqs, out-of-range power readings — the budget invariant holds
    /// and the service keeps answering.
    #[test]
    fn budget_holds_under_arbitrary_traffic(
        msgs in prop::collection::vec(
            (0u32..6, 1u64..20, 0.1f64..5.0, -50.0f64..400.0),
            0..60,
        ),
    ) {
        let mut svc = ArbiterService::new(Box::new(bare_arbiter(4)), ServiceConfig::default());
        let budget = svc.budget();
        for (k, (node, seq, compute, power)) in msgs.into_iter().enumerate() {
            svc.ingest(Msg::Telemetry {
                node,
                seq,
                report: NodeTelemetry::compute_only(compute, 1.0 / compute, power),
            });
            if k % 5 == 4 {
                svc.tick();
                let sum: f64 = svc.grants().iter().sum();
                prop_assert!(sum <= budget + 1e-6, "Σ {sum} > budget {budget}");
            }
        }
        svc.tick();
        let sum: f64 = svc.grants().iter().sum();
        prop_assert!(sum <= budget + 1e-6);
    }
}
