//! # powerprog-bench — benchmark harness support
//!
//! The actual benchmarks live in `benches/`, one per paper table/figure
//! (each regenerates its artefact at reduced scale under Criterion timing)
//! plus microbenchmarks of the hot simulation paths and the ablation
//! benches DESIGN.md calls out. This library provides the tiny shared
//! helpers.

use powerprog_core::runner::{run_app, RunArtifacts, RunConfig};
use proxyapps::catalog::AppId;
use simnode::time::SEC;

/// Standard short benchmark run: `app`, uncapped, `secs` simulated seconds.
pub fn short_run(app: AppId, secs: u64) -> RunArtifacts {
    run_app(&RunConfig::new(app, secs * SEC))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_helper_produces_progress() {
        let a = short_run(AppId::Stream, 2);
        assert!(a.steady_rate() > 0.0);
    }
}
