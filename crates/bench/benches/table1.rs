//! Bench for **Table I** — regenerates the MIPS-vs-online-performance
//! comparison (both Listing-1 variants, 24 ranks, 5 iterations each) and
//! asserts the headline inversion on every sample so a regression in the
//! barrier/counter model cannot slip through a timing-only bench.

use criterion::{criterion_group, criterion_main, Criterion};
use powerprog_core::experiments::table1;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("regenerate", |b| {
        b.iter(|| {
            let t = table1::run(black_box(&table1::Config::default()));
            assert!(t.unequal().mips > 4.0 * t.equal().mips);
            black_box(t)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
