//! Bench for **Fig. 4** — regenerates the model-validation sweep (per-app
//! step-function protocol, measured vs Eq. 7 predictions) at benchmark
//! scale.

use criterion::{criterion_group, criterion_main, Criterion};
use powerprog_core::experiments::{fig4, table6};
use proxyapps::catalog::AppId;
use simnode::time::SEC;
use std::hint::black_box;

fn mini() -> fig4::Config {
    fig4::Config {
        caps_w: vec![60.0, 90.0],
        seeds: 1,
        lead_in: 4 * SEC,
        capped: 8 * SEC,
        characterization: table6::Config {
            low_mhz: 1600,
            duration: 6 * SEC,
        },
    }
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    // Full five-app mini sweep.
    g.bench_function("validate_all_apps", |b| {
        b.iter(|| black_box(fig4::run(black_box(&mini()))))
    });
    // Single-app series, the unit other tools compose.
    g.bench_function("validate_lammps", |b| {
        b.iter(|| black_box(fig4::run_app_series(AppId::Lammps, black_box(&mini()))))
    });
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
