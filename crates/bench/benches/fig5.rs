//! Bench for **Fig. 5** — regenerates the STREAM RAPL-vs-DVFS comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use powerprog_core::experiments::fig5;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("technique_sweeps", |b| {
        b.iter(|| {
            let r = fig5::run(black_box(&fig5::Config::quick()));
            assert!(!r.rapl.is_empty() && !r.dvfs.is_empty());
            black_box(r)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
