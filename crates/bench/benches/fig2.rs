//! Bench for **Fig. 2** — regenerates the RAPL application-aware frequency
//! comparison (LAMMPS vs STREAM cap sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use powerprog_core::experiments::fig2;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("cap_sweep", |b| {
        b.iter(|| {
            let r = fig2::run(black_box(&fig2::Config::quick()));
            assert!(r.points.iter().all(|p| p.lammps_mhz > p.stream_mhz));
            black_box(r)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
