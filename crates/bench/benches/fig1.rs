//! Bench for **Fig. 1** — regenerates the three characterization panels
//! (LAMMPS flat, AMG fluctuating, QMCPACK phased).

use criterion::{criterion_group, criterion_main, Criterion};
use powerprog_core::experiments::fig1;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("three_panels", |b| {
        b.iter(|| {
            let r = fig1::run(black_box(&fig1::Config::quick()));
            assert!(r.qmcpack.phases.len() == 3);
            black_box(r)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
