//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - **simulation quantum**: step cost vs quantum size (accuracy is tested
//!   in `powerprog-core`; this measures the speed side of the trade);
//! - **monitoring transport**: lossless vs lossy end-to-end run cost;
//! - **RAPL control period**: how much the controller cadence costs;
//! - **rank scaling**: driver+node cost at 4/12/24 ranks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use powerprog_core::runner::{run_app, RunConfig};
use proxyapps::catalog::AppId;
use simnode::time::{MS, SEC, US};
use std::hint::black_box;

fn bench_quantum(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/quantum");
    g.sample_size(10);
    for quantum_us in [50u64, 100, 200, 400] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{quantum_us}us")),
            &quantum_us,
            |b, &q| {
                b.iter(|| {
                    let mut rc = RunConfig::new(AppId::Lammps, 2 * SEC);
                    rc.node.quantum = q * US;
                    black_box(run_app(&rc).steady_rate())
                })
            },
        );
    }
    g.finish();
}

fn bench_transport(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/transport");
    g.sample_size(10);
    g.bench_function("lossless", |b| {
        b.iter(|| black_box(run_app(&RunConfig::new(AppId::Lammps, 2 * SEC)).dropped_events))
    });
    g.bench_function("lossy_cap4", |b| {
        b.iter(|| {
            black_box(
                run_app(&RunConfig::new(AppId::Lammps, 2 * SEC).with_lossy_monitoring(4))
                    .dropped_events,
            )
        })
    });
    g.finish();
}

fn bench_rapl_period(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/rapl_period");
    g.sample_size(10);
    for period_ms in [1u64, 4, 10] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{period_ms}ms")),
            &period_ms,
            |b, &p| {
                b.iter(|| {
                    let mut rc = RunConfig::new(AppId::Stream, 2 * SEC);
                    rc.node.rapl_period = p * MS;
                    rc.node.rapl_window = (10 * MS).max(p * MS);
                    rc.schedule = powerprog_core::runner::ScheduleSpec::Constant(90.0);
                    black_box(run_app(&rc).steady_rate())
                })
            },
        );
    }
    g.finish();
}

fn bench_rank_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/ranks");
    g.sample_size(10);
    for ranks in [4usize, 12, 24] {
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &r| {
            b.iter(|| {
                let mut rc = RunConfig::new(AppId::Amg, 2 * SEC);
                rc.ranks = r;
                black_box(run_app(&rc).duration_s)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_quantum,
    bench_transport,
    bench_rapl_period,
    bench_rank_scaling
);
criterion_main!(benches);
