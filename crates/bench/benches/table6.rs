//! Bench for **Table VI** — regenerates the β/MPO characterization of the
//! five measured applications (two runs per app: 3300 and 1600 MHz).

use criterion::{criterion_group, criterion_main, Criterion};
use powerprog_core::experiments::table6;
use std::hint::black_box;

fn bench_table6(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    g.bench_function("characterize_all", |b| {
        b.iter(|| {
            let t = table6::run(black_box(&table6::Config::quick()));
            assert_eq!(t.rows.len(), 5);
            black_box(t)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
