//! Microbenchmarks of the hot paths: the node's per-quantum step, the
//! RAPL control decision, the progress bus, the 1 Hz aggregator and the
//! Eq. 7 evaluation. These are what bound full-experiment wall time, so
//! regressions here matter directly for `repro all`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use powermodel::predict::ProgressModel;
use progress::aggregator::ProgressAggregator;
use progress::bus::{BusConfig, ProgressBus};
use simnode::config::NodeConfig;
use simnode::node::{CoreWork, Node, WorkPacket};
use simnode::time::SEC;
use std::hint::black_box;

fn busy_node() -> Node {
    let mut node = Node::new(NodeConfig::default());
    for c in 0..node.cores() {
        node.assign(
            c,
            CoreWork::Compute(WorkPacket::new(3.3e12, 1e9, 5e12).into()),
        );
    }
    node
}

fn bench_node_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/node");
    // One simulated second = 10 000 quanta of 24-core execution.
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("step_1s_24core_uncapped", |b| {
        let mut node = busy_node();
        b.iter(|| {
            for _ in 0..10_000 {
                black_box(node.step());
            }
        })
    });
    g.bench_function("step_1s_24core_capped", |b| {
        let mut node = busy_node();
        node.set_package_cap(Some(90.0)).unwrap();
        b.iter(|| {
            for _ in 0..10_000 {
                black_box(node.step());
            }
        })
    });
    g.finish();
}

fn bench_bus(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/bus");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("publish_1k_lossless", |b| {
        let bus = ProgressBus::new();
        let mut sub = bus.subscribe(BusConfig::lossless());
        let p = bus.publisher();
        b.iter(|| {
            for i in 0..1_000u64 {
                p.publish(i, 1.0);
            }
            black_box(sub.drain().len())
        })
    });
    g.bench_function("publish_1k_lossy", |b| {
        let bus = ProgressBus::new();
        let mut sub = bus.subscribe(BusConfig::lossy(64, progress::bus::DropPolicy::DropOldest));
        let p = bus.publisher();
        b.iter(|| {
            for i in 0..1_000u64 {
                p.publish(i, 1.0);
            }
            black_box(sub.drain().len())
        })
    });
    g.finish();
}

fn bench_aggregator(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/aggregator");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("window_10k_events", |b| {
        b.iter(|| {
            let bus = ProgressBus::new();
            let sub = bus.subscribe(BusConfig::lossless());
            let p = bus.publisher();
            let agg = ProgressAggregator::new(sub, SEC, None);
            for i in 0..10_000u64 {
                p.publish(i * 100_000, 1.0);
            }
            black_box(agg.finish(SEC * 2_000).len())
        })
    });
    g.finish();
}

fn bench_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/model");
    let m = ProgressModel::new(0.84, 2.0, 124.0, 16.0);
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("eq7_1k_evals", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1_000 {
                acc += m.predict_delta(black_box(40.0 + i as f64 * 0.1));
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_node_step,
    bench_bus,
    bench_aggregator,
    bench_model
);
criterion_main!(benches);
