//! Bench for the **faults** experiment — measures the overhead of the
//! fault-injection layer and the hardened control loop against the naive
//! baseline at benchmark scale. Fault injection sits on the MSR hot path
//! (every user-space read/write consults the fault layer), so this is the
//! regression guard for that cost.

use criterion::{criterion_group, criterion_main, Criterion};
use nrm::resilience::ResilienceConfig;
use powerprog_core::experiments::faults::{Config, Scenario};
use powerprog_core::runner::{run_app, RunConfig, ScheduleSpec};
use proxyapps::catalog::AppId;
use simnode::time::SEC;
use std::hint::black_box;

fn bench_faults(c: &mut Criterion) {
    let mut g = c.benchmark_group("faults");
    g.sample_size(10);

    let schedule = ScheduleSpec::StepAfter {
        lead_in: 2 * SEC,
        cap_w: 80.0,
    };
    let cfg = Config {
        duration: 10 * SEC,
        budget_w: 80.0,
        seed: 7,
    };

    // Baseline: naive loop, no fault layer installed at all.
    let plain = RunConfig::new(AppId::Lammps, cfg.duration).with_schedule(schedule);
    g.bench_function("naive_no_faults_10s", |b| {
        b.iter(|| black_box(run_app(black_box(&plain))))
    });

    // Fault layer installed and firing, naive loop.
    let stormy = plain
        .clone()
        .with_faults(Scenario::CapWriteStorm.plan(&cfg));
    g.bench_function("naive_storm_10s", |b| {
        b.iter(|| black_box(run_app(black_box(&stormy))))
    });

    // Hardened loop riding the same storm: retry + read-back + fallback.
    let hardened = stormy.clone().with_resilience(ResilienceConfig::default());
    g.bench_function("hardened_storm_10s", |b| {
        b.iter(|| {
            let a = run_app(black_box(&hardened));
            assert!(a.fallback_ticks() > 0);
            black_box(a)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
