//! Bench for **Fig. 3** — regenerates the dynamic-capping grid (three
//! schemes × three applications) at benchmark scale. The full-scale
//! cap-tracking assertions live in `powerprog-core`'s tests; at this
//! reduced duration only the structure is asserted.

use criterion::{criterion_group, criterion_main, Criterion};
use powerprog_core::experiments::fig3;
use simnode::time::SEC;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    let cfg = fig3::Config {
        duration: 18 * SEC,
        low_w: 60.0,
        high_w: 150.0,
    };
    g.bench_function("scheme_grid_18s", |b| {
        b.iter(|| {
            let r = fig3::run(black_box(&cfg));
            assert_eq!(r.cells.len(), 9);
            black_box(r)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
