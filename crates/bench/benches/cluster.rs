//! Bench for the **cluster** experiment — measures the cost of the
//! barrier-coupled multi-node simulation and the arbiter redistribution
//! path. The members step in parallel between barriers, so this also
//! tracks the coordination overhead of the owned-move fan-out; the bare
//! arbiter bench isolates the redistribution arithmetic from the node
//! simulation.

use cluster::{
    exchange, ramp_weights, run_cluster, ArbiterConfig, ClusterConfig, CommConfig, CommPattern,
    HierarchyConfig, NodeSpec, NodeTelemetry, Policy, PowerArbiter, Preset, Topology,
    WorkloadShape, DEFAULT_DAEMON_PERIOD,
};
use criterion::{criterion_group, criterion_main, Criterion};
use simnode::config::NodeConfig;
use simnode::node::{CoreWork, Node, WorkPacket};
use simnode::time::SEC;
use std::hint::black_box;

/// A small imbalanced cluster, sized so one run is bench-friendly.
fn bench_config(policy: Policy) -> ClusterConfig {
    ClusterConfig {
        nodes: vec![
            NodeSpec::new(Preset::Reference, 1.0),
            NodeSpec::new(Preset::Leaky(15.0), 1.4),
            NodeSpec::new(Preset::Reference, 1.8),
            NodeSpec::new(Preset::Reference, 2.2),
        ],
        iters: 3,
        arbiter: ArbiterConfig {
            budget_w: 280.0,
            min_cap_w: 40.0,
            max_cap_w: 130.0,
            policy,
        },
        shape: WorkloadShape::default(),
        daemon_period: DEFAULT_DAEMON_PERIOD,
        comm: CommConfig {
            alpha_s: 2e-6,
            nic_bw: 1.25e9,
            power_coupling: 0.5,
            pattern: CommPattern::HaloExchange {
                bytes_per_unit: 8.0 * 1024.0 * 1024.0,
            },
            topology: Topology::RackTree {
                nodes_per_rack: 2,
                uplink_bw: 2.5e9,
            },
        },
        hierarchy: None,
    }
}

/// The ISSUE-5 comparison workload: an imbalanced 16-node, 4-rack BSP
/// cluster, run under flat vs. hierarchical progress-feedback.
fn rack_tree_config(hierarchy: Option<HierarchyConfig>) -> ClusterConfig {
    ClusterConfig {
        nodes: ramp_weights(16, 1.0, 2.6)
            .into_iter()
            .map(|w| NodeSpec::new(Preset::Reference, w))
            .collect(),
        iters: 3,
        arbiter: ArbiterConfig {
            budget_w: 1040.0,
            min_cap_w: 40.0,
            max_cap_w: 130.0,
            policy: Policy::ProgressFeedback { gain: 1.0 },
        },
        shape: WorkloadShape::default(),
        daemon_period: DEFAULT_DAEMON_PERIOD,
        comm: CommConfig {
            alpha_s: 2e-6,
            nic_bw: 1.25e9,
            power_coupling: 0.5,
            pattern: CommPattern::HaloExchange {
                bytes_per_unit: 8.0 * 1024.0 * 1024.0,
            },
            topology: Topology::RackTree {
                nodes_per_rack: 4,
                uplink_bw: 2.5e9,
            },
        },
        hierarchy,
    }
}

/// The extreme-scale shapes: a thousand-node (and up) ramp at one tenth
/// the per-unit kernel work — the regime where per-node allocation or a
/// full waterfill per control tick stops being noise — stepped under a
/// 10 ms daemon period so the control plane stays active within the
/// shortened iterations.
fn scale_config(n: usize, hierarchy: bool, halo: bool) -> ClusterConfig {
    ClusterConfig {
        nodes: ramp_weights(n, 1.0, 2.6)
            .into_iter()
            .map(|w| NodeSpec::new(Preset::Reference, w))
            .collect(),
        iters: 3,
        arbiter: ArbiterConfig {
            budget_w: 65.0 * n as f64,
            min_cap_w: 40.0,
            max_cap_w: 130.0,
            policy: Policy::ProgressFeedback { gain: 1.0 },
        },
        shape: WorkloadShape::default().scaled(0.1),
        comm: if halo {
            CommConfig {
                alpha_s: 2e-6,
                nic_bw: 12.5e9,
                power_coupling: 0.5,
                pattern: CommPattern::HaloExchange {
                    bytes_per_unit: 1024.0 * 1024.0,
                },
                topology: Topology::RackTree {
                    nodes_per_rack: 32,
                    uplink_bw: 25.0e9,
                },
            }
        } else {
            CommConfig::none()
        },
        daemon_period: 10 * simnode::time::MS,
        hierarchy: hierarchy.then(|| HierarchyConfig {
            racks: vec![32; n / 32],
            outer_period: 2,
            inner_period: 1,
            rack_policy: Policy::ProgressFeedback { gain: 1.0 },
            rack_clamps: None,
        }),
    }
}

fn bench_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    g.sample_size(10);

    let uniform = bench_config(Policy::UniformStatic);
    g.bench_function("uniform_4n_3it", |b| {
        b.iter(|| black_box(run_cluster(black_box(&uniform)).unwrap()))
    });

    let feedback = bench_config(Policy::ProgressFeedback { gain: 1.0 });
    g.bench_function("feedback_4n_3it", |b| {
        b.iter(|| {
            let out = run_cluster(black_box(&feedback)).unwrap();
            assert!(out.min_budget_slack_w() >= -1e-6);
            black_box(out)
        })
    });

    // Flat vs. hierarchical arbitration on the same imbalanced 16-node,
    // 4-rack workload: what the extra arbiter level costs per run.
    let flat16 = rack_tree_config(None);
    g.bench_function("flat_16n_3it", |b| {
        b.iter(|| black_box(run_cluster(black_box(&flat16)).unwrap()))
    });

    let hier16 = rack_tree_config(Some(HierarchyConfig {
        racks: vec![4; 4],
        outer_period: 2,
        inner_period: 1,
        rack_policy: Policy::ProgressFeedback { gain: 1.0 },
        rack_clamps: None,
    }));
    g.bench_function("hier_16n_3it", |b| {
        b.iter(|| {
            let out = run_cluster(black_box(&hier16)).unwrap();
            assert!(out.min_budget_slack_w() >= -1e-6);
            let rack = out.rack_trace.as_ref().expect("rack trace");
            assert!(rack.min_slack_w() >= -1e-6);
            black_box(out)
        })
    });

    // Extreme scale: the sharded engine at 1024 flat / 1024 hierarchical
    // / 4096 hierarchical-with-halo nodes. The 4096-node halo bench is
    // the acceptance headline — a 3-iteration halo workload must stay
    // interactive (< 1 s median) for scale sweeps to be usable.
    let flat1024 = scale_config(1024, false, false);
    g.bench_function("flat_1024n", |b| {
        b.iter(|| black_box(run_cluster(black_box(&flat1024)).unwrap()))
    });

    let hier1024 = scale_config(1024, true, false);
    g.bench_function("hier_1024n", |b| {
        b.iter(|| {
            let out = run_cluster(black_box(&hier1024)).unwrap();
            assert!(out.min_budget_slack_w() >= -1e-6);
            black_box(out)
        })
    });

    let hier4096 = scale_config(4096, true, true);
    g.bench_function("hier_4096n_halo", |b| {
        b.iter(|| {
            let out = run_cluster(black_box(&hier4096)).unwrap();
            assert!(out.min_budget_slack_w() >= -1e-6);
            black_box(out)
        })
    });

    // The arbiter alone: redistribution arithmetic at a 64-node scale.
    let cfg = ArbiterConfig {
        budget_w: 64.0 * 80.0,
        min_cap_w: 40.0,
        max_cap_w: 130.0,
        policy: Policy::ProgressFeedback { gain: 1.0 },
    };
    let reports: Vec<Option<NodeTelemetry>> = (0..64)
        .map(|i| {
            Some(NodeTelemetry {
                compute_s: 1.0 + (i % 7) as f64 * 0.2,
                comm_s: 0.05 * (i % 3) as f64,
                slack_s: 0.0,
                rate: 1.0,
                power_w: 75.0 + (i % 11) as f64,
            })
        })
        .collect();
    g.bench_function("arbiter_redistribute_64n", |b| {
        b.iter(|| {
            let mut arb = PowerArbiter::new(cfg, 64);
            for _ in 0..10 {
                black_box(arb.redistribute(black_box(&reports)).unwrap());
            }
            black_box(arb)
        })
    });

    // The exchange pricing alone: one 64-node halo over a rack tree,
    // staggered readiness and throttled NICs — the per-barrier cost the
    // comm model adds to the driver loop.
    let comm_cfg = CommConfig {
        alpha_s: 2e-6,
        nic_bw: 12.5e9,
        power_coupling: 0.5,
        pattern: CommPattern::HaloExchange {
            bytes_per_unit: 32.0 * 1024.0 * 1024.0,
        },
        topology: Topology::RackTree {
            nodes_per_rack: 8,
            uplink_bw: 25.0e9,
        },
    };
    let ready: Vec<f64> = (0..64).map(|i| 0.01 * (i % 5) as f64).collect();
    let weights: Vec<f64> = (0..64).map(|i| 1.0 + (i % 7) as f64 * 0.2).collect();
    let drain: Vec<f64> = (0..64).map(|i| 0.6 + 0.05 * (i % 8) as f64).collect();
    g.bench_function("exchange_halo_64n", |b| {
        b.iter(|| {
            black_box(exchange(
                black_box(&comm_cfg),
                black_box(&ready),
                black_box(&weights),
                black_box(&drain),
            ))
        })
    });

    // The batch scheduler end to end: a 64-job, 4-tenant trace admitted
    // onto a 64-node machine under a 4.8 kW envelope with eco-aware
    // backfill — every event ticking each running job's arbiter through
    // the machine partition. Tracks the cost of the whole discrete-event
    // scheduling loop, not just one redistribution.
    let sched_cfg = sched::SchedConfig::default();
    g.bench_function("sched_64jobs", |b| {
        b.iter(|| {
            let out =
                sched::simulate(black_box(&sched_cfg), sched::SchedPolicy::EcoBackfill).unwrap();
            assert!(out.min_envelope_slack_w >= -1e-6);
            black_box(out)
        })
    });

    // The daemon service loop at scale: 1000 telemetry producers through
    // the full ingest → police → lease → redistribute → grant cycle over
    // clean in-process wires (snapshotting off, so this isolates the
    // service core from disk). Tracks the per-tick overhead arbiterd
    // adds on top of the bare redistribution arithmetic above.
    let lg_cfg = arbiterd::loadgen::LoadgenConfig {
        clients: 1000,
        ticks: 10,
        seed: 5,
        // Throughput runs measure message handling, not the per-grant
        // test bookkeeping (both sides of the batching comparison skip
        // it equally; the bitwise tests keep it on).
        record_grants: false,
        service: arbiterd::ServiceConfig {
            snapshot_every: 0,
            ..arbiterd::ServiceConfig::default()
        },
        ..arbiterd::loadgen::LoadgenConfig::default()
    };
    g.bench_function("arbiterd_1k_clients", |b| {
        b.iter(|| {
            black_box(
                arbiterd::loadgen::run_loadgen(black_box(&lg_cfg))
                    .service
                    .rounds,
            )
        })
    });

    // The same 1000-producer workload multiplexed 128 per wire: identical
    // telemetry count, identical grants (tested bitwise in the crate),
    // but one Msg::Batch frame per group per tick instead of one frame
    // per producer. The ratio to `arbiterd_1k_clients` is the headline
    // batching win — the acceptance bar is ≥3× message throughput.
    let lg_batched = arbiterd::loadgen::LoadgenConfig {
        batch: 128,
        ..lg_cfg.clone()
    };
    g.bench_function("arbiterd_1k_batched", |b| {
        b.iter(|| {
            let out = arbiterd::loadgen::run_loadgen(black_box(&lg_batched));
            assert!(out.invariant_ok);
            black_box(out.telemetry_sent)
        })
    });

    // The scale headline: 100k producers across 4 arbiter shards, 64 per
    // wire, machine budget re-split by the outer solver mid-run. Σ grants
    // ≤ budget is asserted inside ShardedService on every tick, so each
    // bench iteration is also an invariant check at full scale.
    let lg_sharded = arbiterd::loadgen::LoadgenConfig {
        clients: 100_000,
        shards: 4,
        batch: 64,
        outer_period: 2,
        ticks: 3,
        seed: 5,
        service: arbiterd::ServiceConfig {
            queue_depth: 32_768,
            snapshot_every: 0,
            ..arbiterd::ServiceConfig::default()
        },
        ..arbiterd::loadgen::LoadgenConfig::default()
    };
    g.bench_function("arbiterd_sharded_100k", |b| {
        b.iter(|| {
            let out = arbiterd::loadgen::run_loadgen(black_box(&lg_sharded));
            assert!(out.invariant_ok);
            black_box(out.telemetry_sent)
        })
    });

    g.finish();
}

/// The event-horizon fast path in isolation: 3 s of capped compute on a
/// full 24-core node, advanced with `step_until` (macro-stepping between
/// RAPL periods). The `micro` bench's `node/step_1s` covers the exact
/// single-quantum path; the ratio between the two is the headline win of
/// the macro-quantum stepping.
fn bench_simnode(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnode");
    g.sample_size(10);
    g.bench_function("step_until_3s", |b| {
        b.iter(|| {
            let mut node = Node::new(NodeConfig::default());
            node.set_package_cap(Some(80.0)).expect("cap writable");
            for core in 0..node.cores() {
                // ~4 s of work at fmax: never completes inside the run, so
                // the node macro-steps whole RAPL periods end to end.
                let packet = WorkPacket::new(3.3e9 * 4.0, 2.0e6, 8.0e9);
                node.assign(core, CoreWork::Compute(packet.into()));
            }
            while node.now() < 3 * SEC {
                node.step_until(3 * SEC);
            }
            black_box(node.now())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cluster, bench_simnode);
criterion_main!(benches);
