//! Bench for the **cluster** experiment — measures the cost of the
//! barrier-coupled multi-node simulation and the arbiter redistribution
//! path. The members step in parallel between barriers, so this also
//! tracks the coordination overhead of the owned-move fan-out; the bare
//! arbiter bench isolates the redistribution arithmetic from the node
//! simulation.

use cluster::{
    exchange, run_cluster, ArbiterConfig, ClusterConfig, CommConfig, CommPattern, NodeSpec,
    NodeTelemetry, Policy, PowerArbiter, Preset, Topology, WorkloadShape, DEFAULT_DAEMON_PERIOD,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A small imbalanced cluster, sized so one run is bench-friendly.
fn bench_config(policy: Policy) -> ClusterConfig {
    ClusterConfig {
        nodes: vec![
            NodeSpec::new(Preset::Reference, 1.0),
            NodeSpec::new(Preset::Leaky(15.0), 1.4),
            NodeSpec::new(Preset::Reference, 1.8),
            NodeSpec::new(Preset::Reference, 2.2),
        ],
        iters: 3,
        arbiter: ArbiterConfig {
            budget_w: 280.0,
            min_cap_w: 40.0,
            max_cap_w: 130.0,
            policy,
        },
        shape: WorkloadShape::default(),
        daemon_period: DEFAULT_DAEMON_PERIOD,
        comm: CommConfig {
            alpha_s: 2e-6,
            nic_bw: 1.25e9,
            power_coupling: 0.5,
            pattern: CommPattern::HaloExchange {
                bytes_per_unit: 8.0 * 1024.0 * 1024.0,
            },
            topology: Topology::RackTree {
                nodes_per_rack: 2,
                uplink_bw: 2.5e9,
            },
        },
    }
}

fn bench_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    g.sample_size(10);

    let uniform = bench_config(Policy::UniformStatic);
    g.bench_function("uniform_4n_3it", |b| {
        b.iter(|| black_box(run_cluster(black_box(&uniform))))
    });

    let feedback = bench_config(Policy::ProgressFeedback { gain: 1.0 });
    g.bench_function("feedback_4n_3it", |b| {
        b.iter(|| {
            let out = run_cluster(black_box(&feedback));
            assert!(out.min_budget_slack_w() >= -1e-6);
            black_box(out)
        })
    });

    // The arbiter alone: redistribution arithmetic at a 64-node scale.
    let cfg = ArbiterConfig {
        budget_w: 64.0 * 80.0,
        min_cap_w: 40.0,
        max_cap_w: 130.0,
        policy: Policy::ProgressFeedback { gain: 1.0 },
    };
    let reports: Vec<Option<NodeTelemetry>> = (0..64)
        .map(|i| {
            Some(NodeTelemetry {
                compute_s: 1.0 + (i % 7) as f64 * 0.2,
                comm_s: 0.05 * (i % 3) as f64,
                slack_s: 0.0,
                rate: 1.0,
                power_w: 75.0 + (i % 11) as f64,
            })
        })
        .collect();
    g.bench_function("arbiter_redistribute_64n", |b| {
        b.iter(|| {
            let mut arb = PowerArbiter::new(cfg, 64);
            for _ in 0..10 {
                black_box(arb.redistribute(black_box(&reports)));
            }
            black_box(arb)
        })
    });

    // The exchange pricing alone: one 64-node halo over a rack tree,
    // staggered readiness and throttled NICs — the per-barrier cost the
    // comm model adds to the driver loop.
    let comm_cfg = CommConfig {
        alpha_s: 2e-6,
        nic_bw: 12.5e9,
        power_coupling: 0.5,
        pattern: CommPattern::HaloExchange {
            bytes_per_unit: 32.0 * 1024.0 * 1024.0,
        },
        topology: Topology::RackTree {
            nodes_per_rack: 8,
            uplink_bw: 25.0e9,
        },
    };
    let ready: Vec<f64> = (0..64).map(|i| 0.01 * (i % 5) as f64).collect();
    let weights: Vec<f64> = (0..64).map(|i| 1.0 + (i % 7) as f64 * 0.2).collect();
    let drain: Vec<f64> = (0..64).map(|i| 0.6 + 0.05 * (i % 8) as f64).collect();
    g.bench_function("exchange_halo_64n", |b| {
        b.iter(|| {
            black_box(exchange(
                black_box(&comm_cfg),
                black_box(&ready),
                black_box(&weights),
                black_box(&drain),
            ))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
