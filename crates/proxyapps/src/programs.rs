//! Reusable program shapes.
//!
//! All of the paper's applications are loop-based (§III.A); three shapes
//! cover them:
//!
//! - [`PhasedProgram`]: a sequence of iteration segments, each with its own
//!   calibration, iteration count, reporting value and noise — QMCPACK's
//!   VMC1/VMC2/DMC phases, OpenMC's inactive/active batches, AMG's
//!   setup+solve, and single-segment LAMMPS/STREAM;
//! - [`SleepBarrierProgram`]: the paper's Listing-1 microbenchmark, where
//!   "work" is `usleep` and imbalance shows up as barrier spin;
//! - [`ConvergenceProgram`]: CANDLE-style training that stops when a
//!   simulated accuracy crosses a bound, so the iteration count is not
//!   predictable in advance (§III.A).

use simnode::config::NodeConfig;
use simnode::node::WorkPacket;
use simnode::time::Nanos;

use crate::runtime::{Action, Program};
use crate::spec::{iteration_noise, KernelSpec};

/// One segment of a phased program.
#[derive(Debug, Clone)]
pub struct IterSegment {
    /// Phase marker emitted (by rank 0) when the segment starts.
    pub phase: Option<&'static str>,
    /// Iterations in this segment.
    pub iters: u64,
    /// Per-iteration calibration.
    pub spec: KernelSpec,
    /// Work packets per iteration (e.g. STREAM's copy/scale/add/triad = 4);
    /// the iteration time is split evenly across them.
    pub subpackets: usize,
    /// Value rank 0 reports after each iteration's barrier.
    pub report_value: f64,
    /// Progress channel for the report.
    pub channel: usize,
    /// Iteration-cost noise amplitude (uniform, rank-symmetric).
    pub noise: f64,
}

impl IterSegment {
    /// A plain segment: one packet per iteration, reports on channel 0.
    pub fn new(spec: KernelSpec, iters: u64, report_value: f64) -> Self {
        Self {
            phase: None,
            iters,
            spec,
            subpackets: 1,
            report_value,
            channel: 0,
            noise: 0.0,
        }
    }

    /// Attach a phase marker.
    pub fn with_phase(mut self, name: &'static str) -> Self {
        self.phase = Some(name);
        self
    }

    /// Set iteration noise amplitude.
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Split each iteration into `n` packets.
    pub fn with_subpackets(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.subpackets = n;
        self
    }

    /// Report on a different channel.
    pub fn on_channel(mut self, channel: usize) -> Self {
        self.channel = channel;
        self
    }

    /// Suppress per-iteration reports (setup phases).
    pub fn silent(mut self) -> Self {
        self.report_value = 0.0;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    PhaseMark,
    Packet(usize),
    Barrier,
    Report,
}

/// A program running a sequence of [`IterSegment`]s.
pub struct PhasedProgram {
    segments: Vec<IterSegment>,
    /// Base packet per segment, precomputed.
    base_packets: Vec<WorkPacket>,
    seed: u64,
    seg: usize,
    iter: u64,
    /// Global iteration counter across segments (noise key).
    global_iter: u64,
    step: Step,
}

impl PhasedProgram {
    /// Build from segments; packets are synthesized against `cfg`.
    ///
    /// # Panics
    /// Panics if `segments` is empty.
    pub fn new(cfg: &NodeConfig, segments: Vec<IterSegment>, seed: u64) -> Self {
        assert!(!segments.is_empty(), "need at least one segment");
        let base_packets = segments
            .iter()
            .map(|s| s.spec.scaled_packet(cfg, 1.0 / s.subpackets as f64))
            .collect();
        Self {
            segments,
            base_packets,
            seed,
            seg: 0,
            iter: 0,
            global_iter: 0,
            step: Step::PhaseMark,
        }
    }

    fn scaled(&self, seg: usize) -> WorkPacket {
        let s = &self.segments[seg];
        let f = iteration_noise(self.seed, self.global_iter, s.noise);
        let p = self.base_packets[seg];
        WorkPacket {
            cycles: p.cycles * f,
            misses: p.misses * f,
            instructions: p.instructions * f,
            mlp: p.mlp,
            mem_weight: p.mem_weight,
        }
    }
}

impl Program for PhasedProgram {
    fn next_action(&mut self, rank: usize) -> Action {
        loop {
            if self.seg >= self.segments.len() {
                return Action::Done;
            }
            let seg = &self.segments[self.seg];
            match self.step {
                Step::PhaseMark => {
                    self.step = Step::Packet(0);
                    if let (0, Some(name)) = (rank, seg.phase) {
                        if self.iter == 0 {
                            return Action::Phase(name);
                        }
                    }
                }
                Step::Packet(i) => {
                    if i + 1 < seg.subpackets {
                        self.step = Step::Packet(i + 1);
                    } else {
                        self.step = Step::Barrier;
                    }
                    return Action::Compute(self.scaled(self.seg));
                }
                Step::Barrier => {
                    self.step = Step::Report;
                    return Action::Barrier;
                }
                Step::Report => {
                    let report = (rank == 0 && seg.report_value > 0.0).then_some(Action::Report {
                        channel: seg.channel,
                        value: seg.report_value,
                    });
                    self.iter += 1;
                    self.global_iter += 1;
                    if self.iter >= seg.iters {
                        self.seg += 1;
                        self.iter = 0;
                        self.step = Step::PhaseMark;
                    } else {
                        self.step = Step::PhaseMark;
                    }
                    if let Some(r) = report {
                        return r;
                    }
                }
            }
        }
    }
}

/// The Listing-1 microbenchmark: `usleep`-as-work plus a barrier.
pub struct SleepBarrierProgram {
    /// Iterations of the outer loop (5 in the paper).
    iters: u64,
    /// This rank's per-iteration sleep duration.
    sleep: Nanos,
    /// Iterations/second channel report value (rank 0 only).
    iter_report: f64,
    /// Work-units channel report value (rank 0 only; whole-app units/iter).
    work_report: f64,
    /// Per-rank mode (the paper's future-work "per-processing-element"
    /// monitoring): report this rank's own work on channel
    /// `Some(channel)` instead of the aggregate rank-0 channels.
    own_channel: Option<usize>,
    /// This rank's own work units per iteration (per-rank mode).
    own_work: f64,
    done: u64,
    step: u8,
}

impl SleepBarrierProgram {
    /// Build for one rank (aggregate reporting from rank 0).
    pub fn new(iters: u64, sleep: Nanos, iter_report: f64, work_report: f64) -> Self {
        assert!(iters > 0 && sleep > 0);
        Self {
            iters,
            sleep,
            iter_report,
            work_report,
            own_channel: None,
            own_work: 0.0,
            done: 0,
            step: 0,
        }
    }

    /// Switch to per-rank reporting: this rank publishes `own_work` units
    /// per iteration on its own `channel`.
    pub fn per_rank(mut self, channel: usize, own_work: f64) -> Self {
        assert!(own_work >= 0.0);
        self.own_channel = Some(channel);
        self.own_work = own_work;
        self
    }
}

impl Program for SleepBarrierProgram {
    fn next_action(&mut self, rank: usize) -> Action {
        loop {
            if self.done >= self.iters {
                return Action::Done;
            }
            match self.step {
                0 => {
                    self.step = 1;
                    return Action::Sleep(self.sleep);
                }
                1 => {
                    self.step = 2;
                    return Action::Barrier;
                }
                2 => {
                    self.step = 3;
                    if let Some(ch) = self.own_channel {
                        return Action::Report {
                            channel: ch,
                            value: self.own_work,
                        };
                    }
                    if rank == 0 {
                        return Action::Report {
                            channel: 0,
                            value: self.iter_report,
                        };
                    }
                }
                _ => {
                    self.step = 0;
                    self.done += 1;
                    if self.own_channel.is_none() && rank == 0 {
                        return Action::Report {
                            channel: 1,
                            value: self.work_report,
                        };
                    }
                }
            }
        }
    }
}

/// CANDLE-style accuracy-bounded training: epochs repeat until the
/// (deterministic, seeded) accuracy curve crosses `target`.
pub struct ConvergenceProgram {
    packet: WorkPacket,
    seed: u64,
    target: f64,
    /// Asymptotic accuracy of the curve.
    a_inf: f64,
    /// Convergence rate per epoch.
    rate: f64,
    epoch: u64,
    step: u8,
}

impl ConvergenceProgram {
    /// Build one rank's program.
    pub fn new(cfg: &NodeConfig, spec: KernelSpec, seed: u64, target: f64) -> Self {
        assert!((0.0..1.0).contains(&target));
        // The convergence rate depends on the (seeded) initialization, so
        // different runs converge after different epoch counts — that is
        // the paper's point about accuracy-bounded training.
        let rate = 0.12 * iteration_noise(seed, 0xC0FF_EE00, 0.15);
        Self {
            packet: spec.packet(cfg),
            seed,
            target,
            a_inf: 0.97,
            rate,
            epoch: 0,
            step: 0,
        }
    }

    /// The simulated validation accuracy after `epoch` epochs: a saturating
    /// curve with small seeded noise; identical on every rank so all ranks
    /// stop together.
    pub fn accuracy(&self, epoch: u64) -> f64 {
        let base = self.a_inf * (1.0 - (-(self.rate) * epoch as f64).exp());
        let noise = (iteration_noise(self.seed, epoch, 0.01) - 1.0) * self.a_inf;
        (base + noise).clamp(0.0, 1.0)
    }
}

impl Program for ConvergenceProgram {
    fn next_action(&mut self, rank: usize) -> Action {
        loop {
            if self.epoch > 0 && self.accuracy(self.epoch) >= self.target {
                return Action::Done;
            }
            match self.step {
                0 => {
                    self.step = 1;
                    return Action::Compute(self.packet);
                }
                1 => {
                    self.step = 2;
                    return Action::Barrier;
                }
                _ => {
                    self.step = 0;
                    self.epoch += 1;
                    if rank == 0 {
                        return Action::Report {
                            channel: 0,
                            value: 1.0,
                        };
                    }
                }
            }
        }
    }
}

/// Fault injection: wraps any program and, after `healthy_actions` actions,
/// hangs the rank in a livelock — it spins at the barrier-polling IPC
/// forever, never reporting again. Hardware metrics (MIPS, IPC) stay
/// perfectly healthy while *progress* flatlines: exactly the failure class
/// the paper's online-progress metric catches and execution-time /
/// counter-based monitoring cannot (§II).
pub struct HangAfter<P> {
    inner: P,
    healthy_actions: u64,
    emitted: u64,
}

impl<P: Program> HangAfter<P> {
    /// Wrap `inner`, hanging after `healthy_actions` actions.
    pub fn new(inner: P, healthy_actions: u64) -> Self {
        Self {
            inner,
            healthy_actions,
            emitted: 0,
        }
    }
}

impl<P: Program> Program for HangAfter<P> {
    fn next_action(&mut self, rank: usize) -> Action {
        if self.emitted >= self.healthy_actions {
            // A livelock: spin forever. The driver never releases the
            // barrier because this rank never arrives at one.
            return Action::Compute(WorkPacket::new(f64::MAX / 1e3, 0.0, f64::MAX / 1e3));
        }
        self.emitted += 1;
        self.inner.next_action(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NodeConfig {
        NodeConfig::default()
    }

    fn spec() -> KernelSpec {
        KernelSpec::new(0.8, 0.01, 1e-3, 4)
    }

    fn drain_one_iteration(p: &mut dyn Program, rank: usize) -> Vec<&'static str> {
        let mut kinds = vec![];
        for _ in 0..10 {
            match p.next_action(rank) {
                Action::Compute(_) => kinds.push("compute"),
                Action::Barrier => {
                    kinds.push("barrier");
                    // Stop after the post-barrier report (or next compute).
                }
                Action::Report { .. } => {
                    kinds.push("report");
                    break;
                }
                Action::Phase(_) => kinds.push("phase"),
                Action::Sleep(_) => kinds.push("sleep"),
                Action::Done => {
                    kinds.push("done");
                    break;
                }
            }
            if kinds.ends_with(&["barrier"]) && rank != 0 {
                break;
            }
        }
        kinds
    }

    #[test]
    fn phased_program_emits_phase_compute_barrier_report() {
        let seg = IterSegment::new(spec(), 2, 5.0).with_phase("solve");
        let mut p = PhasedProgram::new(&cfg(), vec![seg], 1);
        let kinds = drain_one_iteration(&mut p, 0);
        assert_eq!(kinds, ["phase", "compute", "barrier", "report"]);
    }

    #[test]
    fn non_root_ranks_do_not_report_or_mark_phases() {
        let seg = IterSegment::new(spec(), 2, 5.0).with_phase("solve");
        let mut p = PhasedProgram::new(&cfg(), vec![seg], 1);
        let kinds = drain_one_iteration(&mut p, 3);
        assert_eq!(kinds, ["compute", "barrier"]);
    }

    #[test]
    fn program_finishes_after_all_segments() {
        let segs = vec![
            IterSegment::new(spec(), 2, 1.0),
            IterSegment::new(spec(), 3, 1.0),
        ];
        let mut p = PhasedProgram::new(&cfg(), segs, 1);
        let mut computes = 0;
        loop {
            match p.next_action(1) {
                Action::Compute(_) => computes += 1,
                Action::Done => break,
                _ => {}
            }
        }
        assert_eq!(computes, 5);
    }

    #[test]
    fn subpackets_split_the_iteration() {
        let seg = IterSegment::new(spec(), 1, 1.0).with_subpackets(4);
        let full = spec().packet(&cfg());
        let mut p = PhasedProgram::new(&cfg(), vec![seg], 1);
        let mut cycles = 0.0;
        let mut packets = 0;
        loop {
            match p.next_action(1) {
                Action::Compute(w) => {
                    cycles += w.cycles;
                    packets += 1;
                }
                Action::Done => break,
                _ => {}
            }
        }
        assert_eq!(packets, 4);
        assert!((cycles - full.cycles).abs() / full.cycles < 1e-9);
    }

    #[test]
    fn noise_perturbs_iterations_but_not_ranks() {
        let seg = IterSegment::new(spec(), 4, 1.0).with_noise(0.1);
        let collect = |rank: usize| -> Vec<f64> {
            let mut p = PhasedProgram::new(&cfg(), vec![seg.clone()], 9);
            let mut v = vec![];
            loop {
                match p.next_action(rank) {
                    Action::Compute(w) => v.push(w.cycles),
                    Action::Done => break,
                    _ => {}
                }
            }
            v
        };
        let r0 = collect(0);
        let r5 = collect(5);
        assert_eq!(r0, r5, "noise must be rank-symmetric");
        assert!(r0.windows(2).any(|w| w[0] != w[1]), "noise must vary");
    }

    #[test]
    fn hang_wrapper_livelocks_after_the_healthy_window() {
        let seg = IterSegment::new(spec(), 100, 1.0);
        let inner = PhasedProgram::new(&cfg(), vec![seg], 1);
        let mut hung = HangAfter::new(inner, 5);
        for _ in 0..5 {
            let a = hung.next_action(0);
            assert!(!matches!(a, Action::Done));
        }
        // From now on: endless compute, no reports, no barriers.
        for _ in 0..10 {
            match hung.next_action(0) {
                Action::Compute(w) => assert!(w.cycles > 1e30),
                other => panic!("expected livelock compute, got {other:?}"),
            }
        }
    }

    #[test]
    fn sleep_barrier_program_shape() {
        let mut p = SleepBarrierProgram::new(2, 1000, 1.0, 24e6);
        // Rank 0 sequence: sleep, barrier, report(iter), report(work), ...
        assert!(matches!(p.next_action(0), Action::Sleep(1000)));
        assert!(matches!(p.next_action(0), Action::Barrier));
        assert!(matches!(p.next_action(0), Action::Report { channel: 0, value } if value == 1.0));
        assert!(matches!(p.next_action(0), Action::Report { channel: 1, value } if value == 24e6));
        assert!(matches!(p.next_action(0), Action::Sleep(1000)));
    }

    #[test]
    fn convergence_program_stops_at_unpredictable_epoch() {
        let s = KernelSpec::new(0.9, 0.001, 1e-3, 2);
        let mut epochs = vec![];
        for seed in [1u64, 2, 3] {
            let mut p = ConvergenceProgram::new(&cfg(), s, seed, 0.92);
            let mut n = 0;
            loop {
                match p.next_action(1) {
                    Action::Compute(_) => n += 1,
                    Action::Done => break,
                    _ => {}
                }
            }
            epochs.push(n);
        }
        // All converge in a plausible band, not all at the same epoch.
        for &e in &epochs {
            assert!((10..60).contains(&e), "epochs={e}");
        }
        assert!(
            epochs.iter().any(|&e| e != epochs[0]),
            "different seeds should converge at different epochs: {epochs:?}"
        );
    }

    #[test]
    fn convergence_is_rank_symmetric() {
        let s = KernelSpec::new(0.9, 0.001, 1e-3, 2);
        let count = |rank: usize| {
            let mut p = ConvergenceProgram::new(&cfg(), s, 7, 0.92);
            let mut n = 0;
            loop {
                match p.next_action(rank) {
                    Action::Compute(_) => n += 1,
                    Action::Done => break,
                    _ => {}
                }
            }
            n
        };
        assert_eq!(count(0), count(3));
    }
}
