//! Property-based tests for workload calibration and program shapes.

#![cfg(test)]

use proptest::prelude::*;

use crate::programs::{IterSegment, PhasedProgram};
use crate::runtime::{Action, Program};
use crate::spec::{iteration_noise, KernelSpec};
use simnode::config::NodeConfig;

proptest! {
    /// The closed-form calibration reconstructs the requested iteration
    /// time at `f_max` for any (β, MPO, MLP, ranks) combination.
    #[test]
    fn packet_timing_reconstructs_for_any_spec(
        beta in 0.0f64..=1.0,
        iter_ms in 1.0f64..500.0,
        mpo in 0.0f64..0.1,
        mlp in 0.05f64..=1.0,
        ranks in 1usize..=24,
    ) {
        let cfg = NodeConfig::default();
        let spec = KernelSpec::new(beta, iter_ms * 1e-3, mpo, ranks).with_mlp(mlp);
        let p = spec.packet(&cfg);
        let t = p.cycles / (cfg.fmax_mhz() as f64 * 1e6)
            + p.misses * cfg.uncore.bytes_per_miss / spec.effective_bw(&cfg);
        prop_assert!(
            (t - iter_ms * 1e-3).abs() < 1e-9,
            "reconstructed {t}, wanted {}",
            iter_ms * 1e-3
        );
        // Counter mix lands on the MPO target whenever traffic exists.
        if p.misses > 0.0 && mpo > 0.0 {
            prop_assert!((p.misses / p.instructions - mpo).abs() / mpo < 1e-9);
        }
        // Packet pressure weight is consistent with the spec.
        prop_assert!((p.mem_weight - (1.0 - beta) * mlp).abs() < 1e-12);
    }

    /// A phased program emits exactly `iters × subpackets` compute actions
    /// and `iters` barriers per segment, then finishes, for any shape.
    #[test]
    fn phased_program_action_count_is_exact(
        iters in 1u64..20,
        subpackets in 1usize..6,
        noise in 0.0f64..0.3,
        rank in 0usize..8,
    ) {
        let cfg = NodeConfig::default();
        let spec = KernelSpec::new(0.8, 0.01, 1e-3, 8);
        let seg = IterSegment::new(spec, iters, 1.0)
            .with_subpackets(subpackets)
            .with_noise(noise);
        let mut p = PhasedProgram::new(&cfg, vec![seg], 42);
        let (mut computes, mut barriers, mut reports) = (0u64, 0u64, 0u64);
        loop {
            match p.next_action(rank) {
                Action::Compute(_) => computes += 1,
                Action::Barrier => barriers += 1,
                Action::Report { .. } => reports += 1,
                Action::Done => break,
                _ => {}
            }
        }
        prop_assert_eq!(computes, iters * subpackets as u64);
        prop_assert_eq!(barriers, iters);
        prop_assert_eq!(reports, if rank == 0 { iters } else { 0 });
    }

    /// Iteration noise is bounded, rank-symmetric, and mean-centred.
    #[test]
    fn iteration_noise_is_bounded_and_centred(seed in any::<u64>(), amp in 0.0f64..0.5) {
        let vals: Vec<f64> = (0..400).map(|i| iteration_noise(seed, i, amp)).collect();
        for &v in &vals {
            prop_assert!(v >= 1.0 - amp - 1e-12 && v <= 1.0 + amp + 1e-12);
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        prop_assert!((mean - 1.0).abs() < amp * 0.25 + 1e-12, "mean {mean}");
    }

    /// Scaled packets preserve the MPO and MLP of the base packet.
    #[test]
    fn scaling_preserves_ratios(factor in 0.1f64..10.0) {
        let cfg = NodeConfig::default();
        let spec = KernelSpec::new(0.5, 0.02, 5e-3, 12).with_mlp(0.4);
        let base = spec.packet(&cfg);
        let scaled = spec.scaled_packet(&cfg, factor);
        prop_assert!(
            (scaled.misses / scaled.instructions - base.misses / base.instructions).abs() < 1e-12
        );
        prop_assert_eq!(scaled.mlp, base.mlp);
        prop_assert_eq!(scaled.mem_weight, base.mem_weight);
    }
}
