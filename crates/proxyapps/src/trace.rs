//! Telemetry tracing agents.
//!
//! A [`TelemetryAgent`] samples the node on a fixed period and records
//! package power, effective core frequency, achieved memory bandwidth and
//! the programmed power cap as time series — the raw material for the
//! paper's Figs. 2, 3 and 5.

use progress::series::TimeSeries;
use simnode::agent::SimAgent;
use simnode::node::Node;
use simnode::time::{secs, Nanos};

/// Records node telemetry once per period.
#[derive(Debug, Clone)]
pub struct TelemetryAgent {
    period: Nanos,
    /// Package power, W.
    pub power: TimeSeries,
    /// Rolling-average package power over the sample period, W.
    pub avg_power: TimeSeries,
    /// Effective core frequency (including duty cycling), MHz.
    pub freq: TimeSeries,
    /// Achieved memory bandwidth, GB/s.
    pub bandwidth: TimeSeries,
    /// Programmed package cap, W (uncapped samples use `f64::NAN`).
    pub cap: TimeSeries,
}

impl TelemetryAgent {
    /// Sample every `period` nanoseconds.
    ///
    /// # Panics
    /// Panics if the period is zero.
    pub fn new(period: Nanos) -> Self {
        assert!(period > 0, "period must be positive");
        Self {
            period,
            power: TimeSeries::new(),
            avg_power: TimeSeries::new(),
            freq: TimeSeries::new(),
            bandwidth: TimeSeries::new(),
            cap: TimeSeries::new(),
        }
    }
}

impl SimAgent for TelemetryAgent {
    fn period(&self) -> Nanos {
        self.period
    }

    fn on_tick(&mut self, node: &mut Node, now: Nanos) {
        let t = secs(now);
        let tel = node.telemetry();
        self.power.push(t, tel.package_w);
        self.avg_power.push(t, node.average_power(self.period));
        self.freq.push(t, tel.effective_mhz);
        self.bandwidth.push(t, tel.achieved_bw * 1e-9);
        self.cap.push(t, node.package_cap().unwrap_or(f64::NAN));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnode::config::NodeConfig;
    use simnode::node::{CoreWork, WorkPacket};
    use simnode::time::{MS, SEC};

    #[test]
    fn agent_records_all_series_in_lockstep() {
        let mut node = Node::new(NodeConfig::default());
        node.set_package_cap(Some(90.0)).unwrap();
        for c in 0..node.cores() {
            node.assign(
                c,
                CoreWork::Compute(
                    WorkPacket {
                        cycles: 3.3e9,
                        misses: 1e6,
                        instructions: 5e9,
                        mlp: 1.0,
                        mem_weight: 1.0,
                    }
                    .into(),
                ),
            );
        }
        let mut agent = TelemetryAgent::new(100 * MS);
        let mut next = agent.phase();
        while node.now() < SEC {
            node.step();
            let now = node.now();
            if now >= next {
                agent.on_tick(&mut node, now);
                next += agent.period();
            }
        }
        assert_eq!(agent.power.len(), 10);
        assert_eq!(agent.freq.len(), 10);
        assert_eq!(agent.cap.len(), 10);
        assert!(agent.cap.v.iter().all(|&c| (c - 90.0).abs() < 1e-9));
        assert!(agent.power.mean() > 10.0);
    }
}
