//! # proxyapps — synthetic proxy applications + simulated SPMD runtime
//!
//! The paper instruments real production applications (LAMMPS, AMG,
//! QMCPACK, OpenMC, STREAM, CANDLE) at source level and runs them on a
//! 24-core node (§IV.B). Those builds and their inputs are not available
//! here, so this crate provides *calibrated proxies*: loop-structured
//! programs whose per-iteration compute-cycle / memory-traffic mix is
//! solved in closed form to land on the paper's Table VI characterization
//! (β and MPO) and §IV.B reporting rates, executed on the `simnode`
//! hardware by a simulated SPMD runtime with ranks, barriers and pinned
//! cores.
//!
//! - [`runtime`]: the rank/barrier execution driver;
//! - [`spec`]: closed-form workload calibration from (β, MPO, iteration
//!   time, memory-level parallelism);
//! - [`programs`]: reusable program shapes (iterative, phased,
//!   sleep-barrier);
//! - [`apps`]: one module per paper application, plus the Listing-1
//!   imbalance demo and the Category-3 multi-component apps;
//! - [`catalog`]: build any application by id;
//! - [`trace`]: telemetry agents recording power/frequency/cap series.

pub mod apps;
pub mod catalog;
pub mod programs;
pub mod runtime;
pub mod spec;
pub mod trace;

pub use catalog::{build, AppId, AppInstance};
pub use runtime::{Action, Driver, Program, RunRecord};
pub use spec::KernelSpec;
pub use trace::TelemetryAgent;

#[cfg(test)]
mod proptests;
