//! STREAM proxy — memory-bandwidth benchmark (paper §IV.B.4).
//!
//! One iteration runs the copy/scale/add/triad operations (4 sub-packets)
//! and reports once; progress arrives ~16×/s. Calibrated to Table VI:
//! β = 0.37, MPO = 50.9·10⁻³. With 24 streaming ranks the node's memory
//! pipe saturates, pushing a large share of package power into the uncore —
//! which is what makes RAPL treat STREAM so differently from LAMMPS
//! (paper Figs. 2, 4d, 5).

use progress::event::MetricDesc;
use simnode::config::NodeConfig;

use crate::catalog::AppInstance;
use crate::programs::{IterSegment, PhasedProgram};
use crate::runtime::Program;
use crate::spec::KernelSpec;

/// Iteration wall time at `f_max`, seconds (≈16 reports/s).
pub const ITER_SECONDS: f64 = 1.0 / 16.0;

/// Calibration of one STREAM iteration.
pub fn spec(ranks: usize) -> KernelSpec {
    KernelSpec::new(0.37, ITER_SECONDS, 50.9e-3, ranks)
}

/// Build the proxy for `ranks` ranks.
pub fn instance(cfg: &NodeConfig, ranks: usize, seed: u64) -> AppInstance {
    let spec = spec(ranks);
    let seg = IterSegment::new(spec, 1_000_000, 1.0)
        .with_subpackets(4)
        .with_noise(0.005);
    let programs: Vec<Box<dyn Program>> = (0..ranks)
        .map(|_| Box::new(PhasedProgram::new(cfg, vec![seg.clone()], seed)) as _)
        .collect();
    AppInstance {
        name: "STREAM",
        metrics: vec![MetricDesc::new("iterations per second", "iterations")],
        programs,
        primary_spec: Some(spec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_memory_bound() {
        let s = spec(24);
        assert!(s.beta < 0.4);
        assert!(powermodel::mpo::is_memory_bound(s.mpo));
    }

    #[test]
    fn full_node_saturates_memory_bandwidth() {
        // 24 ranks each spending 63% of a 62.5 ms iteration on memory at
        // ~4.2 GB/s per-core share ≈ the full 100 GB/s pipe.
        let cfg = NodeConfig::default();
        let s = spec(24);
        let p = s.packet(&cfg);
        let per_rank_bw = p.misses * cfg.uncore.bytes_per_miss / ITER_SECONDS;
        let node_bw = per_rank_bw * 24.0;
        assert!(
            node_bw > 0.5 * cfg.uncore.peak_bw,
            "node traffic {:.1} GB/s too low",
            node_bw * 1e-9
        );
    }
}
