//! One module per study application.
//!
//! Each module exposes `instance(cfg, ranks, seed) -> AppInstance` building
//! the per-rank programs calibrated to the paper's characterization
//! (Table VI) and instrumentation description (§IV.B).

pub mod amg;
pub mod candle;
pub mod hacc;
pub mod lammps;
pub mod listing1;
pub mod nek5000;
pub mod openmc;
pub mod qmcpack;
pub mod stream;
pub mod urban;
