//! OpenMC proxy — Monte Carlo neutron transport (paper §IV.B.5).
//!
//! Two phases: 10 inactive batches then 300 active batches simulating
//! 100 000 particles each; progress (particles per second) is reported
//! once per batch, "approximately once every second". A batch period
//! slightly above the 1 s aggregation window makes the reported rate
//! alias — some windows see no report — reproducing the zero readings the
//! paper attributes to its monitoring framework (Fig. 3).
//!
//! OpenMC is *memory-latency* bound (Table IV): its unstructured access
//! pattern has low memory-level parallelism, so the proxy uses a small MLP
//! factor — lots of stall time, little bandwidth, hence the low
//! MPO = 0.20·10⁻³ next to a high β = 0.93 (Table VI).

use progress::event::MetricDesc;
use simnode::config::NodeConfig;

use crate::catalog::AppInstance;
use crate::programs::{IterSegment, PhasedProgram};
use crate::runtime::Program;
use crate::spec::KernelSpec;

/// Particles per batch (paper: 100 000).
pub const PARTICLES_PER_BATCH: f64 = 100_000.0;
/// Active-batch wall time at `f_max`, seconds (slightly above the 1 s
/// reporting window, so reports alias against it).
pub const BATCH_SECONDS: f64 = 1.05;
/// Memory-level parallelism of the unstructured transport kernel.
pub const MLP: f64 = 0.15;

/// Calibration of one active batch.
pub fn active_spec(ranks: usize) -> KernelSpec {
    KernelSpec::new(0.93, BATCH_SECONDS, 0.20e-3, ranks).with_mlp(MLP)
}

/// Build the proxy. `active_only` skips the inactive batches (the paper's
/// characterization and power-capping variant).
pub fn instance(cfg: &NodeConfig, ranks: usize, seed: u64, active_only: bool) -> AppInstance {
    let active = active_spec(ranks);
    let inactive = KernelSpec::new(0.94, 0.8, 0.18e-3, ranks).with_mlp(MLP);
    let mut segments = Vec::new();
    if !active_only {
        segments.push(
            IterSegment::new(inactive, 10, PARTICLES_PER_BATCH)
                .with_phase("inactive")
                .with_noise(0.02),
        );
    }
    segments.push(
        IterSegment::new(active, 1_000_000, PARTICLES_PER_BATCH)
            .with_phase("active")
            .with_noise(0.02),
    );
    let programs: Vec<Box<dyn Program>> = (0..ranks)
        .map(|_| Box::new(PhasedProgram::new(cfg, segments.clone(), seed)) as _)
        .collect();
    AppInstance {
        name: if active_only {
            "OpenMC (Active)"
        } else {
            "OpenMC"
        },
        metrics: vec![MetricDesc::new("particles per second", "particles")],
        programs,
        primary_spec: Some(active),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_period_aliases_against_one_second_window() {
        const { assert!(BATCH_SECONDS > 1.0 && BATCH_SECONDS < 1.2) };
    }

    #[test]
    fn latency_bound_profile() {
        let s = active_spec(24);
        assert!(s.beta > 0.9, "high beta");
        assert!(s.mlp < 0.3, "low MLP = latency bound");
        assert!(!powermodel::mpo::is_memory_bound(s.mpo), "low MPO");
    }
}
