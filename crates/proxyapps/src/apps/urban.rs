//! URBAN proxy — coupled Nek5000 + EnergyPlus (Category 3).
//!
//! "Nek5000 and Energy Plus run at timescales that are orders of magnitude
//! apart. We could define the online performance of URBAN using an
//! arbitrary metric such as the number of buildings simulated per second.
//! This definition, however, has little meaning" (paper §III.A). The proxy
//! couples a fast CFD loop (channel 0) with a slow building-energy step
//! (channel 1): one EnergyPlus step per `CFD_PER_EP` CFD steps. A single
//! metric on either channel misrepresents the whole — the motivation for
//! the weighted-composition extension (`nrm::composition`).

use progress::event::MetricDesc;
use simnode::config::NodeConfig;
use simnode::node::WorkPacket;

use crate::catalog::AppInstance;
use crate::runtime::{Action, Program};
use crate::spec::KernelSpec;

/// CFD steps per EnergyPlus step (disparate timescales).
pub const CFD_PER_EP: u64 = 50;

/// Fast CFD kernel.
pub fn cfd_spec(ranks: usize) -> KernelSpec {
    KernelSpec::new(0.78, 0.25, 6.0e-3, ranks)
}

/// Slow building-energy kernel.
pub fn ep_spec(ranks: usize) -> KernelSpec {
    KernelSpec::new(0.55, 2.0, 12.0e-3, ranks)
}

struct UrbanProgram {
    cfd: WorkPacket,
    ep: WorkPacket,
    cfd_done_in_cycle: u64,
    in_ep: bool,
    step: u8,
}

impl Program for UrbanProgram {
    fn next_action(&mut self, rank: usize) -> Action {
        loop {
            match self.step {
                0 => {
                    self.step = 1;
                    return if self.in_ep {
                        Action::Compute(self.ep)
                    } else {
                        Action::Compute(self.cfd)
                    };
                }
                1 => {
                    self.step = 2;
                    return Action::Barrier;
                }
                _ => {
                    self.step = 0;
                    let report = if self.in_ep {
                        self.in_ep = false;
                        self.cfd_done_in_cycle = 0;
                        (rank == 0).then_some(Action::Report {
                            channel: 1,
                            value: 1.0,
                        })
                    } else {
                        self.cfd_done_in_cycle += 1;
                        if self.cfd_done_in_cycle >= CFD_PER_EP {
                            self.in_ep = true;
                        }
                        (rank == 0).then_some(Action::Report {
                            channel: 0,
                            value: 1.0,
                        })
                    };
                    if let Some(r) = report {
                        return r;
                    }
                }
            }
        }
    }
}

/// Build the proxy for `ranks` ranks.
pub fn instance(cfg: &NodeConfig, ranks: usize, _seed: u64) -> AppInstance {
    let cfd = cfd_spec(ranks).packet(cfg);
    let ep = ep_spec(ranks).packet(cfg);
    let programs: Vec<Box<dyn Program>> = (0..ranks)
        .map(|_| {
            Box::new(UrbanProgram {
                cfd,
                ep,
                cfd_done_in_cycle: 0,
                in_ep: false,
                step: 0,
            }) as _
        })
        .collect();
    AppInstance {
        name: "URBAN",
        metrics: vec![
            MetricDesc::new("CFD timesteps per second", "timesteps"),
            MetricDesc::new("building steps per second", "building steps"),
        ],
        programs,
        primary_spec: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timescales_are_orders_of_magnitude_apart() {
        // CFD ≈ 4 steps/s; EnergyPlus ≈ one step per 50·0.25 s + 2 s ≈
        // 0.07 steps/s: ~57× apart.
        let cfd_rate = 1.0 / 0.25;
        let ep_rate = 1.0 / (CFD_PER_EP as f64 * 0.25 + 2.0);
        assert!(cfd_rate / ep_rate > 30.0);
    }

    #[test]
    fn two_component_channels() {
        let app = instance(&NodeConfig::default(), 8, 0);
        assert_eq!(app.metrics.len(), 2);
        assert_eq!(app.channels(), 2);
    }
}
