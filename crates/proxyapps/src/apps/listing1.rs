//! The paper's Listing-1 microbenchmark: MPI workload (im)balance.
//!
//! Five iterations of `do_work()` + `MPI_Barrier`. One work unit is defined
//! as one microsecond spent in `usleep`; the highest rank always sleeps a
//! full second and is on the critical path, so *both* variants run at
//! ~1 iteration/s (online performance Definition 1), while the total work
//! (Definition 2) halves in the unequal case and MIPS — inflated by barrier
//! busy-waiting — *rises* ~20×. That inversion is Table I's point: MIPS is
//! not correlated with online performance.

use progress::event::MetricDesc;
use simnode::time::US;

use crate::catalog::AppInstance;
use crate::programs::SleepBarrierProgram;
use crate::runtime::Program;

/// Outer-loop iterations (paper: 5).
pub const ITERATIONS: u64 = 5;
/// Work units (µs of sleep) done by the critical-path rank per iteration.
pub const CRITICAL_WORK: f64 = 1_000_000.0;

/// Per-iteration sleep of `rank` (0-based) among `ranks`, in microseconds.
/// Mirrors the listing: `do_unequal_work` gets `(rank+1)/size · 10⁶` µs,
/// `do_equal_work` a flat 10⁶ µs.
pub fn sleep_us(rank: usize, ranks: usize, equal: bool) -> f64 {
    if equal {
        CRITICAL_WORK
    } else {
        (rank + 1) as f64 / ranks as f64 * CRITICAL_WORK
    }
}

/// Total work units per iteration across all ranks.
pub fn work_per_iteration(ranks: usize, equal: bool) -> f64 {
    (0..ranks).map(|r| sleep_us(r, ranks, equal)).sum()
}

/// Build the microbenchmark. Progress channels: 0 = iterations
/// (Definition 1), 1 = work units (Definition 2).
pub fn instance(ranks: usize, equal: bool) -> AppInstance {
    let work = work_per_iteration(ranks, equal);
    let programs: Vec<Box<dyn Program>> = (0..ranks)
        .map(|rank| {
            let sleep_ns = (sleep_us(rank, ranks, equal) as u64).max(1) * US;
            Box::new(SleepBarrierProgram::new(ITERATIONS, sleep_ns, 1.0, work)) as _
        })
        .collect();
    AppInstance {
        name: if equal {
            "Listing1 (equal)"
        } else {
            "Listing1 (unequal)"
        },
        metrics: vec![
            MetricDesc::new("iterations per second", "iterations"),
            MetricDesc::new("work units per second", "work units"),
        ],
        programs,
        primary_spec: None,
    }
}

/// Build the per-rank variant: every rank publishes its own work on its
/// own channel (the paper's future-work "per-processing-element"
/// monitoring). Channel `r` carries rank `r`'s work units.
pub fn instance_per_rank(ranks: usize, equal: bool) -> AppInstance {
    let programs: Vec<Box<dyn Program>> = (0..ranks)
        .map(|rank| {
            let work = sleep_us(rank, ranks, equal);
            let sleep_ns = (work as u64).max(1) * US;
            Box::new(SleepBarrierProgram::new(ITERATIONS, sleep_ns, 1.0, work).per_rank(rank, work))
                as _
        })
        .collect();
    AppInstance {
        name: if equal {
            "Listing1 per-rank (equal)"
        } else {
            "Listing1 per-rank (unequal)"
        },
        metrics: (0..ranks)
            .map(|_| MetricDesc::new("work units per second (per rank)", "work units"))
            .collect(),
        programs,
        primary_spec: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_path_rank_always_does_full_work() {
        assert_eq!(sleep_us(23, 24, true), 1_000_000.0);
        assert_eq!(sleep_us(23, 24, false), 1_000_000.0);
    }

    #[test]
    fn unequal_work_is_about_half_of_equal() {
        let eq = work_per_iteration(24, true);
        let uneq = work_per_iteration(24, false);
        assert_eq!(eq, 24.0e6);
        assert_eq!(uneq, 12.5e6);
        let ratio = eq / uneq;
        assert!(
            (ratio - 1.92).abs() < 0.01,
            "Table I's 2:1 ratio, got {ratio}"
        );
    }

    #[test]
    fn two_progress_channels() {
        let app = instance(24, true);
        assert_eq!(app.metrics.len(), 2);
    }
}
