//! HACC proxy — multi-component cosmology (Category 3, paper §III.A).
//!
//! HACC has "many individual components with distinct performance
//! characteristics": a compute-bound short-range force kernel every step,
//! a bandwidth-bound long-range (FFT) solve every few steps, and periodic
//! analysis/IO stalls. Timesteps therefore do *not* proceed at a uniform
//! rate — "the number of timesteps per second cannot be used to measure
//! online performance reliably" — which is exactly what makes HACC
//! Category 3 and motivates the per-component composition extension (see
//! `nrm::composition` consumers in the harness).

use progress::event::MetricDesc;
use simnode::config::NodeConfig;
use simnode::node::WorkPacket;
use simnode::time::{Nanos, MS};

use crate::catalog::AppInstance;
use crate::runtime::{Action, Program};
use crate::spec::KernelSpec;

/// Long-range solve period, in timesteps.
pub const LONG_RANGE_EVERY: u64 = 5;
/// Analysis/IO period, in timesteps.
pub const IO_EVERY: u64 = 10;
/// IO stall per occurrence.
pub const IO_STALL: Nanos = 800 * MS;

/// Short-range force kernel (compute bound).
pub fn short_spec(ranks: usize) -> KernelSpec {
    KernelSpec::new(0.97, 0.45, 0.4e-3, ranks)
}

/// Long-range FFT kernel (bandwidth bound).
pub fn long_spec(ranks: usize) -> KernelSpec {
    KernelSpec::new(0.45, 1.2, 25.0e-3, ranks)
}

enum Step {
    Short,
    Long,
    Io,
    Barrier,
    Report,
}

struct HaccProgram {
    short: WorkPacket,
    long: WorkPacket,
    timestep: u64,
    max_steps: u64,
    step: Step,
}

impl Program for HaccProgram {
    fn next_action(&mut self, rank: usize) -> Action {
        loop {
            if self.timestep >= self.max_steps {
                return Action::Done;
            }
            match self.step {
                Step::Short => {
                    self.step = if (self.timestep + 1).is_multiple_of(LONG_RANGE_EVERY) {
                        Step::Long
                    } else if (self.timestep + 1).is_multiple_of(IO_EVERY) {
                        Step::Io
                    } else {
                        Step::Barrier
                    };
                    return Action::Compute(self.short);
                }
                Step::Long => {
                    self.step = if (self.timestep + 1).is_multiple_of(IO_EVERY) {
                        Step::Io
                    } else {
                        Step::Barrier
                    };
                    return Action::Compute(self.long);
                }
                Step::Io => {
                    self.step = Step::Barrier;
                    return Action::Sleep(IO_STALL);
                }
                Step::Barrier => {
                    self.step = Step::Report;
                    return Action::Barrier;
                }
                Step::Report => {
                    self.timestep += 1;
                    self.step = Step::Short;
                    if rank == 0 {
                        return Action::Report {
                            channel: 0,
                            value: 1.0,
                        };
                    }
                }
            }
        }
    }
}

/// Build the proxy for `ranks` ranks.
pub fn instance(cfg: &NodeConfig, ranks: usize, _seed: u64) -> AppInstance {
    let short = short_spec(ranks).packet(cfg);
    let long = long_spec(ranks).packet(cfg);
    let programs: Vec<Box<dyn Program>> = (0..ranks)
        .map(|_| {
            Box::new(HaccProgram {
                short,
                long,
                timestep: 0,
                max_steps: 1_000_000,
                step: Step::Short,
            }) as _
        })
        .collect();
    AppInstance {
        name: "HACC",
        metrics: vec![MetricDesc::new("timesteps per second", "timesteps")],
        programs,
        primary_spec: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestep_cost_is_non_uniform() {
        // Plain step ≈ 0.45 s; every 5th adds 1.2 s; every 10th adds 0.8 s
        // of IO: the per-step wall time varies by ~3–4×, defeating a
        // "timesteps per second" metric.
        let plain = 0.45;
        let with_long = 0.45 + 1.2;
        let with_all = 0.45 + 1.2 + 0.8;
        assert!(with_all / plain > 3.0);
        assert!(with_long / plain > 3.0);
    }

    #[test]
    fn components_have_opposite_boundedness() {
        assert!(short_spec(24).beta > 0.9);
        assert!(long_spec(24).beta < 0.5);
    }
}
