//! Nek5000 proxy — spectral-element CFD library (Category 3).
//!
//! "The number of timesteps per second cannot be used to measure online
//! performance reliably because this metric does not stay uniform during
//! the execution" (paper §III.A). The proxy models an adaptive solver whose
//! per-timestep cost drifts across the run (mesh refinement / CFL-driven
//! substeps): successive segments of increasingly expensive timesteps with
//! wide noise, so a timesteps/s series trends and wanders rather than
//! holding a level.

use progress::event::MetricDesc;
use simnode::config::NodeConfig;

use crate::catalog::AppInstance;
use crate::programs::{IterSegment, PhasedProgram};
use crate::runtime::Program;
use crate::spec::KernelSpec;

/// Per-segment timestep cost multipliers across the run.
pub const COST_DRIFT: [f64; 5] = [1.0, 1.35, 1.8, 2.5, 3.3];
/// Base timestep wall time at `f_max`, seconds.
pub const BASE_STEP_SECONDS: f64 = 0.3;

/// Build the proxy for `ranks` ranks.
pub fn instance(cfg: &NodeConfig, ranks: usize, seed: u64) -> AppInstance {
    let segments: Vec<IterSegment> = COST_DRIFT
        .iter()
        .map(|&mult| {
            let spec = KernelSpec::new(0.78, BASE_STEP_SECONDS * mult, 6.0e-3, ranks);
            IterSegment::new(spec, 40, 1.0).with_noise(0.15)
        })
        .collect();
    let programs: Vec<Box<dyn Program>> = (0..ranks)
        .map(|_| Box::new(PhasedProgram::new(cfg, segments.clone(), seed)) as _)
        .collect();
    AppInstance {
        name: "Nek5000",
        metrics: vec![MetricDesc::new("timesteps per second", "timesteps")],
        programs,
        primary_spec: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestep_rate_drifts_by_more_than_3x() {
        let first = 1.0 / (BASE_STEP_SECONDS * COST_DRIFT[0]);
        let last = 1.0 / (BASE_STEP_SECONDS * COST_DRIFT[COST_DRIFT.len() - 1]);
        assert!(first / last > 3.0, "rate must not stay uniform");
    }
}
