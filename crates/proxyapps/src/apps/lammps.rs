//! LAMMPS proxy — Lennard-Jones benchmark, 40 000 atoms (paper §IV.B.1).
//!
//! The paper measures one VERLET timestep, multiplies by the atom count and
//! reports progress ~20×/s; online performance is flat ("remains at 1080
//! atom timesteps per second", Fig. 1 left — the plotted unit is thousands
//! of atom·timesteps). The proxy runs a 37 ms timestep (27 steps/s ×
//! 40 katoms = 1080 katom-steps/s) with β ≈ 1.00 and MPO 0.32·10⁻³
//! (Table VI) and near-zero iteration noise.

use progress::event::MetricDesc;
use simnode::config::NodeConfig;

use crate::catalog::AppInstance;
use crate::programs::{IterSegment, PhasedProgram};
use crate::runtime::Program;
use crate::spec::KernelSpec;

/// Atoms simulated (paper: "a fixed number of 40,000 atoms").
pub const ATOMS: f64 = 40_000.0;
/// Timestep wall time at `f_max`, seconds (≈27 steps/s).
pub const STEP_SECONDS: f64 = 0.037;

/// The calibration of the timestep kernel. β is set a hair below 1 so the
/// workload still produces the small L3 traffic behind Table VI's
/// MPO = 0.32·10⁻³ (the paper rounds β to 1.00).
pub fn spec(ranks: usize) -> KernelSpec {
    KernelSpec::new(0.995, STEP_SECONDS, 0.32e-3, ranks)
}

/// Build the proxy for `ranks` ranks.
pub fn instance(cfg: &NodeConfig, ranks: usize, seed: u64) -> AppInstance {
    let spec = spec(ranks);
    // Progress value: kilo-atom·timesteps per step, matching the paper's
    // plotted unit (40 katoms → flat 1080/s at 27 steps/s).
    let seg = IterSegment::new(spec, 1_000_000, ATOMS / 1e3).with_noise(0.004);
    let programs: Vec<Box<dyn Program>> = (0..ranks)
        .map(|_| Box::new(PhasedProgram::new(cfg, vec![seg.clone()], seed)) as _)
        .collect();
    AppInstance {
        name: "LAMMPS",
        metrics: vec![MetricDesc::new(
            "atom timesteps per second",
            "katom-timesteps",
        )],
        programs,
        primary_spec: Some(spec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reporting_rate_matches_paper_fig1() {
        // 27 steps/s × 40 katoms = 1080 katom-steps/s.
        let rate = (1.0 / STEP_SECONDS) * (ATOMS / 1e3);
        assert!((rate - 1081.0).abs() < 2.0, "rate {rate}");
    }

    #[test]
    fn kernel_is_compute_bound() {
        let s = spec(24);
        assert!(s.beta > 0.99);
    }
}
