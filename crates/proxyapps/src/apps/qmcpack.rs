//! QMCPACK proxy — performance-NiO benchmark (paper §IV.B.3).
//!
//! Three phases — VMC1, VMC2, DMC — each computing blocks at a distinct
//! rate, "clearly distinguishable from one another as they compute blocks
//! at different rates" (Fig. 1 right). The DMC phase (3000 blocks, ~16
//! blocks/s) is the characterization target: β = 0.84, MPO = 3.91·10⁻³
//! (Table VI). Progress is blocks completed per second.

use progress::event::MetricDesc;
use simnode::config::NodeConfig;

use crate::catalog::AppInstance;
use crate::programs::{IterSegment, PhasedProgram};
use crate::runtime::Program;
use crate::spec::KernelSpec;

/// DMC block wall time at `f_max`, seconds (≈16 blocks/s).
pub const DMC_BLOCK_SECONDS: f64 = 1.0 / 16.0;

/// Memory-level parallelism of the walker-update kernels (mixed strided
/// and random access).
pub const MLP: f64 = 0.6;

/// Calibration of one DMC block.
pub fn dmc_spec(ranks: usize) -> KernelSpec {
    KernelSpec::new(0.84, DMC_BLOCK_SECONDS, 3.91e-3, ranks).with_mlp(MLP)
}

/// Build the proxy. `dmc_only` restricts to the DMC phase, the variant the
/// paper uses for characterization and power-capping experiments.
pub fn instance(cfg: &NodeConfig, ranks: usize, seed: u64, dmc_only: bool) -> AppInstance {
    let dmc = dmc_spec(ranks);
    let vmc1 = KernelSpec::new(0.88, 1.0 / 22.0, 2.8e-3, ranks).with_mlp(MLP);
    let vmc2 = KernelSpec::new(0.86, 1.0 / 19.0, 3.2e-3, ranks).with_mlp(MLP);
    let mut segments = Vec::new();
    if !dmc_only {
        segments.push(
            IterSegment::new(vmc1, 220, 1.0)
                .with_phase("VMC1")
                .with_noise(0.01),
        );
        segments.push(
            IterSegment::new(vmc2, 190, 1.0)
                .with_phase("VMC2")
                .with_noise(0.01),
        );
    }
    // 15 steps per block, 3000 blocks (paper §IV.B.3); in the proxy a block
    // is one packet whose cost already includes its 15 steps.
    segments.push(
        IterSegment::new(dmc, 1_000_000, 1.0)
            .with_phase("DMC")
            .with_noise(0.012),
    );
    let programs: Vec<Box<dyn Program>> = (0..ranks)
        .map(|_| Box::new(PhasedProgram::new(cfg, segments.clone(), seed)) as _)
        .collect();
    AppInstance {
        name: if dmc_only { "QMCPACK (DMC)" } else { "QMCPACK" },
        metrics: vec![MetricDesc::new("blocks per second", "blocks")],
        programs,
        primary_spec: Some(dmc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_run_at_distinct_rates() {
        let r1 = 22.0;
        let r2 = 19.0;
        let r3 = 1.0 / DMC_BLOCK_SECONDS;
        assert!(r1 > r2 && r2 > r3, "phase rates must be distinguishable");
    }

    #[test]
    fn dmc_matches_table_vi_beta() {
        assert!((dmc_spec(24).beta - 0.84).abs() < 1e-9);
    }
}
