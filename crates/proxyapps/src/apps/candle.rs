//! CANDLE proxy — deep-learning cancer benchmark (paper §III.A, IV.B).
//!
//! The paper could not instrument TensorFlow (prebuilt binaries, §IV.B) and
//! describes CANDLE as Category 1/2: online performance is epochs per
//! second during training, but "the number of epochs required for training
//! to complete cannot be predicted" when training is bounded by accuracy.
//! The proxy implements exactly that: epochs repeat until a seeded,
//! saturating accuracy curve crosses the target, so different seeds
//! converge after different epoch counts.

use progress::event::MetricDesc;
use simnode::config::NodeConfig;

use crate::catalog::AppInstance;
use crate::programs::ConvergenceProgram;
use crate::runtime::Program;
use crate::spec::KernelSpec;

/// Epoch wall time at `f_max`, seconds.
pub const EPOCH_SECONDS: f64 = 3.5;
/// Validation-accuracy stopping bound.
pub const TARGET_ACCURACY: f64 = 0.92;

/// Calibration of one training epoch (GEMM-heavy: compute bound).
pub fn spec(ranks: usize) -> KernelSpec {
    KernelSpec::new(0.90, EPOCH_SECONDS, 1.0e-3, ranks)
}

/// Build the proxy for `ranks` ranks.
pub fn instance(cfg: &NodeConfig, ranks: usize, seed: u64) -> AppInstance {
    let s = spec(ranks);
    let programs: Vec<Box<dyn Program>> = (0..ranks)
        .map(|_| Box::new(ConvergenceProgram::new(cfg, s, seed, TARGET_ACCURACY)) as _)
        .collect();
    AppInstance {
        name: "CANDLE",
        metrics: vec![MetricDesc::new(
            "epochs per second (training phase)",
            "epochs",
        )],
        programs,
        primary_spec: Some(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_count_is_not_predictable_across_seeds() {
        // Build two instances with different seeds and count the epochs
        // their programs would run (paper Table IV: Q5 = N for CANDLE).
        let cfg = NodeConfig::default();
        let count = |seed: u64| {
            let mut p = ConvergenceProgram::new(&cfg, spec(2), seed, TARGET_ACCURACY);
            let mut n = 0;
            loop {
                match p.next_action(1) {
                    crate::runtime::Action::Compute(_) => n += 1,
                    crate::runtime::Action::Done => break,
                    _ => {}
                }
            }
            n
        };
        let counts: Vec<i32> = (0..6).map(count).collect();
        assert!(counts.iter().any(|&c| c != counts[0]), "{counts:?}");
    }
}
