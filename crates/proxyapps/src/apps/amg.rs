//! AMG proxy — HYPRE GMRES solver benchmark (paper §IV.B.2).
//!
//! Progress is GMRES iterations per second, reported ~3×/s; the paper's
//! Fig. 1 (center) shows it fluctuating between 2.5 and 3 it/s ("needs to
//! be averaged out"). The proxy runs a short silent setup phase followed by
//! the solve loop with rank-symmetric iteration-cost noise wide enough to
//! reproduce that band. Calibrated to Table VI: β = 0.52, MPO = 30.1·10⁻³.

use progress::event::MetricDesc;
use simnode::config::NodeConfig;

use crate::catalog::AppInstance;
use crate::programs::{IterSegment, PhasedProgram};
use crate::runtime::Program;
use crate::spec::KernelSpec;

/// Mean solve-iteration wall time at `f_max`, seconds (≈2.75 it/s).
pub const ITER_SECONDS: f64 = 1.0 / 2.75;
/// Iteration-cost noise amplitude producing the 2.5–3 it/s band.
pub const NOISE: f64 = 0.09;

/// Memory-level parallelism: sparse matrix-vector access is irregular —
/// far from streaming, closer to dependent gathers.
pub const MLP: f64 = 0.35;

/// Calibration of one GMRES iteration.
pub fn spec(ranks: usize) -> KernelSpec {
    KernelSpec::new(0.52, ITER_SECONDS, 30.1e-3, ranks).with_mlp(MLP)
}

/// Build the proxy for `ranks` ranks.
pub fn instance(cfg: &NodeConfig, ranks: usize, seed: u64) -> AppInstance {
    let solve = spec(ranks);
    // Setup: problem assembly + AMG preconditioner setup, no reports
    // ("only the solve phase is important for performance", Table II).
    let setup = KernelSpec::new(0.70, 0.5, 10.0e-3, ranks).with_mlp(MLP);
    let segments = vec![
        IterSegment::new(setup, 4, 0.0).silent().with_phase("setup"),
        IterSegment::new(solve, 1_000_000, 1.0)
            .with_noise(NOISE)
            .with_phase("solve"),
    ];
    let programs: Vec<Box<dyn Program>> = (0..ranks)
        .map(|_| Box::new(PhasedProgram::new(cfg, segments.clone(), seed)) as _)
        .collect();
    AppInstance {
        name: "AMG",
        metrics: vec![MetricDesc::new(
            "conjugate gradient iterations per second",
            "iterations",
        )],
        programs,
        primary_spec: Some(solve),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_rate_sits_in_papers_band() {
        let lo = 1.0 / (ITER_SECONDS * (1.0 + NOISE));
        let hi = 1.0 / (ITER_SECONDS * (1.0 - NOISE));
        assert!(lo > 2.4 && hi < 3.1, "band [{lo:.2}, {hi:.2}]");
    }

    #[test]
    fn kernel_is_mid_beta_memory_heavy() {
        let s = spec(24);
        assert!((s.beta - 0.52).abs() < 1e-9);
        assert!(powermodel::mpo::is_memory_bound(s.mpo));
    }
}
