//! Application catalog: build any study application by id.

use progress::event::MetricDesc;
use simnode::config::NodeConfig;

use crate::apps;
use crate::runtime::Program;
use crate::spec::KernelSpec;

/// The applications of the study (paper Tables II/V), plus the Listing-1
/// microbenchmark variants and the phase-restricted variants the paper
/// uses for characterization ("QMCPACK (DMC)", "OpenMC (Active)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    /// LAMMPS Lennard-Jones, 40 000 atoms (Category 1).
    Lammps,
    /// STREAM copy/scale/add/triad (Category 1).
    Stream,
    /// AMG setup + GMRES solve (Category 2).
    Amg,
    /// QMCPACK performance-NiO: VMC1 + VMC2 + DMC phases (Category 1).
    Qmcpack,
    /// QMCPACK DMC phase only — the paper's characterization target.
    QmcpackDmc,
    /// OpenMC inactive + active batches (Category 1).
    Openmc,
    /// OpenMC active phase only — the paper's characterization target.
    OpenmcActive,
    /// CANDLE training proxy, accuracy-bounded epochs (Category 1/2).
    Candle,
    /// Listing-1 with `do_equal_work`.
    Listing1Equal,
    /// Listing-1 with `do_unequal_work`.
    Listing1Unequal,
    /// Listing-1 (unequal) with per-rank progress channels — the paper's
    /// future-work "per-processing-element" monitoring.
    Listing1PerRank,
    /// HACC multi-component cosmology proxy (Category 3).
    Hacc,
    /// Nek5000 CFD proxy with non-uniform timesteps (Category 3).
    Nek5000,
    /// URBAN: Nek5000-style CFD + EnergyPlus at disparate timescales
    /// (Category 3).
    Urban,
}

impl AppId {
    /// The five applications the paper characterizes in Table VI, as their
    /// characterization variants.
    pub fn table_vi() -> [AppId; 5] {
        [
            AppId::QmcpackDmc,
            AppId::OpenmcActive,
            AppId::Amg,
            AppId::Lammps,
            AppId::Stream,
        ]
    }

    /// The registry name this id maps to.
    pub fn registry_name(self) -> &'static str {
        match self {
            AppId::Lammps => "LAMMPS",
            AppId::Stream => "STREAM",
            AppId::Amg => "AMG",
            AppId::Qmcpack | AppId::QmcpackDmc => "QMCPACK",
            AppId::Openmc | AppId::OpenmcActive => "OpenMC",
            AppId::Candle => "CANDLE",
            AppId::Listing1Equal | AppId::Listing1Unequal | AppId::Listing1PerRank => "Listing1",
            AppId::Hacc => "HACC",
            AppId::Nek5000 => "Nek5000",
            AppId::Urban => "URBAN",
        }
    }
}

/// A ready-to-run application: per-rank programs plus metadata.
pub struct AppInstance {
    /// Display name.
    pub name: &'static str,
    /// Progress metric per channel (channel 0 first).
    pub metrics: Vec<MetricDesc>,
    /// Per-rank programs (rank i runs `programs[i]`).
    pub programs: Vec<Box<dyn Program>>,
    /// The calibration of the performance-dominant kernel, when the app
    /// has one (used by the model harness for β targets etc.).
    pub primary_spec: Option<KernelSpec>,
}

impl AppInstance {
    /// Number of progress channels.
    pub fn channels(&self) -> usize {
        self.metrics.len().max(1)
    }
}

/// Build an application instance for `ranks` ranks with a seed.
pub fn build(id: AppId, cfg: &NodeConfig, ranks: usize, seed: u64) -> AppInstance {
    match id {
        AppId::Lammps => apps::lammps::instance(cfg, ranks, seed),
        AppId::Stream => apps::stream::instance(cfg, ranks, seed),
        AppId::Amg => apps::amg::instance(cfg, ranks, seed),
        AppId::Qmcpack => apps::qmcpack::instance(cfg, ranks, seed, false),
        AppId::QmcpackDmc => apps::qmcpack::instance(cfg, ranks, seed, true),
        AppId::Openmc => apps::openmc::instance(cfg, ranks, seed, false),
        AppId::OpenmcActive => apps::openmc::instance(cfg, ranks, seed, true),
        AppId::Candle => apps::candle::instance(cfg, ranks, seed),
        AppId::Listing1Equal => apps::listing1::instance(ranks, true),
        AppId::Listing1Unequal => apps::listing1::instance(ranks, false),
        AppId::Listing1PerRank => apps::listing1::instance_per_rank(ranks, false),
        AppId::Hacc => apps::hacc::instance(cfg, ranks, seed),
        AppId::Nek5000 => apps::nek5000::instance(cfg, ranks, seed),
        AppId::Urban => apps::urban::instance(cfg, ranks, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_app_builds_with_matching_rank_count() {
        let cfg = NodeConfig::default();
        for id in [
            AppId::Lammps,
            AppId::Stream,
            AppId::Amg,
            AppId::Qmcpack,
            AppId::QmcpackDmc,
            AppId::Openmc,
            AppId::OpenmcActive,
            AppId::Candle,
            AppId::Listing1Equal,
            AppId::Listing1Unequal,
            AppId::Listing1PerRank,
            AppId::Hacc,
            AppId::Nek5000,
            AppId::Urban,
        ] {
            let app = build(id, &cfg, 24, 1);
            assert_eq!(app.programs.len(), 24, "{:?}", id);
            assert!(!app.metrics.is_empty(), "{:?}", id);
        }
    }

    #[test]
    fn table_vi_ids_map_to_characterized_registry_entries() {
        for id in AppId::table_vi() {
            let rec = progress::registry::lookup(id.registry_name())
                .unwrap_or_else(|| panic!("{:?} not in registry", id));
            assert!(rec.beta_paper.is_some());
        }
    }

    #[test]
    fn characterization_variants_expose_primary_specs() {
        let cfg = NodeConfig::default();
        for id in AppId::table_vi() {
            let app = build(id, &cfg, 24, 1);
            let spec = app
                .primary_spec
                .unwrap_or_else(|| panic!("{:?} has no primary spec", id));
            let rec = progress::registry::lookup(id.registry_name()).unwrap();
            let target = rec.beta_paper.unwrap();
            assert!(
                (spec.beta - target).abs() < 0.02,
                "{:?}: spec beta {} vs Table VI {}",
                id,
                spec.beta,
                target
            );
        }
    }
}
