//! The simulated SPMD runtime.
//!
//! Mirrors the paper's single-node setup: one rank pinned per physical
//! core ("Pure MPI is used to parallelize the application using 24
//! processes ... MPI process pinning is enabled", §IV.B). Each rank runs a
//! [`Program`] — a state machine emitting [`Action`]s — and the [`Driver`]
//! co-schedules all ranks on a [`Node`], implements busy-wait barriers
//! (which is what inflates MIPS for imbalanced codes, Table I), publishes
//! progress reports to the bus, and invokes periodic control agents (the
//! NRM daemon, telemetry tracers).

use progress::bus::{ProgressBus, Publisher};
use simnode::agent::SimAgent;
use simnode::node::{CoreWork, Node, WorkPacket};
use simnode::time::Nanos;

/// What a rank does next.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Execute a work packet on this rank's core.
    Compute(WorkPacket),
    /// Wait until every live rank reaches the barrier (busy-wait).
    Barrier,
    /// Sleep for a duration (the paper's Listing-1 `usleep` work).
    Sleep(Nanos),
    /// Publish a progress report on channel `channel` (zero-duration).
    /// Multi-component applications use one channel per component; simple
    /// applications publish "a single value for the application" on
    /// channel 0 (§IV.B).
    Report {
        /// Progress channel index (one publisher per channel).
        channel: usize,
        /// Work amount in the channel's metric unit.
        value: f64,
    },
    /// Mark a named phase start (zero-duration; recorded with timestamp).
    Phase(&'static str),
    /// Rank finished.
    Done,
}

/// A per-rank program: called whenever the rank is ready for more work.
pub trait Program: Send {
    /// Produce the rank's next action.
    fn next_action(&mut self, rank: usize) -> Action;
}

/// Blanket impl so closures can be used as programs in tests.
impl<F: FnMut(usize) -> Action + Send> Program for F {
    fn next_action(&mut self, rank: usize) -> Action {
        self(rank)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankStatus {
    Running,
    AtBarrier,
    Done,
}

/// Result of a driver run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Simulated end time.
    pub end: Nanos,
    /// Phase markers: (time, name).
    pub phases: Vec<(Nanos, &'static str)>,
    /// True when every rank reached `Done` (as opposed to a time limit).
    pub all_done: bool,
    /// Barriers released over the run.
    pub barriers: u64,
}

/// Co-schedules rank programs on a node.
pub struct Driver {
    node: Node,
    programs: Vec<Box<dyn Program>>,
    status: Vec<RankStatus>,
    publishers: Vec<Publisher>,
    phases: Vec<(Nanos, &'static str)>,
    barriers: u64,
}

impl Driver {
    /// Create a driver running `programs` (rank i pinned to core i),
    /// publishing on `channels` publishers registered on `bus`.
    ///
    /// # Panics
    /// Panics if there are more ranks than cores, or no ranks, or zero
    /// channels.
    pub fn new(
        node: Node,
        programs: Vec<Box<dyn Program>>,
        bus: &ProgressBus,
        channels: usize,
    ) -> Self {
        assert!(!programs.is_empty(), "need at least one rank");
        assert!(
            programs.len() <= node.cores(),
            "more ranks ({}) than cores ({})",
            programs.len(),
            node.cores()
        );
        assert!(channels >= 1, "need at least one progress channel");
        let status = vec![RankStatus::Running; programs.len()];
        let publishers = (0..channels).map(|_| bus.publisher()).collect();
        Self {
            node,
            programs,
            status,
            publishers,
            phases: Vec::new(),
            barriers: 0,
        }
    }

    /// The underlying node (telemetry, counters, MSRs).
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Mutable node access (e.g. to program a cap before running).
    pub fn node_mut(&mut self) -> &mut Node {
        &mut self.node
    }

    /// Source ids of the progress channels, in channel order.
    pub fn channel_sources(&self) -> Vec<progress::event::SourceId> {
        self.publishers.iter().map(|p| p.source()).collect()
    }

    /// Run until every rank is done or simulated time reaches `until`.
    /// `agents` are invoked on their periods (phase-offset by
    /// [`SimAgent::phase`]). Can be called repeatedly to continue a run.
    ///
    /// Time advances via [`Node::step_until`]: the driver only needs
    /// control at its own horizons — the run limit, the earliest agent
    /// tick, and any core completion/wake (which is exactly when `feed`
    /// has something to do) — so event-free stretches are macro-stepped
    /// by the node in closed form.
    pub fn run(&mut self, until: Nanos, agents: &mut [&mut dyn SimAgent]) -> RunRecord {
        let mut next_tick: Vec<Nanos> =
            agents.iter().map(|a| self.node.now() + a.phase()).collect();

        loop {
            self.feed();
            let released = self.release_barrier_if_ready();

            if self.status.iter().all(|s| *s == RankStatus::Done) {
                return self.record(true);
            }
            if self.node.now() >= until {
                return self.record(false);
            }

            // A just-released barrier leaves its cores idle until the next
            // quantum boundary (matching the fixed-quantum reference), so
            // force a single-quantum advance before feeding them again.
            let mut deadline = until;
            for next in &next_tick {
                deadline = deadline.min(*next);
            }
            if released {
                deadline = deadline.min(self.node.now() + 1);
            }
            let deadline = deadline.max(self.node.now() + 1);
            self.node.step_until(deadline);

            let now = self.node.now();
            for (agent, next) in agents.iter_mut().zip(next_tick.iter_mut()) {
                if now >= *next {
                    agent.on_tick(&mut self.node, now);
                    *next += agent.period();
                }
            }
        }
    }

    /// Pull actions for every rank whose core is free, until each hits a
    /// blocking action.
    fn feed(&mut self) {
        let now = self.node.now();
        for rank in 0..self.programs.len() {
            if self.status[rank] != RankStatus::Running || !self.node.is_available(rank) {
                continue;
            }
            loop {
                match self.programs[rank].next_action(rank) {
                    Action::Compute(p) => {
                        self.node.assign(rank, CoreWork::Compute(p.into()));
                        break;
                    }
                    Action::Sleep(d) => {
                        self.node.assign(rank, CoreWork::Sleep { until: now + d });
                        break;
                    }
                    Action::Barrier => {
                        self.status[rank] = RankStatus::AtBarrier;
                        self.node.assign(rank, CoreWork::Spin);
                        break;
                    }
                    Action::Report { channel, value } => {
                        self.publishers
                            .get(channel)
                            .unwrap_or_else(|| panic!("no progress channel {channel}"))
                            .publish(now, value);
                    }
                    Action::Phase(name) => {
                        self.phases.push((now, name));
                    }
                    Action::Done => {
                        self.status[rank] = RankStatus::Done;
                        self.node.assign(rank, CoreWork::Idle);
                        break;
                    }
                }
            }
        }
    }

    /// Release the barrier when every live rank has arrived. Returns true
    /// if a release happened (the released cores sit idle until the next
    /// quantum boundary, so the run loop must not macro-skip past it).
    fn release_barrier_if_ready(&mut self) -> bool {
        let live = self
            .status
            .iter()
            .filter(|s| **s != RankStatus::Done)
            .count();
        if live == 0 {
            return false;
        }
        let waiting = self
            .status
            .iter()
            .filter(|s| **s == RankStatus::AtBarrier)
            .count();
        if waiting != live {
            return false;
        }
        self.barriers += 1;
        for (rank, s) in self.status.iter_mut().enumerate() {
            if *s == RankStatus::AtBarrier {
                *s = RankStatus::Running;
                self.node.assign(rank, CoreWork::Idle);
            }
        }
        true
    }

    fn record(&self, all_done: bool) -> RunRecord {
        RunRecord {
            end: self.node.now(),
            phases: self.phases.clone(),
            all_done,
            barriers: self.barriers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use progress::aggregator::ProgressAggregator;
    use progress::bus::BusConfig;
    use simnode::config::NodeConfig;
    use simnode::time::{MS, SEC};

    fn test_node() -> Node {
        Node::new(NodeConfig::default())
    }

    /// A program doing `iters` compute packets with a barrier + report.
    struct Simple {
        iters: usize,
        done: usize,
        pending: Vec<Action>,
    }

    impl Simple {
        fn new(iters: usize) -> Self {
            Self {
                iters,
                done: 0,
                pending: vec![],
            }
        }
    }

    impl Program for Simple {
        fn next_action(&mut self, rank: usize) -> Action {
            if let Some(a) = self.pending.pop() {
                return a;
            }
            if self.done >= self.iters {
                return Action::Done;
            }
            self.done += 1;
            if rank == 0 {
                self.pending.push(Action::Report {
                    channel: 0,
                    value: 1.0,
                });
            }
            self.pending.push(Action::Barrier);
            Action::Compute(WorkPacket {
                cycles: 3.3e9 * 0.01, // 10 ms at fmax
                misses: 0.0,
                instructions: 1e7,
                mlp: 1.0,
                mem_weight: 1.0,
            })
        }
    }

    #[test]
    fn all_ranks_complete_and_barriers_count() {
        let bus = ProgressBus::new();
        let programs: Vec<Box<dyn Program>> =
            (0..4).map(|_| Box::new(Simple::new(5)) as _).collect();
        let mut d = Driver::new(test_node(), programs, &bus, 1);
        let rec = d.run(10 * SEC, &mut []);
        assert!(rec.all_done);
        assert_eq!(rec.barriers, 5);
        // 5 iterations × ~10 ms each.
        assert!(rec.end > 45 * MS && rec.end < 120 * MS, "end={}", rec.end);
    }

    #[test]
    fn reports_reach_the_bus() {
        let bus = ProgressBus::new();
        let sub = bus.subscribe(BusConfig::lossless());
        let programs: Vec<Box<dyn Program>> =
            (0..2).map(|_| Box::new(Simple::new(3)) as _).collect();
        let mut d = Driver::new(test_node(), programs, &bus, 1);
        d.run(10 * SEC, &mut []);
        let mut agg = ProgressAggregator::new(sub, SEC, None);
        agg.poll(10 * SEC);
        let total: f64 = agg.windows().iter().map(|w| w.sum).sum();
        assert_eq!(total, 3.0, "3 iterations reported once each");
    }

    #[test]
    fn time_limit_stops_unfinished_runs() {
        let bus = ProgressBus::new();
        let programs: Vec<Box<dyn Program>> = vec![Box::new(Simple::new(1_000_000))];
        let mut d = Driver::new(test_node(), programs, &bus, 1);
        let rec = d.run(50 * MS, &mut []);
        assert!(!rec.all_done);
        assert!(rec.end >= 50 * MS);
    }

    #[test]
    fn imbalanced_ranks_spin_at_barrier() {
        // One rank sleeps 10 ms/iter, the other 50 ms: the fast rank spins,
        // inflating the instruction counter well beyond sleep-only levels.
        let bus = ProgressBus::new();
        let mk = |d_ms: u64| -> Box<dyn Program> {
            let mut n = 0;
            Box::new(move |_rank: usize| {
                n += 1;
                match n % 2 {
                    1 if n < 20 => Action::Sleep(d_ms * MS),
                    0 => Action::Barrier,
                    _ => Action::Done,
                }
            })
        };
        let programs = vec![mk(10), mk(50)];
        let mut d = Driver::new(test_node(), programs, &bus, 1);
        d.run(SEC, &mut []);
        let inst = d.node().counters().instructions;
        // ~9 barriers × 40 ms spin × 6.9e9 inst/s ≈ 2.5e9.
        assert!(inst > 1.0e9, "spin instructions missing: {inst:.2e}");
    }

    #[test]
    #[should_panic(expected = "more ranks")]
    fn too_many_ranks_rejected() {
        let bus = ProgressBus::new();
        let programs: Vec<Box<dyn Program>> =
            (0..25).map(|_| Box::new(Simple::new(1)) as _).collect();
        let _ = Driver::new(test_node(), programs, &bus, 1);
    }

    #[test]
    fn agents_tick_on_their_period() {
        struct Ticker {
            times: Vec<Nanos>,
        }
        impl SimAgent for Ticker {
            fn period(&self) -> Nanos {
                100 * MS
            }
            fn on_tick(&mut self, _n: &mut Node, now: Nanos) {
                self.times.push(now);
            }
        }
        let bus = ProgressBus::new();
        let programs: Vec<Box<dyn Program>> = vec![Box::new(Simple::new(200))];
        let mut d = Driver::new(test_node(), programs, &bus, 1);
        let mut t = Ticker { times: vec![] };
        d.run(SEC, &mut [&mut t]);
        assert!(
            (9..=11).contains(&t.times.len()),
            "expected ~10 ticks in 1 s, got {}",
            t.times.len()
        );
        for w in t.times.windows(2) {
            assert!(w[1] - w[0] >= 100 * MS);
        }
    }
}
