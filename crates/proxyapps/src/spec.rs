//! Closed-form workload calibration.
//!
//! Under the simulator's overlap-free execution model, an iteration taking
//! `T` seconds at `f_max` with compute-boundedness β spends `β·T` on
//! compute and `(1−β)·T` on memory. Inverting:
//!
//! - `cycles = β·T·f_max`
//! - `misses = (1−β)·T · bw_eff / line`, where `bw_eff` is the per-core
//!   bandwidth with all ranks memory-active, scaled by the workload's
//!   memory-level parallelism (latency-bound codes like OpenMC have low
//!   MLP: each miss stalls longer while moving the same bytes);
//! - `instructions = misses / MPO` (so the measured MPO lands on the
//!   paper's Table VI value), with an IPC-based fallback when the workload
//!   generates no misses.
//!
//! The proxy applications in [`crate::apps`] are all built from these
//! specs; integration tests then *measure* β and MPO on the simulator and
//! check they come back at the Table VI values.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simnode::config::NodeConfig;
use simnode::node::WorkPacket;

/// Calibration spec for one kernel (one iteration of one rank).
///
/// ```
/// use proxyapps::spec::KernelSpec;
/// use simnode::config::NodeConfig;
///
/// // A STREAM-like iteration: beta = 0.37, 62.5 ms at fmax, Table VI MPO.
/// let cfg = NodeConfig::default();
/// let spec = KernelSpec::new(0.37, 0.0625, 50.9e-3, 24);
/// let packet = spec.packet(&cfg);
/// // The packet's timing reconstructs the iteration time at fmax...
/// let t = packet.cycles / 3.3e9
///     + packet.misses * cfg.uncore.bytes_per_miss / spec.effective_bw(&cfg);
/// assert!((t - 0.0625).abs() < 1e-9);
/// // ...and its counter mix lands on the target MPO.
/// assert!((packet.misses / packet.instructions - 50.9e-3).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Target compute-boundedness at `f_max` with all ranks active.
    pub beta: f64,
    /// Per-iteration wall time at `f_max`, seconds (balanced ranks).
    pub iter_seconds: f64,
    /// Target misses-per-operation (0 = no memory traffic).
    pub mpo: f64,
    /// Memory-level parallelism factor in (0, 1]: 1 = bandwidth-streaming,
    /// small values = dependent (latency-bound) misses.
    pub mlp: f64,
    /// Ranks that will run concurrently (determines contention).
    pub ranks: usize,
    /// Fallback IPC for computing instruction counts when `mpo == 0`.
    pub fallback_ipc: f64,
}

impl KernelSpec {
    /// A compute-dominated spec with sensible defaults.
    pub fn new(beta: f64, iter_seconds: f64, mpo: f64, ranks: usize) -> Self {
        assert!((0.0..=1.0).contains(&beta), "beta in [0,1]");
        assert!(iter_seconds > 0.0, "iteration time positive");
        assert!(mpo >= 0.0, "mpo non-negative");
        assert!(ranks >= 1, "at least one rank");
        Self {
            beta,
            iter_seconds,
            mpo,
            mlp: 1.0,
            ranks,
            fallback_ipc: 1.5,
        }
    }

    /// Set the memory-level-parallelism factor.
    ///
    /// # Panics
    /// Panics unless `0 < mlp <= 1`.
    pub fn with_mlp(mut self, mlp: f64) -> Self {
        assert!(mlp > 0.0 && mlp <= 1.0, "mlp in (0,1]");
        self.mlp = mlp;
        self
    }

    /// The aggregate memory pressure this workload generates: every rank
    /// spends `(1 − β)` of its time pulling from memory at its MLP.
    pub fn pressure(&self) -> f64 {
        self.ranks as f64 * (1.0 - self.beta) * self.mlp
    }

    /// Effective per-core memory service rate for this spec at the node's
    /// fastest uncore level, bytes/s (matches the node's queueing model).
    pub fn effective_bw(&self, cfg: &NodeConfig) -> f64 {
        cfg.uncore
            .service_rate(cfg.uncore.max_level(), self.pressure(), self.mlp)
    }

    /// Synthesize the per-iteration work packet.
    pub fn packet(&self, cfg: &NodeConfig) -> WorkPacket {
        let fmax_hz = cfg.fmax_mhz() as f64 * 1e6;
        let t_comp = self.beta * self.iter_seconds;
        let t_mem = (1.0 - self.beta) * self.iter_seconds;
        let cycles = t_comp * fmax_hz;
        let misses = t_mem * self.effective_bw(cfg) / cfg.uncore.bytes_per_miss;
        let instructions = if misses > 0.0 && self.mpo > 0.0 {
            misses / self.mpo
        } else {
            cycles * self.fallback_ipc
        };
        WorkPacket {
            cycles,
            misses,
            instructions,
            mlp: self.mlp,
            mem_weight: ((1.0 - self.beta) * self.mlp).clamp(0.0, 1.0),
        }
    }

    /// The packet scaled by a factor (e.g. iteration-cost noise, or a
    /// partial iteration).
    pub fn scaled_packet(&self, cfg: &NodeConfig, factor: f64) -> WorkPacket {
        assert!(factor > 0.0, "scale factor must be positive");
        let p = self.packet(cfg);
        WorkPacket {
            cycles: p.cycles * factor,
            misses: p.misses * factor,
            instructions: p.instructions * factor,
            mlp: p.mlp,
            mem_weight: p.mem_weight,
        }
    }
}

/// Deterministic, rank-symmetric per-iteration noise: every rank computes
/// the same factor for the same iteration (the whole solver iteration is
/// cheaper or dearer, not one rank), so noise does not create imbalance.
///
/// Returns a factor uniform in `[1 − amplitude, 1 + amplitude]`.
pub fn iteration_noise(seed: u64, iteration: u64, amplitude: f64) -> f64 {
    assert!((0.0..1.0).contains(&amplitude), "amplitude in [0,1)");
    if amplitude == 0.0 {
        return 1.0;
    }
    // Mix seed and iteration through SplitMix-style avalanche into a
    // one-shot RNG; cheap and reproducible.
    let mut z = seed ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let mut rng = SmallRng::seed_from_u64(z ^ (z >> 31));
    1.0 + rng.random_range(-amplitude..=amplitude)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NodeConfig {
        NodeConfig::default()
    }

    #[test]
    fn packet_times_reconstruct_iteration_time() {
        // Execute the packet "by hand" with the simulator's timing formula
        // and check it lands on iter_seconds at fmax.
        let c = cfg();
        for &(beta, mpo, mlp) in &[(1.0, 0.0, 1.0), (0.52, 30.1e-3, 1.0), (0.93, 0.2e-3, 0.15)] {
            let spec = KernelSpec::new(beta, 0.05, mpo, 24).with_mlp(mlp);
            let p = spec.packet(&c);
            let t_comp = p.cycles / (c.fmax_mhz() as f64 * 1e6);
            let t_mem = p.misses * c.uncore.bytes_per_miss / spec.effective_bw(&c);
            let t = t_comp + t_mem;
            assert!(
                (t - 0.05).abs() < 1e-9,
                "β={beta}: reconstructed {t}, wanted 0.05"
            );
        }
    }

    #[test]
    fn mpo_of_packet_matches_target() {
        let c = cfg();
        let spec = KernelSpec::new(0.37, 0.0625, 50.9e-3, 24);
        let p = spec.packet(&c);
        let mpo = p.misses / p.instructions;
        assert!((mpo - 50.9e-3).abs() / 50.9e-3 < 1e-9);
    }

    #[test]
    fn pure_compute_uses_fallback_ipc() {
        let c = cfg();
        let spec = KernelSpec::new(1.0, 0.01, 0.0, 24);
        let p = spec.packet(&c);
        assert_eq!(p.misses, 0.0);
        assert!((p.instructions - p.cycles * 1.5).abs() < 1e-6);
    }

    #[test]
    fn low_mlp_means_fewer_misses_for_same_memory_time() {
        let c = cfg();
        let fast = KernelSpec::new(0.5, 0.01, 1e-3, 24).packet(&c);
        let slow = KernelSpec::new(0.5, 0.01, 1e-3, 24)
            .with_mlp(0.2)
            .packet(&c);
        assert!(
            slow.misses < fast.misses * 0.75,
            "dependent misses move fewer bytes per unit stall time: {} vs {}",
            slow.misses,
            fast.misses
        );
    }

    #[test]
    fn noise_is_rank_symmetric_and_bounded() {
        for it in 0..100u64 {
            let a = iteration_noise(42, it, 0.1);
            let b = iteration_noise(42, it, 0.1);
            assert_eq!(a, b, "same (seed, iteration) must agree across ranks");
            assert!((0.9..=1.1).contains(&a));
        }
        // Different iterations should differ (not all equal).
        let vals: Vec<f64> = (0..10).map(|i| iteration_noise(42, i, 0.1)).collect();
        assert!(vals.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn zero_amplitude_noise_is_exactly_one() {
        assert_eq!(iteration_noise(7, 3, 0.0), 1.0);
    }

    #[test]
    fn scaled_packet_scales_all_fields() {
        let c = cfg();
        let spec = KernelSpec::new(0.8, 0.02, 1e-3, 24);
        let p = spec.packet(&c);
        let s = spec.scaled_packet(&c, 1.5);
        assert!((s.cycles - 1.5 * p.cycles).abs() < 1e-6);
        assert!((s.misses - 1.5 * p.misses).abs() < 1e-6);
        assert!((s.instructions - 1.5 * p.instructions).abs() < 1e-3);
    }
}
