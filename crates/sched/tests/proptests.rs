//! Property tests for the power-aware admission controller: the
//! invariants that make it safe to schedule against a machine-room
//! breaker. For arbitrary (bounded) machines, traces and policies:
//!
//! - **envelope conservation** — Σ(admitted job power) ≤ envelope at
//!   every event of the schedule (the engine tracks the minimum slack it
//!   ever saw; it must be non-negative), and every per-job charge fits
//!   the envelope alone;
//! - **bounded wait / no starvation** — every job in the trace starts at
//!   or after its arrival, completes, and the queue fully drains: the
//!   EASY reservation guarantees the head of the queue cannot be
//!   overtaken forever;
//! - **determinism** — the same `(config, policy)` pair yields a
//!   bit-identical schedule on replay;
//! - **eco caps only shrink** — an eco-aware policy never runs any job
//!   *above* the cap the baseline would give it.

use proptest::prelude::*;
use sched::{simulate, MachineConfig, SchedConfig, SchedPolicy, TraceConfig};

/// A bounded machine + trace that always passes `SchedConfig::validate`:
/// the envelope is drawn above the largest job's cap-floor power.
fn scenario() -> impl Strategy<Value = SchedConfig> {
    (
        (
            8usize..33, // machine nodes
            1usize..9,  // trace nodes_max (≤ machine nodes by construction)
            4usize..25, // jobs
            1usize..5,  // tenants
        ),
        (
            0.0f64..60.0, // mean interarrival
            0.0f64..1.0,  // eco fraction
            0.4f64..1.0,  // envelope as a fraction of nodes_max × max_cap
        ),
        (any::<u64>(), any::<u64>()), // trace seed, telemetry seed
    )
        .prop_map(
            |((nodes, nodes_max, jobs, tenants), (gap, eco, frac), (seed, tseed))| {
                let nodes_max = nodes_max.min(nodes);
                let max_cap_w = 130.0;
                let min_cap_w = 40.0;
                // Anywhere from "one big job barely fits" up to "several
                // fit": always ≥ the validate() floor of nodes_max × min.
                let envelope_w =
                    (nodes_max as f64 * max_cap_w * frac).max(nodes_max as f64 * min_cap_w);
                SchedConfig {
                    machine: MachineConfig {
                        nodes,
                        envelope_w,
                        idle_node_w: 12.0,
                        gain: 0.8,
                        telemetry_seed: tseed,
                    },
                    trace: TraceConfig {
                        seed,
                        jobs,
                        tenants,
                        mean_interarrival_s: gap,
                        nodes_min: 1,
                        nodes_max,
                        runtime_min_s: 30.0,
                        runtime_max_s: 300.0,
                        eco_fraction: eco,
                        slack_min: 0.05,
                        slack_max: 0.40,
                    },
                    predictor: sched::PredictorConfig {
                        min_cap_w,
                        max_cap_w,
                        margin: 1.05,
                    },
                }
            },
        )
}

fn policies() -> impl Strategy<Value = SchedPolicy> {
    prop_oneof![
        Just(SchedPolicy::FcfsBackfill),
        Just(SchedPolicy::EcoBackfill),
        Just(SchedPolicy::FairShare),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// The admission invariant: at every event of the schedule the sum
    /// of admitted jobs' predicted power stayed within the envelope, and
    /// no single job was ever charged more than the whole envelope.
    #[test]
    fn admitted_power_never_exceeds_the_envelope(
        cfg in scenario(),
        policy in policies(),
    ) {
        let out = simulate(&cfg, policy).unwrap();
        prop_assert!(
            out.min_envelope_slack_w >= -1e-6,
            "{}: envelope overshot by {} W",
            policy.name(),
            -out.min_envelope_slack_w
        );
        for j in &out.jobs {
            prop_assert!(
                j.power_w <= cfg.machine.envelope_w + 1e-6,
                "job {} charged {} W against a {} W envelope",
                j.id, j.power_w, cfg.machine.envelope_w
            );
            prop_assert!(
                j.cap_w <= cfg.predictor.max_cap_w + 1e-9
                    && j.cap_w >= cfg.predictor.min_cap_w - 1e-9,
                "job {} cap {} W outside the machine's cap range",
                j.id, j.cap_w
            );
        }
    }

    /// Bounded wait: every submitted job starts (at or after arrival)
    /// and completes — the EASY reservation prevents starvation for
    /// every policy, trace shape and envelope tightness.
    #[test]
    fn every_job_starts_and_completes(
        cfg in scenario(),
        policy in policies(),
    ) {
        let out = simulate(&cfg, policy).unwrap();
        prop_assert_eq!(out.jobs.len(), cfg.trace.jobs, "queue did not drain");
        for (i, j) in out.jobs.iter().enumerate() {
            prop_assert_eq!(j.id as usize, i, "records are in job order");
            prop_assert!(
                j.start_s >= j.arrival_s - 1e-9,
                "job {} started {} s before arriving at {} s",
                j.id, j.start_s, j.arrival_s
            );
            prop_assert!(j.end_s > j.start_s, "job {} never ran", j.id);
            prop_assert!(j.bounded_slowdown() >= 1.0);
        }
    }

    /// The whole schedule is a pure function of (config, policy):
    /// replaying produces a bit-identical outcome.
    #[test]
    fn schedules_replay_bit_identically(
        cfg in scenario(),
        policy in policies(),
    ) {
        let a = simulate(&cfg, policy).unwrap();
        let b = simulate(&cfg, policy).unwrap();
        prop_assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
        prop_assert_eq!(a.job_energy_j.to_bits(), b.job_energy_j.to_bits());
        prop_assert_eq!(a.idle_energy_j.to_bits(), b.idle_energy_j.to_bits());
        for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
            prop_assert_eq!(ja.start_s.to_bits(), jb.start_s.to_bits());
            prop_assert_eq!(ja.end_s.to_bits(), jb.end_s.to_bits());
            prop_assert_eq!(ja.cap_w.to_bits(), jb.cap_w.to_bits());
        }
    }

    /// Eco-awareness only ever *lowers* caps relative to the baseline:
    /// job-for-job, the eco policy's admitted cap is ≤ FCFS's.
    #[test]
    fn eco_policies_never_raise_a_cap(cfg in scenario()) {
        let base = simulate(&cfg, SchedPolicy::FcfsBackfill).unwrap();
        let eco = simulate(&cfg, SchedPolicy::EcoBackfill).unwrap();
        for (b, e) in base.jobs.iter().zip(&eco.jobs) {
            prop_assert_eq!(b.id, e.id);
            prop_assert!(
                e.cap_w <= b.cap_w + 1e-9,
                "job {}: eco cap {} W above baseline {} W",
                b.id, e.cap_w, b.cap_w
            );
        }
    }
}
