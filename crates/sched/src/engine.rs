//! The discrete-event batch-scheduling engine.
//!
//! One simulation runs one seeded arrival trace against one machine
//! under one [`SchedPolicy`]. Time advances event to event (arrivals and
//! predicted completions, integer microseconds so the event order is
//! bit-deterministic); at every event the engine
//!
//! 1. integrates idle-node energy over the elapsed interval,
//! 2. applies the event (queue the arrival / release the completion),
//! 3. ticks every running job's intra-job [`cluster::BudgetArbiter`]
//!    through the [`cluster::MachinePartition`] with synthetic per-node
//!    telemetry — re-asserting Σ(job grants) ≤ envelope machine-wide,
//! 4. runs the power-aware EASY admission pass ([`crate::admission`]):
//!    start queue heads while they fit both free nodes and free watts,
//!    then backfill behind a two-dimensional head-of-queue reservation.
//!
//! Everything downstream — makespan, energy, bounded slowdown, Jain
//! fairness — comes out of the per-job records this loop produces.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use cluster::arbiter::{ArbiterConfig, NodeTelemetry, Policy, PowerArbiter};
use cluster::error::ConfigError;
use cluster::MachinePartition;

use crate::admission::{self, AdmitPlan, RunningSnapshot, EPS_W};
use crate::job::{JobId, JobSpec};
use crate::metrics::{JobRecord, ScheduleOutcome};
use crate::policy::SchedPolicy;
use crate::predictor::{PowerPredictor, PredictorConfig};
use crate::trace::TraceConfig;

/// The machine the queue is scheduled onto.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Nodes in the machine.
    pub nodes: usize,
    /// Site power envelope admission admits against, W. Sized well below
    /// `nodes × max_cap` so power — not node count — is the binding
    /// resource, which is the regime the paper studies.
    pub envelope_w: f64,
    /// Draw of an idle (unallocated) node, W — charged against the
    /// schedule's energy bill, so leaving nodes idle is not free.
    pub idle_node_w: f64,
    /// Intra-job progress-feedback gain for each job's arbiter.
    pub gain: f64,
    /// Seed for the synthetic per-node telemetry jitter (independent of
    /// the trace seed so workload and noise vary separately).
    pub telemetry_seed: u64,
}

impl Default for MachineConfig {
    /// A 64-node machine whose breaker supports ~75 W/node — roughly
    /// 58 % of the 130 W full cap, so admission is power-bound.
    fn default() -> Self {
        Self {
            nodes: 64,
            envelope_w: 4800.0,
            idle_node_w: 15.0,
            gain: 0.8,
            telemetry_seed: 101,
        }
    }
}

impl MachineConfig {
    /// Validate: positive node count and envelope, non-negative idle
    /// draw and gain.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes == 0 {
            return Err(ConfigError::new(
                "MachineConfig.nodes",
                "machine needs at least one node",
            ));
        }
        if !(self.envelope_w.is_finite() && self.envelope_w > 0.0) {
            return Err(ConfigError::new(
                "MachineConfig.envelope_w",
                format!("envelope {} W must be positive and finite", self.envelope_w),
            ));
        }
        if !(self.idle_node_w.is_finite() && self.idle_node_w >= 0.0) {
            return Err(ConfigError::new(
                "MachineConfig.idle_node_w",
                format!("idle draw {} W must be non-negative", self.idle_node_w),
            ));
        }
        if !(self.gain.is_finite() && self.gain >= 0.0) {
            return Err(ConfigError::new(
                "MachineConfig.gain",
                format!("gain {} must be non-negative", self.gain),
            ));
        }
        Ok(())
    }
}

/// Everything one simulation needs: machine, workload, predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SchedConfig {
    /// The machine.
    pub machine: MachineConfig,
    /// The arrival trace.
    pub trace: TraceConfig,
    /// The admission predictor.
    pub predictor: PredictorConfig,
}

impl SchedConfig {
    /// Validate each part and their compatibility: the largest possible
    /// job must fit an empty machine in both dimensions (nodes, and
    /// watts at the cap floor), else the queue can starve behind it.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.machine.validate()?;
        self.trace.validate()?;
        self.predictor.validate()?;
        if self.trace.nodes_max > self.machine.nodes {
            return Err(ConfigError::new(
                "SchedConfig.trace.nodes_max",
                format!(
                    "a {}-node job can never start on a {}-node machine",
                    self.trace.nodes_max, self.machine.nodes
                ),
            ));
        }
        let floor_w = self.trace.nodes_max as f64 * self.predictor.min_cap_w;
        if floor_w > self.machine.envelope_w + EPS_W {
            return Err(ConfigError::new(
                "SchedConfig.machine.envelope_w",
                format!(
                    "the largest job needs {} W even at the {} W cap floor, \
                     exceeding the {} W envelope",
                    floor_w, self.predictor.min_cap_w, self.machine.envelope_w
                ),
            ));
        }
        Ok(())
    }
}

/// Event kinds, ordered so a completion at time t frees its resources
/// before an arrival at the same t is considered.
const EV_COMPLETION: u8 = 0;
const EV_ARRIVAL: u8 = 1;

/// Seconds → integer microseconds (the engine's clock).
fn to_us(s: f64) -> u64 {
    (s * 1e6).round() as u64
}

/// Microseconds → seconds, for the outward-facing records.
fn to_s(us: u64) -> f64 {
    us as f64 / 1e6
}

/// One running job's engine-side state.
struct Running {
    spec: JobSpec,
    plan: AdmitPlan,
    /// Watts charged against the envelope (the arbiter budget — the
    /// plan's power, floored so the arbiter can fund every node).
    charged_w: f64,
    start_us: u64,
    end_us: u64,
    /// Per-job telemetry noise stream, seeded from the machine's
    /// telemetry seed and the job id so replays are bit-identical.
    rng: SmallRng,
}

/// Simulate `cfg`'s trace under `policy` and return the full outcome.
///
/// Deterministic: the same `(cfg, policy)` pair produces a bit-identical
/// [`ScheduleOutcome`] on every run and platform.
pub fn simulate(cfg: &SchedConfig, policy: SchedPolicy) -> Result<ScheduleOutcome, ConfigError> {
    cfg.validate()?;
    let specs = cfg.trace.generate()?;
    let predictor = PowerPredictor::new(cfg.predictor)?;
    let mut partition = MachinePartition::new(cfg.machine.envelope_w)?;

    // Event queue: (time µs, kind, job id); BTreeSet order is the event
    // order, completions before arrivals at the same instant.
    let mut events: BTreeSet<(u64, u8, JobId)> = specs
        .iter()
        .map(|s| (to_us(s.arrival_s), EV_ARRIVAL, s.id))
        .collect();
    let mut pending: Vec<JobId> = Vec::new();
    let mut running: BTreeMap<JobId, Running> = BTreeMap::new();
    let mut free_nodes = cfg.machine.nodes;
    let mut tenant_served_us: Vec<u64> = vec![0; cfg.trace.tenants];
    let mut records: Vec<JobRecord> = Vec::with_capacity(specs.len());
    let mut idle_energy_j = 0.0f64;
    let mut min_slack_w = cfg.machine.envelope_w;
    let mut last_us = 0u64;

    while let Some(&ev) = events.iter().next() {
        events.remove(&ev);
        let (now_us, kind, id) = ev;

        // Idle-node energy over the interval just elapsed.
        idle_energy_j += free_nodes as f64 * cfg.machine.idle_node_w * to_s(now_us - last_us);
        last_us = now_us;

        match kind {
            EV_COMPLETION => {
                let done = running.remove(&id).expect("completion for a running job");
                partition.release(id);
                free_nodes += done.spec.nodes;
                records.push(JobRecord {
                    id,
                    tenant: done.spec.tenant,
                    nodes: done.spec.nodes,
                    class: done.spec.class,
                    eco: done.spec.is_eco(),
                    cap_w: done.plan.cap_w,
                    power_w: done.charged_w,
                    runtime_est_s: done.spec.runtime_s,
                    // Quantized to the engine's µs clock so wait times
                    // (start − arrival) are exactly non-negative.
                    arrival_s: to_s(to_us(done.spec.arrival_s)),
                    start_s: to_s(done.start_us),
                    end_s: to_s(done.end_us),
                });
            }
            _ => pending.push(id),
        }

        // Intra-job redistribution tick: every running job's arbiter
        // chews on fresh synthetic telemetry; the partition re-asserts
        // Σ(grants) ≤ envelope after each.
        for (&jid, run) in running.iter_mut() {
            let reports: Vec<Option<NodeTelemetry>> = (0..run.spec.nodes)
                .map(|_| {
                    let jitter: f64 = run.rng.random_range(0.9..=1.1);
                    Some(NodeTelemetry::compute_only(
                        jitter,
                        1.0 / jitter,
                        run.plan.node_power_w,
                    ))
                })
                .collect();
            partition
                .redistribute(jid, &reports)
                .expect("running job accepts telemetry");
        }

        // Admission pass.
        schedule_pass(
            cfg,
            policy,
            &predictor,
            &specs,
            &mut pending,
            &mut running,
            &mut partition,
            &mut free_nodes,
            &mut tenant_served_us,
            &mut events,
            now_us,
        );

        min_slack_w = min_slack_w.min(partition.min_slack_w());
    }

    assert!(pending.is_empty(), "EASY reservation must drain the queue");
    assert!(running.is_empty(), "all completions must have fired");
    records.sort_by_key(|r| r.id);
    Ok(ScheduleOutcome::from_records(
        policy,
        records,
        cfg.machine.nodes,
        cfg.trace.tenants,
        idle_energy_j,
        min_slack_w,
    ))
}

/// Order the pending queue per the policy: arrival order (job ids are
/// assigned in arrival order) for the FCFS-rooted policies, least-served
/// tenant first (arrival-stable within a tenant) for fair-share.
fn order_pending(pending: &mut [JobId], policy: SchedPolicy, specs: &[JobSpec], served: &[u64]) {
    pending.sort_by_key(|&id| {
        let spec = &specs[id as usize];
        if policy.fair_ordered() {
            (served[spec.tenant], id)
        } else {
            (0, id)
        }
    });
}

/// One admission pass at `now_us`: start queue heads while they fit,
/// then backfill behind the head's two-dimensional reservation.
#[allow(clippy::too_many_arguments)]
fn schedule_pass(
    cfg: &SchedConfig,
    policy: SchedPolicy,
    predictor: &PowerPredictor,
    specs: &[JobSpec],
    pending: &mut Vec<JobId>,
    running: &mut BTreeMap<JobId, Running>,
    partition: &mut MachinePartition,
    free_nodes: &mut usize,
    tenant_served_us: &mut [u64],
    events: &mut BTreeSet<(u64, u8, JobId)>,
    now_us: u64,
) {
    loop {
        if pending.is_empty() {
            return;
        }
        order_pending(pending, policy, specs, tenant_served_us);
        let head = pending[0];
        let spec = &specs[head as usize];
        let plan = admission::plan(spec, predictor, policy, partition.envelope_w());
        let charged_w = charged(spec, &plan, cfg);
        if spec.nodes <= *free_nodes && charged_w <= partition.headroom_w() + EPS_W {
            pending.remove(0);
            start_job(
                spec,
                plan,
                charged_w,
                cfg,
                running,
                partition,
                free_nodes,
                tenant_served_us,
                events,
                now_us,
            );
            continue; // the head changed; re-order and retry
        }

        // The head is blocked: reserve its start and backfill behind it.
        let mut snaps: Vec<RunningSnapshot> = running
            .values()
            .map(|r| RunningSnapshot {
                end_us: r.end_us,
                nodes: r.spec.nodes,
                power_w: r.charged_w,
            })
            .collect();
        snaps.sort_by_key(|s| s.end_us);
        let Some(mut resv) = admission::reserve(
            spec.nodes,
            charged_w,
            *free_nodes,
            partition.headroom_w(),
            &snaps,
        ) else {
            // Validated configs guarantee the head fits an empty machine,
            // so a missing reservation means a bookkeeping bug.
            unreachable!("job {} cannot ever fit the machine", spec.id)
        };

        let mut i = 1;
        while i < pending.len() {
            let cand = &specs[pending[i] as usize];
            let cplan = admission::plan(cand, predictor, policy, partition.envelope_w());
            let c_w = charged(cand, &cplan, cfg);
            let dur_us = to_us(cplan.duration_s);
            let fits_now = cand.nodes <= *free_nodes && c_w <= partition.headroom_w() + EPS_W;
            if fits_now && admission::may_backfill(now_us, dur_us, cand.nodes, c_w, &resv) {
                // A backfill outliving the shadow consumes the spare the
                // reservation left over.
                if now_us.saturating_add(dur_us) > resv.shadow_us {
                    resv.spare_nodes -= cand.nodes;
                    resv.spare_w -= c_w;
                }
                let id = pending.remove(i);
                let cspec = &specs[id as usize];
                start_job(
                    cspec,
                    cplan,
                    c_w,
                    cfg,
                    running,
                    partition,
                    free_nodes,
                    tenant_served_us,
                    events,
                    now_us,
                );
            } else {
                i += 1;
            }
        }
        return;
    }
}

/// Watts a job is charged against the envelope: the plan's predicted
/// draw, floored at `nodes × min_cap` so its arbiter can always fund
/// every node at the cap floor.
fn charged(spec: &JobSpec, plan: &AdmitPlan, cfg: &SchedConfig) -> f64 {
    plan.power_w
        .max(spec.nodes as f64 * cfg.predictor.min_cap_w)
}

/// Commit a job: build its intra-job arbiter, admit it into the
/// partition, consume nodes, and schedule its completion.
#[allow(clippy::too_many_arguments)]
fn start_job(
    spec: &JobSpec,
    plan: AdmitPlan,
    charged_w: f64,
    cfg: &SchedConfig,
    running: &mut BTreeMap<JobId, Running>,
    partition: &mut MachinePartition,
    free_nodes: &mut usize,
    tenant_served_us: &mut [u64],
    events: &mut BTreeSet<(u64, u8, JobId)>,
    now_us: u64,
) {
    let arbiter = PowerArbiter::new(
        ArbiterConfig {
            budget_w: charged_w,
            min_cap_w: cfg.predictor.min_cap_w,
            max_cap_w: plan.cap_w,
            policy: Policy::ProgressFeedback {
                gain: cfg.machine.gain,
            },
        },
        spec.nodes,
    );
    partition
        .admit(spec.id, Box::new(arbiter))
        .expect("admission test established fit");
    *free_nodes -= spec.nodes;
    let dur_us = to_us(plan.duration_s).max(1);
    let end_us = now_us + dur_us;
    tenant_served_us[spec.tenant] += spec.nodes as u64 * dur_us;
    events.insert((end_us, EV_COMPLETION, spec.id));
    running.insert(
        spec.id,
        Running {
            spec: *spec,
            plan,
            charged_w,
            start_us: now_us,
            end_us,
            rng: SmallRng::seed_from_u64(
                cfg.machine
                    .telemetry_seed
                    .wrapping_add((spec.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ),
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SchedConfig {
        SchedConfig::default()
    }

    #[test]
    fn every_job_completes_and_never_starts_before_arrival() {
        let out = simulate(&cfg(), SchedPolicy::FcfsBackfill).unwrap();
        assert_eq!(out.jobs.len(), cfg().trace.jobs);
        for j in &out.jobs {
            assert!(
                j.start_s >= j.arrival_s - 1e-9,
                "job {} time-travelled",
                j.id
            );
            assert!(j.end_s > j.start_s, "job {} has no runtime", j.id);
            assert!(j.power_w <= cfg().machine.envelope_w + 1e-6);
        }
        assert!(out.makespan_s > 0.0);
        assert!(out.utilization > 0.0 && out.utilization <= 1.0);
    }

    #[test]
    fn envelope_slack_never_goes_negative() {
        for policy in SchedPolicy::ALL {
            let out = simulate(&cfg(), policy).unwrap();
            assert!(
                out.min_envelope_slack_w >= -1e-6,
                "{}: admitted past the envelope by {} W",
                policy.name(),
                -out.min_envelope_slack_w
            );
        }
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        let a = simulate(&cfg(), SchedPolicy::EcoBackfill).unwrap();
        let b = simulate(&cfg(), SchedPolicy::EcoBackfill).unwrap();
        assert_eq!(a, b);
        // A different trace seed produces a different schedule.
        let mut alt = cfg();
        alt.trace.seed = 8;
        let c = simulate(&alt, SchedPolicy::EcoBackfill).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn eco_backfill_beats_fcfs_on_makespan_and_energy() {
        // The headline claim: honouring eco-mode slack declarations
        // shrinks admitted caps, packs more tenants under the envelope,
        // and finishes the same queue sooner on less energy.
        let fcfs = simulate(&cfg(), SchedPolicy::FcfsBackfill).unwrap();
        let eco = simulate(&cfg(), SchedPolicy::EcoBackfill).unwrap();
        assert!(
            eco.makespan_s < fcfs.makespan_s,
            "eco {} s vs fcfs {} s",
            eco.makespan_s,
            fcfs.makespan_s
        );
        assert!(
            eco.total_energy_j() < fcfs.total_energy_j(),
            "eco {} J vs fcfs {} J",
            eco.total_energy_j(),
            fcfs.total_energy_j()
        );
    }

    #[test]
    fn eco_jobs_run_below_the_full_cap_only_under_eco_policies() {
        let fcfs = simulate(&cfg(), SchedPolicy::FcfsBackfill).unwrap();
        let full_cap = cfg().predictor.max_cap_w;
        // Under FCFS the only cap reductions come from envelope
        // tightening (huge jobs), not slack declarations.
        let eco = simulate(&cfg(), SchedPolicy::EcoBackfill).unwrap();
        let shrunk = eco
            .jobs
            .iter()
            .filter(|j| j.eco && j.cap_w < full_cap - 1e-9)
            .count();
        assert!(shrunk > 0, "some eco job must run below the full cap");
        for (f, e) in fcfs.jobs.iter().zip(&eco.jobs) {
            assert_eq!(f.id, e.id);
            assert!(
                f.cap_w + 1e-9 >= e.cap_w,
                "job {}: eco policy must never raise the cap",
                f.id
            );
        }
    }

    #[test]
    fn fair_share_tracks_tenant_service() {
        let out = simulate(&cfg(), SchedPolicy::FairShare).unwrap();
        assert_eq!(out.jobs.len(), cfg().trace.jobs);
        assert!(out.jain_fairness > 0.0 && out.jain_fairness <= 1.0);
        assert!(out.min_envelope_slack_w >= -1e-6);
    }

    #[test]
    fn incompatible_configs_are_rejected() {
        let mut c = cfg();
        c.trace.nodes_max = c.machine.nodes + 1;
        assert_eq!(
            c.validate().unwrap_err().what,
            "SchedConfig.trace.nodes_max"
        );
        let mut c = cfg();
        c.machine.envelope_w = 100.0;
        assert_eq!(
            c.validate().unwrap_err().what,
            "SchedConfig.machine.envelope_w"
        );
    }
}
