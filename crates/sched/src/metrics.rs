//! Schedule outcome metrics: makespan, energy, bounded slowdown, and
//! per-tenant fairness.

use serde::{Deserialize, Serialize};

use crate::job::{JobId, WorkloadClass};
use crate::policy::SchedPolicy;

/// Bounded-slowdown runtime floor, s: jobs shorter than this are not
/// allowed to dominate the slowdown statistic (Feitelson's convention).
pub const BSLD_TAU_S: f64 = 10.0;

/// What happened to one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Scheduler job id.
    pub id: JobId,
    /// Submitting tenant.
    pub tenant: usize,
    /// Nodes it ran on.
    pub nodes: usize,
    /// Workload class.
    pub class: WorkloadClass,
    /// Whether it declared eco-mode slack.
    pub eco: bool,
    /// Per-node cap it was admitted at, W.
    pub cap_w: f64,
    /// Whole-job power charged against the envelope, W.
    pub power_w: f64,
    /// Runtime estimate at the full cap, s.
    pub runtime_est_s: f64,
    /// Submission time, s.
    pub arrival_s: f64,
    /// Start time, s.
    pub start_s: f64,
    /// Completion time, s.
    pub end_s: f64,
}

impl JobRecord {
    /// Queue wait, s.
    pub fn wait_s(&self) -> f64 {
        self.start_s - self.arrival_s
    }

    /// Actual runtime (at the admitted cap), s.
    pub fn run_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Energy the job consumed: committed power × runtime, J.
    pub fn energy_j(&self) -> f64 {
        self.power_w * self.run_s()
    }

    /// Bounded slowdown: `max(1, (wait + run) / max(run, τ))` with
    /// τ = [`BSLD_TAU_S`].
    pub fn bounded_slowdown(&self) -> f64 {
        let denom = self.run_s().max(BSLD_TAU_S);
        ((self.wait_s() + self.run_s()) / denom).max(1.0)
    }
}

/// Per-tenant aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant index.
    pub tenant: usize,
    /// Jobs the tenant completed.
    pub jobs: usize,
    /// Mean queue wait, s.
    pub mean_wait_s: f64,
    /// Mean bounded slowdown (the fairness currency).
    pub mean_bsld: f64,
    /// Node-seconds of machine time consumed.
    pub node_seconds: f64,
    /// Energy consumed by the tenant's jobs, J.
    pub energy_j: f64,
}

/// The full outcome of one simulated schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// Policy that produced it.
    pub policy: SchedPolicy,
    /// Per-job records, in job-id order.
    pub jobs: Vec<JobRecord>,
    /// Completion time of the last job, s.
    pub makespan_s: f64,
    /// Σ over jobs of committed power × runtime, J.
    pub job_energy_j: f64,
    /// Idle-node energy: idle node-seconds × idle draw, J.
    pub idle_energy_j: f64,
    /// Mean bounded slowdown over all jobs.
    pub mean_bsld: f64,
    /// Worst bounded slowdown over all jobs.
    pub max_bsld: f64,
    /// Jain fairness index over per-tenant mean bounded slowdowns,
    /// in (0, 1]; 1 means every tenant saw the same service quality.
    pub jain_fairness: f64,
    /// Busy node-seconds / (machine nodes × makespan), in [0, 1].
    pub utilization: f64,
    /// Smallest envelope slack the admission controller ever left, W —
    /// non-negative iff Σ(admitted power) ≤ envelope held at every event.
    pub min_envelope_slack_w: f64,
    /// Per-tenant aggregates, in tenant order.
    pub tenants: Vec<TenantReport>,
}

impl ScheduleOutcome {
    /// Machine energy over the schedule: job energy plus idle energy, J.
    pub fn total_energy_j(&self) -> f64 {
        self.job_energy_j + self.idle_energy_j
    }

    /// Build the aggregate statistics from per-job records.
    ///
    /// `machine_nodes` sizes the utilization denominator; `tenants` is
    /// the tenant roster size (tenants with no jobs get an empty row).
    pub fn from_records(
        policy: SchedPolicy,
        jobs: Vec<JobRecord>,
        machine_nodes: usize,
        tenants: usize,
        idle_energy_j: f64,
        min_envelope_slack_w: f64,
    ) -> Self {
        let makespan_s = jobs.iter().map(|j| j.end_s).fold(0.0, f64::max);
        let job_energy_j = jobs.iter().map(JobRecord::energy_j).sum();
        let n = jobs.len().max(1) as f64;
        let mean_bsld = jobs.iter().map(JobRecord::bounded_slowdown).sum::<f64>() / n;
        let max_bsld = jobs
            .iter()
            .map(JobRecord::bounded_slowdown)
            .fold(1.0, f64::max);
        let busy_node_s: f64 = jobs.iter().map(|j| j.nodes as f64 * j.run_s()).sum();
        let utilization = if makespan_s > 0.0 {
            busy_node_s / (machine_nodes as f64 * makespan_s)
        } else {
            0.0
        };
        let tenant_rows: Vec<TenantReport> = (0..tenants)
            .map(|t| {
                let mine: Vec<&JobRecord> = jobs.iter().filter(|j| j.tenant == t).collect();
                let k = mine.len().max(1) as f64;
                TenantReport {
                    tenant: t,
                    jobs: mine.len(),
                    mean_wait_s: mine.iter().map(|j| j.wait_s()).sum::<f64>() / k,
                    mean_bsld: mine.iter().map(|j| j.bounded_slowdown()).sum::<f64>() / k,
                    node_seconds: mine.iter().map(|j| j.nodes as f64 * j.run_s()).sum(),
                    energy_j: mine.iter().map(|j| j.energy_j()).sum(),
                }
            })
            .collect();
        let jain_fairness = jain(
            &tenant_rows
                .iter()
                .filter(|t| t.jobs > 0)
                .map(|t| t.mean_bsld)
                .collect::<Vec<_>>(),
        );
        Self {
            policy,
            jobs,
            makespan_s,
            job_energy_j,
            idle_energy_j,
            mean_bsld,
            max_bsld,
            jain_fairness,
            utilization,
            min_envelope_slack_w,
            tenants: tenant_rows,
        }
    }
}

/// Jain's fairness index over a set of non-negative service metrics:
/// `(Σx)² / (n · Σx²)`, 1 when all equal, → 1/n when one value
/// dominates. Empty or all-zero input reads as perfectly fair.
pub fn jain(xs: &[f64]) -> f64 {
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if xs.is_empty() || sq == 0.0 {
        1.0
    } else {
        (sum * sum) / (xs.len() as f64 * sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: JobId, tenant: usize, arrival: f64, start: f64, end: f64) -> JobRecord {
        JobRecord {
            id,
            tenant,
            nodes: 2,
            class: WorkloadClass::ComputeBound,
            eco: false,
            cap_w: 130.0,
            power_w: 260.0,
            runtime_est_s: end - start,
            arrival_s: arrival,
            start_s: start,
            end_s: end,
        }
    }

    #[test]
    fn bounded_slowdown_floors_short_jobs() {
        // 100 s wait on a 1 s job reads against the τ = 10 s floor, not
        // the 1 s runtime.
        let j = rec(0, 0, 0.0, 100.0, 101.0);
        assert!((j.bounded_slowdown() - 10.1).abs() < 1e-9);
        // No wait means slowdown exactly 1.
        assert_eq!(rec(1, 0, 5.0, 5.0, 200.0).bounded_slowdown(), 1.0);
    }

    #[test]
    fn jain_index_brackets() {
        assert_eq!(jain(&[2.0, 2.0, 2.0]), 1.0);
        let skewed = jain(&[10.0, 0.0, 0.0]);
        assert!((skewed - 1.0 / 3.0).abs() < 1e-12, "{skewed}");
        assert_eq!(jain(&[]), 1.0);
    }

    #[test]
    fn outcome_aggregates_are_consistent() {
        let jobs = vec![
            rec(0, 0, 0.0, 0.0, 100.0),
            rec(1, 1, 0.0, 50.0, 150.0),
            rec(2, 0, 10.0, 100.0, 300.0),
        ];
        let out = ScheduleOutcome::from_records(SchedPolicy::FcfsBackfill, jobs, 8, 3, 500.0, 40.0);
        assert_eq!(out.makespan_s, 300.0);
        // 260 W × (100 + 100 + 200) s.
        assert!((out.job_energy_j - 260.0 * 400.0).abs() < 1e-9);
        assert!((out.total_energy_j() - (260.0 * 400.0 + 500.0)).abs() < 1e-9);
        // 2 nodes × 400 s busy over 8 × 300 available.
        assert!((out.utilization - 800.0 / 2400.0).abs() < 1e-12);
        assert_eq!(out.tenants.len(), 3);
        assert_eq!(out.tenants[0].jobs, 2);
        assert_eq!(out.tenants[2].jobs, 0);
        // The empty tenant is excluded from the fairness index.
        assert!(out.jain_fairness > 0.0 && out.jain_fairness <= 1.0);
        assert_eq!(out.min_envelope_slack_w, 40.0);
    }
}
