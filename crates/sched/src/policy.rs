//! The scheduling policies under comparison.

use serde::{Deserialize, Serialize};

/// How the queue is ordered and whether eco-mode declarations are
/// honoured. All three share the same EASY-backfill admission machinery
/// (head-of-queue reservation, backfill only when the reservation is
/// not delayed) over both dimensions — free nodes *and* free watts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// The baseline: arrival order, every job admitted at the full
    /// per-node cap. Eco declarations are ignored — this is what a
    /// power-unaware site does with the same queue.
    FcfsBackfill,
    /// Arrival order, but a slack-declaring job is admitted at the
    /// lowest cap its declaration tolerates (the predictor's inverse
    /// query), so its predicted draw shrinks and more tenants fit under
    /// the envelope — Angelelli-style eco-mode.
    EcoBackfill,
    /// Eco-aware, but the queue is ordered by each tenant's accumulated
    /// node-seconds (least-served first, arrival-stable) instead of pure
    /// arrival order, trading a little makespan for per-tenant fairness.
    FairShare,
}

impl SchedPolicy {
    /// All policies, in report order (the baseline first).
    pub const ALL: [SchedPolicy; 3] = [
        SchedPolicy::FcfsBackfill,
        SchedPolicy::EcoBackfill,
        SchedPolicy::FairShare,
    ];

    /// Display name (table/CSV key).
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::FcfsBackfill => "fcfs-backfill",
            SchedPolicy::EcoBackfill => "eco-backfill",
            SchedPolicy::FairShare => "fair-share",
        }
    }

    /// Whether eco-mode slack declarations shrink admission caps.
    pub fn eco_aware(self) -> bool {
        !matches!(self, SchedPolicy::FcfsBackfill)
    }

    /// Whether the queue is re-ordered by tenant fair-share.
    pub fn fair_ordered(self) -> bool {
        matches!(self, SchedPolicy::FairShare)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_flags_are_distinct() {
        let names: Vec<_> = SchedPolicy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["fcfs-backfill", "eco-backfill", "fair-share"]);
        assert!(!SchedPolicy::FcfsBackfill.eco_aware());
        assert!(SchedPolicy::EcoBackfill.eco_aware());
        assert!(SchedPolicy::FairShare.eco_aware());
        assert!(SchedPolicy::FairShare.fair_ordered());
        assert!(!SchedPolicy::EcoBackfill.fair_ordered());
    }
}
