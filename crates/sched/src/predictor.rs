//! The Storlie-style per-job power predictor.
//!
//! Storlie et al. (PAPERS.md) admit jobs against a power budget using a
//! per-job *prediction* of draw rather than worst-case nameplate power.
//! Here the prediction comes from the paper's own machinery: each
//! [`WorkloadClass`] is a characterized [`ProgressModel`] (β from the
//! registry, uncapped package draw from the testbed), so one model
//! answers both admission questions:
//!
//! - **power**: what will `nodes` nodes of this class draw under a given
//!   per-node cap (with a safety margin playing the role of Storlie's
//!   upper quantile)?
//! - **time**: how much *slower* does the job run at that cap — the
//!   model's Eq. 4/5 slowdown, which is what a tenant's eco-mode slack
//!   declaration is compared against (via the closed-form inverse
//!   query, [`ProgressModel::required_cap_for_rate`]).

use serde::{Deserialize, Serialize};

use cluster::error::ConfigError;
use powermodel::predict::{ProgressModel, PAPER_ALPHA};

use crate::job::{JobSpec, WorkloadClass};

/// Predictor tuning: the machine's per-node cap range and the admission
/// safety margin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Lowest per-node cap the scheduler will ever run a job at, W.
    pub min_cap_w: f64,
    /// The machine's full per-node cap, W (what "100 % speed" means for
    /// runtime estimates).
    pub max_cap_w: f64,
    /// Multiplier on the predicted class draw — the upper-quantile
    /// margin of a Storlie-style predictor (1.05 = admit against a 5 %
    /// over-prediction so transients don't trip the breaker).
    pub margin: f64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            min_cap_w: 40.0,
            max_cap_w: 130.0,
            margin: 1.05,
        }
    }
}

impl PredictorConfig {
    /// Validate: a non-empty positive cap range and a margin ≥ 1.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.min_cap_w > 0.0 && self.min_cap_w <= self.max_cap_w && self.max_cap_w.is_finite())
        {
            return Err(ConfigError::new(
                "PredictorConfig.min_cap_w",
                format!(
                    "need 0 < min_cap_w ({} W) <= max_cap_w ({} W)",
                    self.min_cap_w, self.max_cap_w
                ),
            ));
        }
        if !(self.margin.is_finite() && self.margin >= 1.0) {
            return Err(ConfigError::new(
                "PredictorConfig.margin",
                format!(
                    "margin {} must be >= 1 (an under-prediction margin",
                    self.margin
                ) + " would defeat the admission test)",
            ));
        }
        Ok(())
    }
}

/// The per-class power/slowdown predictor.
#[derive(Debug, Clone)]
pub struct PowerPredictor {
    cfg: PredictorConfig,
    /// One characterized model per [`WorkloadClass::ALL`] entry, with
    /// `r_max` normalized to 1 so rates read directly as speed fractions.
    models: [ProgressModel; 4],
}

impl PowerPredictor {
    /// Build the predictor for a validated configuration.
    pub fn new(cfg: PredictorConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let models = WorkloadClass::ALL.map(|c| {
            ProgressModel::from_uncapped_run(c.beta(), PAPER_ALPHA, c.uncapped_node_power_w(), 1.0)
        });
        Ok(Self { cfg, models })
    }

    /// The configuration this predictor was built with.
    pub fn config(&self) -> &PredictorConfig {
        &self.cfg
    }

    /// The characterized model for one class.
    pub fn model(&self, class: WorkloadClass) -> &ProgressModel {
        let idx = WorkloadClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("ALL is exhaustive");
        &self.models[idx]
    }

    /// Predicted per-node package draw under a per-node cap, W: the
    /// margined class draw, ceilinged by the cap itself (RAPL enforces
    /// the cap; the margin only matters below the class's natural draw).
    pub fn node_power_w(&self, class: WorkloadClass, cap_w: f64) -> f64 {
        (class.uncapped_node_power_w() * self.cfg.margin).min(cap_w)
    }

    /// Predicted whole-job draw under a per-node cap, W.
    pub fn job_power_w(&self, spec: &JobSpec, cap_w: f64) -> f64 {
        spec.nodes as f64 * self.node_power_w(spec.class, cap_w)
    }

    /// Relative slowdown of this class at `cap_w` versus the machine's
    /// full cap (≥ 1; 1 at the full cap). This is the quantity a
    /// tenant's eco-slack declaration bounds: runtime estimates are
    /// quoted at the full cap, so `runtime × relative_slowdown` is the
    /// predicted runtime at `cap_w`.
    pub fn relative_slowdown(&self, class: WorkloadClass, cap_w: f64) -> f64 {
        let m = self.model(class);
        m.predict_rate(self.cfg.max_cap_w) / m.predict_rate(cap_w)
    }

    /// Predicted runtime of `spec` when granted `cap_w` per node, s.
    pub fn duration_s(&self, spec: &JobSpec, cap_w: f64) -> f64 {
        spec.runtime_s * self.relative_slowdown(spec.class, cap_w)
    }

    /// **Inverse query**: the smallest per-node cap at which this class
    /// stays within a relative slowdown of `slowdown` (≥ 1) versus the
    /// full cap, clamped into the machine's cap range. The eco-aware
    /// admission controller runs a slack-declaring job here — the
    /// slowest operating point the tenant consented to — freeing
    /// envelope for more tenants.
    pub fn cap_for_relative_slowdown(&self, class: WorkloadClass, slowdown: f64) -> f64 {
        assert!(slowdown >= 1.0, "a slowdown bound below 1 is a speedup");
        let m = self.model(class);
        let target_rate = m.predict_rate(self.cfg.max_cap_w) / slowdown;
        m.required_cap_for_rate(target_rate)
            .unwrap_or(0.0)
            .clamp(self.cfg.min_cap_w, self.cfg.max_cap_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred() -> PowerPredictor {
        PowerPredictor::new(PredictorConfig::default()).unwrap()
    }

    fn spec(class: WorkloadClass, nodes: usize) -> JobSpec {
        JobSpec {
            id: 0,
            tenant: 0,
            nodes,
            runtime_s: 100.0,
            class,
            eco_slack: 0.0,
            arrival_s: 0.0,
        }
    }

    #[test]
    fn power_is_margined_class_draw_ceilinged_by_the_cap() {
        let p = pred();
        // At the full 130 W cap every class is cap-limited (all draws
        // exceed 130/1.05), so prediction = cap.
        assert_eq!(p.node_power_w(WorkloadClass::ComputeBound, 130.0), 130.0);
        // Below the class draw, the cap is the prediction; a 4-node job
        // scales linearly.
        assert_eq!(p.job_power_w(&spec(WorkloadClass::Solver, 4), 80.0), 320.0);
        // Above the margined draw, the margin caps it: AMG at 120 W
        // natural × 1.05 = 126 W < a 130 W cap.
        assert!((p.node_power_w(WorkloadClass::Solver, 130.0) - 126.0).abs() < 1e-9);
    }

    #[test]
    fn slowdown_is_one_at_the_full_cap_and_grows_below() {
        let p = pred();
        for class in WorkloadClass::ALL {
            assert!((p.relative_slowdown(class, 130.0) - 1.0).abs() < 1e-12);
            let s80 = p.relative_slowdown(class, 80.0);
            let s60 = p.relative_slowdown(class, 60.0);
            assert!(s60 > s80 && s80 >= 1.0, "{class:?}: {s80} {s60}");
        }
        // Memory-bound classes barely feel the cap; compute-bound ones
        // feel it fully (the paper's β ordering).
        assert!(
            p.relative_slowdown(WorkloadClass::Streaming, 80.0)
                < p.relative_slowdown(WorkloadClass::ComputeBound, 80.0)
        );
    }

    #[test]
    fn inverse_query_roundtrips_through_the_slowdown() {
        let p = pred();
        for class in WorkloadClass::ALL {
            for bound in [1.05, 1.2, 1.5] {
                let cap = p.cap_for_relative_slowdown(class, bound);
                assert!(
                    p.relative_slowdown(class, cap) <= bound + 1e-9,
                    "{class:?} at {cap} W violates the {bound} bound"
                );
            }
        }
        // A streaming job tolerating 20 % can drop much deeper than a
        // compute-bound one: that asymmetry is the eco-mode payoff.
        assert!(
            p.cap_for_relative_slowdown(WorkloadClass::Streaming, 1.2)
                < p.cap_for_relative_slowdown(WorkloadClass::ComputeBound, 1.2)
        );
    }

    #[test]
    fn eco_cap_saves_energy_per_unit_work() {
        // power × duration at the eco cap must undercut the full cap:
        // the reason eco-mode beats the baseline on energy, not just
        // admission.
        let p = pred();
        let s = spec(WorkloadClass::MonteCarlo, 8);
        let full = p.job_power_w(&s, 130.0) * p.duration_s(&s, 130.0);
        let cap = p.cap_for_relative_slowdown(s.class, 1.2);
        let eco = p.job_power_w(&s, cap) * p.duration_s(&s, cap);
        assert!(
            eco < full * 0.95,
            "eco {eco:.0} J should undercut full {full:.0} J"
        );
    }

    #[test]
    fn invalid_configs_are_named() {
        let e = PowerPredictor::new(PredictorConfig {
            margin: 0.9,
            ..PredictorConfig::default()
        })
        .unwrap_err();
        assert_eq!(e.what, "PredictorConfig.margin");
        let e = PowerPredictor::new(PredictorConfig {
            min_cap_w: 200.0,
            ..PredictorConfig::default()
        })
        .unwrap_err();
        assert_eq!(e.what, "PredictorConfig.min_cap_w");
    }
}
