//! The batch job model: what a tenant submits to the queue.
//!
//! A job is a node count, a runtime estimate (at the machine's full
//! per-node cap), a workload class the power predictor can characterize,
//! and — the eco-mode lever from Angelelli et al. — an optional *slack
//! declaration*: the relative slowdown the tenant consents to in
//! exchange for earlier admission under a tight power envelope.

use serde::{Deserialize, Serialize};

use cluster::error::ConfigError;

/// Scheduler-wide job identifier.
pub type JobId = u32;

/// The workload classes the predictor can characterize, each mapped to
/// one of the paper's Table VI applications (β from the registry, the
/// uncapped package draw from the paper's testbed measurements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Compute-bound molecular dynamics (LAMMPS, β = 1.00).
    ComputeBound,
    /// Compute-heavy Monte Carlo (QMCPACK, β = 0.84).
    MonteCarlo,
    /// Memory-bandwidth-bound solver (AMG, β = 0.52).
    Solver,
    /// Memory-streaming (STREAM, β = 0.37): caps barely slow it.
    Streaming,
}

impl WorkloadClass {
    /// All classes, in a fixed order (trace generation indexes this).
    pub const ALL: [WorkloadClass; 4] = [
        WorkloadClass::ComputeBound,
        WorkloadClass::MonteCarlo,
        WorkloadClass::Solver,
        WorkloadClass::Streaming,
    ];

    /// The registry application this class is calibrated from.
    pub fn app_name(self) -> &'static str {
        match self {
            WorkloadClass::ComputeBound => "LAMMPS",
            WorkloadClass::MonteCarlo => "QMCPACK",
            WorkloadClass::Solver => "AMG",
            WorkloadClass::Streaming => "STREAM",
        }
    }

    /// Short key for tables and CSVs.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadClass::ComputeBound => "compute",
            WorkloadClass::MonteCarlo => "montecarlo",
            WorkloadClass::Solver => "solver",
            WorkloadClass::Streaming => "streaming",
        }
    }

    /// Compute-boundedness β, from the paper's Table VI via the
    /// application registry.
    ///
    /// # Panics
    /// Panics if the registry loses the app or its β — a build-time data
    /// regression, not an operating condition.
    pub fn beta(self) -> f64 {
        progress::registry::lookup(self.app_name())
            .and_then(|r| r.beta_paper)
            .unwrap_or_else(|| panic!("registry must carry beta for {}", self.app_name()))
    }

    /// Uncapped per-node package draw, W (the paper's testbed
    /// measurements for the class's reference application).
    pub fn uncapped_node_power_w(self) -> f64 {
        match self {
            WorkloadClass::ComputeBound => 155.0,
            WorkloadClass::MonteCarlo => 148.0,
            WorkloadClass::Solver => 120.0,
            WorkloadClass::Streaming => 119.0,
        }
    }
}

/// One submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Scheduler-wide id (also the [`cluster::MachinePartition`] key).
    pub id: JobId,
    /// Which tenant submitted it (index into the tenant roster).
    pub tenant: usize,
    /// Nodes requested.
    pub nodes: usize,
    /// Runtime estimate when every node runs at the machine's full
    /// per-node cap, s.
    pub runtime_s: f64,
    /// Workload class (drives the power predictor).
    pub class: WorkloadClass,
    /// Eco-mode declaration: the relative slowdown the tenant tolerates
    /// (0.2 = "20 % longer is fine"). Zero means rigid — the job only
    /// runs at the full cap.
    pub eco_slack: f64,
    /// Submission time, s from trace start.
    pub arrival_s: f64,
}

impl JobSpec {
    /// Whether this job declared eco-mode slack.
    pub fn is_eco(&self) -> bool {
        self.eco_slack > 0.0
    }

    /// Validate the submission: positive node count and runtime, finite
    /// non-negative slack and arrival.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let bad = |what: &'static str, why: String| Err(ConfigError::new(what, why));
        if self.nodes == 0 {
            return bad(
                "JobSpec.nodes",
                format!("job {} requests zero nodes", self.id),
            );
        }
        if !(self.runtime_s.is_finite() && self.runtime_s > 0.0) {
            return bad(
                "JobSpec.runtime_s",
                format!(
                    "job {} runtime {} s must be positive",
                    self.id, self.runtime_s
                ),
            );
        }
        if !(self.eco_slack.is_finite() && self.eco_slack >= 0.0) {
            return bad(
                "JobSpec.eco_slack",
                format!(
                    "job {} slack {} must be non-negative",
                    self.id, self.eco_slack
                ),
            );
        }
        if !(self.arrival_s.is_finite() && self.arrival_s >= 0.0) {
            return bad(
                "JobSpec.arrival_s",
                format!(
                    "job {} arrival {} s must be non-negative",
                    self.id, self.arrival_s
                ),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn betas_come_from_the_registry() {
        assert_eq!(WorkloadClass::ComputeBound.beta(), 1.00);
        assert_eq!(WorkloadClass::MonteCarlo.beta(), 0.84);
        assert_eq!(WorkloadClass::Solver.beta(), 0.52);
        assert_eq!(WorkloadClass::Streaming.beta(), 0.37);
    }

    #[test]
    fn validation_names_the_offending_field() {
        let ok = JobSpec {
            id: 1,
            tenant: 0,
            nodes: 4,
            runtime_s: 100.0,
            class: WorkloadClass::MonteCarlo,
            eco_slack: 0.2,
            arrival_s: 5.0,
        };
        ok.validate().unwrap();
        assert!(ok.is_eco());
        let e = JobSpec { nodes: 0, ..ok }.validate().unwrap_err();
        assert_eq!(e.what, "JobSpec.nodes");
        let e = JobSpec {
            runtime_s: -1.0,
            ..ok
        }
        .validate()
        .unwrap_err();
        assert_eq!(e.what, "JobSpec.runtime_s");
        let e = JobSpec {
            eco_slack: f64::NAN,
            ..ok
        }
        .validate()
        .unwrap_err();
        assert_eq!(e.what, "JobSpec.eco_slack");
        assert!(!JobSpec {
            eco_slack: 0.0,
            ..ok
        }
        .is_eco());
    }
}
