//! Multi-tenant eco-mode batch scheduling under a machine power
//! envelope.
//!
//! The arbiter stack (`cluster`) answers "how do I divide one job's
//! budget across its nodes?". This crate answers the question one level
//! up: **which jobs run at all, and at what power?** A seeded trace of
//! heterogeneous batch jobs ([`trace`]) — each with a node count, a
//! runtime estimate, a characterizable workload class, and optionally an
//! *eco-mode slack declaration* ("20 % longer is fine") — is fed through
//! a power-aware admission controller:
//!
//! - a Storlie-style per-job power **predictor** ([`predictor`]) built
//!   from the paper's own progress model (β per class from the app
//!   registry) answers, for any per-node cap, what the job will draw and
//!   how much slower it runs;
//! - **admission** ([`admission`]) is EASY backfill over *two*
//!   dimensions — free nodes and free watts — with a head-of-queue
//!   reservation so nothing starves;
//! - eco-aware policies ([`policy`]) run slack-declaring jobs at the
//!   lowest cap their declaration tolerates (the predictor's inverse
//!   query), shrinking their envelope charge so more tenants fit;
//! - each running job's node set is handed to the existing
//!   [`cluster::BudgetArbiter`] stack through a
//!   [`cluster::MachinePartition`], which re-asserts the machine
//!   invariant Σ(job grants) ≤ envelope on every tick.
//!
//! The [`engine`] drives all of it as a deterministic discrete-event
//! simulation, and [`metrics`] turns the per-job records into makespan,
//! energy (busy + idle), bounded slowdown, and per-tenant Jain fairness
//! — the numbers `repro sched` tabulates.

pub mod admission;
pub mod engine;
pub mod job;
pub mod metrics;
pub mod policy;
pub mod predictor;
pub mod trace;

pub use engine::{simulate, MachineConfig, SchedConfig};
pub use job::{JobId, JobSpec, WorkloadClass};
pub use metrics::{JobRecord, ScheduleOutcome, TenantReport};
pub use policy::SchedPolicy;
pub use predictor::{PowerPredictor, PredictorConfig};
pub use trace::TraceConfig;
