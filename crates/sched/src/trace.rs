//! Seeded arrival-trace generation.
//!
//! A trace is the scheduler's workload: jobs with exponential-ish
//! interarrivals, uniform node counts and runtime estimates, a uniform
//! class mix, round-robin-free tenant assignment, and a configurable
//! fraction of eco-mode slack declarations. Everything is drawn from one
//! seeded [`SmallRng`] in a fixed order, so a `(config, seed)` pair
//! yields the same trace bit for bit on every platform — the property
//! `repro sched --seed N` leans on.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use cluster::error::ConfigError;

use crate::job::{JobSpec, WorkloadClass};

/// Trace-generation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// RNG seed: same seed, same trace.
    pub seed: u64,
    /// Jobs to generate.
    pub jobs: usize,
    /// Tenants submitting them (uniformly assigned).
    pub tenants: usize,
    /// Mean interarrival gap, s (exponential).
    pub mean_interarrival_s: f64,
    /// Node-count range, inclusive.
    pub nodes_min: usize,
    /// See `nodes_min`.
    pub nodes_max: usize,
    /// Runtime-estimate range at the full cap, s, inclusive.
    pub runtime_min_s: f64,
    /// See `runtime_min_s`.
    pub runtime_max_s: f64,
    /// Fraction of jobs declaring eco-mode slack, in [0, 1].
    pub eco_fraction: f64,
    /// Declared-slack range for eco jobs, inclusive (0.2 = 20 %).
    pub slack_min: f64,
    /// See `slack_min`.
    pub slack_max: f64,
}

impl Default for TraceConfig {
    /// A mixed queue: 64 jobs from 4 tenants, 1–12 nodes each, 2–10
    /// minute estimates, 60 % of jobs tolerating 10–35 % slowdown.
    fn default() -> Self {
        Self {
            seed: 7,
            jobs: 64,
            tenants: 4,
            mean_interarrival_s: 30.0,
            nodes_min: 1,
            nodes_max: 12,
            runtime_min_s: 120.0,
            runtime_max_s: 600.0,
            eco_fraction: 0.6,
            slack_min: 0.10,
            slack_max: 0.35,
        }
    }
}

impl TraceConfig {
    /// Validate ranges and fractions.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let check = |cond: bool, what: &'static str, why: String| {
            if cond {
                Ok(())
            } else {
                Err(ConfigError::new(what, why))
            }
        };
        check(
            self.jobs > 0,
            "TraceConfig.jobs",
            "need at least one job".into(),
        )?;
        check(
            self.tenants > 0,
            "TraceConfig.tenants",
            "need at least one tenant".into(),
        )?;
        check(
            self.mean_interarrival_s.is_finite() && self.mean_interarrival_s >= 0.0,
            "TraceConfig.mean_interarrival_s",
            format!(
                "mean gap {} s must be non-negative",
                self.mean_interarrival_s
            ),
        )?;
        check(
            self.nodes_min >= 1 && self.nodes_min <= self.nodes_max,
            "TraceConfig.nodes_min",
            format!(
                "need 1 <= nodes_min ({}) <= nodes_max ({})",
                self.nodes_min, self.nodes_max
            ),
        )?;
        check(
            self.runtime_min_s > 0.0 && self.runtime_min_s <= self.runtime_max_s,
            "TraceConfig.runtime_min_s",
            format!(
                "need 0 < runtime_min_s ({}) <= runtime_max_s ({})",
                self.runtime_min_s, self.runtime_max_s
            ),
        )?;
        check(
            (0.0..=1.0).contains(&self.eco_fraction),
            "TraceConfig.eco_fraction",
            format!("fraction {} must be in [0, 1]", self.eco_fraction),
        )?;
        check(
            self.slack_min >= 0.0 && self.slack_min <= self.slack_max && self.slack_max.is_finite(),
            "TraceConfig.slack_min",
            format!(
                "need 0 <= slack_min ({}) <= slack_max ({})",
                self.slack_min, self.slack_max
            ),
        )?;
        Ok(())
    }

    /// Generate the trace: `jobs` specs in arrival order, deterministic
    /// in `(self, seed)`.
    pub fn generate(&self) -> Result<Vec<JobSpec>, ConfigError> {
        self.validate()?;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(self.jobs);
        for id in 0..self.jobs {
            // Exponential interarrival by inversion; the half-open [0, 1)
            // draw keeps ln(1 - u) finite.
            let u: f64 = rng.random_range(0.0..1.0);
            t += -self.mean_interarrival_s * (1.0 - u).ln();
            let nodes = rng.random_range(self.nodes_min..=self.nodes_max);
            let runtime_s = rng.random_range(self.runtime_min_s..=self.runtime_max_s);
            let class = WorkloadClass::ALL[rng.random_range(0usize..4)];
            let tenant = rng.random_range(0..self.tenants);
            let eco: f64 = rng.random_range(0.0..1.0);
            let eco_slack = if eco < self.eco_fraction {
                rng.random_range(self.slack_min..=self.slack_max)
            } else {
                0.0
            };
            let spec = JobSpec {
                id: id as u32,
                tenant,
                nodes,
                runtime_s,
                class,
                eco_slack,
                arrival_s: t,
            };
            spec.validate()?;
            out.push(spec);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace_bit_for_bit() {
        let cfg = TraceConfig::default();
        let a = cfg.generate().unwrap();
        let b = cfg.generate().unwrap();
        assert_eq!(a, b);
        let c = TraceConfig {
            seed: 8,
            ..TraceConfig::default()
        }
        .generate()
        .unwrap();
        assert_ne!(a, c, "a different seed must change the trace");
    }

    #[test]
    fn trace_respects_the_configured_ranges() {
        let cfg = TraceConfig::default();
        let jobs = cfg.generate().unwrap();
        assert_eq!(jobs.len(), cfg.jobs);
        let mut last_arrival = 0.0;
        for j in &jobs {
            assert!((cfg.nodes_min..=cfg.nodes_max).contains(&j.nodes));
            assert!(j.runtime_s >= cfg.runtime_min_s && j.runtime_s <= cfg.runtime_max_s);
            assert!(j.tenant < cfg.tenants);
            assert!(j.arrival_s >= last_arrival, "arrivals are monotone");
            last_arrival = j.arrival_s;
            if j.is_eco() {
                assert!(j.eco_slack >= cfg.slack_min && j.eco_slack <= cfg.slack_max);
            }
        }
        // With eco_fraction = 0.6 over 64 jobs, both kinds must appear.
        assert!(jobs.iter().any(JobSpec::is_eco));
        assert!(jobs.iter().any(|j| !j.is_eco()));
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let bad = TraceConfig {
            jobs: 0,
            ..TraceConfig::default()
        };
        assert_eq!(bad.validate().unwrap_err().what, "TraceConfig.jobs");
        let bad = TraceConfig {
            nodes_min: 8,
            nodes_max: 4,
            ..TraceConfig::default()
        };
        assert_eq!(bad.validate().unwrap_err().what, "TraceConfig.nodes_min");
        let bad = TraceConfig {
            eco_fraction: 1.5,
            ..TraceConfig::default()
        };
        assert_eq!(bad.validate().unwrap_err().what, "TraceConfig.eco_fraction");
    }
}
