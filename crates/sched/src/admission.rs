//! Power-aware EASY-backfill admission.
//!
//! Classic EASY backfill reserves resources for the head of the queue
//! and lets later jobs jump it only when they cannot delay that
//! reservation. Here the resource is two-dimensional: a job needs both
//! *nodes* and *watts* (its predicted draw under the cap the policy
//! chose for it), and the envelope is usually the binding dimension —
//! that is the whole point of power-aware scheduling. The reservation
//! logic therefore walks running jobs in completion order accumulating
//! both freed nodes and freed watts until the head job fits.

use crate::job::JobSpec;
use crate::policy::SchedPolicy;
use crate::predictor::PowerPredictor;

/// Slack for floating-point envelope comparisons, W.
pub(crate) const EPS_W: f64 = 1e-6;

/// The admission plan for one job: the cap the policy chose and the
/// predicted consequences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmitPlan {
    /// Per-node cap the job runs at, W.
    pub cap_w: f64,
    /// Predicted per-node draw at that cap, W.
    pub node_power_w: f64,
    /// Predicted whole-job draw (the watts admission charges), W.
    pub power_w: f64,
    /// Predicted runtime at that cap, s.
    pub duration_s: f64,
}

/// Choose the operating point for `spec` under `policy`: eco-aware
/// policies run a slack-declaring job at the lowest cap its declaration
/// tolerates; everything else runs at the full cap. Either way the cap
/// is tightened until the *whole job* fits the machine envelope — a job
/// alone on an empty machine must always be admissible, else the queue
/// could starve behind it.
pub fn plan(
    spec: &JobSpec,
    predictor: &PowerPredictor,
    policy: SchedPolicy,
    envelope_w: f64,
) -> AdmitPlan {
    let cfg = predictor.config();
    let mut cap = if policy.eco_aware() && spec.is_eco() {
        predictor.cap_for_relative_slowdown(spec.class, 1.0 + spec.eco_slack)
    } else {
        cfg.max_cap_w
    };
    // Envelope fit: predicted node draw is min(margined class draw, cap),
    // so capping at envelope/nodes guarantees job_power ≤ envelope.
    let fit = envelope_w / spec.nodes as f64;
    if fit < cap {
        cap = fit.max(cfg.min_cap_w);
    }
    let node_power_w = predictor.node_power_w(spec.class, cap);
    AdmitPlan {
        cap_w: cap,
        node_power_w,
        power_w: spec.nodes as f64 * node_power_w,
        duration_s: predictor.duration_s(spec, cap),
    }
}

/// One running job as the reservation walk sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningSnapshot {
    /// Predicted completion, µs.
    pub end_us: u64,
    /// Nodes it will free.
    pub nodes: usize,
    /// Watts it will free (its admitted predicted draw), W.
    pub power_w: f64,
}

/// The head-of-queue reservation: when the blocked job can start, and
/// what is left over at that instant for backfill jobs that would
/// outlive the shadow time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reservation {
    /// Earliest time the blocked head job fits (the shadow time), µs.
    pub shadow_us: u64,
    /// Nodes still free at the shadow time after the head job starts.
    pub spare_nodes: usize,
    /// Watts still free at the shadow time after the head job starts, W.
    pub spare_w: f64,
}

/// Compute the head job's reservation: walk running jobs in completion
/// order (ties broken by the caller's ordering of `running`),
/// accumulating freed nodes and watts onto the currently free amounts,
/// until the head's requirement fits in both dimensions. `running` must
/// be sorted by `end_us` ascending. Returns `None` only if the head
/// cannot fit even with every running job finished — excluded by
/// construction when `plan` tightened the cap to the envelope and the
/// job's node count was validated against the machine.
pub fn reserve(
    head_nodes: usize,
    head_power_w: f64,
    free_nodes: usize,
    free_w: f64,
    running: &[RunningSnapshot],
) -> Option<Reservation> {
    debug_assert!(
        running.windows(2).all(|w| w[0].end_us <= w[1].end_us),
        "running jobs must be sorted by completion"
    );
    let mut nodes = free_nodes;
    let mut watts = free_w;
    if nodes >= head_nodes && watts >= head_power_w - EPS_W {
        // Fits now: the caller should have admitted instead of reserving,
        // but answer consistently anyway.
        return Some(Reservation {
            shadow_us: 0,
            spare_nodes: nodes - head_nodes,
            spare_w: watts - head_power_w,
        });
    }
    let mut i = 0;
    while i < running.len() {
        // Credit every job completing at this same microsecond before
        // re-testing, so ties cannot split the credit.
        let t = running[i].end_us;
        while i < running.len() && running[i].end_us == t {
            nodes += running[i].nodes;
            watts += running[i].power_w;
            i += 1;
        }
        if nodes >= head_nodes && watts >= head_power_w - EPS_W {
            return Some(Reservation {
                shadow_us: t,
                spare_nodes: nodes - head_nodes,
                spare_w: watts - head_power_w,
            });
        }
    }
    None
}

/// Whether a later job may backfill without delaying the reservation:
/// it must end by the shadow time, or fit inside the spare capacity the
/// shadow-time plan leaves over (in both dimensions).
pub fn may_backfill(
    now_us: u64,
    duration_us: u64,
    nodes: usize,
    power_w: f64,
    reservation: &Reservation,
) -> bool {
    now_us.saturating_add(duration_us) <= reservation.shadow_us
        || (nodes <= reservation.spare_nodes && power_w <= reservation.spare_w + EPS_W)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::WorkloadClass;
    use crate::predictor::PredictorConfig;

    fn pred() -> PowerPredictor {
        PowerPredictor::new(PredictorConfig::default()).unwrap()
    }

    fn eco_spec(slack: f64) -> JobSpec {
        JobSpec {
            id: 3,
            tenant: 1,
            nodes: 4,
            runtime_s: 300.0,
            class: WorkloadClass::MonteCarlo,
            eco_slack: slack,
            arrival_s: 0.0,
        }
    }

    #[test]
    fn fcfs_ignores_slack_eco_honours_it() {
        let p = pred();
        let spec = eco_spec(0.25);
        let fcfs = plan(&spec, &p, SchedPolicy::FcfsBackfill, 10_000.0);
        assert_eq!(fcfs.cap_w, 130.0, "baseline runs at the full cap");
        let eco = plan(&spec, &p, SchedPolicy::EcoBackfill, 10_000.0);
        assert!(eco.cap_w < fcfs.cap_w, "eco shrinks the cap");
        assert!(eco.power_w < fcfs.power_w, "…and the admission charge");
        assert!(
            eco.duration_s <= spec.runtime_s * 1.25 + 1e-6,
            "…within the declared slack"
        );
        // A rigid job is identical under both policies.
        let rigid = eco_spec(0.0);
        assert_eq!(
            plan(&rigid, &p, SchedPolicy::EcoBackfill, 10_000.0),
            plan(&rigid, &p, SchedPolicy::FcfsBackfill, 10_000.0)
        );
    }

    #[test]
    fn plan_tightens_the_cap_to_fit_the_envelope() {
        let p = pred();
        let spec = eco_spec(0.0);
        // A 4-node job under a 400 W envelope: 100 W/node max.
        let tight = plan(&spec, &p, SchedPolicy::FcfsBackfill, 400.0);
        assert_eq!(tight.cap_w, 100.0);
        assert!(tight.power_w <= 400.0 + EPS_W);
    }

    #[test]
    fn reservation_walks_completions_in_both_dimensions() {
        // 2 nodes / 100 W free; head needs 6 nodes and 700 W.
        let running = [
            RunningSnapshot {
                end_us: 10,
                nodes: 4,
                power_w: 200.0,
            },
            RunningSnapshot {
                end_us: 20,
                nodes: 2,
                power_w: 450.0,
            },
        ];
        // After t=10: 6 nodes, 300 W — nodes fit, watts do not.
        // After t=20: 8 nodes, 750 W — both fit.
        let r = reserve(6, 700.0, 2, 100.0, &running).unwrap();
        assert_eq!(r.shadow_us, 20);
        assert_eq!(r.spare_nodes, 2);
        assert!((r.spare_w - 50.0).abs() < 1e-9);
        // A head that fits immediately reserves at t=0.
        let now = reserve(2, 100.0, 2, 100.0, &running).unwrap();
        assert_eq!(now.shadow_us, 0);
        // A head larger than everything never fits.
        assert!(reserve(100, 1e6, 2, 100.0, &running).is_none());
    }

    #[test]
    fn backfill_must_not_delay_the_reservation() {
        let r = Reservation {
            shadow_us: 1_000_000,
            spare_nodes: 2,
            spare_w: 150.0,
        };
        // Ends before the shadow: fine even though it is big.
        assert!(may_backfill(0, 900_000, 50, 5_000.0, &r));
        // Outlives the shadow but fits the spare: fine.
        assert!(may_backfill(0, 2_000_000, 2, 150.0, &r));
        // Outlives the shadow and exceeds the spare in either dimension:
        // refused.
        assert!(!may_backfill(0, 2_000_000, 3, 100.0, &r));
        assert!(!may_backfill(0, 2_000_000, 2, 151.0, &r));
    }
}
