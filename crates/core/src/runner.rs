//! Single-run orchestration: node + application + NRM daemon + monitors.

use std::sync::Arc;

use nrm::actuator::ActuatorKind;
use nrm::daemon::{DaemonSample, NrmDaemon};
use nrm::resilience::{ResilienceConfig, ResilientDaemon};
use nrm::scheme::{
    CapSchedule, ConstantCap, JaggedEdge, LinearDecay, PriorityPreemption, StepFunction, Uncapped,
};
use progress::aggregator::ProgressAggregator;
use progress::bus::{BusConfig, ProgressBus};
use progress::series::TimeSeries;
use proxyapps::catalog::{build, AppId};
use proxyapps::runtime::{Driver, RunRecord};
use proxyapps::trace::TelemetryAgent;
use simnode::agent::SimAgent;
use simnode::config::NodeConfig;
use simnode::counters::Counters;
use simnode::faults::FaultPlan;
use simnode::hw::{encode_perf_ctl, BackendKind, BusStats, IA32_PERF_CTL};
use simnode::node::Node;
use simnode::time::{Nanos, SEC};

/// A cloneable description of a cap schedule (trait objects aren't
/// `Clone`, sweeps need to rebuild them per run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleSpec {
    /// No cap.
    Uncapped,
    /// Constant cap from t = 0.
    Constant(f64),
    /// Uncapped lead-in, then constant cap — the shape used to measure the
    /// "change in progress when a power cap is applied from an uncapped
    /// state of execution" (paper §VI.2).
    StepAfter {
        /// Uncapped lead-in.
        lead_in: Nanos,
        /// Cap after the lead-in, W.
        cap_w: f64,
    },
    /// Paper's linearly decreasing scheme.
    LinearDecay {
        /// Uncapped lead-in.
        uncapped_for: Nanos,
        /// Ramp start, W.
        from_w: f64,
        /// Ramp end (floor), W.
        to_w: f64,
        /// Ramp duration.
        ramp: Nanos,
    },
    /// Paper's step-function scheme (uncapped high phase).
    Step {
        /// Low cap, W.
        low_w: f64,
        /// Full period.
        period: Nanos,
    },
    /// Paper's jagged-edge scheme.
    Jagged {
        /// Tooth top, W.
        high_w: f64,
        /// Tooth bottom, W.
        low_w: f64,
        /// Tooth duration.
        decay: Nanos,
    },
    /// The paper's second envisioned policy (§II): a hard immediate cap
    /// while a high-priority job runs elsewhere, lifted on its departure.
    Preemption {
        /// High-priority job arrival.
        preempt_at: Nanos,
        /// Hard cap while preempted, W.
        hard_cap_w: f64,
        /// High-priority job departure (`None` = never).
        release_at: Option<Nanos>,
    },
}

impl ScheduleSpec {
    /// Materialize the schedule.
    pub fn build(self) -> Box<dyn CapSchedule> {
        match self {
            ScheduleSpec::Uncapped => Box::new(Uncapped),
            ScheduleSpec::Constant(w) => Box::new(ConstantCap(w)),
            ScheduleSpec::StepAfter { lead_in, cap_w } => Box::new(LinearDecay {
                uncapped_for: lead_in,
                from_w: cap_w,
                to_w: cap_w,
                ramp: 1,
            }),
            ScheduleSpec::LinearDecay {
                uncapped_for,
                from_w,
                to_w,
                ramp,
            } => Box::new(LinearDecay {
                uncapped_for,
                from_w,
                to_w,
                ramp,
            }),
            ScheduleSpec::Step { low_w, period } => {
                Box::new(StepFunction::half_half(low_w, period))
            }
            ScheduleSpec::Jagged {
                high_w,
                low_w,
                decay,
            } => Box::new(JaggedEdge {
                high_w,
                low_w,
                decay,
            }),
            ScheduleSpec::Preemption {
                preempt_at,
                hard_cap_w,
                release_at,
            } => Box::new(PriorityPreemption {
                preempt_at,
                hard_cap_w,
                release_at,
            }),
        }
    }
}

/// Everything a single run needs.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Node hardware configuration.
    pub node: NodeConfig,
    /// Which application to run.
    pub app: AppId,
    /// Ranks (defaults to all cores).
    pub ranks: usize,
    /// Workload seed.
    pub seed: u64,
    /// The NRM cap schedule.
    pub schedule: ScheduleSpec,
    /// The NRM actuator.
    pub actuator: ActuatorKind,
    /// Simulated run length.
    pub duration: Nanos,
    /// Pin the requested frequency before the run (β measurement).
    pub fixed_mhz: Option<u32>,
    /// Progress aggregation window (paper: 1 s).
    pub window: Nanos,
    /// Optional lossy monitoring transport (capacity); `None` = lossless.
    pub lossy_capacity: Option<usize>,
    /// Deterministic fault-injection plan for the node's user-space MSR
    /// interface; `None` (the default) is bit-identical to the seed
    /// behaviour. `Arc`-shared: sweeps clone the `RunConfig` per run
    /// without deep-copying the plan.
    pub faults: Option<Arc<FaultPlan>>,
    /// Run the hardened control loop ([`ResilientDaemon`]) instead of the
    /// naive [`NrmDaemon`].
    pub resilience: Option<ResilienceConfig>,
    /// Which MSR backend tier the node runs on ([`BackendKind::Sim`] by
    /// default — bit-identical to the seed).
    pub backend: BackendKind,
}

impl RunConfig {
    /// An uncapped run of `app` for `duration`.
    pub fn new(app: AppId, duration: Nanos) -> Self {
        let node = NodeConfig::default();
        Self {
            ranks: node.cores,
            node,
            app,
            seed: 1,
            schedule: ScheduleSpec::Uncapped,
            actuator: ActuatorKind::Rapl,
            duration,
            fixed_mhz: None,
            window: SEC,
            lossy_capacity: None,
            faults: None,
            resilience: None,
            backend: BackendKind::default(),
        }
    }

    /// Set the cap schedule.
    pub fn with_schedule(mut self, s: ScheduleSpec) -> Self {
        self.schedule = s;
        self
    }

    /// Set the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pin a frequency (for β characterization runs).
    pub fn with_fixed_mhz(mut self, mhz: u32) -> Self {
        self.fixed_mhz = Some(mhz);
        self
    }

    /// Use a lossy monitoring transport with the given queue capacity.
    pub fn with_lossy_monitoring(mut self, capacity: usize) -> Self {
        self.lossy_capacity = Some(capacity);
        self
    }

    /// Inject faults at the node's user-space MSR boundary.
    pub fn with_faults(mut self, plan: impl Into<Arc<FaultPlan>>) -> Self {
        self.faults = Some(plan.into());
        self
    }

    /// Replace the naive daemon with the hardened control loop.
    pub fn with_resilience(mut self, cfg: ResilienceConfig) -> Self {
        self.resilience = Some(cfg);
        self
    }

    /// Select the MSR backend tier the node runs on.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }
}

/// Exact per-channel report statistics (lossless, application-side truth),
/// independent of the windowed monitoring view. Coarse reporters (OpenMC's
/// ~1 batch/s) alias against the 1 s windows, so rates for model work are
/// computed from these instead: `(sum − first)/(last − first)` spans whole
/// reporting periods exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChannelStats {
    /// Total reports seen.
    pub events: u64,
    /// Sum of all report values.
    pub sum: f64,
    /// Value of the first report.
    pub first_value: f64,
    /// Time of the first report, ns.
    pub first_at: Nanos,
    /// Time of the last report, ns.
    pub last_at: Nanos,
}

impl ChannelStats {
    fn observe(&mut self, at: Nanos, value: f64) {
        if self.events == 0 {
            self.first_at = at;
            self.first_value = value;
        }
        self.events += 1;
        self.sum += value;
        self.last_at = at;
    }

    /// Exact mean rate between the first and last report (units/s), or
    /// `None` with fewer than 2 reports.
    pub fn exact_rate(&self) -> Option<f64> {
        if self.events < 2 || self.last_at <= self.first_at {
            return None;
        }
        let span = simnode::time::secs(self.last_at - self.first_at);
        Some((self.sum - self.first_value) / span)
    }
}

/// User-space MSR fault counters observed during a run (all zero when no
/// fault plan is installed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// User-space reads that returned an injected I/O error.
    pub reads_failed: u64,
    /// Energy-counter reads served a stale (stuck) value.
    pub reads_stuck: u64,
    /// User-space writes that returned an injected I/O error.
    pub writes_failed: u64,
    /// Cap writes silently deferred by the latch-delay fault.
    pub writes_delayed: u64,
}

/// All measurements from one run.
pub struct RunArtifacts {
    /// Progress rate series, one per channel, 1 sample per window.
    pub progress: Vec<TimeSeries>,
    /// Exact per-channel report statistics.
    pub channel_stats: Vec<ChannelStats>,
    /// Telemetry traces (power, frequency, bandwidth, cap).
    pub telemetry: TelemetryAgent,
    /// NRM daemon observations.
    pub daemon_samples: Vec<DaemonSample>,
    /// Hardware counters at end of run.
    pub counters: Counters,
    /// Driver record (phases, completion).
    pub record: RunRecord,
    /// Run length, seconds.
    pub duration_s: f64,
    /// Total package energy, joules.
    pub total_energy_j: f64,
    /// Events dropped by the monitoring transport (lossy mode).
    pub dropped_events: u64,
    /// Injected-fault counters at end of run.
    pub fault_summary: FaultSummary,
    /// Bus-occupancy accounting, when the backend models a bus
    /// (`None` on the closed-form [`BackendKind::Sim`] tier).
    pub bus_stats: Option<BusStats>,
}

impl RunArtifacts {
    /// MIPS over the whole run (paper Table I).
    pub fn mips(&self) -> f64 {
        self.counters.instructions / self.duration_s / 1e6
    }

    /// MPO over the whole run (paper Table VI).
    pub fn mpo(&self) -> f64 {
        powermodel::mpo::mpo(self.counters.l3_misses, self.counters.instructions)
    }

    /// Steady-state progress rate on channel 0: the exact report-span rate
    /// when at least two reports exist, else the trimmed window mean.
    pub fn steady_rate(&self) -> f64 {
        self.channel_stats[0]
            .exact_rate()
            .unwrap_or_else(|| self.progress[0].steady_mean(0.15))
    }

    /// Mean package power over the run, W.
    pub fn mean_power(&self) -> f64 {
        self.total_energy_j / self.duration_s
    }

    /// Mean package power over the second half of the run, W — excludes
    /// warm-up and the daemon's first-tick latency, i.e. the settled
    /// operating point under a constant cap.
    pub fn settled_power(&self) -> f64 {
        let half = self.duration_s / 2.0;
        let s: TimeSeries = self
            .telemetry
            .power
            .iter()
            .filter(|&(t, _)| t >= half)
            .collect();
        if s.is_empty() {
            self.mean_power()
        } else {
            s.mean()
        }
    }

    /// Daemon ticks on which actuation failed even after any retries and
    /// fallbacks the control loop attempted.
    pub fn actuation_failures(&self) -> usize {
        self.daemon_samples
            .iter()
            .filter(|s| s.actuation_failed)
            .count()
    }

    /// Daemon ticks served by a fallback actuator.
    pub fn fallback_ticks(&self) -> usize {
        self.daemon_samples
            .iter()
            .filter(|s| s.fallback_used)
            .count()
    }

    /// Daemon ticks spent with the safe-mode floor cap engaged.
    pub fn safe_mode_ticks(&self) -> usize {
        self.daemon_samples.iter().filter(|s| s.safe_mode).count()
    }

    /// Worst overshoot (W) of the ground-truth rolling power average over
    /// a requested budget, ignoring the first `skip` telemetry samples
    /// (the average lags one window behind a freshly applied cap). The
    /// comparison is against the budget the schedule *asked for* — not the
    /// latched hardware cap, which under injected faults may never have
    /// arrived (that silent gap is exactly the violation to measure).
    pub fn max_overshoot_w(&self, budget_w: f64, skip: usize) -> f64 {
        self.telemetry
            .avg_power
            .v
            .iter()
            .skip(skip)
            .map(|p| p - budget_w)
            .fold(0.0, f64::max)
    }
}

/// A monitor agent polling an aggregator once per window (the paper's
/// collection daemon: "these values are collected and averaged once every
/// second"), plus a lossless side-channel for exact statistics.
struct MonitorAgent {
    agg: ProgressAggregator,
    raw: progress::bus::Subscriber,
    stats: ChannelStats,
    source: progress::event::SourceId,
    window: Nanos,
}

impl MonitorAgent {
    fn drain_raw(&mut self) {
        for ev in self.raw.drain() {
            if ev.source == self.source {
                self.stats.observe(ev.at, ev.value);
            }
        }
    }
}

impl SimAgent for MonitorAgent {
    fn period(&self) -> Nanos {
        self.window
    }
    fn on_tick(&mut self, _node: &mut Node, now: Nanos) {
        self.agg.poll(now);
        self.drain_raw();
    }
}

/// Execute one run.
pub fn run_app(cfg: &RunConfig) -> RunArtifacts {
    let mut node_cfg = cfg.node.clone();
    if cfg.faults.is_some() {
        node_cfg.faults = cfg.faults.clone();
    }
    node_cfg.backend = cfg.backend;
    let mut node = Node::new(node_cfg);
    if let Some(mhz) = cfg.fixed_mhz {
        node.msr_mut()
            .write(IA32_PERF_CTL, encode_perf_ctl(mhz))
            .expect("PERF_CTL writable");
    }

    let bus = ProgressBus::new();
    let app = build(cfg.app, &cfg.node, cfg.ranks, cfg.seed);
    let channels = app.channels();

    let bus_cfg = match cfg.lossy_capacity {
        Some(cap) => BusConfig::lossy(cap, progress::bus::DropPolicy::DropNewest),
        None => BusConfig::lossless(),
    };

    let mut driver = Driver::new(node, app.programs, &bus, channels);
    let sources = driver.channel_sources();
    let mut monitors: Vec<MonitorAgent> = sources
        .iter()
        .map(|&s| MonitorAgent {
            agg: ProgressAggregator::new(bus.subscribe(bus_cfg), cfg.window, Some(s)),
            raw: bus.subscribe(BusConfig::lossless()),
            stats: ChannelStats::default(),
            source: s,
            window: cfg.window,
        })
        .collect();

    let mut telemetry = TelemetryAgent::new(cfg.window);
    // Either the naive 1 Hz loop or the hardened one — never both.
    let mut naive: Option<NrmDaemon> = None;
    let mut hardened: Option<ResilientDaemon> = None;
    match &cfg.resilience {
        Some(rc) => {
            hardened = Some(ResilientDaemon::new(
                cfg.schedule.build(),
                cfg.actuator,
                rc.clone(),
            ));
        }
        None => naive = Some(NrmDaemon::new(cfg.schedule.build(), cfg.actuator)),
    }

    {
        let mut agents: Vec<&mut dyn SimAgent> = Vec::with_capacity(2 + monitors.len());
        if let Some(d) = &mut naive {
            agents.push(d as &mut dyn SimAgent);
        }
        if let Some(d) = &mut hardened {
            agents.push(d as &mut dyn SimAgent);
        }
        agents.push(&mut telemetry as &mut dyn SimAgent);
        for m in &mut monitors {
            agents.push(m as &mut dyn SimAgent);
        }
        let record = driver.run(cfg.duration, &mut agents);
        let node = driver.node();
        let end = node.now();
        let fault_summary = node
            .msr()
            .fault_stats()
            .map(|fs| FaultSummary {
                reads_failed: fs.reads_failed(),
                reads_stuck: fs.reads_stuck(),
                writes_failed: fs.writes_failed(),
                writes_delayed: fs.writes_delayed(),
            })
            .unwrap_or_default();
        let bus_stats = node.msr().bus_stats();
        let mut progress = Vec::with_capacity(monitors.len());
        let mut channel_stats = Vec::with_capacity(monitors.len());
        for mut m in monitors {
            m.drain_raw();
            channel_stats.push(m.stats);
            progress.push(m.agg.finish(end));
        }
        RunArtifacts {
            progress,
            channel_stats,
            telemetry,
            daemon_samples: match (&naive, &hardened) {
                (Some(d), _) => d.samples.clone(),
                (_, Some(d)) => d.samples.clone(),
                _ => unreachable!("one daemon always runs"),
            },
            counters: node.counters().clone(),
            duration_s: simnode::time::secs(end),
            total_energy_j: node.total_energy(),
            dropped_events: bus.dropped(),
            fault_summary,
            bus_stats,
            record,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnode::time::SEC;

    #[test]
    fn lammps_uncapped_runs_at_calibrated_rate() {
        let cfg = RunConfig::new(AppId::Lammps, 8 * SEC);
        let a = run_app(&cfg);
        let rate = a.steady_rate();
        // ~1080 katom-steps/s with a few % tolerance for scheduling
        // overheads at action boundaries.
        assert!(
            (1000.0..1120.0).contains(&rate),
            "LAMMPS steady rate {rate:.0} katom-steps/s"
        );
        assert!(a.mean_power() > 100.0, "power {:.0} W", a.mean_power());
    }

    #[test]
    fn capped_run_reduces_progress_and_power() {
        let base = run_app(&RunConfig::new(AppId::Lammps, 6 * SEC));
        let capped = run_app(
            &RunConfig::new(AppId::Lammps, 6 * SEC).with_schedule(ScheduleSpec::Constant(80.0)),
        );
        assert!(capped.mean_power() < base.mean_power() - 20.0);
        assert!(capped.steady_rate() < base.steady_rate() * 0.95);
    }

    #[test]
    fn fixed_frequency_slows_compute_bound_app_proportionally() {
        let fast = run_app(&RunConfig::new(AppId::Lammps, 6 * SEC));
        let slow = run_app(&RunConfig::new(AppId::Lammps, 6 * SEC).with_fixed_mhz(1600));
        let ratio = fast.steady_rate() / slow.steady_rate();
        // β ≈ 1 ⇒ rate ratio ≈ frequency ratio = 3300/1600 = 2.06.
        assert!(
            (1.85..2.25).contains(&ratio),
            "rate ratio {ratio:.2}, expected ~2.06"
        );
    }

    #[test]
    fn multi_channel_apps_produce_one_series_per_channel() {
        let cfg = RunConfig::new(AppId::Urban, 5 * SEC);
        let a = run_app(&cfg);
        assert_eq!(a.progress.len(), 2);
    }
}
